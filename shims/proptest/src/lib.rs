//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(..)]`), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, numeric range strategies, `collection::vec`, and
//! character-class string strategies like `"[a-z ]{0,60}"`.
//!
//! Unlike the real crate there is no shrinking: a failing case panics with
//! the sampled inputs in the assertion message instead. Sampling is
//! deterministic (fixed seed per test function), so failures reproduce.

#![forbid(unsafe_code)]

pub use rand;

use rand::rngs::StdRng;
use rand::RngExt;

/// Runtime configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 100 }
    }
}

/// A source of random values of some type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.random::<f64>() * (hi - lo)
    }
}

/// String strategy from a regex-like pattern. Supported subset:
/// `[<chars>]{m,n}` where `<chars>` is a set of literal characters and
/// `a-z`-style ranges. This covers every pattern used in the workspace.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        let (alphabet, lo, hi) = parse_char_class(self);
        let len = rng.random_range(lo..=hi);
        (0..len)
            .map(|_| alphabet[rng.random_range(0..alphabet.len())])
            .collect()
    }
}

fn parse_char_class(pattern: &str) -> (Vec<char>, usize, usize) {
    let inner = pattern
        .strip_prefix('[')
        .and_then(|r| r.split_once(']'))
        .unwrap_or_else(|| panic!("unsupported proptest pattern: {pattern:?}"));
    let (class, rest) = inner;
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            for c in chars[i]..=chars[i + 2] {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty char class: {pattern:?}");
    let bounds = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition in: {pattern:?}"));
    let (lo, hi) = match bounds.split_once(',') {
        Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
        None => {
            let n = bounds.trim().parse().unwrap();
            (n, n)
        }
    };
    (alphabet, lo, hi)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::RngExt;

    /// Size specification for [`vec`]: a fixed length or a range of lengths.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Vectors of values from `element` with length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Like `assert!`, inside a property.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Like `assert_eq!`, inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Defines `#[test]` functions that run their body over many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)
        $(
            $(#[doc = $doc:expr])*
            #[test]
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                    0x70726f_7074u64 ^ stringify!($name).len() as u64,
                );
                let mut case = 0u32;
                while case < config.cases {
                    case += 1;
                    $(let $arg = ($strat).sample(&mut rng);)*
                    $body
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
