//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's panic-free, non-poisoning
//! API surface (`read()`/`write()`/`lock()` return guards directly). A
//! poisoned std lock only occurs after a panic mid-critical-section, at
//! which point the simulation run is already lost, so unwrapping is sound.

#![forbid(unsafe_code)]

use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock};
pub use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}
