//! Offline stand-in for `bytes`.
//!
//! Provides a [`Bytes`] type with the cheap-clone semantics the cache store
//! relies on: an immutable, reference-counted byte buffer. Clones share the
//! allocation (an `Arc<[u8]>`), matching the real crate's O(1) clone
//! guarantee that makes blob fan-out in the cache model affordable.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from([]),
        }
    }

    /// Copies a static/borrowed slice into a buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}
