//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde for `#[derive(Serialize, Deserialize)]`
//! markers and trait bounds — nothing actually serializes at runtime — so
//! this shim provides the two marker traits with blanket implementations
//! and re-exports no-op derive macros from `serde_derive`. Swapping in the
//! real serde later is a Cargo.toml-only change.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize<'de>`; blanket-implemented.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}
