//! No-op derive macros backing the offline `serde` shim.
//!
//! The shim's `Serialize`/`Deserialize` traits are blanket-implemented for
//! every type, so the derives expand to nothing — they exist purely so that
//! `#[derive(Serialize, Deserialize)]` in downstream crates parses.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
