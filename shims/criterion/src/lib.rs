//! Offline stand-in for `criterion`.
//!
//! Implements the small API surface the workspace's micro-benchmarks use
//! (`Criterion::bench_function`, `Bencher::iter`/`iter_batched`,
//! `BatchSize`, `criterion_group!`, `criterion_main!`, `black_box`) with a
//! simple timing loop: a short warm-up, then a fixed measurement window,
//! reporting mean, standard deviation and min/max ns/iter across
//! measurement chunks — the spread is what makes a solver-scaling
//! regression distinguishable from scheduler noise. Good enough for A/B
//! comparisons on one machine; swap in the real criterion when the
//! registry is reachable.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup cost is amortised; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Benchmark driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    /// Accumulated (elapsed, iterations) samples.
    samples: Vec<(Duration, u64)>,
    measure_for: Duration,
}

impl Bencher {
    /// Times `routine` in a loop for the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates per-iter cost to size measurement chunks.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        let chunk = ((10_000_000 / per_iter.max(1)) as u64).clamp(1, 1_000_000);

        let deadline = Instant::now() + self.measure_for;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..chunk {
                black_box(routine());
            }
            self.samples.push((t0.elapsed(), chunk));
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.measure_for;
        while Instant::now() < deadline {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push((t0.elapsed(), 1));
        }
    }

    fn stats(&self) -> SampleStats {
        let (total, iters) = self
            .samples
            .iter()
            .fold((Duration::ZERO, 0u64), |(d, n), (sd, sn)| (d + *sd, n + sn));
        if iters == 0 {
            return SampleStats {
                mean_ns: f64::NAN,
                std_ns: f64::NAN,
                min_ns: f64::NAN,
                max_ns: f64::NAN,
            };
        }
        let mean_ns = total.as_nanos() as f64 / iters as f64;
        // Per-chunk ns/iter values, weighted by chunk size for the spread.
        let mut var_num = 0.0;
        let mut min_ns = f64::INFINITY;
        let mut max_ns = f64::NEG_INFINITY;
        for (d, n) in &self.samples {
            let per = d.as_nanos() as f64 / (*n).max(1) as f64;
            var_num += *n as f64 * (per - mean_ns) * (per - mean_ns);
            min_ns = min_ns.min(per);
            max_ns = max_ns.max(per);
        }
        SampleStats {
            mean_ns,
            std_ns: (var_num / iters as f64).sqrt(),
            min_ns,
            max_ns,
        }
    }
}

/// Per-benchmark timing summary over measurement chunks.
#[derive(Debug, Clone, Copy)]
struct SampleStats {
    mean_ns: f64,
    std_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_for: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs a named benchmark and prints mean ± std-dev and the min/max
    /// per-iteration time across measurement chunks.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            measure_for: self.measure_for,
        };
        f(&mut b);
        let s = b.stats();
        let (scale, unit) = if s.mean_ns >= 1_000_000.0 {
            (1_000_000.0, "ms")
        } else if s.mean_ns >= 1_000.0 {
            (1_000.0, "µs")
        } else {
            (1.0, "ns")
        };
        println!(
            "{id:<40} {:>10.3} ± {:>8.3} {unit}/iter  [{:.3} … {:.3}]",
            s.mean_ns / scale,
            s.std_ns / scale,
            s.min_ns / scale,
            s.max_ns / scale,
        );
        self
    }
}

/// Declares a benchmark group: a function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
