//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the narrow slice of the `rand` 0.9-style API the workspace uses:
//! [`SeedableRng`], [`Rng`], [`RngExt`] (extension methods: `random`,
//! `random_range`, `random_bool`) and [`rngs::StdRng`].
//!
//! `rngs::StdRng` is a SplitMix64-seeded xoshiro256** generator — small,
//! fast, statistically solid for simulation purposes, and fully
//! deterministic across platforms, which is what the DES reproducibility
//! contract requires. It is *not* cryptographically secure, matching how
//! the workspace uses it (simulation streams only).

#![forbid(unsafe_code)]

/// A random number generator core: a source of uniformly random bits.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Marker alias trait mirroring `rand::Rng`. All `RngCore` types are `Rng`.
pub trait Rng: RngCore {}
impl<T: RngCore + ?Sized> Rng for T {}

/// Types that can be sampled uniformly from an RNG via [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value in the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

/// Uniform draw in `[0, bound)` by Lemire-style rejection (debiased modulo).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods available on every RNG (mirrors `rand::Rng` sugar).
pub trait RngExt: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Draws a uniformly distributed value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_from(self) < p
    }
}
impl<T: RngCore + ?Sized> RngExt for T {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_are_inclusive_exclusive_as_labelled() {
        let mut r = StdRng::seed_from_u64(9);
        let mut hit_hi = false;
        for _ in 0..10_000 {
            let x = r.random_range(0..=3usize);
            assert!(x <= 3);
            hit_hi |= x == 3;
            let y = r.random_range(0..3usize);
            assert!(y < 3);
        }
        assert!(hit_hi);
    }
}
