//! # Argus — quality-aware high-throughput text-to-image inference serving
//!
//! A full-system reproduction of *"Argus: Quality-Aware High-Throughput
//! Text-to-Image Inference Serving System"* (ACM Middleware 2025) in pure
//! Rust, with every hardware/data dependency replaced by a calibrated
//! simulator (see `DESIGN.md` for the substitution map).
//!
//! This meta-crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `argus-core` | allocator (Eq. 1 solver), ODA/PASM, scheduler, strategy switcher, end-to-end simulation, baselines |
//! | [`models`] | `argus-models` | model catalog, latency/loading/batching/roofline models, AC levels |
//! | [`quality`] | `argus-quality` | PickScore oracle, degradation profiles, rater panel |
//! | [`classifier`] | `argus-classifier` | approximation-level predictor + drift detection |
//! | [`prompts`] | `argus-prompts` | synthetic DiffusionDB-like prompt stream |
//! | [`workload`] | `argus-workload` | Twitter/SysX/bursty/ramp traces, arrival processes |
//! | [`cluster`] | `argus-cluster` | GPU worker state machines |
//! | [`obs`] | `argus-obs` | telemetry: lifecycle spans, time-series registry, stage profiles, JSONL/Chrome-trace exporters |
//! | [`vdb`] | `argus-vdb` | vector index substrate |
//! | [`cachestore`] | `argus-cachestore` | blob store + network model |
//! | [`embed`] | `argus-embed` | deterministic text embeddings |
//! | [`ilp`] | `argus-ilp` | simplex LP + branch-and-bound MILP |
//! | [`des`] | `argus-des` | discrete-event engine, RNG streams, statistics |
//!
//! # Quickstart
//!
//! ```
//! use argus::core::{Policy, RunConfig};
//! use argus::workload::twitter_like;
//!
//! // Serve a 30-minute Twitter-shaped trace with full Argus on 8×A100.
//! let outcome = RunConfig::new(Policy::Argus, twitter_like(42, 30))
//!     .with_seed(42)
//!     .run();
//! println!(
//!     "throughput {:.1} QPM, quality {:.2}, SLO violations {:.2}%",
//!     outcome.totals.mean_throughput_qpm(30.0),
//!     outcome.totals.effective_accuracy(),
//!     100.0 * outcome.totals.slo_violation_ratio(),
//! );
//! assert!(outcome.totals.completed > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use argus_cachestore as cachestore;
pub use argus_classifier as classifier;
pub use argus_cluster as cluster;
pub use argus_core as core;
pub use argus_des as des;
pub use argus_embed as embed;
pub use argus_ilp as ilp;
pub use argus_models as models;
pub use argus_obs as obs;
pub use argus_prompts as prompts;
pub use argus_quality as quality;
pub use argus_vdb as vdb;
pub use argus_workload as workload;
