//! Multinomial logistic regression trained by SGD.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::features::FeatureExtractor;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Number of passes over the training set. The Fig. 19 sweep varies
    /// this to trade loss against routing quality.
    pub epochs: usize,
    /// Initial learning rate (decays as `lr / (1 + epoch)`).
    pub learning_rate: f32,
    /// L2 regularization strength.
    pub l2: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            epochs: 8, // paper: "8 epochs per refresh" (§5.5)
            learning_rate: 0.25,
            l2: 1e-5,
            seed: 0,
        }
    }
}

/// Per-epoch training trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingReport {
    /// Mean cross-entropy loss after each epoch.
    pub epoch_losses: Vec<f64>,
}

impl TrainingReport {
    /// Loss after the final epoch.
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(f64::INFINITY)
    }
}

/// Accuracy metrics on a labelled set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalReport {
    /// Fraction of exact optimal-level matches.
    pub accuracy: f64,
    /// Fraction predicted within one rung of the optimal level. Adjacent
    /// levels differ little in quality, so this is the quality-relevant
    /// accuracy.
    pub within_one: f64,
    /// Mean cross-entropy loss.
    pub loss: f64,
}

/// The trained approximation-level predictor.
#[derive(Debug, Clone)]
pub struct Classifier {
    extractor: FeatureExtractor,
    /// Row-major `classes × dim` weight matrix.
    weights: Vec<f32>,
    classes: usize,
}

impl Classifier {
    /// Number of output classes (approximation levels).
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Class logits for a prompt text.
    fn logits(&self, text: &str) -> Vec<f32> {
        let dim = self.extractor.dim();
        let feats = self.extractor.features(text);
        (0..self.classes)
            .map(|c| {
                let row = &self.weights[c * dim..(c + 1) * dim];
                feats.iter().map(|&(i, v)| row[i] * v).sum()
            })
            .collect()
    }

    /// Class probabilities (softmax over logits).
    pub fn predict_proba(&self, text: &str) -> Vec<f64> {
        softmax(&self.logits(text))
    }

    /// Applies one online SGD step for a freshly labelled sample — the §6
    /// "online or active learning" extension, as an alternative to
    /// drift-triggered batch retraining. The label comes from scoring the
    /// image that was just generated, so this runs off the critical path.
    ///
    /// # Panics
    /// Panics if `label` is out of range or `lr` is not positive/finite.
    pub fn update(&mut self, text: &str, label: usize, lr: f32) {
        assert!(label < self.classes, "label {label} out of range");
        assert!(lr.is_finite() && lr > 0.0, "invalid learning rate {lr}");
        let dim = self.extractor.dim();
        let x = self.extractor.features(text);
        let logits: Vec<f32> = (0..self.classes)
            .map(|c| {
                let row = &self.weights[c * dim..(c + 1) * dim];
                x.iter().map(|&(i, v)| row[i] * v).sum()
            })
            .collect();
        let probs = softmax(&logits);
        for (c, &prob) in probs.iter().enumerate() {
            let err = (prob - if c == label { 1.0 } else { 0.0 }) as f32;
            if err.abs() < 1e-9 {
                continue;
            }
            let row = &mut self.weights[c * dim..(c + 1) * dim];
            for &(i, v) in &x {
                row[i] -= lr * err * v;
            }
        }
    }

    /// The predicted optimal level index (argmax; ties to the lower
    /// index, i.e. the less approximate level).
    pub fn predict(&self, text: &str) -> usize {
        let logits = self.logits(text);
        let mut best = 0;
        for (i, &l) in logits.iter().enumerate() {
            if l > logits[best] {
                best = i;
            }
        }
        best
    }
}

fn softmax(logits: &[f32]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
    let exps: Vec<f64> = logits.iter().map(|&l| ((l as f64) - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Trains a classifier on `(text, label)` samples with `classes` output
/// classes.
///
/// # Panics
/// Panics if `samples` is empty, `classes == 0`, or a label is out of
/// range.
pub fn train(
    samples: &[(String, usize)],
    classes: usize,
    cfg: &TrainerConfig,
) -> (Classifier, TrainingReport) {
    assert!(!samples.is_empty(), "no training samples");
    assert!(classes > 0, "need at least one class");
    assert!(
        samples.iter().all(|&(_, y)| y < classes),
        "label out of range"
    );

    let extractor = FeatureExtractor::default();
    let dim = extractor.dim();
    let mut weights = vec![0.0f32; classes * dim];

    // Pre-extract features once.
    let feats: Vec<Vec<(usize, f32)>> =
        samples.iter().map(|(t, _)| extractor.features(t)).collect();

    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0074_7261_696e);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        // Fisher–Yates shuffle.
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let lr = cfg.learning_rate / (1.0 + epoch as f32);
        let mut loss_sum = 0.0f64;
        for &s in &order {
            let x = &feats[s];
            let y = samples[s].1;
            // Forward.
            let logits: Vec<f32> = (0..classes)
                .map(|c| {
                    let row = &weights[c * dim..(c + 1) * dim];
                    x.iter().map(|&(i, v)| row[i] * v).sum()
                })
                .collect();
            let probs = softmax(&logits);
            loss_sum += -(probs[y].max(1e-12)).ln();
            // Backward: grad = (p - onehot) ⊗ x, plus L2.
            for c in 0..classes {
                let err = (probs[c] - if c == y { 1.0 } else { 0.0 }) as f32;
                if err.abs() < 1e-9 {
                    continue;
                }
                let row = &mut weights[c * dim..(c + 1) * dim];
                for &(i, v) in x {
                    row[i] -= lr * (err * v + cfg.l2 * row[i]);
                }
            }
        }
        epoch_losses.push(loss_sum / samples.len() as f64);
    }

    (
        Classifier {
            extractor,
            weights,
            classes,
        },
        TrainingReport { epoch_losses },
    )
}

/// Evaluates a classifier on labelled samples.
///
/// # Panics
/// Panics if `samples` is empty.
pub fn evaluate(clf: &Classifier, samples: &[(String, usize)]) -> EvalReport {
    assert!(!samples.is_empty(), "no evaluation samples");
    let mut exact = 0usize;
    let mut near = 0usize;
    let mut loss = 0.0f64;
    for (text, y) in samples {
        let probs = clf.predict_proba(text);
        loss += -(probs[*y].max(1e-12)).ln();
        let pred = clf.predict(text);
        if pred == *y {
            exact += 1;
        }
        if pred.abs_diff(*y) <= 1 {
            near += 1;
        }
    }
    let n = samples.len() as f64;
    EvalReport {
        accuracy: exact as f64 / n,
        within_one: near as f64 / n,
        loss: loss / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_models::{ApproxLevel, Strategy};
    use argus_prompts::PromptGenerator;
    use argus_quality::QualityOracle;

    fn training_data(n: usize, seed: u64) -> (Vec<(String, usize)>, usize) {
        let ladder = ApproxLevel::ladder(Strategy::Ac);
        let oracle = QualityOracle::new(seed);
        let prompts = PromptGenerator::new(seed).generate_batch(n);
        (
            crate::label_prompts(&oracle, &prompts, &ladder),
            ladder.len(),
        )
    }

    #[test]
    fn training_reduces_loss_monotonically_enough() {
        let (samples, classes) = training_data(3000, 1);
        let (_, report) = train(&samples, classes, &TrainerConfig::default());
        assert_eq!(report.epoch_losses.len(), 8);
        let first = report.epoch_losses[0];
        let last = report.final_loss();
        assert!(last < first, "loss did not improve: {report:?}");
        assert!(last < 1.3, "final loss {last}");
    }

    #[test]
    fn classifier_beats_chance_substantially() {
        let (train_set, classes) = training_data(6000, 2);
        let (clf, _) = train(&train_set, classes, &TrainerConfig::default());
        let (test_set, _) = training_data(2000, 99); // fresh prompts, same oracle family
        let eval = evaluate(&clf, &test_set);
        // Chance = 1/6 ≈ 0.17 exact. Structural features recover the
        // complexity latent; level noise caps attainable accuracy.
        assert!(eval.accuracy > 0.45, "accuracy {}", eval.accuracy);
        assert!(eval.within_one > 0.80, "within-one {}", eval.within_one);
        assert!(eval.loss < 1.2, "loss {}", eval.loss);
    }

    #[test]
    fn more_epochs_means_lower_loss() {
        // The Fig. 19 premise: training longer improves the predictor.
        let (samples, classes) = training_data(2500, 3);
        let short = train(
            &samples,
            classes,
            &TrainerConfig {
                epochs: 1,
                ..TrainerConfig::default()
            },
        )
        .1
        .final_loss();
        let long = train(
            &samples,
            classes,
            &TrainerConfig {
                epochs: 12,
                ..TrainerConfig::default()
            },
        )
        .1
        .final_loss();
        assert!(long < short, "short {short} long {long}");
    }

    #[test]
    fn zero_epochs_yields_uniform_untrained_classifier() {
        let (samples, classes) = training_data(100, 6);
        let (clf, report) = train(
            &samples,
            classes,
            &TrainerConfig {
                epochs: 0,
                ..TrainerConfig::default()
            },
        );
        assert!(report.epoch_losses.is_empty());
        assert!(report.final_loss().is_infinite());
        // All-zero weights: uniform probabilities, argmax ties to class 0.
        let p = clf.predict_proba("anything at all");
        assert!(p.iter().all(|&x| (x - 1.0 / classes as f64).abs() < 1e-9));
        assert_eq!(clf.predict("anything at all"), 0);
    }

    #[test]
    fn training_is_deterministic() {
        let (samples, classes) = training_data(500, 4);
        let cfg = TrainerConfig::default();
        let a = train(&samples, classes, &cfg).1;
        let b = train(&samples, classes, &cfg).1;
        assert_eq!(a, b);
    }

    #[test]
    fn probabilities_are_normalized() {
        let (samples, classes) = training_data(300, 5);
        let (clf, _) = train(&samples, classes, &TrainerConfig::default());
        let p = clf.predict_proba("photo of a red apple on a table");
        assert_eq!(p.len(), classes);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| x >= 0.0));
        assert_eq!(clf.classes(), classes);
    }

    #[test]
    fn online_updates_adapt_to_new_distribution() {
        // Train on one label mapping, then stream updates with flipped
        // labels: predictions must follow the stream.
        let samples: Vec<(String, usize)> = (0..200)
            .map(|i| (format!("alpha beta sample {i}"), 0))
            .collect();
        let (mut clf, _) = train(&samples, 2, &TrainerConfig::default());
        assert_eq!(clf.predict("alpha beta sample 3"), 0);
        for i in 0..300 {
            clf.update(&format!("alpha beta sample {i}"), 1, 0.1);
        }
        assert_eq!(clf.predict("alpha beta sample 3"), 1);
    }

    #[test]
    #[should_panic(expected = "label 9 out of range")]
    fn online_update_checks_label() {
        let (mut clf, _) = train(&[("x".into(), 0)], 2, &TrainerConfig::default());
        clf.update("x", 9, 0.1);
    }

    #[test]
    #[should_panic(expected = "no training samples")]
    fn empty_training_set_rejected() {
        let _ = train(&[], 3, &TrainerConfig::default());
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_rejected() {
        let _ = train(&[("x".into(), 5)], 3, &TrainerConfig::default());
    }
}
