//! # argus-classifier — the Approximation-Level Predictor
//!
//! Argus' prompt-awareness comes from a lightweight classifier that
//! predicts, per prompt, the *optimal model* — the fastest approximation
//! level that preserves quality (§4.1). The paper trains a BERT-based
//! model offline on 10 k DiffusionDB prompts labelled by generating images
//! at every level and scoring them with PickScore; retraining is triggered
//! by quality drift and runs off the critical path.
//!
//! BERT is not available offline, so this crate substitutes a hashed
//! bag-of-n-grams feature extractor plus multinomial logistic regression
//! trained by SGD — the same interface and operational behaviour
//! (supervised labels from the quality oracle, imperfect predictions,
//! epoch-controllable accuracy for the Fig. 19 sweep, drift-triggered
//! retraining for Fig. 18).
//!
//! # Example
//!
//! ```
//! use argus_classifier::{label_prompts, train, TrainerConfig};
//! use argus_models::{ApproxLevel, Strategy};
//! use argus_prompts::PromptGenerator;
//! use argus_quality::QualityOracle;
//!
//! let ladder = ApproxLevel::ladder(Strategy::Ac);
//! let oracle = QualityOracle::new(7);
//! let prompts = PromptGenerator::new(7).generate_batch(500);
//! let samples = label_prompts(&oracle, &prompts, &ladder);
//! let (clf, report) = train(&samples, ladder.len(), &TrainerConfig::default());
//! assert!(report.final_loss() < 1.8);
//! assert!(clf.predict(&prompts[0].text) < ladder.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod drift;
mod features;
mod model;

pub use drift::DriftDetector;
pub use features::FeatureExtractor;
pub use model::{evaluate, train, Classifier, EvalReport, TrainerConfig, TrainingReport};

use argus_models::ApproxLevel;
use argus_prompts::Prompt;
use argus_quality::QualityOracle;

/// Labels prompts with their oracle-optimal level index — the supervision
/// the paper obtains by generating images at every level and scoring them
/// with PickScore (§4.1).
pub fn label_prompts(
    oracle: &QualityOracle,
    prompts: &[Prompt],
    ladder: &[ApproxLevel],
) -> Vec<(String, usize)> {
    prompts
        .iter()
        .map(|p| (p.text.clone(), oracle.optimal_level(p, ladder)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_models::Strategy;
    use argus_prompts::PromptGenerator;

    #[test]
    fn labels_are_in_range() {
        let ladder = ApproxLevel::ladder(Strategy::Sm);
        let oracle = QualityOracle::new(1);
        let prompts = PromptGenerator::new(1).generate_batch(200);
        for (text, label) in label_prompts(&oracle, &prompts, &ladder) {
            assert!(!text.is_empty());
            assert!(label < ladder.len());
        }
    }
}
