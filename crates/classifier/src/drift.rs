//! Drift-triggered retraining signal (§4.1, §5.5, Fig. 18).
//!
//! "Retraining is triggered only upon significant data drift, detected
//! when the median PickScore in the current window falls below the moving
//! average of previous windows."

use argus_des::stats::{median, MovingAverage};

/// Detects quality drift from the stream of per-query PickScores.
///
/// Scores accumulate into fixed-size windows; at each window boundary the
/// window median is compared against the moving average of previous window
/// medians. A drop beyond `margin` raises the retrain signal.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    window: usize,
    margin: f64,
    current: Vec<f64>,
    history: MovingAverage,
    triggers: u64,
}

impl DriftDetector {
    /// Creates a detector with `window` scores per window, a moving average
    /// over `history_windows` window medians, and the given trigger margin
    /// (absolute PickScore units).
    ///
    /// # Panics
    /// Panics if `window == 0` or `history_windows == 0` or `margin < 0`.
    pub fn new(window: usize, history_windows: usize, margin: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(margin >= 0.0, "margin must be non-negative");
        DriftDetector {
            window,
            margin,
            current: Vec::with_capacity(window),
            history: MovingAverage::new(history_windows),
            triggers: 0,
        }
    }

    /// Records one served query's PickScore. Returns `true` when this
    /// score completes a window whose median sits below the historical
    /// moving average by more than the margin — the retrain trigger.
    pub fn record(&mut self, score: f64) -> bool {
        self.current.push(score);
        if self.current.len() < self.window {
            return false;
        }
        let med = median(&self.current).expect("window is non-empty");
        self.current.clear();
        let triggered = match self.history.value() {
            Some(avg) => med < avg - self.margin,
            None => false,
        };
        // A drifted window is *not* folded into the baseline: it reflects
        // the new distribution the retrained classifier must fix.
        if triggered {
            self.triggers += 1;
        } else {
            self.history.push(med);
        }
        triggered
    }

    /// Number of retrain triggers so far.
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// Resets the current (partial) window, e.g. after a retrain.
    pub fn reset_window(&mut self) {
        self.current.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_trigger_on_stable_quality() {
        let mut d = DriftDetector::new(50, 5, 0.3);
        for i in 0..1000 {
            let score = 20.5 + 0.2 * ((i % 7) as f64 / 7.0 - 0.5);
            assert!(!d.record(score), "spurious trigger at {i}");
        }
        assert_eq!(d.triggers(), 0);
    }

    #[test]
    fn trigger_on_sustained_drop() {
        let mut d = DriftDetector::new(50, 5, 0.3);
        for _ in 0..500 {
            d.record(20.5);
        }
        let mut fired = false;
        for _ in 0..100 {
            fired |= d.record(18.0);
        }
        assert!(fired);
        assert!(d.triggers() >= 1);
    }

    #[test]
    fn first_window_cannot_trigger() {
        let mut d = DriftDetector::new(10, 3, 0.0);
        for _ in 0..10 {
            assert!(!d.record(5.0));
        }
    }

    #[test]
    fn margin_suppresses_small_drops() {
        let mut strict = DriftDetector::new(20, 3, 0.0);
        let mut lax = DriftDetector::new(20, 3, 1.0);
        for _ in 0..200 {
            strict.record(20.0);
            lax.record(20.0);
        }
        let mut strict_fired = false;
        let mut lax_fired = false;
        for _ in 0..40 {
            strict_fired |= strict.record(19.5);
            lax_fired |= lax.record(19.5);
        }
        assert!(strict_fired);
        assert!(!lax_fired);
    }

    #[test]
    fn drifted_window_not_absorbed_into_baseline() {
        // After a trigger, the baseline stays at the healthy level so the
        // detector keeps firing until quality actually recovers.
        let mut d = DriftDetector::new(20, 3, 0.2);
        for _ in 0..200 {
            d.record(20.5);
        }
        let mut fires = 0;
        for _ in 0..80 {
            if d.record(18.0) {
                fires += 1;
            }
        }
        assert!(fires >= 3, "fires {fires}");
    }

    #[test]
    fn reset_window_discards_partial_scores() {
        let mut d = DriftDetector::new(10, 2, 0.0);
        for _ in 0..25 {
            d.record(20.0);
        }
        d.reset_window();
        // 5 partial scores were discarded; 5 more complete nothing.
        for _ in 0..5 {
            assert!(!d.record(1.0));
        }
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = DriftDetector::new(0, 3, 0.1);
    }
}
