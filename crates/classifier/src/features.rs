//! Hashed text features for the approximation-level predictor.

use argus_prompts::tokenize;

/// Default feature dimensionality (hash buckets).
pub const DEFAULT_DIM: usize = 2048;

/// Sparse hashed bag-of-n-grams features with structural extras.
///
/// Features: unigram and bigram hash buckets (counts), a token-count
/// bucket, and a spatial-relation indicator — the structural signals that
/// correlate with the latent complexity the oracle penalizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureExtractor {
    dim: usize,
}

impl Default for FeatureExtractor {
    fn default() -> Self {
        FeatureExtractor { dim: DEFAULT_DIM }
    }
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Words signalling multi-object composition (raise complexity).
const RELATION_WORDS: &[&str] = &[
    "next", "top", "under", "holding", "beside", "front", "behind", "with", "against", "looking",
];

impl FeatureExtractor {
    /// Creates an extractor with `dim` hash buckets.
    ///
    /// # Panics
    /// Panics if `dim < 16`.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 16, "feature dimension too small: {dim}");
        FeatureExtractor { dim }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Extracts sparse `(index, value)` features from prompt text.
    /// Indices may repeat (hash collisions accumulate downstream).
    pub fn features(&self, text: &str) -> Vec<(usize, f32)> {
        let tokens = tokenize(text);
        let mut out = Vec::with_capacity(tokens.len() * 2 + 3);
        // The last 8 buckets are reserved for structural features.
        let hash_span = self.dim - 8;
        for t in &tokens {
            out.push(((fnv(t.as_bytes()) as usize) % hash_span, 1.0));
        }
        for w in tokens.windows(2) {
            let bigram = format!("{} {}", w[0], w[1]);
            out.push(((fnv(bigram.as_bytes()) as usize) % hash_span, 0.5));
        }
        // Token-count bucket (length proxies modifier/subject density).
        let len_bucket = (tokens.len() / 4).min(3);
        out.push((hash_span + len_bucket, 1.0));
        // Relation-word count (multi-object prompts).
        let relations = tokens
            .iter()
            .filter(|t| RELATION_WORDS.contains(&t.as_str()))
            .count();
        out.push((hash_span + 4, relations as f32));
        // Comma count (modifier density survives tokenization via length,
        // but "of" count proxies compositional phrases).
        let ofs = tokens.iter().filter(|t| t.as_str() == "of").count();
        out.push((hash_span + 5, ofs as f32));
        // Bias feature.
        out.push((hash_span + 7, 1.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_are_deterministic_and_bounded() {
        let fx = FeatureExtractor::default();
        let a = fx.features("photo of a bear in a snowy forest");
        let b = fx.features("photo of a bear in a snowy forest");
        assert_eq!(a, b);
        for &(i, v) in &a {
            assert!(i < fx.dim());
            assert!(v.is_finite());
        }
    }

    #[test]
    fn different_texts_differ() {
        let fx = FeatureExtractor::default();
        assert_ne!(fx.features("a red apple"), fx.features("a blue sky"));
    }

    #[test]
    fn relation_words_are_counted() {
        let fx = FeatureExtractor::default();
        let span = fx.dim() - 8;
        let with_rel = fx.features("a dog next to a cat beside a bear");
        let rel_feat = with_rel.iter().find(|&&(i, _)| i == span + 4).unwrap();
        assert_eq!(rel_feat.1, 2.0);
        let without = fx.features("a lonely dog");
        let rel_feat = without.iter().find(|&&(i, _)| i == span + 4).unwrap();
        assert_eq!(rel_feat.1, 0.0);
    }

    #[test]
    fn bias_always_present() {
        let fx = FeatureExtractor::default();
        let span = fx.dim() - 8;
        for text in ["", "one", "a much longer prompt with many words included"] {
            let f = fx.features(text);
            assert!(f.iter().any(|&(i, v)| i == span + 7 && v == 1.0));
        }
    }

    #[test]
    #[should_panic(expected = "feature dimension too small")]
    fn tiny_dim_rejected() {
        let _ = FeatureExtractor::new(8);
    }
}
