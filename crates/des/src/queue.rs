//! The event queue at the heart of the simulation loop.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A pending event: ordering is by time, then by insertion sequence so that
/// events scheduled for the same instant pop in FIFO order (critical for
/// reproducibility).
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events of type `E` are scheduled at absolute [`SimTime`] instants and
/// popped in non-decreasing time order; ties break in scheduling (FIFO)
/// order. Popping advances the queue's notion of [`now`](EventQueue::now).
///
/// The simulation driver owns the loop:
///
/// ```
/// use argus_des::{EventQueue, SimTime, SimDuration};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(1.0), "first");
/// let mut log = Vec::new();
/// while let Some((t, ev)) = q.pop() {
///     log.push((t.as_secs(), ev));
///     if ev == "first" {
///         q.schedule_after(t, SimDuration::from_secs(1.0), "second");
///     }
/// }
/// assert_eq!(log, vec![(1.0, "first"), (2.0, "second")]);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// popped event (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of events popped so far.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// The number of events still pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past (before [`now`](Self::now)) is clamped to
    /// `now`: the event will fire next, preserving causality. This mirrors
    /// how real schedulers handle "immediately" work.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` at `base + delay`.
    pub fn schedule_after(&mut self, base: SimTime, delay: crate::SimDuration, event: E) {
        self.schedule(base + delay, event);
    }

    /// Schedules `event` to fire as the next event at the current time.
    pub fn schedule_now(&mut self, event: E) {
        self.schedule(self.now, event);
    }

    /// Removes and returns the earliest pending event, advancing the clock
    /// to its timestamp. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "time went backwards");
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// The timestamp of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), 3);
        q.schedule(SimTime::from_secs(1.0), 1);
        q.schedule(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2.0));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5.0));
        assert_eq!(q.events_processed(), 2);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10.0), "late");
        q.pop();
        // Try to schedule in the past; it must fire at `now`, not before.
        q.schedule(SimTime::from_secs(1.0), "past");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(10.0));
        assert_eq!(e, "past");
    }

    #[test]
    fn schedule_now_and_after() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), 0u8);
        q.pop();
        q.schedule_now(1);
        q.schedule_after(q.now(), SimDuration::from_secs(2.0), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(1.0), 1));
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(3.0), 2));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        assert!(!format!("{q:?}").is_empty());
    }

    proptest! {
        /// Popped timestamps are always non-decreasing regardless of the
        /// scheduling order, and every scheduled event is delivered.
        #[test]
        fn prop_total_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut seen = vec![false; times.len()];
            while let Some((t, i)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                seen[i] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }

        /// FIFO tie-break: events at an equal timestamp preserve insertion order.
        #[test]
        fn prop_fifo_at_equal_times(n in 1usize..100) {
            let mut q = EventQueue::new();
            let t = SimTime::from_secs(1.0);
            for i in 0..n {
                q.schedule(t, i);
            }
            let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
        }
    }
}
