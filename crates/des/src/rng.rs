//! Seeded random-number streams and statistical distributions.
//!
//! Only the base `rand` crate is available offline, so the distributions the
//! simulator needs (exponential inter-arrivals, normal/log-normal service
//! jitter, Poisson burst counts, Pareto tails) are implemented here from
//! first principles.
//!
//! Reproducibility contract: a [`RngFactory`] derives independent
//! [`StdRng`] streams from a master seed and a string label, so adding a new
//! consumer never perturbs the draws seen by existing consumers.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Derives independent, deterministic RNG streams from a master seed.
///
/// Each `(seed, label)` pair yields the same stream forever; distinct labels
/// yield (for all practical purposes) independent streams.
///
/// # Example
///
/// ```
/// use argus_des::rng::RngFactory;
/// use rand::RngExt;
/// let f = RngFactory::new(42);
/// let mut a1 = f.stream("arrivals");
/// let mut a2 = f.stream("arrivals");
/// assert_eq!(a1.random::<u64>(), a2.random::<u64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    /// Creates a factory from a master seed.
    pub fn new(seed: u64) -> Self {
        RngFactory { seed }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Creates the deterministic stream for `label`.
    pub fn stream(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(mix(self.seed, hash_label(label)))
    }

    /// Creates the deterministic stream for `label` and an integer index
    /// (e.g. a worker id), so per-entity streams stay independent.
    pub fn stream_indexed(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(mix(mix(self.seed, hash_label(label)), index))
    }
}

/// FNV-1a hash of a label string.
fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates nearby seeds.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draws from the exponential distribution with the given `rate` (λ > 0)
/// via inverse-CDF sampling. Mean is `1 / rate`.
///
/// # Panics
/// Panics in debug builds if `rate` is not strictly positive and finite.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate.is_finite() && rate > 0.0, "invalid rate: {rate}");
    // u in (0, 1]: avoid ln(0).
    let u: f64 = 1.0 - rng.random::<f64>();
    -u.ln() / rate
}

/// Draws from the standard normal distribution via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln is finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws from `N(mean, std_dev²)`.
///
/// # Panics
/// Panics in debug builds if `std_dev` is negative or non-finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    debug_assert!(
        std_dev.is_finite() && std_dev >= 0.0,
        "invalid std_dev: {std_dev}"
    );
    mean + std_dev * standard_normal(rng)
}

/// Draws from a log-normal distribution parameterised by the mean and
/// standard deviation of the underlying normal (`mu`, `sigma`).
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Draws from a Poisson distribution with mean `lambda`.
///
/// Uses Knuth's multiplication method for small `lambda` and a normal
/// approximation (rounded, clamped at zero) for `lambda > 30`, which is
/// accurate to well under a percent in that regime.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    debug_assert!(
        lambda.is_finite() && lambda >= 0.0,
        "invalid lambda: {lambda}"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let x = normal(rng, lambda, lambda.sqrt());
        return x.round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Draws from a Pareto distribution with scale `x_min > 0` and shape
/// `alpha > 0` (heavy-tailed; used for spike magnitudes).
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, x_min: f64, alpha: f64) -> f64 {
    debug_assert!(x_min > 0.0 && alpha > 0.0, "invalid pareto params");
    let u: f64 = 1.0 - rng.random::<f64>();
    x_min / u.powf(1.0 / alpha)
}

/// Samples an index from a discrete probability distribution given as a
/// slice of non-negative weights (not necessarily normalised).
///
/// Returns `None` if the weights are empty or all zero.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    // Only strictly-positive finite weights contribute, so a non-positive
    // total means there is nothing to sample from.
    let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
    if total <= 0.0 {
        return None;
    }
    let mut target = rng.random::<f64>() * total;
    let mut last_positive = None;
    for (i, &w) in weights.iter().enumerate() {
        if w > 0.0 {
            last_positive = Some(i);
            if target < w {
                return Some(i);
            }
            target -= w;
        }
    }
    // Floating-point slack: fall back to the last positive-weight index.
    last_positive
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        RngFactory::new(7).stream("test")
    }

    #[test]
    fn streams_are_deterministic_and_label_distinct() {
        let f = RngFactory::new(123);
        let a: u64 = f.stream("x").random();
        let b: u64 = f.stream("x").random();
        let c: u64 = f.stream("y").random();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(f.seed(), 123);
        let i0: u64 = f.stream_indexed("w", 0).random();
        let i1: u64 = f.stream_indexed("w", 1).random();
        assert_ne!(i0, i1);
    }

    #[test]
    fn exponential_mean_matches() {
        let mut r = rng();
        let n = 50_000;
        let rate = 4.0;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, rate)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments_match() {
        let mut r = rng();
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn log_normal_is_positive_with_right_median() {
        let mut r = rng();
        let mut xs: Vec<f64> = (0..20_001).map(|_| log_normal(&mut r, 1.0, 0.5)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        // Median of lognormal(mu, sigma) is e^mu.
        assert!((median - 1.0f64.exp()).abs() < 0.1, "median {median}");
    }

    #[test]
    fn poisson_small_and_large_lambda() {
        let mut r = rng();
        for &lambda in &[0.5, 3.0, 50.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| poisson(&mut r, lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "lambda {lambda} mean {mean}"
            );
        }
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(pareto(&mut r, 2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn weighted_index_distribution() {
        let mut r = rng();
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_index(&mut r, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_degenerate_inputs() {
        let mut r = rng();
        assert_eq!(weighted_index(&mut r, &[]), None);
        assert_eq!(weighted_index(&mut r, &[0.0, 0.0]), None);
        assert_eq!(weighted_index(&mut r, &[0.0, 5.0]), Some(1));
    }
}
