//! # argus-des — deterministic discrete-event simulation engine
//!
//! The Argus reproduction runs the entire serving system inside a
//! discrete-event simulation (DES): GPU workers, model loads, cache
//! retrievals, allocator ticks and request arrivals are all events on a
//! single virtual clock. This crate provides the engine:
//!
//! * [`SimTime`] / [`SimDuration`] — µs-resolution virtual time.
//! * [`EventQueue`] — a stable priority queue of `(time, event)` pairs with
//!   FIFO tie-breaking, the core of the simulation loop.
//! * [`rng`] — seeded, labelled random-number streams plus the statistical
//!   distributions the simulator needs (exponential, normal, log-normal,
//!   Poisson, Pareto), implemented from scratch because only the base `rand`
//!   crate is available offline.
//! * [`stats`] — online statistics (Welford), percentiles, histograms,
//!   moving averages and windowed rate counters used by the metrics pipeline.
//!
//! # Example
//!
//! ```
//! use argus_des::{EventQueue, SimTime, SimDuration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Arrive(u32), Done(u32) }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_secs(1.0), Ev::Arrive(7));
//! q.schedule_after(SimTime::ZERO, SimDuration::from_secs(2.0), Ev::Done(7));
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(t, SimTime::from_secs(1.0));
//! assert_eq!(ev, Ev::Arrive(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod queue;
pub mod rng;
pub mod stats;
mod time;

pub use queue::EventQueue;
pub use time::{SimDuration, SimTime};
