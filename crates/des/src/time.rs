//! Virtual time for the discrete-event simulation.
//!
//! Time is stored as integer microseconds so that event ordering is exact
//! and runs are reproducible bit-for-bit across platforms (no floating-point
//! accumulation drift in the clock itself).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the simulation.
///
/// `SimTime` is a transparent newtype over `u64`; construct it with
/// [`SimTime::from_secs`], [`SimTime::from_millis`], [`SimTime::from_micros`]
/// or [`SimTime::from_minutes`].
///
/// # Example
///
/// ```
/// use argus_des::{SimTime, SimDuration};
/// let t = SimTime::from_secs(2.5) + SimDuration::from_millis(500.0);
/// assert_eq!(t, SimTime::from_secs(3.0));
/// assert_eq!(t.as_secs(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// The arithmetic mirrors `std::time::Duration` where it makes sense:
/// durations add, subtract (saturating), scale by `f64` and divide into
/// ratios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

const MICROS_PER_SEC: f64 = 1_000_000.0;

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from (possibly fractional) milliseconds.
    ///
    /// # Panics
    /// Panics in debug builds if `ms` is negative or non-finite.
    pub fn from_millis(ms: f64) -> Self {
        debug_assert!(ms.is_finite() && ms >= 0.0, "invalid millis: {ms}");
        SimTime((ms * 1_000.0).round() as u64)
    }

    /// Creates an instant from (possibly fractional) seconds.
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(secs.is_finite() && secs >= 0.0, "invalid secs: {secs}");
        SimTime((secs * MICROS_PER_SEC).round() as u64)
    }

    /// Creates an instant from (possibly fractional) minutes.
    pub fn from_minutes(min: f64) -> Self {
        SimTime::from_secs(min * 60.0)
    }

    /// This instant as integer microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC
    }

    /// This instant as fractional minutes.
    pub fn as_minutes(self) -> f64 {
        self.as_secs() / 60.0
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a span from (possibly fractional) milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        debug_assert!(ms.is_finite() && ms >= 0.0, "invalid millis: {ms}");
        SimDuration((ms * 1_000.0).round() as u64)
    }

    /// Creates a span from (possibly fractional) seconds.
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(secs.is_finite() && secs >= 0.0, "invalid secs: {secs}");
        SimDuration((secs * MICROS_PER_SEC).round() as u64)
    }

    /// Creates a span from (possibly fractional) minutes.
    pub fn from_minutes(min: f64) -> Self {
        SimDuration::from_secs(min * 60.0)
    }

    /// This span as integer microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span as fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC
    }

    /// This span as fractional minutes.
    pub fn as_minutes(self) -> f64 {
        self.as_secs() / 60.0
    }

    /// Whether this span is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// The (saturating) span from `rhs` to `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        debug_assert!(rhs.is_finite() && rhs >= 0.0, "invalid scale: {rhs}");
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    /// Ratio of two spans. Returns `f64::INFINITY` if `rhs` is zero and
    /// `self` is not, and `0.0` if both are zero.
    fn div(self, rhs: SimDuration) -> f64 {
        if rhs.0 == 0 {
            if self.0 == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / rhs.0 as f64
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(1.0).as_micros(), 1_000_000);
        assert_eq!(SimTime::from_millis(1.5).as_micros(), 1_500);
        assert_eq!(SimTime::from_minutes(2.0).as_secs(), 120.0);
        assert_eq!(SimDuration::from_secs(0.25).as_micros(), 250_000);
        assert_eq!(SimDuration::from_minutes(1.0).as_minutes(), 1.0);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(10.0);
        let d = SimDuration::from_secs(4.0);
        assert_eq!(t + d, SimTime::from_secs(14.0));
        assert_eq!(t - d, SimTime::from_secs(6.0));
        assert_eq!(t - SimTime::from_secs(4.0), SimDuration::from_secs(6.0));
        assert_eq!(d + d, SimDuration::from_secs(8.0));
        assert_eq!(d - SimDuration::from_secs(1.0), SimDuration::from_secs(3.0));
        assert_eq!(d * 2.5, SimDuration::from_secs(10.0));
        assert!((d / SimDuration::from_secs(2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_secs(1.0);
        let late = SimTime::from_secs(5.0);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4.0));
        assert_eq!(
            SimDuration::from_secs(1.0).saturating_sub(SimDuration::from_secs(2.0)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn division_edge_cases() {
        assert_eq!(SimDuration::ZERO / SimDuration::ZERO, 0.0);
        assert_eq!(
            SimDuration::from_secs(1.0) / SimDuration::ZERO,
            f64::INFINITY
        );
    }

    #[test]
    fn ordering_and_extremes() {
        assert!(SimTime::from_secs(1.0) < SimTime::from_secs(2.0));
        assert_eq!(
            SimTime::ZERO.max(SimTime::from_secs(1.0)),
            SimTime::from_secs(1.0)
        );
        assert_eq!(
            SimTime::MAX.min(SimTime::from_secs(1.0)),
            SimTime::from_secs(1.0)
        );
        assert_eq!(
            SimDuration::from_secs(3.0).max(SimDuration::from_secs(2.0)),
            SimDuration::from_secs(3.0)
        );
        assert_eq!(
            SimDuration::from_secs(3.0).min(SimDuration::from_secs(2.0)),
            SimDuration::from_secs(2.0)
        );
        // MAX + anything saturates instead of wrapping.
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1.0), SimTime::MAX);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", SimTime::from_secs(1.5)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_millis(250.0)), "0.250s");
    }
}
