//! Online statistics used by the metrics pipeline.
//!
//! Everything here is allocation-light and deterministic: the end-to-end
//! experiments aggregate millions of samples per run.

use crate::{SimDuration, SimTime};

/// Streaming mean/variance via Welford's algorithm, plus min/max.
///
/// # Example
///
/// ```
/// use argus_des::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] { s.push(x); }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.count(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Computes the `q`-quantile (0 ≤ q ≤ 1) of a slice using linear
/// interpolation between closest ranks. Returns `None` for an empty slice.
///
/// The input is copied and sorted; intended for per-window summaries, not
/// hot paths.
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    debug_assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(v[lo])
    } else {
        let frac = pos - lo as f64;
        Some(v[lo] * (1.0 - frac) + v[hi] * frac)
    }
}

/// Computes the median of a slice (`None` if empty).
pub fn median(samples: &[f64]) -> Option<f64> {
    percentile(samples, 0.5)
}

/// Fixed-width histogram over `[lo, hi)` with out-of-range samples clamped
/// into the edge buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `buckets == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(hi > lo, "invalid histogram range [{lo}, {hi})");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            total: 0,
        }
    }

    /// Adds a sample (clamped into the edge buckets if out of range).
    pub fn push(&mut self, x: f64) {
        let n = self.buckets.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            n - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * n as f64) as usize
        };
        self.buckets[idx.min(n - 1)] += 1;
        self.total += 1;
    }

    /// Raw bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of mass in each bucket (all zeros if empty).
    pub fn normalized(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.buckets.len()];
        }
        self.buckets
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Midpoint value of bucket `i`.
    pub fn bucket_mid(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }
}

/// Simple-moving-average over the last `window` samples.
#[derive(Debug, Clone)]
pub struct MovingAverage {
    window: usize,
    buf: std::collections::VecDeque<f64>,
    sum: f64,
}

impl MovingAverage {
    /// Creates a moving average over `window` samples.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        MovingAverage {
            window,
            buf: std::collections::VecDeque::with_capacity(window),
            sum: 0.0,
        }
    }

    /// Adds a sample, evicting the oldest if the window is full.
    pub fn push(&mut self, x: f64) {
        if self.buf.len() == self.window {
            self.sum -= self.buf.pop_front().unwrap_or(0.0);
        }
        self.buf.push_back(x);
        self.sum += x;
    }

    /// Current average (`None` if no samples yet).
    pub fn value(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.sum / self.buf.len() as f64)
        }
    }

    /// Whether the window has filled at least once.
    pub fn is_saturated(&self) -> bool {
        self.buf.len() == self.window
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no samples are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Counts events within a sliding window of simulated time, for rate
/// estimation (e.g. queries-per-minute observed by the allocator).
#[derive(Debug, Clone)]
pub struct WindowedRate {
    window: SimDuration,
    events: std::collections::VecDeque<SimTime>,
}

impl WindowedRate {
    /// Creates a counter with the given look-back window.
    pub fn new(window: SimDuration) -> Self {
        WindowedRate {
            window,
            events: std::collections::VecDeque::new(),
        }
    }

    /// Records an event at time `t` (must be non-decreasing across calls).
    pub fn record(&mut self, t: SimTime) {
        self.events.push_back(t);
        self.evict(t);
    }

    fn evict(&mut self, now: SimTime) {
        let cutoff = now - self.window;
        while let Some(&front) = self.events.front() {
            if front < cutoff {
                self.events.pop_front();
            } else {
                break;
            }
        }
    }

    /// Number of events within the window ending at `now`.
    pub fn count_at(&mut self, now: SimTime) -> usize {
        self.evict(now);
        self.events.len()
    }

    /// Event rate per minute over the window ending at `now`.
    pub fn per_minute(&mut self, now: SimTime) -> f64 {
        let count = self.count_at(now) as f64;
        let mins = self.window.as_minutes();
        if mins > 0.0 {
            count / mins
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.count(), all.count());

        let mut empty = OnlineStats::new();
        empty.merge(&all);
        assert!((empty.mean() - all.mean()).abs() < 1e-12);
        let mut c = all;
        c.merge(&OnlineStats::new());
        assert_eq!(c.count(), all.count());
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(4.0));
        assert_eq!(percentile(&v, 0.5), Some(2.5));
        assert_eq!(median(&[5.0]), Some(5.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn histogram_buckets_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 9.9, 10.0, 100.0] {
            h.push(x);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.counts(), &[3, 1, 0, 0, 3]);
        let norm = h.normalized();
        assert!((norm.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((h.bucket_mid(0) - 1.0).abs() < 1e-12);
        assert!((h.bucket_mid(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_zero_buckets() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn moving_average_window() {
        let mut m = MovingAverage::new(3);
        assert_eq!(m.value(), None);
        assert!(m.is_empty());
        m.push(3.0);
        assert_eq!(m.value(), Some(3.0));
        m.push(6.0);
        m.push(9.0);
        assert!(m.is_saturated());
        assert_eq!(m.value(), Some(6.0));
        m.push(12.0); // evicts 3.0
        assert_eq!(m.value(), Some(9.0));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn windowed_rate_counts_and_evicts() {
        let mut w = WindowedRate::new(SimDuration::from_minutes(1.0));
        for i in 0..30 {
            w.record(SimTime::from_secs(i as f64 * 2.0)); // 30 events over 58s
        }
        let now = SimTime::from_secs(59.0);
        assert_eq!(w.count_at(now), 30);
        assert!((w.per_minute(now) - 30.0).abs() < 1e-12);
        // One minute later everything has aged out.
        let later = SimTime::from_secs(130.0);
        assert_eq!(w.count_at(later), 0);
    }

    proptest! {
        #[test]
        fn prop_welford_matches_naive(xs in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
            let mut s = OnlineStats::new();
            for &x in &xs { s.push(x); }
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
            prop_assert!((s.mean() - mean).abs() < 1e-6);
            prop_assert!((s.variance() - var).abs() < 1e-4);
        }

        #[test]
        fn prop_percentile_bounded(xs in proptest::collection::vec(-1e3f64..1e3, 1..100), q in 0.0f64..=1.0) {
            let p = percentile(&xs, q).unwrap();
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }

        #[test]
        fn prop_histogram_conserves_mass(xs in proptest::collection::vec(-50.0f64..150.0, 0..200)) {
            let mut h = Histogram::new(0.0, 100.0, 10);
            for &x in &xs { h.push(x); }
            prop_assert_eq!(h.counts().iter().sum::<u64>(), xs.len() as u64);
        }
    }
}
