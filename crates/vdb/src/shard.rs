//! Sharded retrieval plane: the vector index partitioned across
//! worker-attached shards.
//!
//! The monolithic [`SharedIndex`](crate::SharedIndex) mirrors the paper's
//! single Qdrant instance (§4.7). At fleet scale (64–128 workers) one
//! index is both the scalability and the fault-domain bottleneck, so this
//! module distributes it:
//!
//! * [`ShardRouter`] — deterministic, locality-preserving embedding-hash
//!   routing: the sign pattern of `⌈log₂ N⌉ + 3` fixed hyperplane projections
//!   maps an embedding to one of `N` shards, so near-duplicate prompts
//!   land on the same shard with high probability and a lookup probes at
//!   most four shards (the primary plus the flips of the two
//!   boundary-nearest planes) instead of the whole corpus;
//! * [`ShardedIndex`] — `N` shards × `R` replicas of any
//!   [`VectorIndex`] backend, each replica with its own capacity cap.
//!   Inserts go to every live replica of the routed shard; lookups are
//!   served by the fullest live replica (deterministic tie-break). When a
//!   replica's host dies its copy is lost and the surviving replicas take
//!   over. A shard with no live replica re-routes *inserts* to the next
//!   live shard on the ring (new entries must land somewhere durable),
//!   while *lookups* simply skip it — queries whose probe set is entirely
//!   down become cache misses: degraded hit-rate, never a crash. When a
//!   fully-dark shard recovers, an anti-entropy pass re-homes the
//!   ring-rerouted entries (they route to the recovered shard, so left in
//!   foster shards they would sit outside every lookup's probe set
//!   forever). With [`ShardedIndex::with_capacity_rebalance`] the
//!   per-shard capacity caps additionally follow observed routing load
//!   instead of a flat `⌈C/N⌉` split, so skewed traffic stops evicting
//!   hot shards while cold shards sit half empty.
//!
//! Which physical host carries which replica (and therefore what a lookup
//! costs) is deliberately *not* modelled here: that is the cache-plane
//! controller's job (`argus_core::cacheplane`), which maps replica slots
//! to cluster workers and charges local-vs-remote retrieval latency
//! through the `argus-cachestore` network model.

use std::fmt;

use argus_embed::{Embedding, DIM};

use crate::{SearchHit, VectorIndex};

/// Deterministic locality-preserving router from embeddings to shard ids.
///
/// A multi-probe LSH router: `⌈log₂ N⌉ + 3` fixed hyperplane projections
/// (seeded, SplitMix64-expanded exactly like [`crate::LshIndex`]) cut the
/// embedding space into fine sign-pattern cells, and each cell maps to a
/// shard by a mixing hash of its key. The extra planes matter: real
/// prompt streams concentrate in a few coarse half-space cells, so a
/// `log₂ N`-bit key would pile a third of the corpus onto one shard —
/// finer cells scatter-hashed over shards keep the load balanced while
/// exact duplicates still land in the same cell, hence the same shard.
///
/// Inserts go to the primary shard ([`ShardRouter::route`]). Lookups
/// multi-probe ([`ShardRouter::probe`]) the classic way: besides the
/// primary cell, flip the two planes whose projections are smallest in
/// magnitude for the query (alone and together) — the cells a true
/// nearest neighbour most plausibly fell into — for at most four shards
/// scanned regardless of `N`. The `s60_sharded_retrieval` guard pins both
/// the recall and the scan-cost side of this trade.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    planes: Vec<[f32; DIM]>,
    shards: usize,
}

/// Extra routing planes beyond `⌈log₂ N⌉`: each one halves the largest
/// cell's mass at no probe cost (probing flips a constant two planes).
const EXTRA_ROUTING_PLANES: usize = 3;

/// SplitMix64 finalizer used to scatter cell keys over shards.
fn mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ShardRouter {
    /// Creates a router over `shards` shards.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(shards: usize, seed: u64) -> Self {
        assert!(shards > 0, "router needs at least one shard");
        let bits = if shards == 1 {
            0
        } else {
            usize::BITS as usize - (shards - 1).leading_zeros() as usize + EXTRA_ROUTING_PLANES
        };
        ShardRouter {
            planes: crate::seeded_planes(bits, seed ^ 0x0073_6861_7264_7274), // "shardrt"
            shards,
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The cell key plus the per-plane projections of `e`.
    fn project(&self, e: &Embedding) -> (u64, Vec<f32>) {
        let mut key = 0u64;
        let mut dots = Vec::with_capacity(self.planes.len());
        for (b, plane) in self.planes.iter().enumerate() {
            let dot: f32 = e
                .as_slice()
                .iter()
                .zip(plane.iter())
                .map(|(x, y)| x * y)
                .sum();
            if dot >= 0.0 {
                key |= 1 << b;
            }
            dots.push(dot);
        }
        (key, dots)
    }

    /// The shard a cell key scatter-hashes to.
    fn shard_of_key(&self, key: u64) -> usize {
        (mix(key) % self.shards as u64) as usize
    }

    /// The shard an embedding routes to (its *primary* shard; fault
    /// fallback is layered on by [`ShardedIndex`]).
    pub fn route(&self, e: &Embedding) -> usize {
        if self.shards == 1 {
            return 0;
        }
        let (key, _) = self.project(e);
        self.shard_of_key(key)
    }

    /// The lookup probe set, primary shard first: the query's cell plus
    /// the cells reached by flipping the two planes with the smallest
    /// projection magnitude (each alone, then both), deduplicated — at
    /// most four shards, independent of the plane count.
    pub fn probe(&self, e: &Embedding) -> Vec<usize> {
        if self.shards == 1 {
            return vec![0];
        }
        let (key, dots) = self.project(e);
        // The two most boundary-adjacent planes (deterministic index
        // tie-break).
        let mut order: Vec<usize> = (0..dots.len()).collect();
        order.sort_by(|&a, &b| {
            dots[a]
                .abs()
                .partial_cmp(&dots[b].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let (b0, b1) = (1u64 << order[0], 1u64 << order[1]);
        let mut probes = Vec::with_capacity(4);
        for k in [key, key ^ b0, key ^ b1, key ^ b0 ^ b1] {
            let s = self.shard_of_key(k);
            if !probes.contains(&s) {
                probes.push(s);
            }
        }
        probes
    }
}

/// One replica copy of a shard's index.
struct Replica<I> {
    index: I,
    up: bool,
}

/// The vector index partitioned into `N` shards with `R`-way replication.
///
/// Generic over the per-replica backend (`LshIndex` on the serving path;
/// `FlatIndex` where exact per-shard scans are wanted, e.g. the
/// `s60_sharded_retrieval` scan-cost guard). The `factory` passed at
/// construction builds each replica's empty index — it is also used to
/// rebuild a replica cold after its host fails.
pub struct ShardedIndex<P, I> {
    router: ShardRouter,
    replication: usize,
    shards: Vec<Vec<Replica<I>>>,
    factory: Box<dyn Fn(usize, usize) -> I + Send + Sync>,
    /// Inserts dropped because no shard had a live replica.
    dropped_inserts: u64,
    /// Inserts landed on each shard (ring fallback included) — the
    /// observed routing load that capacity rebalancing follows. Halved at
    /// each rebalance so the split tracks recent traffic.
    route_load: Vec<u64>,
    /// Load-aware capacity rebalancing, `(total_capacity, period)`; `None`
    /// leaves the factory's flat per-shard caps untouched.
    rebalance: Option<(usize, usize)>,
    /// Inserts since the last periodic rebalance.
    since_rebalance: usize,
    /// Entries re-homed by recovery anti-entropy passes.
    migrated_entries: u64,
    _payload: std::marker::PhantomData<fn() -> P>,
}

impl<P, I> fmt::Debug for ShardedIndex<P, I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedIndex")
            .field("shards", &self.router.shards())
            .field("replication", &self.replication)
            .finish()
    }
}

impl<P, I: VectorIndex<P>> ShardedIndex<P, I> {
    /// Creates an `N`-shard, `R`-replica index. `factory(shard, replica)`
    /// builds each replica's empty backend (typically
    /// `LshIndex::with_capacity_limit` with the per-shard cap).
    ///
    /// # Panics
    /// Panics if `shards == 0` or `replication == 0`.
    pub fn new(
        shards: usize,
        replication: usize,
        seed: u64,
        factory: impl Fn(usize, usize) -> I + Send + Sync + 'static,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(replication > 0, "need at least one replica");
        let built = (0..shards)
            .map(|s| {
                (0..replication)
                    .map(|j| Replica {
                        index: factory(s, j),
                        up: true,
                    })
                    .collect()
            })
            .collect();
        ShardedIndex {
            router: ShardRouter::new(shards, seed),
            replication,
            shards: built,
            factory: Box::new(factory),
            dropped_inserts: 0,
            route_load: vec![0; shards],
            rebalance: None,
            since_rebalance: 0,
            migrated_entries: 0,
            _payload: std::marker::PhantomData,
        }
    }

    /// Enables load-aware capacity rebalancing: every `period` inserts,
    /// the per-shard capacity caps are re-split proportional to observed
    /// routing load ([`ShardedIndex::rebalance_capacity`]). Without this,
    /// replicas keep whatever flat cap the factory built them with — and
    /// under routing skew the hot shards then evict FIFO while cold
    /// shards sit half empty, wasting a large slice of the nominal total
    /// capacity.
    ///
    /// # Panics
    /// Panics if `total_capacity == 0` or `period == 0`.
    pub fn with_capacity_rebalance(mut self, total_capacity: usize, period: usize) -> Self {
        assert!(total_capacity > 0, "rebalance needs a capacity budget");
        assert!(period > 0, "rebalance period must be positive");
        self.rebalance = Some((total_capacity, period));
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.router.shards()
    }

    /// Replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The router (so callers can inspect primary placement).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Live replica count of one shard.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn live_replicas(&self, shard: usize) -> usize {
        self.shards[shard].iter().filter(|r| r.up).count()
    }

    /// Whether one replica slot is currently up (serving and receiving
    /// writes) — the cache-plane controller reads this to attribute
    /// replica-write hops to host workers.
    ///
    /// # Panics
    /// Panics if `shard` or `replica` is out of range.
    pub fn replica_up(&self, shard: usize, replica: usize) -> bool {
        self.shards[shard][replica].up
    }

    /// Shards with at least one live replica.
    pub fn live_shards(&self) -> usize {
        (0..self.shards())
            .filter(|&s| self.live_replicas(s) > 0)
            .count()
    }

    /// Inserts dropped because every shard was down.
    pub fn dropped_inserts(&self) -> u64 {
        self.dropped_inserts
    }

    /// Observed routing load per shard: inserts landed on each shard,
    /// halved at every rebalance so recent traffic dominates.
    pub fn route_load(&self) -> &[u64] {
        &self.route_load
    }

    /// Entries re-homed by recovery anti-entropy passes
    /// ([`ShardedIndex::recover_replica`]).
    pub fn migrated_entries(&self) -> u64 {
        self.migrated_entries
    }

    /// Entries held by the serving replica of each shard (diagnostics).
    pub fn live_replica_counts(&self) -> Vec<usize> {
        (0..self.shards())
            .map(|s| {
                self.serving_replica(s)
                    .map(|j| self.shards[s][j].index.len())
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Logical entry count: the serving replica's length summed over
    /// shards (replicas of a shard hold copies, not extra entries).
    pub fn len(&self) -> usize {
        self.live_replica_counts().iter().sum()
    }

    /// Whether no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shard an *insert* of `e` lands on right now: the primary shard
    /// if it has a live replica, else the next live shard on the ring —
    /// new entries must land somewhere durable even while their home
    /// shard is down. `None` when every shard is down. (Lookups use
    /// [`ShardedIndex::lookup_shards`], which does not ring-walk.)
    pub fn active_shard_for(&self, e: &Embedding) -> Option<usize> {
        let primary = self.router.route(e);
        (0..self.shards())
            .map(|step| (primary + step) % self.shards())
            .find(|&s| self.live_replicas(s) > 0)
    }

    /// The replica a lookup on `shard` is served from: the fullest live
    /// replica (they diverge only after faults), ties to the lowest slot.
    pub fn serving_replica(&self, shard: usize) -> Option<usize> {
        self.shards[shard]
            .iter()
            .enumerate()
            .filter(|(_, r)| r.up)
            .max_by(|a, b| a.1.index.len().cmp(&b.1.index.len()).then(b.0.cmp(&a.0)))
            .map(|(j, _)| j)
    }

    /// Inserts into every live replica of the routed (or ring-fallback)
    /// shard. Returns the shard written, or `None` if the insert was
    /// dropped because no shard is live.
    pub fn insert(&mut self, embedding: Embedding, payload: P) -> Option<usize>
    where
        P: Clone,
        Embedding: Clone,
    {
        let Some(s) = self.active_shard_for(&embedding) else {
            self.dropped_inserts += 1;
            return None;
        };
        for r in self.shards[s].iter_mut().filter(|r| r.up) {
            r.index.insert(embedding.clone(), payload.clone());
        }
        self.route_load[s] += 1;
        if let Some((total, period)) = self.rebalance {
            self.since_rebalance += 1;
            if self.since_rebalance >= period {
                self.since_rebalance = 0;
                self.rebalance_capacity(total);
            }
        }
        Some(s)
    }

    /// Re-splits `total_capacity` across shards proportional to observed
    /// routing load, evicting overflow FIFO from shrunken replicas.
    ///
    /// Every shard keeps a starvation floor of half its flat `C/N` share;
    /// the remaining budget is apportioned to shards by their
    /// [`ShardedIndex::route_load`] (largest-remainder method, so the
    /// caps sum exactly to the budget and the split is deterministic).
    /// Load counters are halved afterwards, giving an exponentially
    /// weighted view of recent traffic. Returns the number of replica
    /// copies evicted by shrinking. A no-op below two shards or before
    /// any insert landed.
    pub fn rebalance_capacity(&mut self, total_capacity: usize) -> usize {
        let n = self.shards();
        let total_load: u64 = self.route_load.iter().sum();
        if n <= 1 || total_load == 0 {
            return 0;
        }
        let floor = (total_capacity / (2 * n)).max(1);
        let spare = total_capacity.saturating_sub(floor * n);
        let mut caps = vec![floor; n];
        let mut assigned = 0usize;
        let mut rems: Vec<(u64, usize)> = Vec::with_capacity(n);
        for (s, (cap, &load)) in caps.iter_mut().zip(&self.route_load).enumerate() {
            let exact = spare as u128 * load as u128;
            let q = (exact / total_load as u128) as usize;
            *cap += q;
            assigned += q;
            rems.push(((exact % total_load as u128) as u64, s));
        }
        // Leftover slots go to the largest remainders, ties to the lowest
        // shard id.
        rems.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, s) in rems.iter().take(spare - assigned) {
            caps[s] += 1;
        }
        let mut evicted = 0;
        for (s, row) in self.shards.iter_mut().enumerate() {
            for r in row.iter_mut() {
                evicted += r.index.set_capacity(caps[s]).len();
            }
        }
        for l in self.route_load.iter_mut() {
            *l = l.div_ceil(2);
        }
        evicted
    }

    /// The shards a lookup for `query` scans right now: the router's
    /// multi-probe set restricted to live shards. Deliberately *no* ring
    /// fallback — when a query's whole probe set is down the lookup
    /// reports nothing and the caller serves a cache miss, which is
    /// exactly the observable a dead shard should produce (the insert
    /// path, by contrast, does ring-walk: new entries must land
    /// somewhere durable).
    pub fn lookup_shards(&self, query: &Embedding) -> Vec<usize> {
        self.router
            .probe(query)
            .into_iter()
            .filter(|&s| self.live_replicas(s) > 0)
            .collect()
    }

    /// Up-to-`k` nearest entries across the probed shards' serving
    /// replicas, best first (ties resolve in probe order, then each
    /// shard's own age order); empty when every shard is down.
    pub fn search(&self, query: &Embedding, k: usize) -> Vec<SearchHit<P>>
    where
        P: Clone,
    {
        self.search_with_shards(query, k)
            .into_iter()
            .map(|(hit, _)| hit)
            .collect()
    }

    /// [`ShardedIndex::search`], with each hit tagged by the shard that
    /// served it (the controller derives lookup locality from the best
    /// hit's shard).
    pub fn search_with_shards(&self, query: &Embedding, k: usize) -> Vec<(SearchHit<P>, usize)>
    where
        P: Clone,
    {
        let mut merged: Vec<(SearchHit<P>, usize)> = Vec::new();
        for s in self.lookup_shards(query) {
            let j = self.serving_replica(s).expect("lookup shards are live");
            merged.extend(
                self.shards[s][j]
                    .index
                    .search(query, k)
                    .into_iter()
                    .map(|hit| (hit, s)),
            );
        }
        // Stable sort on similarity keeps the probe-order/age tie-break.
        merged.sort_by(|a, b| {
            b.0.similarity
                .partial_cmp(&a.0.similarity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        merged.truncate(k);
        merged
    }

    /// The single best match across the probed shards.
    pub fn nearest(&self, query: &Embedding) -> Option<SearchHit<P>>
    where
        P: Clone,
    {
        self.search(query, 1).into_iter().next()
    }

    /// The single best match, tagged with the shard that served it.
    pub fn nearest_with_shard(&self, query: &Embedding) -> Option<(SearchHit<P>, usize)>
    where
        P: Clone,
    {
        self.search_with_shards(query, 1).into_iter().next()
    }

    /// Marks a replica's host as failed: its copy of the shard is lost
    /// (rebuilt cold via the factory) and it stops serving until
    /// [`ShardedIndex::recover_replica`].
    ///
    /// # Panics
    /// Panics if `shard` or `replica` is out of range.
    pub fn fail_replica(&mut self, shard: usize, replica: usize) {
        let r = &mut self.shards[shard][replica];
        if !r.up {
            return;
        }
        r.up = false;
        r.index = (self.factory)(shard, replica);
    }

    /// Brings a failed replica back — cold (empty); it refills from
    /// subsequent inserts and is preferred for lookups again only once it
    /// is the fullest live replica.
    ///
    /// When the recovery brings a *fully-dark* shard back (no replica of
    /// it was live), an anti-entropy pass runs: entries inserted while
    /// the shard was down ring-walked to foster shards, but they still
    /// *route* here — so after recovery they sit outside every lookup's
    /// probe set, reachable by nobody, while the recovered shard serves
    /// cold misses for queries that should hit them. The pass extracts
    /// those entries from the foster shards (ring order, oldest first;
    /// the serving replica's copy is canonical and stale duplicates on
    /// its siblings are dropped) and re-homes them into the recovered
    /// shard's live replicas. Returns the number of entries migrated.
    ///
    /// # Panics
    /// Panics if `shard` or `replica` is out of range.
    pub fn recover_replica(&mut self, shard: usize, replica: usize) -> usize
    where
        P: Clone,
    {
        let was_dark = self.live_replicas(shard) == 0;
        self.shards[shard][replica].up = true;
        if !was_dark {
            return 0;
        }
        let n = self.shards();
        let mut homecoming: Vec<(Embedding, P)> = Vec::new();
        for step in 1..n {
            let s = (shard + step) % n;
            let Some(serving) = self.serving_replica(s) else {
                continue;
            };
            for j in 0..self.shards[s].len() {
                if !self.shards[s][j].up {
                    continue;
                }
                let router = &self.router;
                let extracted = self.shards[s][j]
                    .index
                    .extract_if(&mut |e, _| router.route(e) == shard);
                if j == serving {
                    homecoming.extend(extracted);
                }
            }
        }
        let migrated = homecoming.len();
        self.migrated_entries += migrated as u64;
        for (e, p) in homecoming {
            for r in self.shards[shard].iter_mut().filter(|r| r.up) {
                r.index.insert(e.clone(), p.clone());
            }
        }
        migrated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlatIndex, LshIndex};
    use argus_embed::embed;
    use argus_prompts::PromptGenerator;

    fn lsh_plane(shards: usize, replication: usize) -> ShardedIndex<usize, LshIndex<usize>> {
        ShardedIndex::new(shards, replication, 7, move |_, _| {
            LshIndex::with_capacity_limit(8, 7, 512)
        })
    }

    #[test]
    fn router_is_deterministic_and_in_range() {
        let r1 = ShardRouter::new(6, 42);
        let r2 = ShardRouter::new(6, 42);
        for p in PromptGenerator::new(1).generate_batch(200) {
            let e = embed(&p.text);
            let s = r1.route(&e);
            assert!(s < 6);
            assert_eq!(s, r2.route(&e));
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(1, 9);
        for p in PromptGenerator::new(2).generate_batch(50) {
            assert_eq!(r.route(&embed(&p.text)), 0);
        }
    }

    #[test]
    fn router_spreads_load_across_shards() {
        let r = ShardRouter::new(8, 3);
        let mut counts = [0usize; 8];
        for p in PromptGenerator::new(3).generate_batch(800) {
            counts[r.route(&embed(&p.text))] += 1;
        }
        // Locality routing is skew-tolerant, not uniform: prompts share
        // vocabulary so sign patterns correlate. Every shard must still
        // receive traffic and none may hold a majority (per-shard caps
        // absorb the residual skew).
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 0 && c < 400, "shard {s} holds {c}/800");
        }
    }

    #[test]
    fn exact_duplicates_route_to_the_same_shard() {
        let r = ShardRouter::new(16, 5);
        for p in PromptGenerator::new(4).generate_batch(100) {
            let a = r.route(&embed(&p.text));
            let b = r.route(&embed(&p.text));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn insert_then_search_finds_entries() {
        let mut idx = lsh_plane(4, 2);
        let prompts = PromptGenerator::new(5).generate_batch(200);
        for (i, p) in prompts.iter().enumerate() {
            assert!(idx.insert(embed(&p.text), i).is_some());
        }
        assert_eq!(idx.len(), 200);
        let mut found = 0;
        for (i, p) in prompts.iter().enumerate() {
            if idx.nearest(&embed(&p.text)).map(|h| h.payload) == Some(i) {
                found += 1;
            }
        }
        // Exact duplicates route to the same shard and bucket.
        assert_eq!(found, 200);
    }

    #[test]
    fn replica_failure_does_not_lose_replicated_entries() {
        let mut idx = lsh_plane(4, 2);
        let prompts = PromptGenerator::new(6).generate_batch(120);
        for (i, p) in prompts.iter().enumerate() {
            idx.insert(embed(&p.text), i);
        }
        let before = idx.len();
        // Kill replica 0 of every shard: copies on replica 1 take over.
        for s in 0..4 {
            idx.fail_replica(s, 0);
            assert_eq!(idx.live_replicas(s), 1);
        }
        assert_eq!(idx.len(), before, "replicas must preserve all entries");
        for (i, p) in prompts.iter().enumerate() {
            assert_eq!(
                idx.nearest(&embed(&p.text)).map(|h| h.payload),
                Some(i),
                "entry {i} lost after failover"
            );
        }
    }

    #[test]
    fn dead_shard_reroutes_inserts_and_degrades_lookups() {
        let mut idx = lsh_plane(4, 1);
        let prompts = PromptGenerator::new(7).generate_batch(160);
        for (i, p) in prompts.iter().enumerate() {
            idx.insert(embed(&p.text), i);
        }
        let dead = 2;
        let lost = idx.live_replica_counts()[dead];
        assert!(lost > 0, "shard {dead} should hold entries");
        idx.fail_replica(dead, 0);
        assert_eq!(idx.live_shards(), 3);
        // Unreplicated data on the dead shard is gone; the rest survives.
        assert_eq!(idx.len(), 160 - lost);
        // Lookups keep working through live probe shards — degraded (the
        // dead shard's entries are unfindable, and a fully-dead probe set
        // yields a miss), never a panic. Re-querying every inserted
        // prompt, the survivors are still found exactly; the dead shard's
        // own entries are not.
        let mut exact = 0;
        for (i, p) in prompts.iter().enumerate() {
            if idx.nearest(&embed(&p.text)).map(|h| h.payload) == Some(i) {
                exact += 1;
            }
        }
        assert_eq!(
            exact,
            160 - lost,
            "lost entries resurfaced or survivors vanished"
        );
        // New inserts routed to the dead shard land on a live one.
        for (i, p) in prompts.iter().enumerate() {
            let s = idx
                .insert(embed(&p.text), 1000 + i)
                .expect("live shards remain");
            assert_ne!(s, dead);
        }
        assert_eq!(idx.dropped_inserts(), 0);
    }

    #[test]
    fn all_shards_down_drops_inserts_and_misses_lookups() {
        let mut idx = lsh_plane(2, 1);
        idx.insert(embed("a red apple"), 1);
        idx.fail_replica(0, 0);
        idx.fail_replica(1, 0);
        assert_eq!(idx.live_shards(), 0);
        assert!(idx.nearest(&embed("a red apple")).is_none());
        assert!(idx.insert(embed("a pear"), 2).is_none());
        assert_eq!(idx.dropped_inserts(), 1);
        assert!(idx.is_empty());
    }

    #[test]
    fn recovered_replica_comes_back_cold_and_refills() {
        let mut idx = lsh_plane(1, 2);
        idx.insert(embed("first"), 1);
        idx.fail_replica(0, 0);
        idx.insert(embed("second"), 2);
        idx.recover_replica(0, 0);
        // The surviving replica holds both entries; the recovered one is
        // cold, so lookups keep hitting the fuller copy.
        assert_eq!(idx.serving_replica(0), Some(1));
        assert_eq!(idx.len(), 2);
        idx.insert(embed("third"), 3);
        // Both replicas received the new insert.
        assert_eq!(idx.nearest(&embed("third")).unwrap().payload, 3);
    }

    #[test]
    fn recovery_migrates_ring_rerouted_entries_home() {
        // Kill one unreplicated shard; inserts routed to it ring-walk to a
        // foster shard. On recovery the anti-entropy pass must re-home
        // them — they route to the recovered shard, so without migration
        // they would sit outside every lookup's probe set forever.
        let mut idx = lsh_plane(4, 1);
        let dead = 1;
        idx.fail_replica(dead, 0);
        let prompts = PromptGenerator::new(21).generate_batch(240);
        let mut rerouted = Vec::new();
        for (i, p) in prompts.iter().enumerate() {
            let e = embed(&p.text);
            if idx.router().route(&e) == dead {
                rerouted.push(i);
            }
            idx.insert(e, i);
        }
        assert!(!rerouted.is_empty(), "trace never routed to shard {dead}");
        let migrated = idx.recover_replica(dead, 0);
        assert_eq!(migrated, rerouted.len());
        assert_eq!(idx.migrated_entries(), migrated as u64);
        // Every rerouted entry is exactly findable again: its primary
        // shard is always in its own probe set.
        for &i in &rerouted {
            assert_eq!(
                idx.nearest(&embed(&prompts[i].text)).map(|h| h.payload),
                Some(i),
                "rerouted entry {i} unreachable after recovery"
            );
        }
        // And total content is conserved: migration moves, not duplicates.
        assert_eq!(idx.len(), 240);
    }

    #[test]
    fn partial_recovery_skips_the_anti_entropy_pass() {
        // A shard that kept a live replica never rerouted inserts, so a
        // single-replica recovery must not touch other shards.
        let mut idx = lsh_plane(4, 2);
        for (i, p) in PromptGenerator::new(22)
            .generate_batch(80)
            .iter()
            .enumerate()
        {
            idx.insert(embed(&p.text), i);
        }
        idx.fail_replica(0, 0);
        assert_eq!(idx.recover_replica(0, 0), 0);
        assert_eq!(idx.migrated_entries(), 0);
    }

    #[test]
    fn load_aware_caps_raise_effective_capacity_under_skew() {
        // A skewed corpus hammering 3 of 8 shards: flat ⌈C/N⌉ caps make
        // the hot shards evict FIFO while the cold shards' slots sit
        // empty. Load-aware rebalancing grows the hot shards out of that
        // slack, so the plane retains strictly more entries at the same
        // total capacity budget.
        let total = 512;
        let build = || -> ShardedIndex<usize, LshIndex<usize>> {
            ShardedIndex::new(8, 1, 7, move |_, _| {
                LshIndex::with_capacity_limit(8, 7, total / 8)
            })
        };
        let mut flat = build();
        let mut adaptive = build().with_capacity_rebalance(total, 64);
        let mut hot_inserts = 0;
        for (i, p) in PromptGenerator::new(31)
            .generate_batch(4000)
            .iter()
            .enumerate()
        {
            let e = embed(&p.text);
            if flat.router().route(&e) < 3 {
                flat.insert(e.clone(), i);
                adaptive.insert(e, i);
                hot_inserts += 1;
            }
        }
        assert!(
            hot_inserts > 3 * (total / 8),
            "skewed corpus too small ({hot_inserts}) to overflow flat caps"
        );
        // Flat caps pin the hot shards at 64 entries each.
        assert_eq!(flat.len(), 3 * (total / 8));
        assert!(
            adaptive.len() > flat.len() + total / 8,
            "load-aware caps retained {} vs flat {}",
            adaptive.len(),
            flat.len()
        );
        assert!(adaptive.len() <= total, "caps exceeded the budget");
    }

    #[test]
    fn flat_backed_shards_work_too() {
        let mut idx: ShardedIndex<u64, FlatIndex<u64>> =
            ShardedIndex::new(8, 1, 11, |_, _| FlatIndex::with_capacity_limit(64));
        for (i, p) in PromptGenerator::new(8)
            .generate_batch(300)
            .iter()
            .enumerate()
        {
            idx.insert(embed(&p.text), i as u64);
        }
        // 300 inserts over 8×64 slots: skewed shards evict FIFO.
        assert!(idx.len() <= 300);
        assert!(idx.nearest(&embed("a bear in a snowy forest")).is_some());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardRouter::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replication_rejected() {
        let _: ShardedIndex<u8, FlatIndex<u8>> =
            ShardedIndex::new(2, 0, 1, |_, _| FlatIndex::new());
    }
}
