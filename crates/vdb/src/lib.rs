//! # argus-vdb — vector database substrate
//!
//! Approximate caching indexes every processed prompt's embedding in a
//! vector database (Qdrant in the paper, §4.7) and retrieves the nearest
//! cached prompt by cosine similarity to decide which intermediate noise
//! state to reuse. This crate is that database:
//!
//! * [`FlatIndex`] — exact brute-force cosine k-NN with an optional FIFO
//!   capacity limit (the cache does not grow without bound);
//! * [`LshIndex`] — hyperplane locality-sensitive hashing with multi-probe
//!   search, trading a little recall for sub-linear scan cost;
//! * [`SharedIndex`] — a thread-safe wrapper, since all GPU workers share
//!   one VDB instance in the paper's deployment.
//!
//! # Example
//!
//! ```
//! use argus_vdb::FlatIndex;
//! use argus_embed::embed;
//!
//! let mut index = FlatIndex::new();
//! index.insert(embed("a red apple on a table"), 1u32);
//! index.insert(embed("a portrait of an old fisherman"), 2u32);
//! let hits = index.search(&embed("a shiny red apple on a wooden table"), 1);
//! assert_eq!(hits[0].payload, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use argus_embed::{cosine, Embedding, DIM};
use parking_lot::RwLock;

/// One k-NN search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit<P> {
    /// Cosine similarity to the query, in `[-1, 1]`.
    pub similarity: f32,
    /// The payload stored with the matched embedding.
    pub payload: P,
}

/// Exact brute-force cosine index.
///
/// With a capacity limit set, the oldest entries are evicted FIFO once the
/// limit is reached — modelling bounded cache storage.
#[derive(Debug, Clone)]
pub struct FlatIndex<P> {
    entries: std::collections::VecDeque<(Embedding, P)>,
    capacity: Option<usize>,
}

impl<P> Default for FlatIndex<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> FlatIndex<P> {
    /// Creates an unbounded index.
    pub fn new() -> Self {
        FlatIndex {
            entries: std::collections::VecDeque::new(),
            capacity: None,
        }
    }

    /// Creates an index that keeps at most `capacity` newest entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_capacity_limit(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity limit must be positive");
        FlatIndex {
            entries: std::collections::VecDeque::with_capacity(capacity),
            capacity: Some(capacity),
        }
    }

    /// Number of stored embeddings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts an embedding with its payload, evicting the oldest entry if
    /// at capacity. Returns the evicted payload, if any.
    pub fn insert(&mut self, embedding: Embedding, payload: P) -> Option<P> {
        let evicted = match self.capacity {
            Some(cap) if self.entries.len() >= cap => self.entries.pop_front().map(|(_, p)| p),
            _ => None,
        };
        self.entries.push_back((embedding, payload));
        evicted
    }

    /// Returns up to `k` nearest entries by cosine similarity, best first.
    /// Ties break toward older entries (deterministic).
    pub fn search(&self, query: &Embedding, k: usize) -> Vec<SearchHit<P>>
    where
        P: Clone,
    {
        let mut scored: Vec<(f32, usize)> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, (e, _))| (cosine(query, e), i))
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        scored
            .into_iter()
            .take(k)
            .map(|(similarity, i)| SearchHit {
                similarity,
                payload: self.entries[i].1.clone(),
            })
            .collect()
    }

    /// The single best match, if the index is non-empty.
    pub fn nearest(&self, query: &Embedding) -> Option<SearchHit<P>>
    where
        P: Clone,
    {
        self.search(query, 1).into_iter().next()
    }
}

/// Hyperplane-LSH index with multi-probe search.
///
/// Embeddings hash to a bucket by the sign pattern of `bits` fixed random
/// hyperplane projections; search probes the query's bucket and all buckets
/// at Hamming distance 1, then ranks candidates by exact cosine.
#[derive(Debug, Clone)]
pub struct LshIndex<P> {
    planes: Vec<[f32; DIM]>,
    buckets: std::collections::HashMap<u64, Vec<usize>>,
    entries: Vec<(Embedding, P)>,
}

impl<P> LshIndex<P> {
    /// Creates an index with `bits` hyperplanes (4–20 is sensible).
    ///
    /// # Panics
    /// Panics unless `1 <= bits <= 24`.
    pub fn new(bits: usize, seed: u64) -> Self {
        assert!((1..=24).contains(&bits), "bits must be in 1..=24");
        let mut planes = Vec::with_capacity(bits);
        let mut state = seed ^ 0x006c_7368_5f76_6462; // "lsh_vdb"
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for _ in 0..bits {
            let mut plane = [0.0f32; DIM];
            for x in plane.iter_mut() {
                *x = (next() >> 11) as f32 / (1u64 << 53) as f32 * 2.0 - 1.0;
            }
            planes.push(plane);
        }
        LshIndex {
            planes,
            buckets: std::collections::HashMap::new(),
            entries: Vec::new(),
        }
    }

    fn bucket_of(&self, e: &Embedding) -> u64 {
        let mut key = 0u64;
        for (b, plane) in self.planes.iter().enumerate() {
            let dot: f32 = e
                .as_slice()
                .iter()
                .zip(plane.iter())
                .map(|(x, y)| x * y)
                .sum();
            if dot >= 0.0 {
                key |= 1 << b;
            }
        }
        key
    }

    /// Number of stored embeddings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts an embedding with its payload.
    pub fn insert(&mut self, embedding: Embedding, payload: P) {
        let key = self.bucket_of(&embedding);
        let idx = self.entries.len();
        self.entries.push((embedding, payload));
        self.buckets.entry(key).or_default().push(idx);
    }

    /// Multi-probe k-NN: scans the query bucket and its Hamming-1
    /// neighbours, ranking candidates by exact cosine similarity.
    pub fn search(&self, query: &Embedding, k: usize) -> Vec<SearchHit<P>>
    where
        P: Clone,
    {
        let key = self.bucket_of(query);
        let mut candidates: Vec<usize> = Vec::new();
        if let Some(b) = self.buckets.get(&key) {
            candidates.extend_from_slice(b);
        }
        for bit in 0..self.planes.len() {
            if let Some(b) = self.buckets.get(&(key ^ (1 << bit))) {
                candidates.extend_from_slice(b);
            }
        }
        let mut scored: Vec<(f32, usize)> = candidates
            .into_iter()
            .map(|i| (cosine(query, &self.entries[i].0), i))
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        scored.dedup_by_key(|(_, i)| *i);
        scored
            .into_iter()
            .take(k)
            .map(|(similarity, i)| SearchHit {
                similarity,
                payload: self.entries[i].1.clone(),
            })
            .collect()
    }
}

/// A thread-safe flat index shared by all workers, mirroring the single
/// Qdrant instance of the paper's testbed.
#[derive(Debug, Default)]
pub struct SharedIndex<P> {
    inner: RwLock<FlatIndex<P>>,
}

impl<P> SharedIndex<P> {
    /// Creates an empty shared index.
    pub fn new() -> Self {
        SharedIndex {
            inner: RwLock::new(FlatIndex::new()),
        }
    }

    /// Creates a shared index with a FIFO capacity limit.
    pub fn with_capacity_limit(capacity: usize) -> Self {
        SharedIndex {
            inner: RwLock::new(FlatIndex::with_capacity_limit(capacity)),
        }
    }

    /// Inserts under a write lock.
    pub fn insert(&self, embedding: Embedding, payload: P) -> Option<P> {
        self.inner.write().insert(embedding, payload)
    }

    /// Searches under a read lock.
    pub fn search(&self, query: &Embedding, k: usize) -> Vec<SearchHit<P>>
    where
        P: Clone,
    {
        self.inner.read().search(query, k)
    }

    /// The single best match.
    pub fn nearest(&self, query: &Embedding) -> Option<SearchHit<P>>
    where
        P: Clone,
    {
        self.inner.read().nearest(query)
    }

    /// Number of stored embeddings.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_embed::embed;
    use argus_prompts::PromptGenerator;

    #[test]
    fn empty_index_behaviour() {
        let idx: FlatIndex<u32> = FlatIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
        assert!(idx.search(&embed("anything"), 3).is_empty());
        assert!(idx.nearest(&embed("anything")).is_none());
    }

    #[test]
    fn exact_match_ranks_first() {
        let mut idx = FlatIndex::new();
        idx.insert(embed("a bear in a snowy forest"), "bear");
        idx.insert(embed("a lighthouse on a cliff at sunrise"), "lighthouse");
        idx.insert(embed("neon alley at night in heavy rain"), "alley");
        let hits = idx.search(&embed("a bear in a snowy forest"), 2);
        assert_eq!(hits[0].payload, "bear");
        assert!((hits[0].similarity - 1.0).abs() < 1e-5);
        assert!(hits[0].similarity >= hits[1].similarity);
    }

    #[test]
    fn k_larger_than_len_returns_all() {
        let mut idx = FlatIndex::new();
        idx.insert(embed("one"), 1);
        idx.insert(embed("two"), 2);
        assert_eq!(idx.search(&embed("one"), 10).len(), 2);
    }

    #[test]
    fn capacity_limit_evicts_fifo() {
        let mut idx = FlatIndex::with_capacity_limit(2);
        assert_eq!(idx.insert(embed("first"), 1), None);
        assert_eq!(idx.insert(embed("second"), 2), None);
        assert_eq!(idx.insert(embed("third"), 3), Some(1));
        assert_eq!(idx.len(), 2);
        // "first" is gone: searching for it finds something else.
        let best = idx.nearest(&embed("first")).unwrap();
        assert_ne!(best.payload, 1);
    }

    #[test]
    #[should_panic(expected = "capacity limit must be positive")]
    fn zero_capacity_rejected() {
        let _ = FlatIndex::<u8>::with_capacity_limit(0);
    }

    #[test]
    fn lsh_finds_exact_duplicates() {
        let mut idx = LshIndex::new(10, 7);
        let mut generator = PromptGenerator::new(5);
        let prompts = generator.generate_batch(300);
        for (i, p) in prompts.iter().enumerate() {
            idx.insert(embed(&p.text), i);
        }
        assert_eq!(idx.len(), 300);
        let mut found = 0;
        for (i, p) in prompts.iter().enumerate().take(100) {
            let hits = idx.search(&embed(&p.text), 1);
            if hits.first().map(|h| h.payload) == Some(i) {
                found += 1;
            }
        }
        // Exact duplicates hash to the same bucket: recall must be perfect.
        assert_eq!(found, 100);
    }

    #[test]
    fn lsh_recall_against_flat_ground_truth() {
        let mut flat = FlatIndex::new();
        let mut lsh = LshIndex::new(6, 3);
        let prompts = PromptGenerator::new(6).generate_batch(500);
        for (i, p) in prompts.iter().enumerate() {
            let e = embed(&p.text);
            flat.insert(e.clone(), i);
            lsh.insert(e, i);
        }
        let queries = PromptGenerator::new(7).generate_batch(100);
        let mut agree = 0;
        for q in &queries {
            let e = embed(&q.text);
            let truth = flat.nearest(&e).unwrap();
            if let Some(hit) = lsh.search(&e, 1).first() {
                if hit.payload == truth.payload || hit.similarity >= truth.similarity - 0.05 {
                    agree += 1;
                }
            }
        }
        // Multi-probe LSH recall: at least 75% near-ground-truth.
        assert!(agree >= 75, "recall {agree}/100");
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn lsh_rejects_excessive_bits() {
        let _ = LshIndex::<u8>::new(32, 0);
    }

    #[test]
    fn shared_index_is_concurrent() {
        use std::sync::Arc;
        let idx = Arc::new(SharedIndex::with_capacity_limit(1000));
        let mut handles = Vec::new();
        for t in 0..4 {
            let idx = Arc::clone(&idx);
            handles.push(std::thread::spawn(move || {
                let prompts = PromptGenerator::new(100 + t).generate_batch(50);
                for (i, p) in prompts.iter().enumerate() {
                    idx.insert(embed(&p.text), (t, i));
                    let _ = idx.search(&embed(&p.text), 3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(idx.len(), 200);
        assert!(!idx.is_empty());
        assert!(idx.nearest(&embed("a bear")).is_some());
    }

    #[test]
    fn deterministic_tie_break_prefers_older() {
        let mut idx = FlatIndex::new();
        idx.insert(embed("same text"), "old");
        idx.insert(embed("same text"), "new");
        assert_eq!(idx.nearest(&embed("same text")).unwrap().payload, "old");
    }
}
