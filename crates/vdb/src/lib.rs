//! # argus-vdb — vector database substrate
//!
//! Approximate caching indexes every processed prompt's embedding in a
//! vector database (Qdrant in the paper, §4.7) and retrieves the nearest
//! cached prompt by cosine similarity to decide which intermediate noise
//! state to reuse. This crate is that database:
//!
//! * [`FlatIndex`] — exact brute-force cosine k-NN with an optional FIFO
//!   capacity limit (the cache does not grow without bound); top-k uses
//!   partial selection, so a query costs one scan plus `O(n)` selection
//!   rather than a full sort;
//! * [`LshIndex`] — hyperplane locality-sensitive hashing with multi-probe
//!   search and the same optional FIFO capacity limit, trading a little
//!   recall for sub-linear scan cost;
//! * [`SharedIndex`] — a thread-safe wrapper over any [`VectorIndex`],
//!   since all GPU workers share one VDB instance in the paper's
//!   deployment;
//! * [`shard`] — the sharded retrieval plane for fleet-scale deployments:
//!   [`ShardRouter`] routes embeddings to one of `N` worker-attached
//!   shards and [`ShardedIndex`] replicates each shard `R` ways so a
//!   worker failure degrades hit-rate instead of losing the cache.
//!
//! # Example
//!
//! ```
//! use argus_vdb::FlatIndex;
//! use argus_embed::embed;
//!
//! let mut index = FlatIndex::new();
//! index.insert(embed("a red apple on a table"), 1u32);
//! index.insert(embed("a portrait of an old fisherman"), 2u32);
//! let hits = index.search(&embed("a shiny red apple on a wooden table"), 1);
//! assert_eq!(hits[0].payload, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use argus_embed::{cosine, Embedding, DIM};
use parking_lot::RwLock;

pub mod shard;

pub use shard::{ShardRouter, ShardedIndex};

/// One k-NN search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit<P> {
    /// Cosine similarity to the query, in `[-1, 1]`.
    pub similarity: f32,
    /// The payload stored with the matched embedding.
    pub payload: P,
}

/// Common interface of the vector indexes, so [`SharedIndex`] (and any
/// deployment-level plumbing) can wrap either the exact or the
/// approximate backend.
pub trait VectorIndex<P> {
    /// Inserts an embedding with its payload, returning the payload
    /// evicted by a capacity limit, if any.
    fn insert(&mut self, embedding: Embedding, payload: P) -> Option<P>;

    /// Returns up to `k` nearest entries, best first, deterministically.
    fn search(&self, query: &Embedding, k: usize) -> Vec<SearchHit<P>>
    where
        P: Clone;

    /// Number of stored embeddings.
    fn len(&self) -> usize;

    /// Removes and returns every entry matching `pred`, oldest first; the
    /// survivors keep their FIFO age order. Backends without extraction
    /// support keep everything and return nothing — which degrades
    /// [`shard::ShardedIndex`]'s recovery anti-entropy pass to a no-op
    /// instead of breaking it.
    fn extract_if(&mut self, pred: &mut dyn FnMut(&Embedding, &P) -> bool) -> Vec<(Embedding, P)> {
        let _ = pred;
        Vec::new()
    }

    /// Replaces the capacity limit, evicting the oldest entries beyond the
    /// new cap (FIFO) and returning their payloads. Backends without
    /// bounded storage ignore the request.
    fn set_capacity(&mut self, capacity: usize) -> Vec<P> {
        let _ = capacity;
        Vec::new()
    }

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The single best match, if the index is non-empty.
    fn nearest(&self, query: &Embedding) -> Option<SearchHit<P>>
    where
        P: Clone,
    {
        self.search(query, 1).into_iter().next()
    }
}

/// Generates `n` fixed pseudo-random hyperplanes from a seeded SplitMix64
/// stream — the shared projection substrate of [`LshIndex`] buckets and
/// [`shard::ShardRouter`] cells (each caller salts the seed differently).
pub(crate) fn seeded_planes(n: usize, seed: u64) -> Vec<[f32; DIM]> {
    let mut planes = Vec::with_capacity(n);
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for _ in 0..n {
        let mut plane = [0.0f32; DIM];
        for x in plane.iter_mut() {
            *x = (next() >> 11) as f32 / (1u64 << 53) as f32 * 2.0 - 1.0;
        }
        planes.push(plane);
    }
    planes
}

/// Orders scored candidates best-first: similarity descending, then older
/// (lower insertion rank) first — the deterministic tie-break every index
/// guarantees.
fn by_rank(a: &(f32, usize), b: &(f32, usize)) -> std::cmp::Ordering {
    b.0.partial_cmp(&a.0)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.1.cmp(&b.1))
}

/// Selects the `k` best candidates under `cmp` in place and sorts only
/// those: `O(n)` selection plus `O(k log k)` ordering instead of a full
/// `O(n log n)` sort.
fn top_k_by<T>(
    scored: &mut Vec<T>,
    k: usize,
    cmp: impl Fn(&T, &T) -> std::cmp::Ordering + Copy,
) -> &[T] {
    if k < scored.len() {
        scored.select_nth_unstable_by(k, cmp);
        scored.truncate(k);
    }
    scored.sort_unstable_by(cmp);
    scored
}

/// Exact brute-force cosine index.
///
/// With a capacity limit set, the oldest entries are evicted FIFO once the
/// limit is reached — modelling bounded cache storage.
#[derive(Debug, Clone)]
pub struct FlatIndex<P> {
    entries: std::collections::VecDeque<(Embedding, P)>,
    capacity: Option<usize>,
}

impl<P> Default for FlatIndex<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> FlatIndex<P> {
    /// Creates an unbounded index.
    pub fn new() -> Self {
        FlatIndex {
            entries: std::collections::VecDeque::new(),
            capacity: None,
        }
    }

    /// Creates an index that keeps at most `capacity` newest entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_capacity_limit(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity limit must be positive");
        FlatIndex {
            entries: std::collections::VecDeque::with_capacity(capacity),
            capacity: Some(capacity),
        }
    }

    /// Number of stored embeddings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts an embedding with its payload, evicting the oldest entry if
    /// at capacity. Returns the evicted payload, if any.
    pub fn insert(&mut self, embedding: Embedding, payload: P) -> Option<P> {
        let evicted = match self.capacity {
            Some(cap) if self.entries.len() >= cap => self.entries.pop_front().map(|(_, p)| p),
            _ => None,
        };
        self.entries.push_back((embedding, payload));
        evicted
    }

    /// Returns up to `k` nearest entries by cosine similarity, best first.
    /// Ties break toward older entries (deterministic). Only the `k`
    /// winners are sorted; the rest of the scan is partial selection.
    pub fn search(&self, query: &Embedding, k: usize) -> Vec<SearchHit<P>>
    where
        P: Clone,
    {
        let mut scored: Vec<(f32, usize)> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, (e, _))| (cosine(query, e), i))
            .collect();
        top_k_by(&mut scored, k, by_rank)
            .iter()
            .map(|&(similarity, i)| SearchHit {
                similarity,
                payload: self.entries[i].1.clone(),
            })
            .collect()
    }

    /// The single best match, if the index is non-empty.
    pub fn nearest(&self, query: &Embedding) -> Option<SearchHit<P>>
    where
        P: Clone,
    {
        self.search(query, 1).into_iter().next()
    }

    /// Removes and returns every entry matching `pred`, oldest first; the
    /// survivors keep their FIFO age order.
    pub fn extract_if(
        &mut self,
        mut pred: impl FnMut(&Embedding, &P) -> bool,
    ) -> Vec<(Embedding, P)> {
        let mut out = Vec::new();
        let mut kept = std::collections::VecDeque::with_capacity(self.entries.len());
        for (e, p) in self.entries.drain(..) {
            if pred(&e, &p) {
                out.push((e, p));
            } else {
                kept.push_back((e, p));
            }
        }
        self.entries = kept;
        out
    }

    /// Replaces the capacity limit, evicting the oldest entries beyond the
    /// new cap (FIFO) and returning their payloads.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn set_capacity(&mut self, capacity: usize) -> Vec<P> {
        assert!(capacity > 0, "capacity limit must be positive");
        let mut evicted = Vec::new();
        while self.entries.len() > capacity {
            evicted.push(self.entries.pop_front().expect("len checked").1);
        }
        self.capacity = Some(capacity);
        evicted
    }
}

impl<P> VectorIndex<P> for FlatIndex<P> {
    fn insert(&mut self, embedding: Embedding, payload: P) -> Option<P> {
        FlatIndex::insert(self, embedding, payload)
    }

    fn search(&self, query: &Embedding, k: usize) -> Vec<SearchHit<P>>
    where
        P: Clone,
    {
        FlatIndex::search(self, query, k)
    }

    fn len(&self) -> usize {
        FlatIndex::len(self)
    }

    fn extract_if(&mut self, pred: &mut dyn FnMut(&Embedding, &P) -> bool) -> Vec<(Embedding, P)> {
        FlatIndex::extract_if(self, pred)
    }

    fn set_capacity(&mut self, capacity: usize) -> Vec<P> {
        FlatIndex::set_capacity(self, capacity)
    }
}

/// One live LSH entry.
#[derive(Debug, Clone)]
struct LshEntry<P> {
    embedding: Embedding,
    payload: P,
    /// The bucket the entry hashed to (kept so eviction need not re-hash).
    bucket: u64,
    /// Monotone insertion sequence — the deterministic age tie-break.
    seq: u64,
}

/// Hyperplane-LSH index with multi-probe search.
///
/// Embeddings hash to a bucket by the sign pattern of `bits` fixed random
/// hyperplane projections; search probes the query's bucket and all buckets
/// at Hamming distance 1, then ranks candidates by exact cosine. An
/// optional FIFO capacity limit mirrors [`FlatIndex`]'s bounded-storage
/// behaviour.
#[derive(Debug, Clone)]
pub struct LshIndex<P> {
    planes: Vec<[f32; DIM]>,
    buckets: std::collections::HashMap<u64, Vec<usize>>,
    entries: Vec<Option<LshEntry<P>>>,
    /// Live slots in insertion order (front = oldest).
    fifo: std::collections::VecDeque<usize>,
    /// Recycled slots.
    free: Vec<usize>,
    capacity: Option<usize>,
    next_seq: u64,
}

impl<P> LshIndex<P> {
    /// Creates an unbounded index with `bits` hyperplanes (4–20 is
    /// sensible).
    ///
    /// # Panics
    /// Panics unless `1 <= bits <= 24`.
    pub fn new(bits: usize, seed: u64) -> Self {
        assert!((1..=24).contains(&bits), "bits must be in 1..=24");
        LshIndex {
            planes: seeded_planes(bits, seed ^ 0x006c_7368_5f76_6462), // "lsh_vdb"
            buckets: std::collections::HashMap::new(),
            entries: Vec::new(),
            fifo: std::collections::VecDeque::new(),
            free: Vec::new(),
            capacity: None,
            next_seq: 0,
        }
    }

    /// Creates an index that keeps at most `capacity` newest entries,
    /// evicting FIFO like [`FlatIndex::with_capacity_limit`].
    ///
    /// # Panics
    /// Panics unless `1 <= bits <= 24` and `capacity > 0`.
    pub fn with_capacity_limit(bits: usize, seed: u64, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity limit must be positive");
        let mut idx = Self::new(bits, seed);
        idx.capacity = Some(capacity);
        idx
    }

    fn bucket_of(&self, e: &Embedding) -> u64 {
        let mut key = 0u64;
        for (b, plane) in self.planes.iter().enumerate() {
            let dot: f32 = e
                .as_slice()
                .iter()
                .zip(plane.iter())
                .map(|(x, y)| x * y)
                .sum();
            if dot >= 0.0 {
                key |= 1 << b;
            }
        }
        key
    }

    /// Number of stored embeddings.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Evicts the oldest live entry, unlinking it from its bucket and
    /// recycling its slot.
    fn evict_oldest(&mut self) -> Option<P> {
        let slot = self.fifo.pop_front()?;
        let entry = self.entries[slot].take().expect("fifo slots are live");
        if let Some(b) = self.buckets.get_mut(&entry.bucket) {
            b.retain(|&i| i != slot);
        }
        self.free.push(slot);
        Some(entry.payload)
    }

    /// Inserts an embedding with its payload, evicting the oldest entry if
    /// at capacity. Returns the evicted payload, if any.
    pub fn insert(&mut self, embedding: Embedding, payload: P) -> Option<P> {
        let evicted = match self.capacity {
            Some(cap) if self.fifo.len() >= cap => self.evict_oldest(),
            _ => None,
        };
        let bucket = self.bucket_of(&embedding);
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = LshEntry {
            embedding,
            payload,
            bucket,
            seq,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.entries[s] = Some(entry);
                s
            }
            None => {
                self.entries.push(Some(entry));
                self.entries.len() - 1
            }
        };
        self.buckets.entry(bucket).or_default().push(slot);
        self.fifo.push_back(slot);
        evicted
    }

    /// Multi-probe k-NN: scans the query bucket and its Hamming-1
    /// neighbours, ranking candidates by exact cosine similarity (older
    /// entries win ties). Only the `k` winners are sorted.
    pub fn search(&self, query: &Embedding, k: usize) -> Vec<SearchHit<P>>
    where
        P: Clone,
    {
        let key = self.bucket_of(query);
        let mut candidates: Vec<usize> = Vec::new();
        if let Some(b) = self.buckets.get(&key) {
            candidates.extend_from_slice(b);
        }
        for bit in 0..self.planes.len() {
            if let Some(b) = self.buckets.get(&(key ^ (1 << bit))) {
                candidates.extend_from_slice(b);
            }
        }
        let mut scored: Vec<(f32, u64, usize)> = candidates
            .into_iter()
            .map(|i| {
                let e = self.entries[i].as_ref().expect("buckets hold live slots");
                (cosine(query, &e.embedding), e.seq, i)
            })
            .collect();
        let cmp = |a: &(f32, u64, usize), b: &(f32, u64, usize)| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        };
        top_k_by(&mut scored, k, cmp)
            .iter()
            .map(|&(similarity, _, i)| SearchHit {
                similarity,
                payload: self.entries[i]
                    .as_ref()
                    .expect("buckets hold live slots")
                    .payload
                    .clone(),
            })
            .collect()
    }

    /// Alloc-free single-best search: the same candidate set (query bucket
    /// plus Hamming-1 neighbours) and the same similarity-descending,
    /// older-wins order as `search(query, 1)`, tracked as a running
    /// maximum instead of materializing and sorting candidate vectors —
    /// `nearest` is the cache plane's per-lookup hot path.
    pub fn nearest(&self, query: &Embedding) -> Option<SearchHit<P>>
    where
        P: Clone,
    {
        let key = self.bucket_of(query);
        let mut best: Option<(f32, u64, usize)> = None;
        let mut consider = |slot: usize| {
            let e = self.entries[slot]
                .as_ref()
                .expect("buckets hold live slots");
            let sim = cosine(query, &e.embedding);
            let better = match best {
                None => true,
                Some((best_sim, best_seq, _)) => {
                    sim > best_sim || (sim == best_sim && e.seq < best_seq)
                }
            };
            if better {
                best = Some((sim, e.seq, slot));
            }
        };
        if let Some(b) = self.buckets.get(&key) {
            b.iter().copied().for_each(&mut consider);
        }
        for bit in 0..self.planes.len() {
            if let Some(b) = self.buckets.get(&(key ^ (1 << bit))) {
                b.iter().copied().for_each(&mut consider);
            }
        }
        best.map(|(similarity, _, slot)| SearchHit {
            similarity,
            payload: self.entries[slot]
                .as_ref()
                .expect("buckets hold live slots")
                .payload
                .clone(),
        })
    }

    /// Removes and returns every entry matching `pred`, oldest first; the
    /// survivors keep their FIFO age order.
    pub fn extract_if(
        &mut self,
        mut pred: impl FnMut(&Embedding, &P) -> bool,
    ) -> Vec<(Embedding, P)> {
        let mut out = Vec::new();
        let mut kept = std::collections::VecDeque::with_capacity(self.fifo.len());
        for slot in std::mem::take(&mut self.fifo) {
            let matches = {
                let e = self.entries[slot].as_ref().expect("fifo slots are live");
                pred(&e.embedding, &e.payload)
            };
            if matches {
                let entry = self.entries[slot].take().expect("fifo slots are live");
                if let Some(b) = self.buckets.get_mut(&entry.bucket) {
                    b.retain(|&i| i != slot);
                }
                self.free.push(slot);
                out.push((entry.embedding, entry.payload));
            } else {
                kept.push_back(slot);
            }
        }
        self.fifo = kept;
        out
    }

    /// Replaces the capacity limit, evicting the oldest entries beyond the
    /// new cap (FIFO) and returning their payloads.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn set_capacity(&mut self, capacity: usize) -> Vec<P> {
        assert!(capacity > 0, "capacity limit must be positive");
        let mut evicted = Vec::new();
        while self.fifo.len() > capacity {
            evicted.push(self.evict_oldest().expect("len checked"));
        }
        self.capacity = Some(capacity);
        evicted
    }
}

impl<P> VectorIndex<P> for LshIndex<P> {
    fn insert(&mut self, embedding: Embedding, payload: P) -> Option<P> {
        LshIndex::insert(self, embedding, payload)
    }

    fn search(&self, query: &Embedding, k: usize) -> Vec<SearchHit<P>>
    where
        P: Clone,
    {
        LshIndex::search(self, query, k)
    }

    fn len(&self) -> usize {
        LshIndex::len(self)
    }

    fn extract_if(&mut self, pred: &mut dyn FnMut(&Embedding, &P) -> bool) -> Vec<(Embedding, P)> {
        LshIndex::extract_if(self, pred)
    }

    fn set_capacity(&mut self, capacity: usize) -> Vec<P> {
        LshIndex::set_capacity(self, capacity)
    }

    fn nearest(&self, query: &Embedding) -> Option<SearchHit<P>>
    where
        P: Clone,
    {
        LshIndex::nearest(self, query)
    }
}

/// A thread-safe index shared by all workers, mirroring the single Qdrant
/// instance of the paper's testbed. Wraps any [`VectorIndex`] backend; the
/// default is the exact [`FlatIndex`], and large deployments use
/// `SharedIndex<P, LshIndex<P>>` (§4.7).
#[derive(Debug)]
pub struct SharedIndex<P, I = FlatIndex<P>> {
    inner: RwLock<I>,
    _payload: std::marker::PhantomData<fn() -> P>,
}

impl<P, I: Default> Default for SharedIndex<P, I> {
    fn default() -> Self {
        Self::from_index(I::default())
    }
}

impl<P, I> SharedIndex<P, I> {
    /// Wraps an existing index.
    pub fn from_index(index: I) -> Self {
        SharedIndex {
            inner: RwLock::new(index),
            _payload: std::marker::PhantomData,
        }
    }
}

impl<P> SharedIndex<P, FlatIndex<P>> {
    /// Creates an empty shared flat index.
    pub fn new() -> Self {
        Self::from_index(FlatIndex::new())
    }

    /// Creates a shared flat index with a FIFO capacity limit.
    pub fn with_capacity_limit(capacity: usize) -> Self {
        Self::from_index(FlatIndex::with_capacity_limit(capacity))
    }
}

impl<P, I: VectorIndex<P>> SharedIndex<P, I> {
    /// Inserts under a write lock.
    pub fn insert(&self, embedding: Embedding, payload: P) -> Option<P> {
        self.inner.write().insert(embedding, payload)
    }

    /// Searches under a read lock.
    pub fn search(&self, query: &Embedding, k: usize) -> Vec<SearchHit<P>>
    where
        P: Clone,
    {
        self.inner.read().search(query, k)
    }

    /// The single best match.
    pub fn nearest(&self, query: &Embedding) -> Option<SearchHit<P>>
    where
        P: Clone,
    {
        self.inner.read().nearest(query)
    }

    /// Number of stored embeddings.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_embed::embed;
    use argus_prompts::PromptGenerator;

    #[test]
    fn empty_index_behaviour() {
        let idx: FlatIndex<u32> = FlatIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
        assert!(idx.search(&embed("anything"), 3).is_empty());
        assert!(idx.nearest(&embed("anything")).is_none());
    }

    #[test]
    fn exact_match_ranks_first() {
        let mut idx = FlatIndex::new();
        idx.insert(embed("a bear in a snowy forest"), "bear");
        idx.insert(embed("a lighthouse on a cliff at sunrise"), "lighthouse");
        idx.insert(embed("neon alley at night in heavy rain"), "alley");
        let hits = idx.search(&embed("a bear in a snowy forest"), 2);
        assert_eq!(hits[0].payload, "bear");
        assert!((hits[0].similarity - 1.0).abs() < 1e-5);
        assert!(hits[0].similarity >= hits[1].similarity);
    }

    #[test]
    fn k_larger_than_len_returns_all() {
        let mut idx = FlatIndex::new();
        idx.insert(embed("one"), 1);
        idx.insert(embed("two"), 2);
        assert_eq!(idx.search(&embed("one"), 10).len(), 2);
    }

    #[test]
    fn capacity_limit_evicts_fifo() {
        let mut idx = FlatIndex::with_capacity_limit(2);
        assert_eq!(idx.insert(embed("first"), 1), None);
        assert_eq!(idx.insert(embed("second"), 2), None);
        assert_eq!(idx.insert(embed("third"), 3), Some(1));
        assert_eq!(idx.len(), 2);
        // "first" is gone: searching for it finds something else.
        let best = idx.nearest(&embed("first")).unwrap();
        assert_ne!(best.payload, 1);
    }

    #[test]
    #[should_panic(expected = "capacity limit must be positive")]
    fn zero_capacity_rejected() {
        let _ = FlatIndex::<u8>::with_capacity_limit(0);
    }

    #[test]
    fn lsh_finds_exact_duplicates() {
        let mut idx = LshIndex::new(10, 7);
        let mut generator = PromptGenerator::new(5);
        let prompts = generator.generate_batch(300);
        for (i, p) in prompts.iter().enumerate() {
            idx.insert(embed(&p.text), i);
        }
        assert_eq!(idx.len(), 300);
        let mut found = 0;
        for (i, p) in prompts.iter().enumerate().take(100) {
            let hits = idx.search(&embed(&p.text), 1);
            if hits.first().map(|h| h.payload) == Some(i) {
                found += 1;
            }
        }
        // Exact duplicates hash to the same bucket: recall must be perfect.
        assert_eq!(found, 100);
    }

    #[test]
    fn lsh_recall_against_flat_ground_truth() {
        let mut flat = FlatIndex::new();
        let mut lsh = LshIndex::new(6, 3);
        let prompts = PromptGenerator::new(6).generate_batch(500);
        for (i, p) in prompts.iter().enumerate() {
            let e = embed(&p.text);
            flat.insert(e.clone(), i);
            lsh.insert(e, i);
        }
        let queries = PromptGenerator::new(7).generate_batch(100);
        let mut agree = 0;
        for q in &queries {
            let e = embed(&q.text);
            let truth = flat.nearest(&e).unwrap();
            if let Some(hit) = lsh.search(&e, 1).first() {
                if hit.payload == truth.payload || hit.similarity >= truth.similarity - 0.05 {
                    agree += 1;
                }
            }
        }
        // Multi-probe LSH recall: at least 75% near-ground-truth.
        assert!(agree >= 75, "recall {agree}/100");
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn lsh_rejects_excessive_bits() {
        let _ = LshIndex::<u8>::new(32, 0);
    }

    #[test]
    fn shared_index_is_concurrent() {
        use std::sync::Arc;
        let idx = Arc::new(SharedIndex::with_capacity_limit(1000));
        let mut handles = Vec::new();
        for t in 0..4 {
            let idx = Arc::clone(&idx);
            // lint: allow(stray-thread) — concurrency smoke test; the
            // assertions below are insertion-order-insensitive.
            handles.push(std::thread::spawn(move || {
                let prompts = PromptGenerator::new(100 + t).generate_batch(50);
                for (i, p) in prompts.iter().enumerate() {
                    idx.insert(embed(&p.text), (t, i));
                    let _ = idx.search(&embed(&p.text), 3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(idx.len(), 200);
        assert!(!idx.is_empty());
        assert!(idx.nearest(&embed("a bear")).is_some());
    }

    #[test]
    fn deterministic_tie_break_prefers_older() {
        let mut idx = FlatIndex::new();
        idx.insert(embed("same text"), "old");
        idx.insert(embed("same text"), "new");
        assert_eq!(idx.nearest(&embed("same text")).unwrap().payload, "old");
    }

    #[test]
    fn partial_selection_matches_full_sort() {
        // The top-k selection path must return exactly what a full sort
        // would, including tie order, for every k.
        let mut idx = FlatIndex::new();
        let prompts = PromptGenerator::new(11).generate_batch(200);
        for (i, p) in prompts.iter().enumerate() {
            idx.insert(embed(&p.text), i);
        }
        let query = embed("a painting of a castle by a river");
        let mut reference: Vec<(f32, usize)> = prompts
            .iter()
            .enumerate()
            .map(|(i, p)| (argus_embed::cosine(&query, &embed(&p.text)), i))
            .collect();
        reference.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        for k in [0, 1, 3, 17, 199, 200, 500] {
            let hits = idx.search(&query, k);
            assert_eq!(hits.len(), k.min(200));
            for (hit, want) in hits.iter().zip(&reference) {
                assert_eq!(hit.payload, want.1, "k={k}");
                assert_eq!(hit.similarity, want.0, "k={k}");
            }
        }
    }

    #[test]
    fn lsh_capacity_limit_evicts_fifo() {
        let mut idx = LshIndex::with_capacity_limit(8, 3, 2);
        assert_eq!(idx.insert(embed("first"), 1), None);
        assert_eq!(idx.insert(embed("second"), 2), None);
        assert_eq!(idx.insert(embed("third"), 3), Some(1));
        assert_eq!(idx.insert(embed("fourth"), 4), Some(2));
        assert_eq!(idx.len(), 2);
        // The evicted entries are unreachable through any probe.
        for q in ["first", "second"] {
            let hits = idx.search(&embed(q), 4);
            assert!(hits.iter().all(|h| h.payload > 2), "{q}: {hits:?}");
        }
        // Survivors stay findable.
        assert_eq!(idx.search(&embed("third"), 1)[0].payload, 3);
    }

    #[test]
    #[should_panic(expected = "capacity limit must be positive")]
    fn lsh_zero_capacity_rejected() {
        let _ = LshIndex::<u8>::with_capacity_limit(8, 0, 0);
    }

    #[test]
    fn lsh_tie_break_survives_slot_reuse() {
        // After eviction recycles slots, age ties must still resolve by
        // insertion order, not slot index.
        let mut idx = LshIndex::with_capacity_limit(6, 1, 3);
        idx.insert(embed("same text"), "a");
        idx.insert(embed("other text"), "b");
        idx.insert(embed("same text"), "c");
        idx.insert(embed("same text"), "d"); // evicts "a", reuses its slot
        let hits = idx.search(&embed("same text"), 3);
        assert_eq!(hits[0].payload, "c", "{hits:?}"); // older than "d"
    }

    #[test]
    fn shared_lsh_index_works() {
        use std::sync::Arc;
        let idx: Arc<SharedIndex<usize, LshIndex<usize>>> = Arc::new(SharedIndex::from_index(
            LshIndex::with_capacity_limit(10, 7, 1000),
        ));
        let mut handles = Vec::new();
        for t in 0..4usize {
            let idx = Arc::clone(&idx);
            // lint: allow(stray-thread) — concurrency smoke test; the
            // assertions below are insertion-order-insensitive.
            handles.push(std::thread::spawn(move || {
                let prompts = PromptGenerator::new(200 + t as u64).generate_batch(50);
                for (i, p) in prompts.iter().enumerate() {
                    idx.insert(embed(&p.text), t * 100 + i);
                    let _ = idx.nearest(&embed(&p.text));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(idx.len(), 200);
        assert!(idx.nearest(&embed("a bear")).is_some());
    }
}
