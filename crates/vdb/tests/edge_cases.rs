//! Edge-case hardening for the vector-index substrate: degenerate
//! capacity limits, duplicate-embedding insert/evict ordering, and
//! `SharedIndex` determinism under interleaved insert/search.

use argus_embed::embed;
use argus_prompts::PromptGenerator;
use argus_vdb::{FlatIndex, LshIndex, SearchHit, SharedIndex};

#[test]
#[should_panic(expected = "capacity limit must be positive")]
fn flat_capacity_zero_is_rejected() {
    let _ = FlatIndex::<u8>::with_capacity_limit(0);
}

#[test]
#[should_panic(expected = "capacity limit must be positive")]
fn lsh_capacity_zero_is_rejected() {
    let _ = LshIndex::<u8>::with_capacity_limit(8, 1, 0);
}

#[test]
fn flat_capacity_one_keeps_only_the_newest() {
    let mut idx = FlatIndex::with_capacity_limit(1);
    assert_eq!(idx.insert(embed("first"), 1), None);
    assert_eq!(idx.insert(embed("second"), 2), Some(1));
    assert_eq!(idx.insert(embed("third"), 3), Some(2));
    assert_eq!(idx.len(), 1);
    // Whatever the query, the only candidate is the newest entry.
    for q in ["first", "second", "third", "unrelated"] {
        assert_eq!(idx.nearest(&embed(q)).unwrap().payload, 3, "query {q}");
    }
    assert_eq!(idx.search(&embed("third"), 10).len(), 1);
}

#[test]
fn lsh_capacity_one_keeps_only_the_newest() {
    let mut idx = LshIndex::with_capacity_limit(8, 7, 1);
    assert_eq!(idx.insert(embed("first"), 1), None);
    assert_eq!(idx.insert(embed("second"), 2), Some(1));
    assert_eq!(idx.insert(embed("third"), 3), Some(2));
    assert_eq!(idx.len(), 1);
    // Probing any bucket can only ever surface the survivor.
    let hits = idx.search(&embed("third"), 10);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].payload, 3);
    for q in ["first", "second"] {
        assert!(idx.search(&embed(q), 10).iter().all(|h| h.payload == 3));
    }
}

#[test]
fn flat_duplicate_embeddings_evict_and_rank_in_insert_order() {
    let mut idx = FlatIndex::with_capacity_limit(2);
    assert_eq!(idx.insert(embed("same text"), "a"), None);
    assert_eq!(idx.insert(embed("same text"), "b"), None);
    // FIFO eviction removes the *oldest* duplicate first.
    assert_eq!(idx.insert(embed("same text"), "c"), Some("a"));
    assert_eq!(idx.insert(embed("same text"), "d"), Some("b"));
    // Among identical similarities, older entries rank first.
    let hits = idx.search(&embed("same text"), 2);
    assert_eq!(
        hits.iter().map(|h| h.payload).collect::<Vec<_>>(),
        vec!["c", "d"]
    );
}

#[test]
fn lsh_duplicate_embeddings_evict_and_rank_in_insert_order() {
    let mut idx = LshIndex::with_capacity_limit(8, 3, 2);
    assert_eq!(idx.insert(embed("same text"), "a"), None);
    assert_eq!(idx.insert(embed("same text"), "b"), None);
    assert_eq!(idx.insert(embed("same text"), "c"), Some("a"));
    assert_eq!(idx.insert(embed("same text"), "d"), Some("b"));
    let hits = idx.search(&embed("same text"), 4);
    assert_eq!(
        hits.iter().map(|h| h.payload).collect::<Vec<_>>(),
        vec!["c", "d"]
    );
}

/// Drives one deterministic interleaving of inserts and searches against a
/// shared index, returning every search result in order.
fn interleaved_run(idx: &SharedIndex<usize, LshIndex<usize>>) -> Vec<Vec<SearchHit<usize>>> {
    let prompts = PromptGenerator::new(17).generate_batch(120);
    let queries = PromptGenerator::new(18).generate_batch(120);
    let mut results = Vec::new();
    for (i, (p, q)) in prompts.iter().zip(&queries).enumerate() {
        idx.insert(embed(&p.text), i);
        results.push(idx.search(&embed(&q.text), 3));
        if i % 3 == 0 {
            // Re-query an already-inserted prompt mid-stream.
            results.push(idx.search(&embed(&p.text), 1));
        }
    }
    results
}

#[test]
fn shared_index_is_deterministic_under_interleaved_insert_search() {
    let build = || SharedIndex::from_index(LshIndex::<usize>::with_capacity_limit(8, 42, 64));
    let a = build();
    let b = build();
    let ra = interleaved_run(&a);
    let rb = interleaved_run(&b);
    assert_eq!(ra, rb, "identical interleavings must see identical hits");
    assert_eq!(a.len(), b.len());
    // The FIFO cap was exercised (120 inserts into 64 slots).
    assert_eq!(a.len(), 64);
}

#[test]
fn shared_index_survives_concurrent_interleaving() {
    use std::sync::Arc;
    let idx: Arc<SharedIndex<usize, LshIndex<usize>>> = Arc::new(SharedIndex::from_index(
        LshIndex::with_capacity_limit(8, 5, 10_000),
    ));
    let mut handles = Vec::new();
    for t in 0..4usize {
        let idx = Arc::clone(&idx);
        // lint: allow(stray-thread) — interleaving stress test; the final
        // index state assertions are schedule-insensitive.
        handles.push(std::thread::spawn(move || {
            let prompts = PromptGenerator::new(300 + t as u64).generate_batch(100);
            for (i, p) in prompts.iter().enumerate() {
                idx.insert(embed(&p.text), t * 1000 + i);
                let hits = idx.search(&embed(&p.text), 2);
                // This thread's own insert is immediately findable.
                assert!(hits.iter().any(|h| h.payload == t * 1000 + i));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // No entries lost or duplicated by the interleaving.
    assert_eq!(idx.len(), 400);
}
