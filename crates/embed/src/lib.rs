//! # argus-embed — deterministic text embeddings
//!
//! Approximate caching retrieves "the most similar cached prompt" via
//! embedding similarity search (§2.1). The paper uses CLIP text embeddings
//! inside a Qdrant vector database; offline we substitute a *hashed random
//! projection* embedding: each token deterministically maps to a fixed
//! pseudo-random unit direction, and a prompt embeds to the normalized sum
//! of its token directions.
//!
//! This preserves the property the system depends on — prompts sharing
//! vocabulary land close in cosine space, unrelated prompts are near
//! orthogonal — while remaining dependency-free and bit-reproducible.
//!
//! # Example
//!
//! ```
//! use argus_embed::{embed, cosine};
//! let a = embed("photo of a red apple on a table");
//! let b = embed("photo of a green apple on a table");
//! let c = embed("cyberpunk city at night, neon rain");
//! assert!(cosine(&a, &b) > cosine(&a, &c));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use argus_prompts::tokenize;

/// Embedding dimensionality. 64 dimensions keeps k-NN fast while making
/// unrelated-token collisions negligible for cache-retrieval purposes.
pub const DIM: usize = 64;

/// A unit-norm (or zero) prompt embedding.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    v: [f32; DIM],
    /// Cached Euclidean norm of `v`. [`cosine`] is the hottest operation
    /// in the retrieval plane (every k-NN candidate pays one), and the
    /// norms of both operands are invariant — computing them once at
    /// construction, with the same expression, keeps the similarity
    /// bit-identical while cutting two of the three inner products per
    /// candidate.
    norm: f32,
}

impl Embedding {
    /// The zero embedding (produced by empty text).
    pub fn zero() -> Self {
        Embedding {
            v: [0.0; DIM],
            norm: 0.0,
        }
    }

    /// Wraps raw coordinates, caching their norm.
    fn from_array(v: [f32; DIM]) -> Self {
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        Embedding { v, norm }
    }

    /// The raw coordinates.
    pub fn as_slice(&self) -> &[f32] {
        &self.v
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.norm
    }
}

/// SplitMix64 step, used to expand a token hash into coordinates.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a hash of a token.
fn token_hash(token: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in token.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The fixed pseudo-random direction assigned to a token.
fn token_direction(token: &str) -> [f32; DIM] {
    let mut state = token_hash(token);
    let mut v = [0.0f32; DIM];
    for x in v.iter_mut() {
        // Map to roughly uniform in [-1, 1); distributional shape is
        // irrelevant for random projections, only independence matters.
        let bits = splitmix(&mut state);
        *x = (bits >> 11) as f32 / (1u64 << 53) as f32 * 2.0 - 1.0;
    }
    v
}

/// Embeds prompt text into a unit-norm vector (zero vector for empty text).
pub fn embed(text: &str) -> Embedding {
    let tokens = tokenize(text);
    if tokens.is_empty() {
        return Embedding::zero();
    }
    let mut v = [0.0f32; DIM];
    for t in &tokens {
        let dir = token_direction(t);
        for (a, b) in v.iter_mut().zip(dir.iter()) {
            *a += b;
        }
    }
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    Embedding::from_array(v)
}

/// Cosine similarity of two embeddings, in `[-1, 1]`; 0 if either is zero.
pub fn cosine(a: &Embedding, b: &Embedding) -> f32 {
    let dot: f32 = a.v.iter().zip(b.v.iter()).map(|(x, y)| x * y).sum();
    if a.norm == 0.0 || b.norm == 0.0 {
        0.0
    } else {
        (dot / (a.norm * b.norm)).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn embedding_is_deterministic() {
        let a = embed("a bear in a snowy forest");
        let b = embed("a bear in a snowy forest");
        assert_eq!(a, b);
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let e = embed("photo of kids walking with dog");
        assert!((e.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_text_is_zero() {
        let e = embed("");
        assert_eq!(e, Embedding::zero());
        assert_eq!(e.norm(), 0.0);
        assert_eq!(cosine(&e, &embed("anything")), 0.0);
    }

    #[test]
    fn identical_texts_have_similarity_one() {
        let a = embed("black vase with white roses");
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn shared_vocabulary_raises_similarity() {
        let apple1 = embed("photo of a red apple lying on a table");
        let apple2 = embed("photo of a shiny red apple on a wooden table");
        let city = embed("neon skyline rainy cyberpunk metropolis");
        assert!(cosine(&apple1, &apple2) > 0.5);
        // Disjoint token sets: only random-projection noise remains.
        assert!(cosine(&apple1, &city) < 0.35);
        assert!(cosine(&apple1, &city) < cosine(&apple1, &apple2));
    }

    #[test]
    fn word_order_is_ignored_bag_of_words() {
        let a = embed("red apple on table");
        let b = embed("table on apple red");
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn unrelated_tokens_are_near_orthogonal() {
        let a = embed("zyxwv");
        let b = embed("qponm");
        assert!(cosine(&a, &b).abs() < 0.35);
    }

    proptest! {
        #[test]
        fn prop_cosine_bounded(s1 in "[a-z ]{0,60}", s2 in "[a-z ]{0,60}") {
            let c = cosine(&embed(&s1), &embed(&s2));
            prop_assert!((-1.0..=1.0).contains(&c));
        }

        #[test]
        fn prop_norm_is_unit_or_zero(s in "[a-z0-9 ]{0,80}") {
            let n = embed(&s).norm();
            prop_assert!(n == 0.0 || (n - 1.0).abs() < 1e-4);
        }
    }
}
