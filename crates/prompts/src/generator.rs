//! The prompt stream generator.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::vocab::{BASE_THEMES, RELATIONS, THEMES};
use crate::{Prompt, PromptId};

/// Controls how drift-only themes enter the stream over time.
///
/// Before `start_at` prompts have been generated, only base themes appear.
/// Over the following `ramp` prompts the probability of drawing from a
/// drift theme rises linearly from 0 to `max_fraction` and stays there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSchedule {
    /// Prompt index at which drift begins.
    pub start_at: u64,
    /// Number of prompts over which the drift share ramps up.
    pub ramp: u64,
    /// Steady-state share of drift-theme prompts, in `[0, 1]`.
    pub max_fraction: f64,
}

impl DriftSchedule {
    /// The drift-theme probability at stream position `index`.
    pub fn fraction_at(&self, index: u64) -> f64 {
        if index < self.start_at {
            return 0.0;
        }
        if self.ramp == 0 {
            return self.max_fraction;
        }
        let progress = (index - self.start_at) as f64 / self.ramp as f64;
        self.max_fraction * progress.min(1.0)
    }
}

/// Deterministic generator of the synthetic DiffusionDB-like prompt stream.
///
/// # Example
///
/// ```
/// use argus_prompts::{PromptGenerator, DriftSchedule};
/// let mut generator = PromptGenerator::new(7).with_drift(DriftSchedule {
///     start_at: 100,
///     ramp: 200,
///     max_fraction: 0.5,
/// });
/// let first = generator.generate();
/// assert_eq!(first.id.0, 0);
/// ```
#[derive(Debug)]
pub struct PromptGenerator {
    rng: StdRng,
    next_id: u64,
    drift: Option<DriftSchedule>,
}

impl PromptGenerator {
    /// Creates a generator with no drift.
    pub fn new(seed: u64) -> Self {
        PromptGenerator {
            rng: StdRng::seed_from_u64(seed ^ 0x70726f_6d7074), // "prompt"
            next_id: 0,
            drift: None,
        }
    }

    /// Enables a drift schedule (builder style).
    pub fn with_drift(mut self, schedule: DriftSchedule) -> Self {
        self.drift = Some(schedule);
        self
    }

    /// Number of prompts generated so far.
    pub fn generated(&self) -> u64 {
        self.next_id
    }

    /// Generates the next prompt in the stream.
    pub fn generate(&mut self) -> Prompt {
        let id = PromptId(self.next_id);
        let index = self.next_id;
        self.next_id += 1;

        let drift_fraction = self.drift.map(|d| d.fraction_at(index)).unwrap_or(0.0);
        let theme_idx = if THEMES.len() > BASE_THEMES && self.rng.random::<f64>() < drift_fraction {
            BASE_THEMES + self.rng.random_range(0..THEMES.len() - BASE_THEMES)
        } else {
            self.rng.random_range(0..BASE_THEMES)
        };
        let theme = &THEMES[theme_idx];

        // Structure: 1–3 subjects, optional setting, style, 0–3 modifiers.
        let n_subjects = match self.rng.random::<f64>() {
            x if x < 0.50 => 1,
            x if x < 0.85 => 2,
            _ => 3,
        };
        let with_setting = self.rng.random::<f64>() < 0.8;
        let n_modifiers = self.rng.random_range(0..=3usize);

        let style = theme.styles[self.rng.random_range(0..theme.styles.len())];
        let mut text = format!("{style} of ");
        let mut prev: Option<usize> = None;
        for i in 0..n_subjects {
            let mut s_idx = self.rng.random_range(0..theme.subjects.len());
            if prev == Some(s_idx) {
                s_idx = (s_idx + 1) % theme.subjects.len();
            }
            prev = Some(s_idx);
            if i > 0 {
                let rel = RELATIONS[self.rng.random_range(0..RELATIONS.len())];
                text.push(' ');
                text.push_str(rel);
                text.push(' ');
            }
            text.push_str(theme.subjects[s_idx]);
        }
        if with_setting {
            text.push(' ');
            text.push_str(theme.settings[self.rng.random_range(0..theme.settings.len())]);
        }
        for _ in 0..n_modifiers {
            text.push_str(", ");
            text.push_str(theme.modifiers[self.rng.random_range(0..theme.modifiers.len())]);
        }

        // Structural complexity: subjects and relations dominate; settings
        // and modifiers add detail pressure. Jitter models everything the
        // structure does not capture (rare words, unusual compositions).
        let base = match n_subjects {
            1 => 0.15,
            2 => 0.45,
            _ => 0.70,
        };
        let complexity = (base
            + if with_setting { 0.08 } else { 0.0 }
            + 0.04 * n_modifiers as f64
            + 0.06 * self.rng.random::<f64>())
        .clamp(0.0, 1.0);

        Prompt {
            id,
            text,
            complexity,
            theme: theme_idx,
        }
    }

    /// Generates the next `n` prompts.
    pub fn generate_batch(&mut self, n: usize) -> Vec<Prompt> {
        (0..n).map(|_| self.generate()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let a: Vec<Prompt> = PromptGenerator::new(5).generate_batch(50);
        let b: Vec<Prompt> = PromptGenerator::new(5).generate_batch(50);
        assert_eq!(a, b);
        let c: Vec<Prompt> = PromptGenerator::new(6).generate_batch(50);
        assert_ne!(a, c);
    }

    #[test]
    fn ids_are_sequential() {
        let mut g = PromptGenerator::new(1);
        for i in 0..20 {
            assert_eq!(g.generate().id, PromptId(i));
        }
        assert_eq!(g.generated(), 20);
    }

    #[test]
    fn no_drift_means_base_themes_only() {
        let mut g = PromptGenerator::new(3);
        for p in g.generate_batch(500) {
            assert!(
                p.theme < BASE_THEMES,
                "theme {} leaked without drift",
                p.theme
            );
        }
    }

    #[test]
    fn drift_introduces_new_themes_at_the_right_rate() {
        let mut g = PromptGenerator::new(11).with_drift(DriftSchedule {
            start_at: 1000,
            ramp: 0,
            max_fraction: 0.6,
        });
        let pre = g.generate_batch(1000);
        assert!(pre.iter().all(|p| p.theme < BASE_THEMES));
        let post = g.generate_batch(4000);
        let drifted = post.iter().filter(|p| p.theme >= BASE_THEMES).count() as f64 / 4000.0;
        assert!((drifted - 0.6).abs() < 0.05, "drift share {drifted}");
    }

    #[test]
    fn drift_fraction_ramps_linearly() {
        let d = DriftSchedule {
            start_at: 100,
            ramp: 200,
            max_fraction: 0.4,
        };
        assert_eq!(d.fraction_at(0), 0.0);
        assert_eq!(d.fraction_at(99), 0.0);
        assert!((d.fraction_at(200) - 0.2).abs() < 1e-12);
        assert!((d.fraction_at(300) - 0.4).abs() < 1e-12);
        assert!((d.fraction_at(10_000) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn complexity_distribution_is_spread() {
        let mut g = PromptGenerator::new(9);
        let prompts = g.generate_batch(2000);
        let lo = prompts.iter().filter(|p| p.complexity < 0.3).count();
        let hi = prompts.iter().filter(|p| p.complexity > 0.6).count();
        // Obs. 1: a large fraction is approximation-tolerant (low
        // complexity), yet a meaningful share is not.
        assert!(lo > 400, "low-complexity count {lo}");
        assert!(hi > 200, "high-complexity count {hi}");
        assert!(prompts.iter().all(|p| (0.0..=1.0).contains(&p.complexity)));
    }

    #[test]
    fn multi_subject_prompts_contain_relations() {
        let mut g = PromptGenerator::new(13);
        let mut saw_relation = false;
        for p in g.generate_batch(200) {
            if p.complexity > 0.55 {
                // 2–3 subjects: must contain a relation phrase.
                let has_rel = RELATIONS.iter().any(|r| p.text.contains(r));
                saw_relation |= has_rel;
            }
        }
        assert!(saw_relation);
    }

    proptest! {
        #[test]
        fn prop_prompts_are_well_formed(seed in 0u64..1000) {
            let mut g = PromptGenerator::new(seed);
            let p = g.generate();
            prop_assert!(!p.text.is_empty());
            prop_assert!(p.text.contains(" of "));
            prop_assert!((0.0..=1.0).contains(&p.complexity));
            prop_assert!(p.theme < THEMES.len());
            prop_assert!(!crate::tokenize(&p.text).is_empty());
        }
    }
}
