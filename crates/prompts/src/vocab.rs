//! The themed vocabulary behind the synthetic prompt stream.
//!
//! Themes model the topical clusters of a production prompt feed (portraits,
//! landscapes, product shots, fantasy art, …). Drift introduces later themes
//! over time, shifting the token distribution the classifier was trained on.

/// One topical theme: a pool of subjects, settings, styles and modifiers.
#[derive(Debug, Clone, Copy)]
pub struct Theme {
    /// Theme name (diagnostic only).
    pub name: &'static str,
    /// Concrete subjects (nouns / noun phrases).
    pub subjects: &'static [&'static str],
    /// Scene settings ("on a table", "in a forest", …).
    pub settings: &'static [&'static str],
    /// Style prefixes ("photo", "oil painting", …).
    pub styles: &'static [&'static str],
    /// Attribute modifiers appended to the prompt.
    pub modifiers: &'static [&'static str],
}

/// Spatial/compositional relations connecting two subjects. Relations raise
/// complexity: they are what higher approximation levels fail to preserve
/// (the paper's Fig. 6 "dog disappears at K=20" example).
pub const RELATIONS: &[&str] = &[
    "next to",
    "on top of",
    "under",
    "holding",
    "beside",
    "in front of",
    "behind",
    "walking with",
    "looking at",
    "leaning against",
];

/// The full theme catalog. The first [`BASE_THEMES`] themes form the
/// training-time distribution; later themes appear only through drift.
pub const THEMES: &[Theme] = &[
    Theme {
        name: "still-life",
        subjects: &[
            "a red apple",
            "a ceramic vase",
            "a loaf of bread",
            "a glass of wine",
            "a stack of books",
            "a brass candlestick",
            "a bowl of cherries",
            "a yellow banana",
            "a black vase with white roses",
            "an old pocket watch",
        ],
        settings: &[
            "lying on a table",
            "on a wooden shelf",
            "near a window",
            "on a linen cloth",
            "in soft morning light",
            "against a dark backdrop",
        ],
        styles: &[
            "photo",
            "still life painting",
            "studio photograph",
            "macro shot",
        ],
        modifiers: &[
            "high detail",
            "soft shadows",
            "4k",
            "sharp focus",
            "warm tones",
            "shallow depth of field",
        ],
    },
    Theme {
        name: "portraits",
        subjects: &[
            "a happy man",
            "an old fisherman",
            "a young woman with freckles",
            "a child laughing",
            "a bearded wizard",
            "a woman in a red coat",
            "twin sisters",
            "a stern judge",
            "a smiling grandmother",
            "a jazz musician",
        ],
        settings: &[
            "in a sunlit room",
            "against a brick wall",
            "at golden hour",
            "in a rainy street",
            "by candlelight",
            "in a crowded market",
        ],
        styles: &["photo", "portrait", "oil painting", "charcoal sketch"],
        modifiers: &[
            "cinematic lighting",
            "85mm lens",
            "bokeh",
            "highly detailed face",
            "dramatic contrast",
            "natural skin tones",
        ],
    },
    Theme {
        name: "animals",
        subjects: &[
            "a bear",
            "a dog",
            "kids walking with a dog",
            "a tabby cat",
            "a barn owl",
            "a red fox",
            "a koi fish",
            "a galloping horse",
            "a hummingbird",
            "a sleeping lion",
        ],
        settings: &[
            "in a snowy forest",
            "by a river",
            "in tall grass",
            "on a mountain ridge",
            "under northern lights",
            "at the edge of a pond",
        ],
        styles: &["photo", "wildlife photograph", "watercolor", "ink drawing"],
        modifiers: &[
            "national geographic",
            "telephoto",
            "high detail fur",
            "golden light",
            "misty atmosphere",
            "award winning",
        ],
    },
    Theme {
        name: "landscapes",
        subjects: &[
            "a mountain lake",
            "a desert canyon",
            "a terraced rice field",
            "a lighthouse on a cliff",
            "an alpine meadow",
            "a volcanic island",
            "a frozen waterfall",
            "rolling vineyard hills",
            "a bamboo forest",
            "a coastal village",
        ],
        settings: &[
            "at sunrise",
            "under a storm front",
            "in autumn",
            "after fresh snow",
            "beneath a starry sky",
            "wrapped in fog",
        ],
        styles: &["photo", "panorama", "matte painting", "drone shot"],
        modifiers: &[
            "ultra wide angle",
            "hdr",
            "volumetric light",
            "8k",
            "epic scale",
            "vivid colors",
        ],
    },
    Theme {
        name: "urban",
        subjects: &[
            "a neon-lit alley",
            "a rusty tram",
            "a rooftop garden",
            "a subway platform",
            "a street food stall",
            "a glass skyscraper",
            "an abandoned factory",
            "a cobblestone square",
            "a vintage bicycle",
            "a flooded underpass",
        ],
        settings: &[
            "at night",
            "in heavy rain",
            "during rush hour",
            "at dawn",
            "in winter haze",
            "after the market closes",
        ],
        styles: &[
            "photo",
            "street photography",
            "cyberpunk concept art",
            "isometric render",
        ],
        modifiers: &[
            "neon reflections",
            "film grain",
            "moody",
            "wet asphalt",
            "long exposure",
            "detailed signage",
        ],
    },
    Theme {
        name: "fantasy",
        subjects: &[
            "a dragon perched on ruins",
            "an elven archer",
            "a floating castle",
            "a crystal golem",
            "a fire phoenix",
            "a moss-covered troll",
            "an enchanted sword",
            "a spirit deer",
            "a witch's cottage",
            "a portal in the forest",
        ],
        settings: &[
            "in a misty vale",
            "above the clouds",
            "inside a glowing cavern",
            "at the world's edge",
            "during an eclipse",
            "in an ancient library",
        ],
        styles: &[
            "digital painting",
            "fantasy concept art",
            "book illustration",
            "tarot card",
        ],
        modifiers: &[
            "intricate",
            "glowing runes",
            "trending on artstation",
            "ethereal light",
            "hyper detailed",
            "dark fantasy palette",
        ],
    },
    // ---- drift-only themes below (enter the stream over time) ----
    Theme {
        name: "sci-fi",
        subjects: &[
            "a ringed space station",
            "a chrome android",
            "a terraformed crater",
            "a plasma engine",
            "a derelict starship",
            "a martian greenhouse",
            "a quantum computer core",
            "an orbital elevator",
            "a cryo pod",
            "a swarm of drones",
        ],
        settings: &[
            "in deep space",
            "on a red desert planet",
            "inside a hangar bay",
            "under twin suns",
            "in zero gravity",
            "beneath a dyson swarm",
        ],
        styles: &[
            "sci-fi concept art",
            "retrofuturist poster",
            "3d render",
            "film still",
        ],
        modifiers: &[
            "octane render",
            "lens flare",
            "hard surface detail",
            "holographic ui",
            "atmospheric haze",
            "unreal engine",
        ],
    },
    Theme {
        name: "food",
        subjects: &[
            "a stack of pancakes",
            "a steaming bowl of ramen",
            "a chocolate lava cake",
            "a charcuterie board",
            "a wood-fired pizza",
            "a matcha latte",
            "a summer fruit tart",
            "a bento box",
            "a pot of seafood paella",
            "freshly baked croissants",
        ],
        settings: &[
            "on a marble counter",
            "in a rustic kitchen",
            "at a street market",
            "on a picnic blanket",
            "under cafe lights",
            "beside a window seat",
        ],
        styles: &[
            "food photograph",
            "editorial photo",
            "flat lay",
            "close-up shot",
        ],
        modifiers: &[
            "steam rising",
            "glossy glaze",
            "appetizing",
            "soft natural light",
            "michelin plating",
            "crumbs scattered",
        ],
    },
    Theme {
        name: "abstract",
        subjects: &[
            "flowing liquid metal",
            "a fractal bloom",
            "colliding ink clouds",
            "geometric glass shards",
            "a ribbon of smoke",
            "woven light fibers",
            "melting gradients",
            "a particle vortex",
            "folded paper waves",
            "magnetic filings in bloom",
        ],
        settings: &[
            "on a black void",
            "in a white studio",
            "under ultraviolet light",
            "suspended mid-air",
            "across a curved horizon",
            "within a glass cube",
        ],
        styles: &[
            "abstract render",
            "generative art",
            "macro photograph",
            "double exposure",
        ],
        modifiers: &[
            "iridescent",
            "caustics",
            "subsurface scattering",
            "minimalist",
            "chromatic aberration",
            "silky motion blur",
        ],
    },
];

/// Number of themes present from the start (pre-drift distribution).
pub const BASE_THEMES: usize = 6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_shape() {
        assert!(THEMES.len() > BASE_THEMES);
        for t in THEMES {
            assert!(t.subjects.len() >= 10, "{}: too few subjects", t.name);
            assert!(t.settings.len() >= 6, "{}: too few settings", t.name);
            assert!(t.styles.len() >= 4, "{}: too few styles", t.name);
            assert!(t.modifiers.len() >= 6, "{}: too few modifiers", t.name);
        }
        assert!(RELATIONS.len() >= 8);
    }

    #[test]
    fn theme_names_unique() {
        let mut names: Vec<&str> = THEMES.iter().map(|t| t.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), THEMES.len());
    }

    #[test]
    fn drift_themes_use_disjoint_subject_vocabulary() {
        // Drift only works if new themes actually introduce unseen tokens.
        let base: std::collections::HashSet<&str> = THEMES[..BASE_THEMES]
            .iter()
            .flat_map(|t| t.subjects.iter().copied())
            .collect();
        for t in &THEMES[BASE_THEMES..] {
            for s in t.subjects {
                assert!(!base.contains(s), "{}: subject {s:?} overlaps base", t.name);
            }
        }
    }
}
