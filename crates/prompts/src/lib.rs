//! # argus-prompts — synthetic DiffusionDB-like prompt stream
//!
//! The paper drives every experiment with 10 k real prompts from
//! DiffusionDB [76], preserving arrival order. That dataset is not available
//! offline, so this crate synthesizes an equivalent stream: compositional
//! prompts ("{style} of {subject} {relation} {subject}, {modifiers}") drawn
//! from a themed vocabulary, each carrying a latent *complexity* in `[0, 1]`
//! derived from its structure (object count, spatial relations, attribute
//! density).
//!
//! Complexity is the property that matters downstream: the paper's
//! Observation 1 is that *many prompts are approximation-tolerant* and that
//! "factors such as prompt complexity … may influence this". Our quality
//! oracle (crate `argus-quality`) maps complexity to per-level quality, and
//! the classifier must recover it from the text — exactly the learning
//! problem the paper's BERT classifier solves.
//!
//! Temporal drift (new themes entering the stream) is a first-class knob so
//! that Fig. 18's drift-triggered retraining is reproducible.
//!
//! # Example
//!
//! ```
//! use argus_prompts::PromptGenerator;
//! let mut generator = PromptGenerator::new(42);
//! let p = generator.generate();
//! assert!(!p.text.is_empty());
//! assert!((0.0..=1.0).contains(&p.complexity));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
pub mod vocab;

pub use generator::{DriftSchedule, PromptGenerator};

use std::fmt;

/// Unique identifier of a prompt within a run, in arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PromptId(pub u64);

impl fmt::Display for PromptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A synthetic text-to-image prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct Prompt {
    /// Arrival-order identifier.
    pub id: PromptId,
    /// The prompt text.
    pub text: String,
    /// Latent structural complexity in `[0, 1]`. Higher complexity means
    /// lower approximation tolerance (more objects/relations to preserve —
    /// cf. the disappearing "dog" of the paper's Fig. 6).
    pub complexity: f64,
    /// The vocabulary theme the prompt was drawn from (drives drift).
    pub theme: usize,
}

/// Lower-cases and splits prompt text into word tokens, stripping
/// punctuation. This is the shared tokenizer used by the embedding and the
/// classifier feature extractor.
///
/// # Example
///
/// ```
/// let toks = argus_prompts::tokenize("A red apple, lying on a table!");
/// assert_eq!(toks, vec!["a", "red", "apple", "lying", "on", "a", "table"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|s| !s.is_empty())
        .map(|s| s.to_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_strips_punctuation_and_lowercases() {
        assert_eq!(
            tokenize("Hyper-Realistic 4K render; (masterpiece)"),
            vec!["hyper", "realistic", "4k", "render", "masterpiece"]
        );
        assert!(tokenize("").is_empty());
        assert!(tokenize("...!!!").is_empty());
    }

    #[test]
    fn prompt_id_display() {
        assert_eq!(PromptId(17).to_string(), "p17");
    }
}
