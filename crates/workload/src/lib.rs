//! # argus-workload — arrival processes and trace generators
//!
//! The paper evaluates on four workload shapes (§5.1):
//!
//! 1. the public **Twitter** trace (Oct 2018) — diurnal pattern with
//!    unexpected spikes, used by Clipper/Proteus/INFaaS evaluations;
//! 2. a proprietary **SysX** text-to-image production trace — jittery, with
//!    high-load periods, min-max normalized to the Twitter range;
//! 3. a synthetic **bursty** workload — interleaved low/high demand with
//!    Poisson inter-arrivals;
//! 4. a **diagonal** stress ramp from light load to past cluster
//!    saturation (Fig. 17).
//!
//! The raw traces are not redistributable, so [`twitter_like`] and
//! [`sysx_like`] synthesize series with the same structure (diurnal
//! sinusoid + noise + spikes; jittery mean-reverting walk). Absolute rates
//! are normalized to this reproduction's cluster capacity — see
//! `EXPERIMENTS.md` for the mapping — preserving the relationships that
//! drive every result: peaks exceed the all-SD-XL capacity (Fig. 1) but
//! stay below the fully-approximated capacity, and the ramp crosses both.
//!
//! # Example
//!
//! ```
//! use argus_workload::{twitter_like, ArrivalProcess};
//! let trace = twitter_like(42, 800);
//! assert_eq!(trace.len_minutes(), 800);
//! let arrivals: Vec<_> = ArrivalProcess::new(&trace, 1).collect();
//! assert!(!arrivals.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use argus_des::rng::{exponential, normal};
use argus_des::SimTime;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};

/// A workload trace: target demand in queries-per-minute, per minute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    minutes: Vec<f64>,
}

impl Trace {
    /// Builds a trace from per-minute QPM values. An empty vector is the
    /// valid zero-duration trace: it offers no load and a run over it
    /// terminates immediately.
    ///
    /// # Panics
    /// Panics if `minutes` contains negative/non-finite values.
    pub fn from_qpm(minutes: Vec<f64>) -> Self {
        assert!(
            minutes.iter().all(|q| q.is_finite() && *q >= 0.0),
            "QPM values must be finite and non-negative"
        );
        Trace { minutes }
    }

    /// Demand during minute `m` (clamped to the final minute beyond the
    /// end; zero for the zero-duration trace).
    pub fn qpm_at(&self, minute: usize) -> f64 {
        match self.minutes.len() {
            0 => 0.0,
            n => self.minutes[minute.min(n - 1)],
        }
    }

    /// Trace length in minutes.
    pub fn len_minutes(&self) -> usize {
        self.minutes.len()
    }

    /// The per-minute series.
    pub fn as_qpm(&self) -> &[f64] {
        &self.minutes
    }

    /// Peak demand (zero for the zero-duration trace).
    pub fn peak(&self) -> f64 {
        self.minutes.iter().cloned().fold(0.0, f64::max)
    }

    /// Minimum demand (zero for the zero-duration trace).
    pub fn trough(&self) -> f64 {
        if self.minutes.is_empty() {
            return 0.0;
        }
        self.minutes.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Mean demand (zero for the zero-duration trace).
    pub fn mean(&self) -> f64 {
        if self.minutes.is_empty() {
            return 0.0;
        }
        self.minutes.iter().sum::<f64>() / self.minutes.len() as f64
    }

    /// Total expected queries over the trace.
    pub fn total_queries(&self) -> f64 {
        self.minutes.iter().sum()
    }

    /// Min-max normalizes this trace onto `[lo, hi]` — the paper applies
    /// exactly this to anonymize the SysX trace ("we normalize it to the
    /// same min-max range as the Twitter trace", §5.1). A constant trace
    /// (zero range, including single-minute traces) maps to `lo`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn normalize_to(&self, lo: f64, hi: f64) -> Trace {
        assert!(lo <= hi, "invalid normalization range");
        let min = self.trough();
        let max = self.peak();
        if max <= min {
            return Trace {
                minutes: vec![lo; self.minutes.len()],
            };
        }
        Trace {
            minutes: self
                .minutes
                .iter()
                .map(|q| lo + (q - min) / (max - min) * (hi - lo))
                .collect(),
        }
    }

    /// Scales all rates by a factor.
    ///
    /// # Panics
    /// Panics if `factor` is negative or non-finite.
    pub fn scale(&self, factor: f64) -> Trace {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid scale {factor}"
        );
        Trace {
            minutes: self.minutes.iter().map(|q| q * factor).collect(),
        }
    }
}

/// Default Twitter-like trace bounds for this reproduction's 8×A100
/// cluster (all-SD-XL capacity ≈ 114 QPM, max-approximation capacity
/// ≈ 215 QPM): troughs are comfortably servable exactly, peaks are not
/// servable without approximation — the Fig. 1 motivation.
pub const TWITTER_TROUGH_QPM: f64 = 45.0;
/// See [`TWITTER_TROUGH_QPM`].
pub const TWITTER_PEAK_QPM: f64 = 190.0;

/// Synthesizes a Twitter-shaped trace: a diurnal sinusoid with autoregressive
/// noise plus a few sharp spikes ("diurnal patterns and unexpected spikes",
/// §5.1).
pub fn twitter_like(seed: u64, minutes: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7477_6974);
    let mut noise = 0.0f64;
    let mut qpm = Vec::with_capacity(minutes);
    // Spikes: roughly one per 300 minutes, 20–45 minutes long.
    let mut spike_until = 0usize;
    let mut spike_boost = 0.0;
    for m in 0..minutes {
        let phase = m as f64 / 1440.0 * std::f64::consts::TAU;
        // Diurnal double-hump typical of social traffic.
        let diurnal = 0.55 + 0.35 * (phase - 0.8).sin() + 0.10 * (2.0 * phase).sin();
        noise = 0.92 * noise + normal(&mut rng, 0.0, 0.035);
        if m >= spike_until && exponential(&mut rng, 1.0 / 300.0) < 1.0 {
            spike_until = m + 20 + (normal(&mut rng, 12.0, 6.0).abs() as usize).min(25);
            spike_boost = 0.25 + 0.2 * normal(&mut rng, 0.0, 1.0).abs();
        }
        let spike = if m < spike_until { spike_boost } else { 0.0 };
        let level = (diurnal + noise + spike).clamp(0.0, 1.6);
        // Skew toward low load: production traffic spends most of its time
        // well below peak (Fig. 1), so peaks stress the cluster while the
        // aggregate stays serviceable.
        qpm.push(level.powf(2.2));
    }
    Trace::from_qpm(qpm).normalize_to(TWITTER_TROUGH_QPM, TWITTER_PEAK_QPM)
}

/// Synthesizes a SysX-shaped trace: a jittery mean-reverting walk with
/// frequent short fluctuations and sustained high-load windows, min-max
/// normalized to the Twitter range (§5.1).
pub fn sysx_like(seed: u64, minutes: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7379_7378);
    let mut level = 0.5f64;
    let mut qpm = Vec::with_capacity(minutes);
    for m in 0..minutes {
        // Mean-reverting jitter with a slow sweep so the trace has distinct
        // moderate- and high-load eras.
        let target = 0.45 + 0.3 * (m as f64 / minutes as f64 * std::f64::consts::PI).sin();
        level += 0.18 * (target - level) + normal(&mut rng, 0.0, 0.09);
        level = level.clamp(0.05, 1.5);
        qpm.push(level);
    }
    Trace::from_qpm(qpm).normalize_to(TWITTER_TROUGH_QPM, TWITTER_PEAK_QPM)
}

/// Synthesizes a multi-day diurnal trace for scale-to-demand runs: `days`
/// consecutive [`twitter_like`] days (1440 minutes each, each day's
/// structure drawn from its own stream off `seed`) with seeded day-to-day
/// amplitude drift — a slow random walk in `[0.7, 1.3]` scaling each
/// day, so an elastic fleet sees busy days it must grow into and quiet
/// days it should shrink out of while the within-day diurnal shape stays
/// Twitter-like.
pub fn diurnal(seed: u64, days: usize) -> Trace {
    let mut amp_rng = StdRng::seed_from_u64(seed ^ 0x6469_7572); // "diur"
    let mut amp = 1.0f64;
    let mut qpm = Vec::with_capacity(days * 1440);
    for day in 0..days {
        let day_trace = twitter_like(seed ^ (day as u64).wrapping_mul(0x9E37_79B9), 1440);
        qpm.extend(day_trace.as_qpm().iter().map(|q| q * amp));
        amp = (amp + normal(&mut amp_rng, 0.0, 0.08)).clamp(0.7, 1.3);
    }
    Trace::from_qpm(qpm)
}

/// Synthesizes a seeded preemption-storm schedule: `⌈fraction ×
/// pool_size⌉` distinct workers of the pool `[pool_start, pool_start +
/// pool_size)`, chosen by seeded shuffle and spread evenly across
/// sub-minute instants within the single minute starting at `at_minute`
/// — the "lose a chunk of a spot pool in one minute" scenario. The
/// result feeds `argus_core::preemption_events` to become
/// warning-window preemption faults.
///
/// # Panics
/// Panics if `fraction` is outside `[0, 1]` or `at_minute` is negative.
pub fn preemption_storm(
    seed: u64,
    pool_start: usize,
    pool_size: usize,
    fraction: f64,
    at_minute: f64,
) -> Vec<(f64, Vec<usize>)> {
    assert!((0.0..=1.0).contains(&fraction), "invalid storm fraction");
    assert!(
        at_minute >= 0.0 && at_minute.is_finite(),
        "invalid storm minute"
    );
    let n = ((fraction * pool_size as f64).ceil() as usize).min(pool_size);
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5354_4F52); // "STOR"
                                                             // Fisher–Yates over the pool, then take the first `n`.
    let mut pool: Vec<usize> = (pool_start..pool_start + pool_size).collect();
    for i in (1..pool.len()).rev() {
        let j = rng.random_range(0..=(i as u64)) as usize;
        pool.swap(i, j);
    }
    pool.truncate(n);
    pool.iter()
        .enumerate()
        .map(|(i, &w)| (at_minute + i as f64 / n as f64, vec![w]))
        .collect()
}

/// Synthesizes the bursty workload: interleaved low/high plateaus with
/// noisy edges ("interleaved periods of low and high query demand", §5.1).
pub fn bursty(seed: u64, minutes: usize, low_qpm: f64, high_qpm: f64) -> Trace {
    assert!(low_qpm >= 0.0 && high_qpm >= low_qpm);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6275_7273);
    let mut qpm = Vec::with_capacity(minutes);
    let mut high = false;
    let mut until = 0usize;
    for m in 0..minutes {
        if m >= until {
            high = !high;
            // Plateaus of 40–120 minutes.
            until = m + 40 + (exponential(&mut rng, 1.0 / 40.0) as usize).min(80);
        }
        let base = if high { high_qpm } else { low_qpm };
        qpm.push((base + normal(&mut rng, 0.0, base * 0.05)).max(0.0));
    }
    Trace::from_qpm(qpm)
}

/// The diagonal stress ramp of Fig. 17: load increases linearly from
/// `start_qpm` to `end_qpm` over the trace.
pub fn diagonal(start_qpm: f64, end_qpm: f64, minutes: usize) -> Trace {
    assert!(start_qpm >= 0.0 && end_qpm >= 0.0);
    if minutes <= 1 {
        // Degenerate ramps: zero-duration, or a single minute at the start.
        return Trace::from_qpm(vec![start_qpm; minutes]);
    }
    let qpm = (0..minutes)
        .map(|m| start_qpm + (end_qpm - start_qpm) * m as f64 / (minutes - 1) as f64)
        .collect();
    Trace::from_qpm(qpm)
}

/// A constant-rate trace (baseline experiments and unit tests).
pub fn steady(qpm: f64, minutes: usize) -> Trace {
    Trace::from_qpm(vec![qpm; minutes])
}

/// Non-homogeneous Poisson arrival process over a trace: within each
/// minute, inter-arrival gaps are exponential at that minute's rate.
///
/// Iterating yields strictly increasing [`SimTime`] arrival instants until
/// the trace ends.
#[derive(Debug)]
pub struct ArrivalProcess {
    minutes: Vec<f64>,
    rng: StdRng,
    t_secs: f64,
    horizon_secs: f64,
}

impl ArrivalProcess {
    /// Creates the arrival process for `trace` with its own RNG stream.
    pub fn new(trace: &Trace, seed: u64) -> Self {
        ArrivalProcess {
            minutes: trace.as_qpm().to_vec(),
            rng: StdRng::seed_from_u64(seed ^ 0x6172_7276), // "arrv"
            t_secs: 0.0,
            horizon_secs: trace.len_minutes() as f64 * 60.0,
        }
    }
}

impl Iterator for ArrivalProcess {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        loop {
            if self.t_secs >= self.horizon_secs {
                return None;
            }
            let minute = (self.t_secs / 60.0) as usize;
            let qpm = self.minutes[minute.min(self.minutes.len() - 1)];
            if qpm <= 0.0 {
                // Skip to the next minute boundary.
                self.t_secs = ((minute + 1) as f64) * 60.0;
                continue;
            }
            let rate_per_sec = qpm / 60.0;
            let gap = exponential(&mut self.rng, rate_per_sec);
            let candidate = self.t_secs + gap;
            let boundary = ((minute + 1) as f64) * 60.0;
            if candidate >= boundary {
                // Rate changes at the boundary: restart the clock there
                // (memorylessness makes this exact for piecewise-constant
                // rates).
                self.t_secs = boundary;
                continue;
            }
            self.t_secs = candidate;
            return Some(SimTime::from_secs(candidate));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_accessors() {
        let t = Trace::from_qpm(vec![10.0, 20.0, 30.0]);
        assert_eq!(t.len_minutes(), 3);
        assert_eq!(t.qpm_at(0), 10.0);
        assert_eq!(t.qpm_at(99), 30.0); // clamped past the end
        assert_eq!(t.peak(), 30.0);
        assert_eq!(t.trough(), 10.0);
        assert_eq!(t.mean(), 20.0);
        assert_eq!(t.total_queries(), 60.0);
    }

    #[test]
    fn empty_trace_is_valid_and_degenerate() {
        let t = Trace::from_qpm(vec![]);
        assert_eq!(t.len_minutes(), 0);
        assert_eq!(t.qpm_at(0), 0.0);
        assert_eq!(t.qpm_at(99), 0.0);
        assert_eq!(t.peak(), 0.0);
        assert_eq!(t.trough(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.total_queries(), 0.0);
        assert_eq!(t.normalize_to(45.0, 190.0).len_minutes(), 0);
        assert_eq!(ArrivalProcess::new(&t, 1).count(), 0);
    }

    #[test]
    fn zero_duration_generators_do_not_panic() {
        assert_eq!(twitter_like(1, 0).len_minutes(), 0);
        assert_eq!(sysx_like(1, 0).len_minutes(), 0);
        assert_eq!(bursty(1, 0, 10.0, 20.0).len_minutes(), 0);
        assert_eq!(diagonal(10.0, 20.0, 0).len_minutes(), 0);
        assert_eq!(steady(10.0, 0).len_minutes(), 0);
    }

    #[test]
    fn single_minute_generators_do_not_panic() {
        // Single-minute traces make min-max normalization degenerate
        // (constant range); the generators map that case to the trough.
        assert_eq!(twitter_like(1, 1).as_qpm(), &[TWITTER_TROUGH_QPM]);
        assert_eq!(sysx_like(1, 1).as_qpm(), &[TWITTER_TROUGH_QPM]);
        assert_eq!(bursty(1, 1, 10.0, 20.0).len_minutes(), 1);
        assert_eq!(diagonal(10.0, 20.0, 1).as_qpm(), &[10.0]);
        assert_eq!(steady(10.0, 1).as_qpm(), &[10.0]);
    }

    #[test]
    fn zero_rate_trace_offers_nothing() {
        let t = steady(0.0, 5);
        assert_eq!(t.total_queries(), 0.0);
        assert_eq!(ArrivalProcess::new(&t, 1).count(), 0);
        let b = bursty(2, 5, 0.0, 0.0);
        assert_eq!(ArrivalProcess::new(&b, 1).count(), 0);
    }

    #[test]
    fn single_request_trace_arrivals() {
        // One QPM for one minute: a handful of arrivals at most, all
        // inside the trace horizon.
        let t = steady(1.0, 1);
        let times: Vec<SimTime> = ArrivalProcess::new(&t, 7).collect();
        assert!(
            times.len() <= 6,
            "unexpectedly many arrivals: {}",
            times.len()
        );
        for at in &times {
            assert!(at.as_minutes() < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_qpm_rejected() {
        let _ = Trace::from_qpm(vec![5.0, -1.0]);
    }

    #[test]
    fn normalization_hits_target_range() {
        let t = Trace::from_qpm(vec![2.0, 4.0, 10.0]).normalize_to(45.0, 190.0);
        assert!((t.trough() - 45.0).abs() < 1e-9);
        assert!((t.peak() - 190.0).abs() < 1e-9);
    }

    #[test]
    fn twitter_trace_shape() {
        let t = twitter_like(1, 800);
        assert_eq!(t.len_minutes(), 800);
        assert!((t.peak() - TWITTER_PEAK_QPM).abs() < 1e-9);
        assert!((t.trough() - TWITTER_TROUGH_QPM).abs() < 1e-9);
        // Determinism.
        assert_eq!(t, twitter_like(1, 800));
        assert_ne!(t, twitter_like(2, 800));
        // Peak exceeds the 8×SD-XL capacity (Fig. 1's point).
        assert!(t.peak() > 114.3);
    }

    #[test]
    fn sysx_trace_is_jittery() {
        let t = sysx_like(3, 800);
        // Count direction changes; SysX should fluctuate far more often
        // than the smooth diurnal trace.
        let flips = |tr: &Trace| {
            tr.as_qpm()
                .windows(3)
                .filter(|w| (w[1] - w[0]).signum() != (w[2] - w[1]).signum())
                .count()
        };
        assert!(flips(&t) > 250, "flips {}", flips(&t));
        assert!((t.peak() - TWITTER_PEAK_QPM).abs() < 1e-9);
    }

    #[test]
    fn bursty_has_two_plateaus() {
        let t = bursty(5, 600, 60.0, 200.0);
        let lows = t.as_qpm().iter().filter(|&&q| q < 100.0).count();
        let highs = t.as_qpm().iter().filter(|&&q| q > 160.0).count();
        assert!(lows > 100, "lows {lows}");
        assert!(highs > 100, "highs {highs}");
        // Nothing far outside the plateau bands.
        assert!(t.peak() < 260.0);
    }

    #[test]
    fn diagonal_is_monotone() {
        let t = diagonal(40.0, 300.0, 800);
        assert_eq!(t.qpm_at(0), 40.0);
        assert!((t.qpm_at(799) - 300.0).abs() < 1e-9);
        assert!(t.as_qpm().windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn steady_is_flat() {
        let t = steady(100.0, 10);
        assert_eq!(t.peak(), 100.0);
        assert_eq!(t.trough(), 100.0);
    }

    #[test]
    fn diurnal_trace_length_and_peaks() {
        let t = diurnal(11, 3);
        assert_eq!(t.len_minutes(), 3 * 1440);
        // Each day keeps the Twitter-like shape scaled by its amplitude:
        // every per-day peak lands within the drift band around the
        // Twitter peak.
        for day in 0..3 {
            let day_peak = t.as_qpm()[day * 1440..(day + 1) * 1440]
                .iter()
                .cloned()
                .fold(0.0, f64::max);
            assert!(
                (TWITTER_PEAK_QPM * 0.7..=TWITTER_PEAK_QPM * 1.3).contains(&day_peak),
                "day {day} peak {day_peak}"
            );
        }
        // Days differ from each other (independent structure streams).
        assert_ne!(t.as_qpm()[..1440], t.as_qpm()[1440..2880]);
    }

    #[test]
    fn diurnal_is_deterministic() {
        assert_eq!(diurnal(5, 2), diurnal(5, 2));
        assert_ne!(diurnal(5, 2), diurnal(6, 2));
        assert_eq!(diurnal(5, 0).len_minutes(), 0);
    }

    #[test]
    fn preemption_storm_picks_distinct_workers_in_one_minute() {
        let storm = preemption_storm(9, 8, 10, 0.3, 5.0);
        assert_eq!(storm.len(), 3); // ⌈0.3 × 10⌉
        let mut seen: Vec<usize> = storm.iter().flat_map(|(_, ws)| ws.clone()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 3, "workers must be distinct");
        for (minute, ws) in &storm {
            assert!((5.0..6.0).contains(minute), "instant {minute}");
            assert!(ws.iter().all(|&w| (8..18).contains(&w)));
        }
        // Determinism + seed sensitivity.
        assert_eq!(storm, preemption_storm(9, 8, 10, 0.3, 5.0));
        assert_ne!(storm, preemption_storm(10, 8, 10, 0.3, 5.0));
        // Degenerate cases.
        assert!(preemption_storm(1, 0, 10, 0.0, 5.0).is_empty());
        assert_eq!(preemption_storm(1, 0, 4, 1.0, 0.0).len(), 4);
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_bounded() {
        let trace = steady(120.0, 30);
        let times: Vec<SimTime> = ArrivalProcess::new(&trace, 1).collect();
        assert!(times.windows(2).all(|w| w[1] > w[0]));
        assert!(times.last().unwrap().as_minutes() <= 30.0);
    }

    #[test]
    fn arrival_count_matches_rate() {
        let trace = steady(120.0, 60); // expect 7200 arrivals
        let n = ArrivalProcess::new(&trace, 2).count() as f64;
        assert!((n - 7200.0).abs() < 3.0 * 7200.0f64.sqrt(), "n = {n}");
    }

    #[test]
    fn zero_rate_minutes_produce_no_arrivals() {
        let trace = Trace::from_qpm(vec![0.0, 60.0, 0.0]);
        let times: Vec<SimTime> = ArrivalProcess::new(&trace, 3).collect();
        assert!(!times.is_empty());
        for t in &times {
            let m = t.as_minutes();
            assert!((1.0..2.0).contains(&m), "arrival at minute {m}");
        }
    }

    #[test]
    fn arrival_process_is_deterministic() {
        let trace = twitter_like(7, 50);
        let a: Vec<SimTime> = ArrivalProcess::new(&trace, 9).collect();
        let b: Vec<SimTime> = ArrivalProcess::new(&trace, 9).collect();
        assert_eq!(a, b);
        let c: Vec<SimTime> = ArrivalProcess::new(&trace, 10).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn traces_are_serde_data_structures() {
        // Traces can be archived/replayed; the derives must stay in place.
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<Trace>();
    }

    #[test]
    fn nonhomogeneous_rates_are_respected() {
        let trace = Trace::from_qpm(vec![30.0; 30].into_iter().chain(vec![240.0; 30]).collect());
        let times: Vec<SimTime> = ArrivalProcess::new(&trace, 4).collect();
        let first_half = times.iter().filter(|t| t.as_minutes() < 30.0).count() as f64;
        let second_half = times.len() as f64 - first_half;
        let ratio = second_half / first_half.max(1.0);
        assert!((ratio - 8.0).abs() < 2.5, "ratio {ratio}");
    }
}
