//! # argus-ilp — linear and mixed-integer programming from scratch
//!
//! Argus solves an integer linear program every minute to decide which
//! approximation level each worker runs and how load splits across levels
//! (Eq. 1 of the paper, solved with Gurobi in the authors' deployment).
//! Gurobi is not available offline, so this crate implements the substrate:
//!
//! * a dense **two-phase primal simplex** LP solver with Bland's
//!   anti-cycling rule ([`solve_lp`]), and
//! * a **branch-and-bound** MILP solver on top ([`solve`]), branching on
//!   the most fractional integer variable with best-bound pruning.
//!
//! Problems are built with [`ProblemBuilder`]; the solver reports
//! [`Solution`] values per variable plus the objective, or a structured
//! [`SolveError`] (infeasible / unbounded / node limit).
//!
//! Scale target: the paper reports sub-100 ms solves "even for clusters
//! with tens of GPUs" (§5.7); the `solver_scaling` bench reproduces that
//! claim against this implementation.
//!
//! # Example
//!
//! ```
//! use argus_ilp::{ProblemBuilder, VarKind};
//!
//! // maximize 3x + 2y  s.t.  x + y ≤ 4,  x ≤ 2,  x, y ≥ 0 integer
//! let mut b = ProblemBuilder::maximize();
//! let x = b.add_var("x", VarKind::Integer, 0.0, f64::INFINITY, 3.0);
//! let y = b.add_var("y", VarKind::Integer, 0.0, f64::INFINITY, 2.0);
//! b.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
//! b.add_le(&[(x, 1.0)], 2.0);
//! let sol = b.build().solve().unwrap();
//! assert_eq!(sol.objective, 10.0); // x = 2, y = 2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod problem;
mod simplex;

pub use branch::{solve, solve_with_node_limit, SolveError};
pub use problem::{Cmp, Problem, ProblemBuilder, Sense, Solution, VarId, VarKind};
pub use simplex::solve_lp;

/// Numerical tolerance used throughout the solver.
pub(crate) const EPS: f64 = 1e-7;

/// Integrality tolerance: a value within this of an integer is integral.
pub(crate) const INT_EPS: f64 = 1e-6;
