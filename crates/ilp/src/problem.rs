//! Problem construction API.

use std::fmt;

/// Handle to a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

/// Whether a variable is continuous or integer-constrained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds (binary = integer in `[0, 1]`).
    Integer,
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `Σ aᵢxᵢ ≤ rhs`
    Le,
    /// `Σ aᵢxᵢ ≥ rhs`
    Ge,
    /// `Σ aᵢxᵢ = rhs`
    Eq,
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    /// Kept for diagnostics (Debug output of the problem).
    #[allow(dead_code)]
    pub name: String,
    pub kind: VarKind,
    pub lo: f64,
    pub hi: f64,
    pub obj: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    /// Sparse row: (variable index, coefficient).
    pub terms: Vec<(usize, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// A linear (or mixed-integer linear) program.
///
/// Construct via [`ProblemBuilder`]; solve with [`Problem::solve`] (MILP,
/// respecting integrality) or [`crate::solve_lp`] (relaxation).
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
}

/// Incremental builder for [`Problem`].
#[derive(Debug, Clone)]
pub struct ProblemBuilder {
    problem: Problem,
}

impl ProblemBuilder {
    /// Starts a maximization problem.
    pub fn maximize() -> Self {
        Self::with_sense(Sense::Maximize)
    }

    /// Starts a minimization problem.
    pub fn minimize() -> Self {
        Self::with_sense(Sense::Minimize)
    }

    /// Starts a problem with the given sense.
    pub fn with_sense(sense: Sense) -> Self {
        ProblemBuilder {
            problem: Problem {
                sense,
                vars: Vec::new(),
                constraints: Vec::new(),
            },
        }
    }

    /// Adds a variable with bounds `[lo, hi]` and objective coefficient
    /// `obj`. `hi` may be `f64::INFINITY`.
    ///
    /// # Panics
    /// Panics if `lo` is not finite, `lo > hi`, or `obj` is not finite.
    pub fn add_var(&mut self, name: &str, kind: VarKind, lo: f64, hi: f64, obj: f64) -> VarId {
        assert!(lo.is_finite(), "lower bound must be finite (var {name})");
        assert!(
            !hi.is_nan() && hi >= lo,
            "invalid bounds [{lo}, {hi}] for {name}"
        );
        assert!(obj.is_finite(), "objective coefficient must be finite");
        let id = VarId(self.problem.vars.len());
        self.problem.vars.push(Variable {
            name: name.to_string(),
            kind,
            lo,
            hi,
            obj,
        });
        id
    }

    /// Adds a binary (0/1 integer) variable.
    pub fn add_binary(&mut self, name: &str, obj: f64) -> VarId {
        self.add_var(name, VarKind::Integer, 0.0, 1.0, obj)
    }

    /// Adds a general constraint `Σ terms cmp rhs`.
    ///
    /// # Panics
    /// Panics if a coefficient or `rhs` is non-finite, or a variable id is
    /// out of range.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], cmp: Cmp, rhs: f64) {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        let mut row = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            assert!(v.0 < self.problem.vars.len(), "variable out of range");
            assert!(c.is_finite(), "constraint coefficient must be finite");
            row.push((v.0, c));
        }
        self.problem.constraints.push(Constraint {
            terms: row,
            cmp,
            rhs,
        });
    }

    /// Adds `Σ terms ≤ rhs`.
    pub fn add_le(&mut self, terms: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(terms, Cmp::Le, rhs);
    }

    /// Adds `Σ terms ≥ rhs`.
    pub fn add_ge(&mut self, terms: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(terms, Cmp::Ge, rhs);
    }

    /// Adds `Σ terms = rhs`.
    pub fn add_eq(&mut self, terms: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(terms, Cmp::Eq, rhs);
    }

    /// Finalizes the problem.
    pub fn build(self) -> Problem {
        self.problem
    }
}

impl Problem {
    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Whether any variable is integer-constrained.
    pub fn has_integers(&self) -> bool {
        self.vars.iter().any(|v| v.kind == VarKind::Integer)
    }

    /// Solves the problem, respecting integrality constraints.
    ///
    /// # Errors
    /// Returns [`crate::SolveError`] if the problem is infeasible,
    /// unbounded, or exceeds the branch-and-bound node limit.
    pub fn solve(&self) -> Result<Solution, crate::SolveError> {
        crate::solve(self)
    }

    /// Evaluates the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.vars.iter().zip(x).map(|(v, &xi)| v.obj * xi).sum()
    }

    /// Checks whether `x` satisfies all constraints and bounds within
    /// tolerance `tol` (integrality included for integer variables).
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (v, &xi) in self.vars.iter().zip(x) {
            if xi < v.lo - tol || xi > v.hi + tol {
                return false;
            }
            if v.kind == VarKind::Integer && (xi - xi.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(j, a)| a * x[j]).sum();
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Objective value in the problem's own sense.
    pub objective: f64,
    /// Value per variable, indexed by [`VarId`] order.
    pub values: Vec<f64>,
}

impl Solution {
    /// The value of a variable.
    ///
    /// # Panics
    /// Panics if the id does not belong to the solved problem.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.0]
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "objective {:.6} over {} vars",
            self.objective,
            self.values.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = ProblemBuilder::maximize();
        let x = b.add_var("x", VarKind::Continuous, 0.0, 1.0, 1.0);
        let y = b.add_binary("y", 2.0);
        assert_eq!(x, VarId(0));
        assert_eq!(y, VarId(1));
        let p = b.build();
        assert_eq!(p.num_vars(), 2);
        assert!(p.has_integers());
    }

    #[test]
    #[should_panic(expected = "lower bound must be finite")]
    fn rejects_infinite_lower_bound() {
        let mut b = ProblemBuilder::maximize();
        b.add_var("x", VarKind::Continuous, f64::NEG_INFINITY, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid bounds")]
    fn rejects_crossed_bounds() {
        let mut b = ProblemBuilder::maximize();
        b.add_var("x", VarKind::Continuous, 2.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "variable out of range")]
    fn rejects_foreign_var() {
        let mut b = ProblemBuilder::maximize();
        b.add_le(&[(VarId(3), 1.0)], 1.0);
    }

    #[test]
    fn feasibility_checker() {
        let mut b = ProblemBuilder::maximize();
        let x = b.add_var("x", VarKind::Integer, 0.0, 5.0, 1.0);
        let y = b.add_var("y", VarKind::Continuous, 0.0, 5.0, 1.0);
        b.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
        b.add_ge(&[(y, 1.0)], 1.0);
        b.add_eq(&[(x, 2.0)], 4.0);
        let p = b.build();
        assert!(p.is_feasible(&[2.0, 1.5], 1e-9));
        assert!(!p.is_feasible(&[2.5, 1.0], 1e-9)); // x not integer
        assert!(!p.is_feasible(&[2.0, 3.0], 1e-9)); // sum > 4
        assert!(!p.is_feasible(&[2.0, 0.0], 1e-9)); // y < 1
        assert!(!p.is_feasible(&[1.0, 1.0], 1e-9)); // 2x != 4
        assert!(!p.is_feasible(&[1.0], 1e-9)); // wrong arity
        assert_eq!(p.objective_value(&[2.0, 1.5]), 3.5);
    }
}
