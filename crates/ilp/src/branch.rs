//! Branch-and-bound MILP on top of the simplex relaxation.

use std::fmt;

use crate::problem::{Problem, Sense, Solution, VarKind};
use crate::simplex::solve_lp;
use crate::INT_EPS;

/// Maximum branch-and-bound nodes before giving up.
const NODE_LIMIT: usize = 200_000;

/// Failure modes of the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveError {
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// Branch-and-bound exceeded its node budget.
    NodeLimit,
    /// The simplex exceeded its pivot budget (numerical trouble).
    IterationLimit,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SolveError::Infeasible => "problem is infeasible",
            SolveError::Unbounded => "problem is unbounded",
            SolveError::NodeLimit => "branch-and-bound node limit exceeded",
            SolveError::IterationLimit => "simplex iteration limit exceeded",
        })
    }
}

impl std::error::Error for SolveError {}

/// Solves `problem` respecting integrality constraints, with the default
/// node budget ([`solve_with_node_limit`] with `NODE_LIMIT`).
///
/// Pure LPs go straight to the simplex; mixed-integer problems run
/// depth-first branch-and-bound on the most fractional variable with
/// best-bound pruning.
///
/// # Errors
/// See [`SolveError`].
pub fn solve(problem: &Problem) -> Result<Solution, SolveError> {
    solve_with_node_limit(problem, NODE_LIMIT)
}

/// [`solve`] with an explicit branch-and-bound node budget — callers
/// sizing a MILP to the instance (e.g. the Eq. 1 allocator at growing
/// cluster sizes) scale the budget instead of inheriting the default.
///
/// # Errors
/// See [`SolveError`].
pub fn solve_with_node_limit(problem: &Problem, node_limit: usize) -> Result<Solution, SolveError> {
    if !problem.has_integers() {
        return solve_lp(problem);
    }

    // Internal convention: treat as maximization for pruning logic.
    let flip = match problem.sense {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };

    let mut work = problem.clone();
    let mut best: Option<Solution> = None;
    let mut best_obj = f64::NEG_INFINITY;
    // Stack of (bound overrides) to apply; each node carries the full list.
    let mut stack: Vec<Vec<(usize, f64, f64)>> = vec![Vec::new()];
    let mut nodes = 0usize;

    while let Some(overrides) = stack.pop() {
        nodes += 1;
        if nodes > node_limit {
            return Err(SolveError::NodeLimit);
        }

        // Reset to pristine bounds, then apply node overrides.
        for (i, v) in work.vars.iter_mut().enumerate() {
            v.lo = problem.vars[i].lo;
            v.hi = problem.vars[i].hi;
        }
        let mut bounds_ok = true;
        for &(j, lo, hi) in &overrides {
            let v = &mut work.vars[j];
            v.lo = v.lo.max(lo);
            v.hi = v.hi.min(hi);
            if v.lo > v.hi {
                bounds_ok = false;
                break;
            }
        }
        if !bounds_ok {
            continue;
        }

        let relax = match solve_lp(&work) {
            Ok(s) => s,
            Err(SolveError::Infeasible) => continue,
            Err(SolveError::Unbounded) => {
                // Unbounded relaxation at the root means the MILP is
                // unbounded or infeasible; report unbounded (the common
                // case for well-formed models).
                if overrides.is_empty() {
                    return Err(SolveError::Unbounded);
                }
                continue;
            }
            Err(e) => return Err(e),
        };

        // Prune by bound.
        if flip * relax.objective <= best_obj + 1e-9 && best.is_some() {
            continue;
        }

        // Find the most fractional integer variable.
        let mut branch_var: Option<(usize, f64)> = None;
        for (j, v) in problem.vars.iter().enumerate() {
            if v.kind == VarKind::Integer {
                let x = relax.values[j];
                let frac = (x - x.round()).abs();
                if frac > INT_EPS {
                    let dist = (x - x.floor() - 0.5).abs(); // 0 = most fractional
                    match branch_var {
                        None => branch_var = Some((j, dist)),
                        Some((_, bd)) if dist < bd - 1e-12 => branch_var = Some((j, dist)),
                        _ => {}
                    }
                }
            }
        }

        match branch_var {
            None => {
                // Integer feasible: round off the epsilon fuzz.
                let mut values = relax.values.clone();
                for (j, v) in problem.vars.iter().enumerate() {
                    if v.kind == VarKind::Integer {
                        values[j] = values[j].round();
                    }
                }
                let objective = problem.objective_value(&values);
                if flip * objective > best_obj {
                    best_obj = flip * objective;
                    best = Some(Solution { objective, values });
                }
            }
            Some((j, _)) => {
                let x = relax.values[j];
                let floor = x.floor();
                // Explore the "up" branch last-pushed-first (DFS keeps the
                // branch closer to the relaxation value first).
                let mut up = overrides.clone();
                up.push((j, floor + 1.0, f64::INFINITY));
                let mut down = overrides;
                down.push((j, f64::NEG_INFINITY, floor));
                if x - floor > 0.5 {
                    stack.push(down);
                    stack.push(up);
                } else {
                    stack.push(up);
                    stack.push(down);
                }
            }
        }
    }

    best.ok_or(SolveError::Infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProblemBuilder, VarKind};
    use proptest::prelude::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y ≤ 5 → LP gives 2.5, ILP gives 2.
        let mut b = ProblemBuilder::maximize();
        let x = b.add_var("x", VarKind::Integer, 0.0, f64::INFINITY, 1.0);
        let y = b.add_var("y", VarKind::Integer, 0.0, f64::INFINITY, 1.0);
        b.add_le(&[(x, 2.0), (y, 2.0)], 5.0);
        let p = b.build();
        let lp = crate::solve_lp(&p).unwrap();
        assert!(approx(lp.objective, 2.5));
        let ilp = p.solve().unwrap();
        assert!(approx(ilp.objective, 2.0), "{ilp:?}");
        assert!(p.is_feasible(&ilp.values, 1e-6));
    }

    #[test]
    fn knapsack() {
        // values (10, 13, 7, 8), weights (3, 4, 2, 3), capacity 7 →
        // best = items 0 + 1 (10 + 13 = 23, weight 7).
        let values = [10.0, 13.0, 7.0, 8.0];
        let weights = [3.0, 4.0, 2.0, 3.0];
        let mut b = ProblemBuilder::maximize();
        let vars: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| b.add_binary(&format!("i{i}"), v))
            .collect();
        let terms: Vec<_> = vars
            .iter()
            .zip(weights.iter())
            .map(|(&v, &w)| (v, w))
            .collect();
        b.add_le(&terms, 7.0);
        let s = b.build().solve().unwrap();
        assert!(approx(s.objective, 23.0), "{s:?}");
        assert!(approx(s.value(vars[0]), 1.0));
        assert!(approx(s.value(vars[1]), 1.0));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // matrix index math reads clearer
    fn assignment_problem() {
        // 3×3 assignment, cost-minimizing perfect matching.
        let cost = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut b = ProblemBuilder::minimize();
        let mut x = vec![vec![]; 3];
        for i in 0..3 {
            for j in 0..3 {
                x[i].push(b.add_binary(&format!("x{i}{j}"), cost[i][j]));
            }
        }
        for i in 0..3 {
            let row: Vec<_> = (0..3).map(|j| (x[i][j], 1.0)).collect();
            b.add_eq(&row, 1.0);
            let col: Vec<_> = (0..3).map(|j| (x[j][i], 1.0)).collect();
            b.add_eq(&col, 1.0);
        }
        let s = b.build().solve().unwrap();
        // Optimal: (0→1)=1, (1→0)=2, (2→2)=2 → 5.
        assert!(approx(s.objective, 5.0), "{s:?}");
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 2x + 3y, x integer, y continuous; x + y ≤ 4.5, x ≤ 3 →
        // y carries the slack: x = 0, y = 4.5 → 13.5.
        let mut b = ProblemBuilder::maximize();
        let x = b.add_var("x", VarKind::Integer, 0.0, 3.0, 2.0);
        let y = b.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 3.0);
        b.add_le(&[(x, 1.0), (y, 1.0)], 4.5);
        let s = b.build().solve().unwrap();
        assert!(approx(s.objective, 13.5), "{s:?}");
        assert!(approx(s.value(x), 0.0));
    }

    #[test]
    fn infeasible_integer_problem() {
        // 2x = 3 with x integer.
        let mut b = ProblemBuilder::maximize();
        let x = b.add_var("x", VarKind::Integer, 0.0, 10.0, 1.0);
        b.add_eq(&[(x, 2.0)], 3.0);
        assert_eq!(b.build().solve(), Err(SolveError::Infeasible));
    }

    #[test]
    fn unbounded_integer_problem() {
        let mut b = ProblemBuilder::maximize();
        let x = b.add_var("x", VarKind::Integer, 0.0, f64::INFINITY, 1.0);
        b.add_ge(&[(x, 1.0)], 0.0);
        assert_eq!(b.build().solve(), Err(SolveError::Unbounded));
    }

    #[test]
    fn minimization_sense_in_bnb() {
        // min 3x + 4y s.t. x + 2y ≥ 5, integer → candidates: y=3 (12),
        // x=1,y=2 (11), x=3,y=1 (13), x=5 (15) → 11.
        let mut b = ProblemBuilder::minimize();
        let x = b.add_var("x", VarKind::Integer, 0.0, f64::INFINITY, 3.0);
        let y = b.add_var("y", VarKind::Integer, 0.0, f64::INFINITY, 4.0);
        b.add_ge(&[(x, 1.0), (y, 2.0)], 5.0);
        let s = b.build().solve().unwrap();
        assert!(approx(s.objective, 11.0), "{s:?}");
    }

    #[test]
    fn error_display() {
        assert_eq!(SolveError::Infeasible.to_string(), "problem is infeasible");
        assert!(SolveError::NodeLimit.to_string().contains("node limit"));
    }

    /// Brute-force reference for small binary problems.
    fn brute_force_best(
        n: usize,
        obj: &[f64],
        cons: &[(Vec<f64>, f64)], // Σ aᵢxᵢ ≤ rhs
    ) -> Option<f64> {
        let mut best = None;
        for mask in 0u32..(1 << n) {
            let x: Vec<f64> = (0..n).map(|i| f64::from((mask >> i) & 1)).collect();
            if cons
                .iter()
                .all(|(a, rhs)| a.iter().zip(&x).map(|(ai, xi)| ai * xi).sum::<f64>() <= rhs + 1e-9)
            {
                let v: f64 = obj.iter().zip(&x).map(|(o, xi)| o * xi).sum();
                best = Some(best.map_or(v, |b: f64| b.max(v)));
            }
        }
        best
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Branch-and-bound matches brute force on random binary programs.
        #[test]
        fn prop_bnb_matches_brute_force(
            n in 2usize..7,
            obj in proptest::collection::vec(-5.0f64..5.0, 7),
            a in proptest::collection::vec(0.0f64..4.0, 14),
            rhs in proptest::collection::vec(1.0f64..8.0, 2),
        ) {
            let obj = &obj[..n];
            let cons: Vec<(Vec<f64>, f64)> = (0..2)
                .map(|c| (a[c * 7..c * 7 + n].to_vec(), rhs[c]))
                .collect();

            let mut b = ProblemBuilder::maximize();
            let vars: Vec<_> = (0..n).map(|i| b.add_binary(&format!("x{i}"), obj[i])).collect();
            for (coeffs, r) in &cons {
                let terms: Vec<_> = vars.iter().zip(coeffs).map(|(&v, &c)| (v, c)).collect();
                b.add_le(&terms, *r);
            }
            let p = b.build();
            let got = p.solve().unwrap();
            let want = brute_force_best(n, obj, &cons).unwrap();
            prop_assert!((got.objective - want).abs() < 1e-6,
                "bnb {} vs brute {}", got.objective, want);
            prop_assert!(p.is_feasible(&got.values, 1e-6));
        }
    }
}
