//! Dense two-phase primal simplex with Bland's anti-cycling rule.

use crate::problem::{Cmp, Problem, Sense, Solution};
use crate::{SolveError, EPS};

/// Maximum simplex pivots per phase; with Bland's rule cycling is
/// impossible, so this only guards against implementation bugs.
const MAX_PIVOTS: usize = 200_000;

/// Solves the LP relaxation of `problem` (integrality ignored).
///
/// # Errors
/// Returns [`SolveError::Infeasible`], [`SolveError::Unbounded`] or
/// [`SolveError::IterationLimit`].
pub fn solve_lp(problem: &Problem) -> Result<Solution, SolveError> {
    Tableau::build(problem)?.solve(problem)
}

struct Tableau {
    /// (m + 1) rows × (ncols + 1); last row is the objective, last column
    /// the rhs.
    rows: Vec<Vec<f64>>,
    m: usize,
    ncols: usize,
    /// Basic variable (column index) per constraint row.
    basis: Vec<usize>,
    /// Number of structural (shifted) variables.
    n_struct: usize,
    /// First artificial column (artificials occupy `art_start..ncols`).
    art_start: usize,
    /// Per-variable lower bound shift (x = y + lo).
    shifts: Vec<f64>,
}

impl Tableau {
    /// Builds the phase-1 tableau in canonical form.
    fn build(problem: &Problem) -> Result<Tableau, SolveError> {
        let n = problem.vars.len();
        let shifts: Vec<f64> = problem.vars.iter().map(|v| v.lo).collect();

        // Collect rows: original constraints plus upper-bound rows.
        // Each row: dense coeffs over structural vars, cmp, rhs (shifted).
        let mut rows_raw: Vec<(Vec<f64>, Cmp, f64)> = Vec::new();
        for c in &problem.constraints {
            let mut coeffs = vec![0.0; n];
            let mut shift_sum = 0.0;
            for &(j, a) in &c.terms {
                coeffs[j] += a;
                shift_sum += a * shifts[j];
            }
            rows_raw.push((coeffs, c.cmp, c.rhs - shift_sum));
        }
        for (j, v) in problem.vars.iter().enumerate() {
            if v.hi.is_finite() {
                let mut coeffs = vec![0.0; n];
                coeffs[j] = 1.0;
                rows_raw.push((coeffs, Cmp::Le, v.hi - v.lo));
            }
        }

        // Normalize rhs ≥ 0.
        for (coeffs, cmp, rhs) in rows_raw.iter_mut() {
            if *rhs < 0.0 {
                for a in coeffs.iter_mut() {
                    *a = -*a;
                }
                *rhs = -*rhs;
                *cmp = match *cmp {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Ge => Cmp::Le,
                    Cmp::Eq => Cmp::Eq,
                };
            }
        }

        let m = rows_raw.len();
        let n_slack = rows_raw
            .iter()
            .filter(|(_, cmp, _)| *cmp != Cmp::Eq)
            .count();
        let n_art = rows_raw
            .iter()
            .filter(|(_, cmp, _)| *cmp != Cmp::Le)
            .count();
        let ncols = n + n_slack + n_art;
        let art_start = n + n_slack;

        let mut rows = vec![vec![0.0; ncols + 1]; m + 1];
        let mut basis = vec![usize::MAX; m];
        let mut slack_at = n;
        let mut art_at = art_start;
        for (i, (coeffs, cmp, rhs)) in rows_raw.iter().enumerate() {
            rows[i][..n].copy_from_slice(coeffs);
            rows[i][ncols] = *rhs;
            match cmp {
                Cmp::Le => {
                    rows[i][slack_at] = 1.0;
                    basis[i] = slack_at;
                    slack_at += 1;
                }
                Cmp::Ge => {
                    rows[i][slack_at] = -1.0;
                    slack_at += 1;
                    rows[i][art_at] = 1.0;
                    basis[i] = art_at;
                    art_at += 1;
                }
                Cmp::Eq => {
                    rows[i][art_at] = 1.0;
                    basis[i] = art_at;
                    art_at += 1;
                }
            }
        }

        // Phase-1 objective: minimize sum of artificials, canonicalized so
        // basic artificials have zero reduced cost.
        for cell in rows[m][art_start..ncols].iter_mut() {
            *cell = 1.0;
        }
        for i in 0..m {
            if basis[i] >= art_start {
                let row = rows[i].clone();
                for (z, a) in rows[m].iter_mut().zip(row.iter()) {
                    *z -= a;
                }
            }
        }

        Ok(Tableau {
            rows,
            m,
            ncols,
            basis,
            n_struct: n,
            art_start,
            shifts,
        })
    }

    /// Runs pivots until no negative reduced cost remains (minimization).
    /// `allowed` limits which columns may enter.
    fn optimize(&mut self, allowed: &dyn Fn(usize) -> bool) -> Result<(), SolveError> {
        for _ in 0..MAX_PIVOTS {
            // Bland: entering = lowest-index column with reduced cost < -EPS.
            let mut entering = None;
            for j in 0..self.ncols {
                if allowed(j) && self.rows[self.m][j] < -EPS {
                    entering = Some(j);
                    break;
                }
            }
            let Some(j) = entering else {
                return Ok(());
            };
            // Ratio test; Bland tie-break on basis variable index.
            let mut leaving: Option<(usize, f64)> = None;
            for i in 0..self.m {
                let a = self.rows[i][j];
                if a > EPS {
                    let ratio = self.rows[i][self.ncols] / a;
                    match leaving {
                        None => leaving = Some((i, ratio)),
                        Some((li, lr)) => {
                            if ratio < lr - EPS
                                || ((ratio - lr).abs() <= EPS && self.basis[i] < self.basis[li])
                            {
                                leaving = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((i, _)) = leaving else {
                return Err(SolveError::Unbounded);
            };
            self.pivot(i, j);
        }
        Err(SolveError::IterationLimit)
    }

    fn pivot(&mut self, i: usize, j: usize) {
        let piv = self.rows[i][j];
        debug_assert!(piv.abs() > EPS, "pivot on ~zero element");
        for a in self.rows[i].iter_mut() {
            *a /= piv;
        }
        let pivot_row = self.rows[i].clone();
        for (r, row) in self.rows.iter_mut().enumerate() {
            if r == i {
                continue;
            }
            let factor = row[j];
            if factor.abs() > EPS {
                for (a, p) in row.iter_mut().zip(pivot_row.iter()) {
                    *a -= factor * p;
                }
                row[j] = 0.0; // kill residual round-off exactly
            }
        }
        self.basis[i] = j;
    }

    fn solve(mut self, problem: &Problem) -> Result<Solution, SolveError> {
        // Phase 1.
        let art_start = self.art_start;
        if art_start < self.ncols {
            self.optimize(&|_| true)?;
            if self.rows[self.m][self.ncols].abs() > 1e-6 {
                // Objective row holds -(sum of artificials); nonzero means
                // the artificials could not be driven to zero.
                return Err(SolveError::Infeasible);
            }
            // Drive any basic artificials (at value 0) out of the basis.
            for i in 0..self.m {
                if self.basis[i] >= art_start {
                    let col = (0..art_start).find(|&j| self.rows[i][j].abs() > EPS);
                    if let Some(j) = col {
                        self.pivot(i, j);
                    }
                    // If no eligible column exists the row is redundant;
                    // the artificial stays basic at exactly zero.
                }
            }
        }

        // Phase 2: install the real objective (internal sense: minimize).
        let sign = match problem.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        for j in 0..self.ncols {
            self.rows[self.m][j] = if j < self.n_struct {
                sign * problem.vars[j].obj
            } else {
                0.0
            };
        }
        self.rows[self.m][self.ncols] = 0.0;
        // Canonicalize: zero out reduced costs of basic variables.
        for i in 0..self.m {
            let b = self.basis[i];
            let c = self.rows[self.m][b];
            if c.abs() > EPS {
                let row = self.rows[i].clone();
                for (z, a) in self.rows[self.m].iter_mut().zip(row.iter()) {
                    *z -= c * a;
                }
                self.rows[self.m][b] = 0.0;
            }
        }
        // Artificials may never re-enter.
        self.optimize(&|j| j < art_start)?;

        // Extract structural values.
        let mut y = vec![0.0; self.n_struct];
        for i in 0..self.m {
            if self.basis[i] < self.n_struct {
                y[self.basis[i]] = self.rows[i][self.ncols];
            }
        }
        let values: Vec<f64> = y
            .iter()
            .zip(self.shifts.iter())
            .map(|(&yi, &lo)| yi.max(0.0) + lo)
            .collect();
        let objective = problem.objective_value(&values);
        Ok(Solution { objective, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProblemBuilder, VarKind};

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
        let mut b = ProblemBuilder::maximize();
        let x = b.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 3.0);
        let y = b.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 5.0);
        b.add_le(&[(x, 1.0)], 4.0);
        b.add_le(&[(y, 2.0)], 12.0);
        b.add_le(&[(x, 3.0), (y, 2.0)], 18.0);
        let s = solve_lp(&b.build()).unwrap();
        assert!(approx(s.objective, 36.0), "{s:?}");
        assert!(approx(s.value(x), 2.0));
        assert!(approx(s.value(y), 6.0));
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y  s.t.  x + y ≥ 10, x ≥ 2 → (8, 2)? No: y cheaper to
        // avoid: take y = 0 requires x ≥ 10 → obj 20; or x=2,y=8 → 28. So
        // optimum x = 10, y = 0, obj 20.
        let mut b = ProblemBuilder::minimize();
        let x = b.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 2.0);
        let y = b.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 3.0);
        b.add_ge(&[(x, 1.0), (y, 1.0)], 10.0);
        b.add_ge(&[(x, 1.0)], 2.0);
        let s = solve_lp(&b.build()).unwrap();
        assert!(approx(s.objective, 20.0), "{s:?}");
        assert!(approx(s.value(x), 10.0));
    }

    #[test]
    fn equality_constraints() {
        // max x + y  s.t.  x + y = 5, x − y = 1 → (3, 2).
        let mut b = ProblemBuilder::maximize();
        let x = b.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        let y = b.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        b.add_eq(&[(x, 1.0), (y, 1.0)], 5.0);
        b.add_eq(&[(x, 1.0), (y, -1.0)], 1.0);
        let s = solve_lp(&b.build()).unwrap();
        assert!(approx(s.value(x), 3.0));
        assert!(approx(s.value(y), 2.0));
    }

    #[test]
    fn detects_infeasible() {
        let mut b = ProblemBuilder::maximize();
        let x = b.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        b.add_le(&[(x, 1.0)], 1.0);
        b.add_ge(&[(x, 1.0)], 2.0);
        assert_eq!(solve_lp(&b.build()), Err(SolveError::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut b = ProblemBuilder::maximize();
        let x = b.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        let y = b.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 0.0);
        b.add_ge(&[(x, 1.0), (y, -1.0)], 0.0);
        assert_eq!(solve_lp(&b.build()), Err(SolveError::Unbounded));
    }

    #[test]
    fn respects_variable_bounds() {
        // max x + y with x ∈ [1, 3], y ∈ [0, 2], x + y ≤ 4 → obj 4 with
        // e.g. x=3,y=1 or x=2,y=2.
        let mut b = ProblemBuilder::maximize();
        let x = b.add_var("x", VarKind::Continuous, 1.0, 3.0, 1.0);
        let y = b.add_var("y", VarKind::Continuous, 0.0, 2.0, 1.0);
        b.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
        let p = b.build();
        let s = solve_lp(&p).unwrap();
        assert!(approx(s.objective, 4.0), "{s:?}");
        assert!(p.is_feasible(&s.values, 1e-6));
    }

    #[test]
    fn nonzero_lower_bounds_shift_correctly() {
        // min x  with x ≥ 2.5 free otherwise → 2.5.
        let mut b = ProblemBuilder::minimize();
        let x = b.add_var("x", VarKind::Continuous, 2.5, f64::INFINITY, 1.0);
        let s = solve_lp(&b.build()).unwrap();
        assert!(approx(s.value(x), 2.5));
        assert!(approx(s.objective, 2.5));
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // x − y ≤ −2  with max x, x ≤ 10, y ≤ 10 → x = 8 (y = 10).
        let mut b = ProblemBuilder::maximize();
        let x = b.add_var("x", VarKind::Continuous, 0.0, 10.0, 1.0);
        let y = b.add_var("y", VarKind::Continuous, 0.0, 10.0, 0.0);
        b.add_le(&[(x, 1.0), (y, -1.0)], -2.0);
        let s = solve_lp(&b.build()).unwrap();
        assert!(approx(s.value(x), 8.0), "{s:?}");
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints active at the origin.
        let mut b = ProblemBuilder::maximize();
        let x = b.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 0.75);
        let y = b.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, -150.0);
        let z = b.add_var("z", VarKind::Continuous, 0.0, f64::INFINITY, 0.02);
        let w = b.add_var("w", VarKind::Continuous, 0.0, f64::INFINITY, -6.0);
        b.add_le(&[(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)], 0.0);
        b.add_le(&[(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)], 0.0);
        b.add_le(&[(z, 1.0)], 1.0);
        // Beale's cycling example — Bland's rule must terminate.
        let s = solve_lp(&b.build()).unwrap();
        assert!(approx(s.objective, 0.05), "{s:?}");
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // x + y = 4 stated twice: phase 1 leaves a redundant artificial.
        let mut b = ProblemBuilder::maximize();
        let x = b.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 2.0);
        let y = b.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        b.add_eq(&[(x, 1.0), (y, 1.0)], 4.0);
        b.add_eq(&[(x, 1.0), (y, 1.0)], 4.0);
        let s = solve_lp(&b.build()).unwrap();
        assert!(approx(s.objective, 8.0), "{s:?}");
        assert!(approx(s.value(x), 4.0));
    }

    #[test]
    fn zero_constraint_problem() {
        // Bounded only by variable bounds.
        let mut b = ProblemBuilder::maximize();
        let x = b.add_var("x", VarKind::Continuous, 0.0, 7.0, 2.0);
        let s = solve_lp(&b.build()).unwrap();
        assert!(approx(s.value(x), 7.0));
        assert!(approx(s.objective, 14.0));
    }
}
