//! Hand-checked LP and MILP instances: classic textbook problems whose
//! optima are known in closed form, exercising the two-phase simplex and
//! branch-and-bound through the public API.

use argus_ilp::{solve_lp, Cmp, ProblemBuilder, SolveError, VarKind};

const TOL: f64 = 1e-6;

// ------------------------------------------------------------------ //
// Pure LPs through the simplex
// ------------------------------------------------------------------ //

#[test]
fn lp_two_variable_vertex_optimum() {
    // maximize 3x + 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  (Dantzig's
    // classic): optimum 36 at (2, 6).
    let mut b = ProblemBuilder::maximize();
    let x = b.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 3.0);
    let y = b.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 5.0);
    b.add_le(&[(x, 1.0)], 4.0);
    b.add_le(&[(y, 2.0)], 12.0);
    b.add_le(&[(x, 3.0), (y, 2.0)], 18.0);
    let sol = solve_lp(&b.build()).unwrap();
    assert!(
        (sol.objective - 36.0).abs() < TOL,
        "objective {}",
        sol.objective
    );
    assert!((sol.value(x) - 2.0).abs() < TOL);
    assert!((sol.value(y) - 6.0).abs() < TOL);
}

#[test]
fn lp_minimization_diet_style() {
    // minimize 0.6a + 0.35b  s.t.  5a + 7b ≥ 8, 4a + 2b ≥ 15, a, b ≥ 0.
    // The second constraint binds alone: optimum at a = 3.75, b = 0,
    // cost 2.25 (checking 5·3.75 = 18.75 ≥ 8 holds slack).
    let mut b = ProblemBuilder::minimize();
    let a = b.add_var("a", VarKind::Continuous, 0.0, f64::INFINITY, 0.6);
    let c = b.add_var("b", VarKind::Continuous, 0.0, f64::INFINITY, 0.35);
    b.add_ge(&[(a, 5.0), (c, 7.0)], 8.0);
    b.add_ge(&[(a, 4.0), (c, 2.0)], 15.0);
    let sol = solve_lp(&b.build()).unwrap();
    assert!(
        (sol.objective - 2.25).abs() < TOL,
        "objective {}",
        sol.objective
    );
    assert!((sol.value(a) - 3.75).abs() < TOL);
    assert!(sol.value(c).abs() < TOL);
}

#[test]
fn lp_equality_transport_balance() {
    // minimize x + 2y + 3z  s.t.  x + y + z = 10, y + z ≥ 4, z ≤ 2.
    // Cheapest fill: x = 6, y = 4, z = 0 → objective 14.
    let mut b = ProblemBuilder::minimize();
    let x = b.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
    let y = b.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 2.0);
    let z = b.add_var("z", VarKind::Continuous, 0.0, f64::INFINITY, 3.0);
    b.add_eq(&[(x, 1.0), (y, 1.0), (z, 1.0)], 10.0);
    b.add_ge(&[(y, 1.0), (z, 1.0)], 4.0);
    b.add_le(&[(z, 1.0)], 2.0);
    let sol = solve_lp(&b.build()).unwrap();
    assert!(
        (sol.objective - 14.0).abs() < TOL,
        "objective {}",
        sol.objective
    );
    assert!((sol.value(x) - 6.0).abs() < TOL);
    assert!((sol.value(y) - 4.0).abs() < TOL);
    assert!(sol.value(z).abs() < TOL);
}

#[test]
fn lp_degenerate_vertex_terminates() {
    // A degenerate vertex (three constraints through one point in 2D);
    // Bland's rule must not cycle. Optimum 2 at (1, 1).
    let mut b = ProblemBuilder::maximize();
    let x = b.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
    let y = b.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
    b.add_le(&[(x, 1.0)], 1.0);
    b.add_le(&[(y, 1.0)], 1.0);
    b.add_le(&[(x, 1.0), (y, 1.0)], 2.0);
    let sol = solve_lp(&b.build()).unwrap();
    assert!((sol.objective - 2.0).abs() < TOL);
}

#[test]
fn lp_infeasible_and_unbounded_are_reported() {
    // x ≥ 3 and x ≤ 1 cannot both hold.
    let mut b = ProblemBuilder::maximize();
    let x = b.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
    b.add_ge(&[(x, 1.0)], 3.0);
    b.add_le(&[(x, 1.0)], 1.0);
    assert_eq!(solve_lp(&b.build()), Err(SolveError::Infeasible));

    // maximize x with no upper bound.
    let mut b = ProblemBuilder::maximize();
    let x = b.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
    b.add_ge(&[(x, 1.0)], 0.0);
    assert_eq!(solve_lp(&b.build()), Err(SolveError::Unbounded));
}

// ------------------------------------------------------------------ //
// MILPs through branch-and-bound
// ------------------------------------------------------------------ //

#[test]
fn milp_rounding_is_not_optimal() {
    // maximize x + y  s.t.  -2x + 2y ≥ 1, -8x + 10y ≤ 13, integer.
    // The LP relaxation optimum is (4, 4.5); naive rounding is infeasible.
    // Integer optimum: (1, 2) with objective 3.
    let mut b = ProblemBuilder::maximize();
    let x = b.add_var("x", VarKind::Integer, 0.0, f64::INFINITY, 1.0);
    let y = b.add_var("y", VarKind::Integer, 0.0, f64::INFINITY, 1.0);
    b.add_constraint(&[(x, -2.0), (y, 2.0)], Cmp::Ge, 1.0);
    b.add_constraint(&[(x, -8.0), (y, 10.0)], Cmp::Le, 13.0);
    let p = b.build();
    let sol = p.solve().unwrap();
    assert!(
        (sol.objective - 3.0).abs() < TOL,
        "objective {}",
        sol.objective
    );
    assert!(p.is_feasible(&sol.values, TOL));
    assert!((sol.value(x) - 1.0).abs() < TOL);
    assert!((sol.value(y) - 2.0).abs() < TOL);
}

#[test]
fn milp_knapsack_binary() {
    // 0/1 knapsack, capacity 10: items (weight, value) =
    // (5, 10), (4, 40), (6, 30), (3, 50). Best: items 2 and 4
    // (weight 7, value 90); greedy-by-value would take item 1 first.
    let weights = [5.0, 4.0, 6.0, 3.0];
    let values = [10.0, 40.0, 30.0, 50.0];
    let mut b = ProblemBuilder::maximize();
    let vars: Vec<_> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| b.add_binary(&format!("item{i}"), v))
        .collect();
    let terms: Vec<_> = vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect();
    b.add_le(&terms, 10.0);
    let p = b.build();
    let sol = p.solve().unwrap();
    assert!(
        (sol.objective - 90.0).abs() < TOL,
        "objective {}",
        sol.objective
    );
    assert!(sol.value(vars[0]).abs() < TOL);
    assert!((sol.value(vars[1]) - 1.0).abs() < TOL);
    assert!(sol.value(vars[2]).abs() < TOL);
    assert!((sol.value(vars[3]) - 1.0).abs() < TOL);
}

#[test]
fn milp_mixed_integer_and_continuous() {
    // maximize 4x + 3y with x integer, y continuous:
    // x + y ≤ 4.5, x ≤ 2.8. The LP relaxation takes x = 2.8 (obj 16.3);
    // integrality forces x = 2, y = 2.5 → 15.5 (x = 1 gives 14.5,
    // x = 0 gives 13.5).
    let mut b = ProblemBuilder::maximize();
    let x = b.add_var("x", VarKind::Integer, 0.0, f64::INFINITY, 4.0);
    let y = b.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 3.0);
    b.add_le(&[(x, 1.0), (y, 1.0)], 4.5);
    b.add_le(&[(x, 1.0)], 2.8);
    let sol = b.build().solve().unwrap();
    assert!(
        (sol.objective - 15.5).abs() < TOL,
        "objective {}",
        sol.objective
    );
    assert!((sol.value(x) - 2.0).abs() < TOL);
    assert!((sol.value(y) - 2.5).abs() < TOL);
}

#[test]
fn milp_integer_infeasibility_detected() {
    // 0.4 ≤ x ≤ 0.6 has continuous solutions but no integer ones.
    let mut b = ProblemBuilder::maximize();
    let x = b.add_var("x", VarKind::Integer, 0.0, f64::INFINITY, 1.0);
    b.add_ge(&[(x, 1.0)], 0.4);
    b.add_le(&[(x, 1.0)], 0.6);
    assert_eq!(b.build().solve(), Err(SolveError::Infeasible));
}

#[test]
fn milp_equality_partition() {
    // Pick integers x, y ≥ 0 with x + y = 7 maximizing 3x + 2y subject to
    // x ≤ 5: optimum x = 5, y = 2 → 19.
    let mut b = ProblemBuilder::maximize();
    let x = b.add_var("x", VarKind::Integer, 0.0, 5.0, 3.0);
    let y = b.add_var("y", VarKind::Integer, 0.0, f64::INFINITY, 2.0);
    b.add_eq(&[(x, 1.0), (y, 1.0)], 7.0);
    let sol = b.build().solve().unwrap();
    assert!((sol.objective - 19.0).abs() < TOL);
    assert!((sol.value(x) - 5.0).abs() < TOL);
    assert!((sol.value(y) - 2.0).abs() < TOL);
}
