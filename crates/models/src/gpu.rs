//! GPU architectures referenced by the paper's evaluation (Fig. 5, §4.7).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An NVIDIA data-center GPU architecture.
///
/// Peak numbers are FP16 tensor-core throughput and HBM bandwidth from the
/// public datasheets; the paper's testbed is 8× A100-80GiB (§4.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum GpuArch {
    /// Tesla V100 (16 GiB HBM2).
    V100,
    /// A10G (24 GiB GDDR6), the AWS G5 instance GPU.
    A10G,
    /// A100 80 GiB HBM2e — the paper's serving GPU.
    A100,
}

impl GpuArch {
    /// All supported architectures, oldest first.
    pub const ALL: [GpuArch; 3] = [GpuArch::V100, GpuArch::A10G, GpuArch::A100];

    /// Peak FP16 tensor throughput in TFLOPS.
    pub fn peak_tflops(self) -> f64 {
        match self {
            GpuArch::V100 => 112.0,
            GpuArch::A10G => 125.0,
            GpuArch::A100 => 312.0,
        }
    }

    /// Peak memory bandwidth in GB/s.
    pub fn mem_bw_gbps(self) -> f64 {
        match self {
            GpuArch::V100 => 900.0,
            GpuArch::A10G => 600.0,
            GpuArch::A100 => 2039.0,
        }
    }

    /// On-device memory in GiB. Determines how many model variants can be
    /// resident simultaneously during strategy switches (§4.6).
    pub fn hbm_gib(self) -> f64 {
        match self {
            GpuArch::V100 => 16.0,
            GpuArch::A10G => 24.0,
            GpuArch::A100 => 80.0,
        }
    }

    /// The roofline ridge point in FLOP/byte: arithmetic intensities above
    /// this are compute-bound, below are memory-bound (Fig. 15).
    pub fn ridge_point(self) -> f64 {
        self.peak_tflops() * 1e12 / (self.mem_bw_gbps() * 1e9)
    }

    /// Human-readable name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            GpuArch::V100 => "V100",
            GpuArch::A10G => "A10G",
            GpuArch::A100 => "A100",
        }
    }
}

impl fmt::Display for GpuArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newer_gpus_are_faster() {
        assert!(GpuArch::A100.peak_tflops() > GpuArch::A10G.peak_tflops());
        assert!(GpuArch::A100.peak_tflops() > GpuArch::V100.peak_tflops());
        assert!(GpuArch::A100.mem_bw_gbps() > GpuArch::V100.mem_bw_gbps());
    }

    #[test]
    fn a100_holds_two_sdxl_class_models() {
        // §4.6: 80 GB HBM can hold SD-XL (~15 GB serving footprint incl.
        // activations) plus a smaller variant during switches.
        assert!(GpuArch::A100.hbm_gib() >= 2.0 * 15.0);
    }

    #[test]
    fn ridge_points_are_plausible() {
        // A100 ridge ≈ 153 FLOP/byte, the dotted line of Fig. 15.
        let r = GpuArch::A100.ridge_point();
        assert!((r - 153.0).abs() < 5.0, "ridge {r}");
        for g in GpuArch::ALL {
            assert!(g.ridge_point() > 0.0);
        }
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(GpuArch::A100.to_string(), "A100");
        assert_eq!(GpuArch::A10G.to_string(), "A10G");
        assert_eq!(GpuArch::V100.to_string(), "V100");
    }
}
