//! Reference non-diffusion models used for comparison in Fig. 14 (batching)
//! and Fig. 15 (roofline): YOLOv5n, ResNet-50, EfficientNet-b4 and the
//! decode phase of GPT-8B.

use std::fmt;

use crate::batching::PassProfile;

/// A non-diffusion deep-learning model used as a batching/roofline
/// reference point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NonDmModel {
    /// YOLOv5-nano object detector (640×640 input).
    YoloV5n,
    /// ResNet-50 image classifier.
    ResNet50,
    /// EfficientNet-b4 image classifier.
    EfficientNetB4,
    /// 8-billion-parameter GPT decode step (one token, batch of sequences).
    Gpt8bDecode,
}

impl NonDmModel {
    /// All reference models.
    pub const ALL: [NonDmModel; 4] = [
        NonDmModel::YoloV5n,
        NonDmModel::ResNet50,
        NonDmModel::EfficientNetB4,
        NonDmModel::Gpt8bDecode,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            NonDmModel::YoloV5n => "YOLOv5n",
            NonDmModel::ResNet50 => "ResNet50",
            NonDmModel::EfficientNetB4 => "EfficientNet-b4",
            NonDmModel::Gpt8bDecode => "GPT-8B",
        }
    }

    /// Pass profile (FLOPs, weight traffic, activations) from the public
    /// architecture descriptions. All of these are memory-bound at batch
    /// size 1 on an A100 (left of the ridge in Fig. 15), which is exactly
    /// why they batch well in Fig. 14.
    pub fn pass_profile(self) -> PassProfile {
        match self {
            NonDmModel::YoloV5n => PassProfile {
                gflops_per_sample: 4.5,
                weight_gb: 0.0038, // 1.9 M params fp16
                activation_gb_per_sample: 0.18,
                compute_efficiency: 0.35,
                fixed_overhead_s: 3e-3,
            },
            NonDmModel::ResNet50 => PassProfile {
                gflops_per_sample: 4.1,
                weight_gb: 0.051, // 25.6 M params fp16
                activation_gb_per_sample: 0.075,
                compute_efficiency: 0.45,
                fixed_overhead_s: 2e-3,
            },
            NonDmModel::EfficientNetB4 => PassProfile {
                gflops_per_sample: 4.2,
                weight_gb: 0.038, // 19 M params fp16
                activation_gb_per_sample: 0.11,
                compute_efficiency: 0.30,
                fixed_overhead_s: 2.5e-3,
            },
            NonDmModel::Gpt8bDecode => PassProfile {
                gflops_per_sample: 16.0, // 2 × params per token
                weight_gb: 16.0,         // 8 B params fp16, read per decode step
                activation_gb_per_sample: 0.02,
                compute_efficiency: 0.50,
                fixed_overhead_s: 5e-4,
            },
        }
    }

    /// Arithmetic intensity at batch size 1, the X coordinate in Fig. 15.
    pub fn arithmetic_intensity(self) -> f64 {
        self.pass_profile().arithmetic_intensity(1)
    }
}

impl fmt::Display for NonDmModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuArch;

    #[test]
    fn all_are_memory_bound_on_a100_at_batch_one() {
        // Fig. 15: non-DM models sit left of the dotted ridge line.
        let ridge = GpuArch::A100.ridge_point();
        for m in NonDmModel::ALL {
            assert!(
                m.arithmetic_intensity() < ridge,
                "{m}: AI {} >= ridge {ridge}",
                m.arithmetic_intensity()
            );
        }
    }

    #[test]
    fn gpt_decode_is_extremely_memory_bound() {
        // LLM decode reads the full weights per token: AI ≈ 1.
        let ai = NonDmModel::Gpt8bDecode.arithmetic_intensity();
        assert!(ai < 2.0, "AI {ai}");
    }

    #[test]
    fn dms_have_higher_intensity_than_all_references() {
        use crate::ModelVariant;
        let max_ref = NonDmModel::ALL
            .iter()
            .map(|m| m.arithmetic_intensity())
            .fold(f64::NEG_INFINITY, f64::max);
        for v in ModelVariant::ALL {
            assert!(v.spec().unet().arithmetic_intensity > max_ref);
        }
    }

    #[test]
    fn names_are_paper_labels() {
        assert_eq!(NonDmModel::YoloV5n.to_string(), "YOLOv5n");
        assert_eq!(NonDmModel::Gpt8bDecode.to_string(), "GPT-8B");
    }
}
