//! Per-component model specifications (paper Table 3).

/// One component of a diffusion pipeline (text encoder, UNet, VAE decoder)
/// with the compute profile from the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentSpec {
    /// Component name ("Text Encoder", "UNet", "VAE Decoder").
    pub name: &'static str,
    /// Parameter count in billions.
    pub params_b: f64,
    /// Weight size in GiB.
    pub size_gib: f64,
    /// FLOPs per invocation, in GFLOPs (the paper's "FLOPs (B)" column).
    pub gflops: f64,
    /// Arithmetic intensity in FLOP/byte.
    pub arithmetic_intensity: f64,
}

impl ComponentSpec {
    /// Bytes moved per invocation, derived from FLOPs and arithmetic
    /// intensity (`bytes = flops / AI`).
    pub fn bytes_per_invocation(&self) -> f64 {
        self.gflops * 1e9 / self.arithmetic_intensity
    }

    /// Whether this component is compute-bound on the given ridge point
    /// (arithmetic intensity above the ridge).
    pub fn is_compute_bound_at(&self, ridge_point: f64) -> bool {
        self.arithmetic_intensity > ridge_point
    }
}

/// Builds a [`ComponentSpec`]; internal helper for the static catalogs.
pub(crate) const fn component(
    name: &'static str,
    params_b: f64,
    size_gib: f64,
    gflops: f64,
    arithmetic_intensity: f64,
) -> ComponentSpec {
    ComponentSpec {
        name,
        params_b,
        size_gib,
        gflops,
        arithmetic_intensity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_bytes_are_consistent() {
        let c = component("UNet", 2.567, 4.782, 11958.197, 2328.796);
        let bytes = c.bytes_per_invocation();
        // flops / bytes must reproduce the stated arithmetic intensity.
        assert!((c.gflops * 1e9 / bytes - c.arithmetic_intensity).abs() < 1e-6);
    }

    #[test]
    fn compute_boundedness_threshold() {
        let c = component("UNet", 0.323, 0.602, 409.334, 632.890);
        assert!(c.is_compute_bound_at(153.0));
        assert!(!c.is_compute_bound_at(1000.0));
    }
}
