//! # argus-models — the diffusion-model substrate catalog
//!
//! Argus never looks inside a diffusion model: every scheduling decision is a
//! function of profiled *latency*, *memory footprint*, *loading time* and
//! *average quality* per approximation level. This crate reproduces that
//! profile surface from the numbers published in the paper:
//!
//! * [`GpuArch`] — V100 / A10G / A100 peak compute, bandwidth and HBM.
//! * [`ModelVariant`] + [`ModelSpec`] — the six serving variants (Tiny-SD,
//!   Small-SD, SD-1.4, SD-1.5, SD-2.0, SD-XL) with per-component parameter
//!   counts, sizes, FLOPs and arithmetic intensity (paper Table 3).
//! * [`latency`] — per-GPU inference latency (paper Fig. 5 / Table 2) and
//!   model loading times for both the PyTorch and Accelerate loaders
//!   (Table 2).
//! * [`AcLevel`] — approximate-caching levels `K ∈ {0,5,10,15,20,25}` with
//!   the resume-from-step-K latency model (§2.1, Fig. 6).
//! * [`ApproxLevel`] — the unified "approximation level" abstraction the
//!   allocator optimises over, covering both strategies.
//! * [`batching`] — the compute-vs-memory-bound batching model behind the
//!   paper's Observation 5 (Fig. 14).
//! * [`roofline`] — attainable-FLOPS roofline (Fig. 15) for DMs and
//!   reference non-diffusion models ([`nondm`]).
//! * [`extended`] — the 17-model catalog (A–Q) of Fig. 13.
//!
//! # Example
//!
//! ```
//! use argus_models::{GpuArch, ModelVariant, latency};
//!
//! let t = latency::inference_secs(ModelVariant::SdXl, GpuArch::A100);
//! assert!((t - 4.2).abs() < 1e-9); // §5.1: 4.2 s per image on A100
//! let qpm = latency::peak_throughput_per_min(ModelVariant::SdXl, GpuArch::A100);
//! assert!(qpm > 14.0 && qpm < 15.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ac;
mod approx;
pub mod batching;
mod component;
pub mod extended;
mod gpu;
pub mod latency;
pub mod nondm;
pub mod roofline;
mod variant;

pub use ac::{AcLevel, AC_LEVELS, TOTAL_DENOISE_STEPS};
pub use approx::{ApproxLevel, Strategy};
pub use component::ComponentSpec;
pub use gpu::GpuArch;
pub use variant::{ModelSpec, ModelVariant, SM_LADDER};
