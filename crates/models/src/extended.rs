//! The 17-model catalog (A–Q) of Fig. 13.
//!
//! The paper compares 17 T2I models against AC variants of the base SD-XL
//! and observes that AC variants "frequently lie on the Pareto frontier".
//! Six of the letters are identified in the caption (A: SD-XL, D: SD-2.1,
//! H: SD-1.5, I: Small, K: SD-1.4, N: Tiny); the remainder are distilled
//! or quantized community variants, reconstructed here with
//! quality/throughput positions consistent with the published scatter
//! (median PickScore 16.5–21, throughput 10–35 images/min/instance).

use crate::{AcLevel, GpuArch, ModelVariant, AC_LEVELS};

/// One model in the Fig. 13 scatter.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogModel {
    /// The letter used in Fig. 13 (A–Q).
    pub letter: char,
    /// Model name.
    pub name: &'static str,
    /// Per-instance throughput in images/min on an A100.
    pub throughput_per_min: f64,
    /// Median PickScore over the 10 k DiffusionDB prompts.
    pub median_quality: f64,
    /// The serving [`ModelVariant`] this corresponds to, if any.
    pub serving_variant: Option<ModelVariant>,
}

/// A (throughput, quality) point for Pareto analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QtPoint {
    /// Throughput, images/min (higher is better).
    pub throughput: f64,
    /// Median quality, PickScore (higher is better).
    pub quality: f64,
}

/// The full A–Q catalog.
pub fn catalog() -> Vec<CatalogModel> {
    fn m(
        letter: char,
        name: &'static str,
        throughput_per_min: f64,
        median_quality: f64,
        serving_variant: Option<ModelVariant>,
    ) -> CatalogModel {
        CatalogModel {
            letter,
            name,
            throughput_per_min,
            median_quality,
            serving_variant,
        }
    }
    vec![
        m('A', "SD-XL", 14.3, 21.0, Some(ModelVariant::SdXl)),
        m('B', "SD-XL-int8", 16.3, 20.6, None),
        m('C', "DeciDiffusion-1.0", 17.5, 20.1, None),
        m('D', "SD-2.1", 14.9, 20.0, None),
        m('E', "SD-2.0", 15.2, 19.8, Some(ModelVariant::Sd20)),
        m('F', "SD-2.1-int8", 17.1, 19.4, None),
        m('G', "SSD-1B", 18.6, 19.7, None),
        m('H', "SD-1.5", 15.6, 19.3, Some(ModelVariant::Sd15)),
        m('I', "Small-SD", 21.8, 17.4, Some(ModelVariant::SmallSd)),
        m('J', "SD-1.5-int8", 18.0, 19.0, None),
        m('K', "SD-1.4", 15.8, 19.0, Some(ModelVariant::Sd14)),
        m('L', "LCM-SD-1.5", 24.0, 17.6, None),
        m('M', "SD-Turbo", 26.0, 17.2, None),
        m('N', "Tiny-SD", 27.5, 16.9, Some(ModelVariant::TinySd)),
        m('O', "Tiny-SD-int8", 30.0, 16.4, None),
        m('P', "SDXL-Lightning-4s", 22.5, 18.6, None),
        m('Q', "Mini-SD", 33.0, 16.0, None),
    ]
}

/// The AC variant points ("X" markers in Fig. 13): K = 5, 10, 15, 20, 25.
pub fn ac_points(gpu: GpuArch) -> Vec<(AcLevel, QtPoint)> {
    AC_LEVELS
        .iter()
        .copied()
        .filter(|k| k.skipped_steps() > 0)
        .map(|k| {
            (
                k,
                QtPoint {
                    throughput: k.peak_throughput_per_min(gpu),
                    quality: k.profiled_quality(),
                },
            )
        })
        .collect()
}

/// Computes the indices of Pareto-optimal points (maximize both throughput
/// and quality). A point is on the frontier iff no other point is at least
/// as good in both dimensions and strictly better in one.
pub fn pareto_frontier(points: &[QtPoint]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points.iter().enumerate().any(|(j, q)| {
                j != i
                    && q.throughput >= points[i].throughput
                    && q.quality >= points[i].quality
                    && (q.throughput > points[i].throughput || q.quality > points[i].quality)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_17_models_with_unique_letters() {
        let c = catalog();
        assert_eq!(c.len(), 17);
        let mut letters: Vec<char> = c.iter().map(|m| m.letter).collect();
        letters.sort_unstable();
        letters.dedup();
        assert_eq!(letters.len(), 17);
        assert_eq!(letters[0], 'A');
        assert_eq!(letters[16], 'Q');
    }

    #[test]
    fn caption_identities_match() {
        let c = catalog();
        let by = |l: char| c.iter().find(|m| m.letter == l).unwrap();
        assert_eq!(by('A').name, "SD-XL");
        assert_eq!(by('D').name, "SD-2.1");
        assert_eq!(by('H').name, "SD-1.5");
        assert_eq!(by('I').name, "Small-SD");
        assert_eq!(by('K').name, "SD-1.4");
        assert_eq!(by('N').name, "Tiny-SD");
    }

    #[test]
    fn scatter_stays_in_published_ranges() {
        for m in catalog() {
            assert!(
                m.throughput_per_min >= 10.0 && m.throughput_per_min <= 35.0,
                "{}: tp {}",
                m.name,
                m.throughput_per_min
            );
            assert!(
                m.median_quality >= 16.0 && m.median_quality <= 21.5,
                "{}: q {}",
                m.name,
                m.median_quality
            );
        }
    }

    #[test]
    fn all_ac_variants_lie_on_pareto_frontier() {
        // The paper's Fig. 13 takeaway: "AC variants frequently lie on the
        // Pareto frontier". In our calibration all five do.
        let mut points: Vec<QtPoint> = catalog()
            .iter()
            .map(|m| QtPoint {
                throughput: m.throughput_per_min,
                quality: m.median_quality,
            })
            .collect();
        let n_models = points.len();
        let ac = ac_points(GpuArch::A100);
        points.extend(ac.iter().map(|(_, p)| *p));
        let frontier = pareto_frontier(&points);
        let ac_on_frontier = frontier.iter().filter(|&&i| i >= n_models).count();
        assert_eq!(ac_on_frontier, ac.len(), "frontier {frontier:?}");
    }

    #[test]
    fn pareto_frontier_basics() {
        let pts = [
            QtPoint {
                throughput: 1.0,
                quality: 3.0,
            },
            QtPoint {
                throughput: 2.0,
                quality: 2.0,
            },
            QtPoint {
                throughput: 3.0,
                quality: 1.0,
            },
            QtPoint {
                throughput: 1.0,
                quality: 1.0,
            }, // dominated
        ];
        assert_eq!(pareto_frontier(&pts), vec![0, 1, 2]);
        assert!(pareto_frontier(&[]).is_empty());
        // Duplicates: neither strictly dominates, both stay.
        let dup = [
            QtPoint {
                throughput: 1.0,
                quality: 1.0,
            },
            QtPoint {
                throughput: 1.0,
                quality: 1.0,
            },
        ];
        assert_eq!(pareto_frontier(&dup), vec![0, 1]);
    }

    #[test]
    fn serving_variants_match_base_catalog_quality() {
        for m in catalog() {
            if let Some(v) = m.serving_variant {
                let dq = (m.median_quality - v.spec().profiled_quality).abs();
                assert!(dq < 0.5, "{}: Δq {dq}", m.name);
            }
        }
    }
}
