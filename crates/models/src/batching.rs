//! The batching model behind Observation 5 (Fig. 14).
//!
//! For a model with per-sample compute work `C` (seconds at peak compute)
//! and per-pass memory work `M` (seconds to stream weights/activations at
//! peak bandwidth), a batch of `b` samples takes approximately
//! `max(b·C, M + b·m_act)` where `m_act` is per-sample activation traffic —
//! weights are read once per pass, so memory-bound models amortize them and
//! batch well, while compute-bound models gain nothing.
//!
//! Diffusion UNets sit far right of the ridge point (Table 3: AI ≈ 385–2329
//! FLOP/byte vs the A100 ridge at ≈ 153), so `b·C` dominates immediately and
//! speedup plateaus near 1–2×; YOLO/ResNet-class models are memory-bound and
//! scale nearly linearly until the ridge (Fig. 14).

use crate::GpuArch;

/// Compute/memory profile of one forward pass of a model, the input to the
/// batching model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassProfile {
    /// FLOPs per sample (GFLOPs).
    pub gflops_per_sample: f64,
    /// Weight bytes read once per batched pass (GB).
    pub weight_gb: f64,
    /// Activation bytes per sample (GB).
    pub activation_gb_per_sample: f64,
    /// Fraction of peak compute the kernels achieve (model-level MFU).
    pub compute_efficiency: f64,
    /// Batch-independent per-pass overhead in seconds: kernel launches,
    /// host-side dispatch, low-occupancy ramp. This is what small CNNs
    /// amortize by batching.
    pub fixed_overhead_s: f64,
}

impl PassProfile {
    /// Latency of one pass with batch size `b` on `gpu`, in seconds:
    /// `fixed + max(compute(b), memory(b))`.
    ///
    /// # Panics
    /// Panics in debug builds if `batch == 0`.
    pub fn pass_secs(&self, gpu: GpuArch, batch: u32) -> f64 {
        debug_assert!(batch > 0, "batch size must be positive");
        let b = batch as f64;
        let compute =
            b * self.gflops_per_sample * 1e9 / (gpu.peak_tflops() * 1e12 * self.compute_efficiency);
        let memory =
            (self.weight_gb + b * self.activation_gb_per_sample) * 1e9 / (gpu.mem_bw_gbps() * 1e9);
        self.fixed_overhead_s + compute.max(memory)
    }

    /// Throughput speed-up of batch size `b` relative to batch size 1:
    /// `(b / pass_secs(b)) / (1 / pass_secs(1))`. This is the Y-axis of
    /// Fig. 14.
    pub fn throughput_speedup(&self, gpu: GpuArch, batch: u32) -> f64 {
        let t1 = self.pass_secs(gpu, 1);
        let tb = self.pass_secs(gpu, batch);
        batch as f64 * t1 / tb
    }

    /// Latency inflation of batch size `b` relative to batch size 1 — the
    /// reason Argus serves with batch size 1 (§4.5): for compute-bound
    /// models this grows linearly in `b`.
    pub fn latency_inflation(&self, gpu: GpuArch, batch: u32) -> f64 {
        self.pass_secs(gpu, batch) / self.pass_secs(gpu, 1)
    }

    /// Effective arithmetic intensity at batch size `b` (FLOP per byte).
    pub fn arithmetic_intensity(&self, batch: u32) -> f64 {
        let b = batch as f64;
        b * self.gflops_per_sample / (self.weight_gb + b * self.activation_gb_per_sample)
    }
}

/// The per-step UNet pass profile of a diffusion variant, derived from
/// Table 3 (weights re-read every one of the 50 denoising iterations, which
/// is what makes DMs compute-bound *per step* yet unable to amortize).
pub fn unet_pass_profile(variant: crate::ModelVariant) -> PassProfile {
    let spec = variant.spec();
    let unet = spec.unet();
    PassProfile {
        gflops_per_sample: unet.gflops,
        weight_gb: unet.size_gib * 1.073_741_824, // GiB → GB
        activation_gb_per_sample: unet.bytes_per_invocation() / 1e9,
        compute_efficiency: 0.45,
        fixed_overhead_s: 1e-3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nondm::NonDmModel;
    use crate::ModelVariant;

    #[test]
    fn dm_speedup_plateaus_early() {
        // Fig. 14: DMs show slow speed-ups that plateau rapidly; SD-Tiny
        // "hits bottlenecks around batch size 4".
        let tiny = unet_pass_profile(ModelVariant::TinySd);
        let s4 = tiny.throughput_speedup(GpuArch::A100, 4);
        let s16 = tiny.throughput_speedup(GpuArch::A100, 16);
        assert!(s16 / s4 < 1.5, "plateau violated: s4={s4:.2} s16={s16:.2}");
        let xl = unet_pass_profile(ModelVariant::SdXl);
        assert!(xl.throughput_speedup(GpuArch::A100, 16) < 2.0);
    }

    #[test]
    fn memory_bound_models_batch_nearly_linearly() {
        // YOLOv5 "can efficiently handle batch sizes of 16" (Obs. 5).
        let yolo = NonDmModel::YoloV5n.pass_profile();
        let s16 = yolo.throughput_speedup(GpuArch::A100, 16);
        assert!(s16 > 8.0, "yolo speedup at 16: {s16:.2}");
        assert!(
            s16 > unet_pass_profile(ModelVariant::SdXl).throughput_speedup(GpuArch::A100, 16) * 3.0
        );
    }

    #[test]
    fn latency_rises_sharply_for_dms() {
        // §2: "latency rises sharply with batch size" for T2I.
        let xl = unet_pass_profile(ModelVariant::SdXl);
        let infl = xl.latency_inflation(GpuArch::A100, 8);
        assert!(infl > 6.0, "inflation {infl:.2}");
    }

    #[test]
    fn speedup_is_monotone_nondecreasing() {
        for b in 1..32u32 {
            let p = unet_pass_profile(ModelVariant::Sd15);
            assert!(
                p.throughput_speedup(GpuArch::A100, b + 1) + 1e-9
                    >= p.throughput_speedup(GpuArch::A100, b)
            );
        }
    }

    #[test]
    fn speedup_at_batch_one_is_unity() {
        let p = unet_pass_profile(ModelVariant::SdXl);
        assert!((p.throughput_speedup(GpuArch::A100, 1) - 1.0).abs() < 1e-12);
        assert!((p.latency_inflation(GpuArch::A100, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_intensity_grows_with_batch() {
        let yolo = NonDmModel::YoloV5n.pass_profile();
        assert!(yolo.arithmetic_intensity(16) > yolo.arithmetic_intensity(1));
    }
}
