//! The roofline model of Fig. 15.
//!
//! Attainable performance at arithmetic intensity `I` on a GPU with peak
//! compute `P` and bandwidth `B` is `min(P, I·B)` (Jouppi et al., the
//! paper's [48]). Diffusion UNets land on the flat (compute-bound) roof;
//! YOLO/ResNet/GPT-decode land on the slanted (bandwidth-bound) part.

use crate::{GpuArch, ModelVariant};

/// A point on the roofline plot: a named workload with its arithmetic
/// intensity and attainable throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// Workload label.
    pub name: String,
    /// Arithmetic intensity in FLOP/byte (X axis, log scale in the paper).
    pub arithmetic_intensity: f64,
    /// Attainable TFLOPS on the target GPU (Y axis).
    pub attainable_tflops: f64,
    /// Whether the workload is compute-bound on the target GPU.
    pub compute_bound: bool,
}

/// Attainable TFLOPS at arithmetic intensity `ai` on `gpu`.
pub fn attainable_tflops(gpu: GpuArch, ai: f64) -> f64 {
    debug_assert!(ai >= 0.0, "negative arithmetic intensity");
    gpu.peak_tflops().min(ai * gpu.mem_bw_gbps() / 1000.0)
}

/// Builds the full Fig. 15 point set: the four DM UNets plus the four
/// reference models, evaluated on `gpu`.
pub fn figure15_points(gpu: GpuArch) -> Vec<RooflinePoint> {
    let ridge = gpu.ridge_point();
    let mut points = Vec::new();
    for v in [
        ModelVariant::TinySd,
        ModelVariant::SmallSd,
        ModelVariant::Sd20,
        ModelVariant::SdXl,
    ] {
        let ai = v.spec().unet().arithmetic_intensity;
        points.push(RooflinePoint {
            name: v.name().to_string(),
            arithmetic_intensity: ai,
            attainable_tflops: attainable_tflops(gpu, ai),
            compute_bound: ai > ridge,
        });
    }
    for m in crate::nondm::NonDmModel::ALL {
        let ai = m.arithmetic_intensity();
        points.push(RooflinePoint {
            name: m.name().to_string(),
            arithmetic_intensity: ai,
            attainable_tflops: attainable_tflops(gpu, ai),
            compute_bound: ai > ridge,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roofline_shape() {
        let gpu = GpuArch::A100;
        // Below the ridge: linear in AI.
        assert!((attainable_tflops(gpu, 10.0) - 10.0 * gpu.mem_bw_gbps() / 1000.0).abs() < 1e-9);
        // Above the ridge: clamped at peak.
        assert_eq!(attainable_tflops(gpu, 10_000.0), gpu.peak_tflops());
        // Continuous at the ridge.
        let r = gpu.ridge_point();
        assert!((attainable_tflops(gpu, r) - gpu.peak_tflops()).abs() < 1e-6);
    }

    #[test]
    fn figure15_partitions_dms_from_others() {
        let pts = figure15_points(GpuArch::A100);
        assert_eq!(pts.len(), 8);
        for p in &pts {
            let is_dm = ["Tiny-SD", "Small-SD", "SD-2.0", "SD-XL"].contains(&p.name.as_str());
            assert_eq!(
                p.compute_bound, is_dm,
                "{}: compute_bound={} (AI {})",
                p.name, p.compute_bound, p.arithmetic_intensity
            );
        }
    }

    #[test]
    fn compute_bound_points_hit_the_roof() {
        for p in figure15_points(GpuArch::A100) {
            if p.compute_bound {
                assert_eq!(p.attainable_tflops, GpuArch::A100.peak_tflops());
            } else {
                assert!(p.attainable_tflops < GpuArch::A100.peak_tflops());
            }
        }
    }
}
