//! The unified approximation-level abstraction.
//!
//! The allocator, ODA and PASM are agnostic to which approximation strategy
//! is active (§4.6: "all the internal components and the workflow
//! fundamentally remain identical across these two strategies"). This module
//! provides the common currency: an [`ApproxLevel`] with a profiled latency,
//! quality and peak throughput, and a [`Strategy`] tag.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{latency, AcLevel, GpuArch, ModelVariant, AC_LEVELS, SM_LADDER};

/// Which approximation strategy a ladder of levels belongs to (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Approximate caching: one SD-XL model, variable skip step `K`.
    Ac,
    /// Smaller/distilled model variants.
    Sm,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Strategy::Ac => "AC",
            Strategy::Sm => "SM",
        })
    }
}

/// One approximation level: either a model variant (SM) or an AC skip level.
///
/// The derived `Ord` (SM variants before AC levels, each in declaration
/// order) exists so levels can key deterministic `BTreeMap` accounting;
/// ladder and reporting order remain [`ApproxLevel::ordinal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ApproxLevel {
    /// A smaller-model variant.
    Sm(ModelVariant),
    /// An approximate-caching level on the base SD-XL model.
    Ac(AcLevel),
}

impl ApproxLevel {
    /// The standard ladder for a strategy, least approximate (slowest,
    /// highest quality) first — the ordering ODA iterates over (§4.3).
    pub fn ladder(strategy: Strategy) -> Vec<ApproxLevel> {
        match strategy {
            Strategy::Ac => AC_LEVELS.iter().copied().map(ApproxLevel::Ac).collect(),
            Strategy::Sm => SM_LADDER.iter().copied().map(ApproxLevel::Sm).collect(),
        }
    }

    /// Which strategy this level belongs to.
    pub fn strategy(self) -> Strategy {
        match self {
            ApproxLevel::Sm(_) => Strategy::Sm,
            ApproxLevel::Ac(_) => Strategy::Ac,
        }
    }

    /// The model variant resident on a worker serving this level.
    ///
    /// For AC this is always SD-XL (the base model); for SM it is the
    /// variant itself.
    pub fn resident_model(self) -> ModelVariant {
        match self {
            ApproxLevel::Sm(v) => v,
            ApproxLevel::Ac(_) => ModelVariant::SdXl,
        }
    }

    /// Mean compute latency per image in seconds on `gpu`, excluding any
    /// cache-retrieval overhead (which is a property of the network state,
    /// not the level).
    pub fn compute_secs(self, gpu: GpuArch) -> f64 {
        match self {
            ApproxLevel::Sm(v) => latency::inference_secs(v, gpu),
            ApproxLevel::Ac(k) => k.compute_secs(gpu),
        }
    }

    /// Profiled peak throughput in images per minute on `gpu` — the
    /// `peak(v)` input of Eq. 1.
    pub fn peak_throughput_per_min(self, gpu: GpuArch) -> f64 {
        60.0 / self.compute_secs(gpu)
    }

    /// Profiled mean quality under random prompt assignment — the `q_v`
    /// input of Eq. 1.
    pub fn profiled_quality(self) -> f64 {
        match self {
            ApproxLevel::Sm(v) => v.spec().profiled_quality,
            ApproxLevel::Ac(k) => k.profiled_quality(),
        }
    }

    /// Whether moving from `self` to `other` requires loading different
    /// weights on the worker (the switching overhead of Obs. 4).
    pub fn requires_model_switch(self, other: ApproxLevel) -> bool {
        self.resident_model() != other.resident_model()
    }

    /// A cheap total order for reporting: AC levels first (by skip step,
    /// shallowest first), then SM variants in ladder (slowest-first)
    /// order. Sorting by this key avoids formatting a `String` per
    /// comparison and keeps each ladder in approximation order.
    pub fn ordinal(self) -> (u8, u32) {
        match self {
            ApproxLevel::Ac(k) => (0, k.skipped_steps()),
            ApproxLevel::Sm(v) => {
                let idx = SM_LADDER
                    .iter()
                    .position(|&x| x == v)
                    .unwrap_or(SM_LADDER.len());
                (1, idx as u32)
            }
        }
    }
}

impl fmt::Display for ApproxLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApproxLevel::Sm(v) => write!(f, "SM/{v}"),
            ApproxLevel::Ac(k) => write!(f, "AC/{k}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladders_are_slowest_first() {
        for strategy in [Strategy::Ac, Strategy::Sm] {
            let ladder = ApproxLevel::ladder(strategy);
            assert_eq!(ladder.len(), 6);
            let peaks: Vec<f64> = ladder
                .iter()
                .map(|l| l.peak_throughput_per_min(GpuArch::A100))
                .collect();
            assert!(
                peaks.windows(2).all(|w| w[0] < w[1]),
                "{strategy}: {peaks:?}"
            );
            let quals: Vec<f64> = ladder.iter().map(|l| l.profiled_quality()).collect();
            assert!(
                quals.windows(2).all(|w| w[0] > w[1]),
                "{strategy}: {quals:?}"
            );
        }
    }

    #[test]
    fn ac_never_switches_models() {
        let ladder = ApproxLevel::ladder(Strategy::Ac);
        for a in &ladder {
            for b in &ladder {
                assert!(!a.requires_model_switch(*b));
            }
            assert_eq!(a.resident_model(), ModelVariant::SdXl);
        }
    }

    #[test]
    fn ordinal_orders_each_ladder_in_approximation_order() {
        for strategy in [Strategy::Ac, Strategy::Sm] {
            let ladder = ApproxLevel::ladder(strategy);
            let ords: Vec<(u8, u32)> = ladder.iter().map(|l| l.ordinal()).collect();
            let mut sorted = ords.clone();
            sorted.sort();
            assert_eq!(ords, sorted, "{strategy}: {ords:?}");
        }
        // AC sorts before SM, and within AC by skip step (K5 before K10 —
        // unlike the lexicographic Display order).
        assert!(
            ApproxLevel::Ac(AcLevel(25)).ordinal() < ApproxLevel::Sm(ModelVariant::SdXl).ordinal()
        );
        assert!(ApproxLevel::Ac(AcLevel(5)).ordinal() < ApproxLevel::Ac(AcLevel(10)).ordinal());
    }

    #[test]
    fn sm_switching_is_required_between_variants() {
        let a = ApproxLevel::Sm(ModelVariant::SdXl);
        let b = ApproxLevel::Sm(ModelVariant::TinySd);
        assert!(a.requires_model_switch(b));
        assert!(!a.requires_model_switch(a));
        // Cross-strategy: SM/SD-XL and any AC level share weights.
        assert!(!a.requires_model_switch(ApproxLevel::Ac(AcLevel(10))));
    }

    #[test]
    fn strategy_tagging() {
        assert_eq!(ApproxLevel::Ac(AcLevel(5)).strategy(), Strategy::Ac);
        assert_eq!(ApproxLevel::Sm(ModelVariant::Sd15).strategy(), Strategy::Sm);
        assert_eq!(Strategy::Ac.to_string(), "AC");
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(ApproxLevel::Ac(AcLevel(15)).to_string(), "AC/K=15");
        assert_eq!(ApproxLevel::Sm(ModelVariant::Sd15).to_string(), "SM/SD-1.5");
    }
}
