//! The six serving model variants and their full specifications.
//!
//! These are the "smaller model" (SM) approximation ladder of §5.1: Tiny-SD,
//! Small-SD, SD-1.4, SD-1.5, SD-2.0 and SD-XL from HuggingFace. Component
//! profiles come from Table 3; sizes and loading times from Table 2.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::component::{component, ComponentSpec};

/// A diffusion model variant deployable on a worker.
///
/// Ordered from most approximate (fastest, lowest quality) to least
/// approximate (slowest, highest quality); `ModelVariant::SdXl` is the
/// paper's base model M1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ModelVariant {
    /// Tiny-SD: the fastest distilled variant (Clipper-HT's model).
    TinySd,
    /// Small-SD distilled variant.
    SmallSd,
    /// Stable Diffusion 1.4.
    Sd14,
    /// Stable Diffusion 1.5.
    Sd15,
    /// Stable Diffusion 2.0.
    Sd20,
    /// Stable Diffusion XL — the base (teacher) model, M1 in the paper.
    SdXl,
}

/// The SM approximation ladder, slowest/highest-quality first
/// (SD-XL → … → Tiny-SD). This is the ordering ODA iterates over.
pub const SM_LADDER: [ModelVariant; 6] = [
    ModelVariant::SdXl,
    ModelVariant::Sd20,
    ModelVariant::Sd15,
    ModelVariant::Sd14,
    ModelVariant::SmallSd,
    ModelVariant::TinySd,
];

impl ModelVariant {
    /// All variants, fastest first (enum order).
    pub const ALL: [ModelVariant; 6] = [
        ModelVariant::TinySd,
        ModelVariant::SmallSd,
        ModelVariant::Sd14,
        ModelVariant::Sd15,
        ModelVariant::Sd20,
        ModelVariant::SdXl,
    ];

    /// HuggingFace-style display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelVariant::TinySd => "Tiny-SD",
            ModelVariant::SmallSd => "Small-SD",
            ModelVariant::Sd14 => "SD-1.4",
            ModelVariant::Sd15 => "SD-1.5",
            ModelVariant::Sd20 => "SD-2.0",
            ModelVariant::SdXl => "SD-XL",
        }
    }

    /// The full specification of this variant.
    pub fn spec(self) -> &'static ModelSpec {
        &SPECS[self as usize]
    }
}

impl fmt::Display for ModelVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Full specification of one model variant.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Which variant this describes.
    pub variant: ModelVariant,
    /// Pipeline components (text encoder, UNet, VAE decoder) — Table 3.
    pub components: Vec<ComponentSpec>,
    /// Serialized checkpoint size in GiB (Table 2 "Size" column).
    pub size_gib: f64,
    /// Number of denoising iterations per image (`N = 50` for SD models).
    pub denoise_steps: u32,
    /// Profiled mean PickScore under *random* prompt assignment — the
    /// `q_v` input of the solver's objective (Eq. 1), calibrated to Fig. 9
    /// and §5.5 of the paper.
    pub profiled_quality: f64,
}

impl ModelSpec {
    /// Total FLOPs to generate one image, in GFLOPs: the UNet runs once per
    /// denoising step; encoder and decoder run once.
    pub fn gflops_per_image(&self) -> f64 {
        self.components
            .iter()
            .map(|c| {
                if c.name == "UNet" {
                    c.gflops * self.denoise_steps as f64
                } else {
                    c.gflops
                }
            })
            .sum()
    }

    /// The UNet component (the compute bottleneck, §3.2).
    pub fn unet(&self) -> &ComponentSpec {
        self.components
            .iter()
            .find(|c| c.name == "UNet")
            .expect("every variant has a UNet")
    }

    /// Effective arithmetic intensity of image generation: total FLOPs over
    /// total bytes across all component invocations.
    pub fn effective_arithmetic_intensity(&self) -> f64 {
        let flops: f64 = self.gflops_per_image() * 1e9;
        let bytes: f64 = self
            .components
            .iter()
            .map(|c| {
                let invocations = if c.name == "UNet" {
                    self.denoise_steps as f64
                } else {
                    1.0
                };
                c.bytes_per_invocation() * invocations
            })
            .sum();
        flops / bytes
    }

    /// Total parameters in billions.
    pub fn params_b(&self) -> f64 {
        self.components.iter().map(|c| c.params_b).sum()
    }
}

fn spec(
    variant: ModelVariant,
    components: Vec<ComponentSpec>,
    size_gib: f64,
    profiled_quality: f64,
) -> ModelSpec {
    ModelSpec {
        variant,
        components,
        size_gib,
        denoise_steps: 50,
        profiled_quality,
    }
}

// Table 3 rows (paper verbatim for Tiny, Small, SD-2.0, SD-XL).
// SD-1.4/SD-1.5 share the SD-v1 architecture (0.86 B UNet, CLIP ViT-L text
// encoder); their component profile is interpolated from the SD-2.0 row.
// The quality anchors follow Fig. 9 / Fig. 13 / §5.5: SD-XL ≈ 21.0 and
// Tiny-SD ≈ 17.4 under random assignment.
static SPECS: std::sync::LazyLock<[ModelSpec; 6]> = std::sync::LazyLock::new(|| {
    [
        spec(
            ModelVariant::TinySd,
            vec![
                component("Text Encoder", 0.123, 0.229, 7.208, 29.287),
                component("UNet", 0.323, 0.602, 409.334, 632.890),
                component("VAE Decoder", 0.050, 0.092, 2481.078, 25066.363),
            ],
            0.63,
            16.9,
        ),
        spec(
            ModelVariant::SmallSd,
            vec![
                component("Text Encoder", 0.123, 0.229, 7.208, 29.287),
                component("UNet", 0.579, 1.079, 446.639, 385.442),
                component("VAE Decoder", 0.050, 0.092, 2481.078, 25066.363),
            ],
            2.32,
            17.4,
        ),
        spec(
            ModelVariant::Sd14,
            vec![
                component("Text Encoder", 0.340, 0.634, 24.482, 35.962),
                component("UNet", 0.860, 1.602, 671.000, 389.500),
                component("VAE Decoder", 0.050, 0.092, 2481.078, 25066.363),
            ],
            3.44,
            19.0,
        ),
        spec(
            ModelVariant::Sd15,
            vec![
                component("Text Encoder", 0.340, 0.634, 24.482, 35.962),
                component("UNet", 0.860, 1.602, 671.000, 389.500),
                component("VAE Decoder", 0.050, 0.092, 2481.078, 25066.363),
            ],
            3.44,
            19.3,
        ),
        spec(
            ModelVariant::Sd20,
            vec![
                component("Text Encoder", 0.340, 0.634, 24.482, 35.962),
                component("UNet", 0.866, 1.613, 676.668, 390.726),
                component("VAE Decoder", 0.050, 0.092, 2481.078, 25066.363),
            ],
            3.52,
            19.8,
        ),
        spec(
            ModelVariant::SdXl,
            vec![
                component("Text Encoder", 0.123, 0.229, 7.208, 29.287),
                component("UNet", 2.567, 4.782, 11958.197, 2328.796),
                component("VAE Decoder", 0.050, 0.092, 2481.078, 25066.363),
            ],
            5.14,
            21.0,
        ),
    ]
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_orders_quality_and_size() {
        // Quality must rise monotonically from Tiny to XL (approximation
        // monotonicity, the premise of the approximation ladder).
        let q: Vec<f64> = ModelVariant::ALL
            .iter()
            .map(|v| v.spec().profiled_quality)
            .collect();
        assert!(q.windows(2).all(|w| w[0] < w[1]), "quality {q:?}");
        let s: Vec<f64> = ModelVariant::ALL
            .iter()
            .map(|v| v.spec().size_gib)
            .collect();
        assert!(s.windows(2).all(|w| w[0] <= w[1]), "sizes {s:?}");
    }

    #[test]
    fn sm_ladder_is_reverse_of_all() {
        let mut rev = ModelVariant::ALL;
        rev.reverse();
        assert_eq!(SM_LADDER, rev);
    }

    #[test]
    fn table3_values_survive() {
        let xl = ModelVariant::SdXl.spec();
        assert_eq!(xl.unet().gflops, 11958.197);
        assert_eq!(xl.unet().arithmetic_intensity, 2328.796);
        assert_eq!(xl.denoise_steps, 50);
        let tiny = ModelVariant::TinySd.spec();
        assert_eq!(tiny.unet().params_b, 0.323);
    }

    #[test]
    fn unet_dominates_total_flops() {
        // §3.2: "Over 90% of generation time is spent in the compute-bound
        // UNet" — at 50 iterations the UNet dominates per-image FLOPs.
        for v in ModelVariant::ALL {
            let s = v.spec();
            let unet_total = s.unet().gflops * s.denoise_steps as f64;
            assert!(
                unet_total / s.gflops_per_image() > 0.80,
                "{v}: UNet share {:.3}",
                unet_total / s.gflops_per_image()
            );
        }
    }

    #[test]
    fn effective_intensity_is_compute_bound_on_a100() {
        // Fig. 15: all DMs sit right of the A100 ridge point.
        for v in ModelVariant::ALL {
            let ai = v.spec().effective_arithmetic_intensity();
            assert!(ai > crate::GpuArch::A100.ridge_point(), "{v}: AI {ai}");
        }
    }

    #[test]
    fn sdxl_size_matches_table2() {
        assert!((ModelVariant::SdXl.spec().size_gib - 5.14).abs() < 1e-9);
        assert!((ModelVariant::TinySd.spec().size_gib - 0.63).abs() < 1e-9);
    }

    #[test]
    fn params_total_is_sum_of_components() {
        let xl = ModelVariant::SdXl.spec();
        assert!((xl.params_b() - (0.123 + 2.567 + 0.050)).abs() < 1e-12);
    }

    #[test]
    fn display_names() {
        assert_eq!(ModelVariant::SdXl.to_string(), "SD-XL");
        assert_eq!(ModelVariant::TinySd.to_string(), "Tiny-SD");
    }
}
