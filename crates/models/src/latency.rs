//! Profiled inference latency and model-loading times.
//!
//! Anchors (paper):
//! * Table 2 (A100): SD-XL 4.2 s, SD-1.5 3.84 s, Small-SD 2.75 s,
//!   Tiny-SD 2.18 s per image; PyTorch loads 45.78/19.90/14.05/11.78 s and
//!   Accelerate loads 9.42/5.56/4.86/2.91 s respectively.
//! * Fig. 5 / §1: SD-XL takes "up to 10 seconds" on an A10G and noticeably
//!   longer on a V100; older models run relatively faster on newer GPUs.
//!
//! SD-1.4 and SD-2.0 are not in Table 2; they are interpolated within the
//! SD-v1/v2 family (SD-1.4 marginally faster than SD-1.5, SD-2.0 marginally
//! slower), consistent with Fig. 13's per-instance throughput spread.

use crate::{GpuArch, ModelVariant};

/// How model weights are loaded onto the GPU (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loader {
    /// Plain PyTorch `from_pretrained` (slow path).
    PyTorch,
    /// HuggingFace Accelerate optimized loading — what Argus deploys (§4.7).
    Accelerate,
}

/// A100 per-image inference latency in seconds (Table 2 column "Latency").
fn a100_inference_secs(variant: ModelVariant) -> f64 {
    match variant {
        ModelVariant::TinySd => 2.18,
        ModelVariant::SmallSd => 2.75,
        ModelVariant::Sd14 => 3.80,
        ModelVariant::Sd15 => 3.84,
        ModelVariant::Sd20 => 3.95,
        ModelVariant::SdXl => 4.20,
    }
}

/// Latency scale factor of `gpu` relative to A100 for a given variant.
///
/// Newer, larger models lean harder on tensor-core throughput, so the gap
/// between GPU generations widens with model size (the Fig. 5 observation:
/// "while older models run faster on newer GPUs, the latest models still
/// incur significantly high latency").
fn gpu_scale(variant: ModelVariant, gpu: GpuArch) -> f64 {
    let size_weight = match variant {
        ModelVariant::TinySd => 0.55,
        ModelVariant::SmallSd => 0.65,
        ModelVariant::Sd14 | ModelVariant::Sd15 => 0.80,
        ModelVariant::Sd20 => 0.85,
        ModelVariant::SdXl => 1.00,
    };
    let raw = GpuArch::A100.peak_tflops() / gpu.peak_tflops();
    // Interpolate between "no slowdown" and the full compute ratio.
    1.0 + (raw - 1.0) * size_weight
}

/// Mean per-image inference latency of `variant` on `gpu`, in seconds.
pub fn inference_secs(variant: ModelVariant, gpu: GpuArch) -> f64 {
    a100_inference_secs(variant) * gpu_scale(variant, gpu)
}

/// Peak serving throughput of one instance in images per minute (batch
/// size 1, per Observation 5).
pub fn peak_throughput_per_min(variant: ModelVariant, gpu: GpuArch) -> f64 {
    60.0 / inference_secs(variant, gpu)
}

/// Time to load `variant` onto a worker with the given loader, in seconds
/// (Table 2). This is the "model-switch overhead" that penalizes the SM
/// strategy (Obs. 4, Fig. 12).
pub fn load_secs(variant: ModelVariant, loader: Loader) -> f64 {
    match (variant, loader) {
        (ModelVariant::TinySd, Loader::PyTorch) => 11.78,
        (ModelVariant::SmallSd, Loader::PyTorch) => 14.05,
        (ModelVariant::Sd14, Loader::PyTorch) => 19.40,
        (ModelVariant::Sd15, Loader::PyTorch) => 19.90,
        (ModelVariant::Sd20, Loader::PyTorch) => 20.60,
        (ModelVariant::SdXl, Loader::PyTorch) => 45.78,
        (ModelVariant::TinySd, Loader::Accelerate) => 2.91,
        (ModelVariant::SmallSd, Loader::Accelerate) => 4.86,
        (ModelVariant::Sd14, Loader::Accelerate) => 5.48,
        (ModelVariant::Sd15, Loader::Accelerate) => 5.56,
        (ModelVariant::Sd20, Loader::Accelerate) => 5.72,
        (ModelVariant::SdXl, Loader::Accelerate) => 9.42,
    }
}

/// Relative standard deviation of per-image latency (service-time jitter).
///
/// Diffusion inference is highly regular — a fixed number of UNet passes —
/// so jitter is small; we use 3% log-normal jitter in the simulator.
pub const LATENCY_JITTER_CV: f64 = 0.03;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_a100_latencies_exact() {
        assert_eq!(inference_secs(ModelVariant::SdXl, GpuArch::A100), 4.20);
        assert_eq!(inference_secs(ModelVariant::Sd15, GpuArch::A100), 3.84);
        assert_eq!(inference_secs(ModelVariant::SmallSd, GpuArch::A100), 2.75);
        assert_eq!(inference_secs(ModelVariant::TinySd, GpuArch::A100), 2.18);
    }

    #[test]
    fn sdxl_on_a10g_matches_intro_claim() {
        // §1: "up to 10 seconds on an A10G".
        let t = inference_secs(ModelVariant::SdXl, GpuArch::A10G);
        assert!(t > 9.0 && t < 11.5, "A10G SD-XL latency {t}");
    }

    #[test]
    fn latency_monotone_in_variant_and_gpu() {
        for gpu in GpuArch::ALL {
            let ts: Vec<f64> = ModelVariant::ALL
                .iter()
                .map(|&v| inference_secs(v, gpu))
                .collect();
            assert!(
                ts.windows(2).all(|w| w[0] < w[1]),
                "{gpu}: latencies not monotone {ts:?}"
            );
        }
        for v in ModelVariant::ALL {
            assert!(inference_secs(v, GpuArch::V100) > inference_secs(v, GpuArch::A100));
            assert!(inference_secs(v, GpuArch::A10G) > inference_secs(v, GpuArch::A100));
        }
    }

    #[test]
    fn older_models_benefit_relatively_more_from_new_gpus() {
        // Fig. 5's qualitative claim: the V100→A100 speedup ratio is larger
        // for SD-XL than the *relative* penalty Tiny pays; i.e. size_weight
        // ordering holds.
        let tiny_ratio = inference_secs(ModelVariant::TinySd, GpuArch::V100)
            / inference_secs(ModelVariant::TinySd, GpuArch::A100);
        let xl_ratio = inference_secs(ModelVariant::SdXl, GpuArch::V100)
            / inference_secs(ModelVariant::SdXl, GpuArch::A100);
        assert!(xl_ratio > tiny_ratio);
    }

    #[test]
    fn accelerate_loads_faster_than_pytorch() {
        for v in ModelVariant::ALL {
            assert!(load_secs(v, Loader::Accelerate) < load_secs(v, Loader::PyTorch));
        }
        assert_eq!(load_secs(ModelVariant::SdXl, Loader::Accelerate), 9.42);
        assert_eq!(load_secs(ModelVariant::SdXl, Loader::PyTorch), 45.78);
    }

    #[test]
    fn load_time_monotone_in_model_size() {
        for loader in [Loader::PyTorch, Loader::Accelerate] {
            let ts: Vec<f64> = ModelVariant::ALL
                .iter()
                .map(|&v| load_secs(v, loader))
                .collect();
            assert!(ts.windows(2).all(|w| w[0] < w[1]), "{ts:?}");
        }
    }

    #[test]
    fn cluster_capacity_matches_motivation() {
        // Fig. 1: 8 A100s running SD-XL serve ~114 QPM peak — below the
        // workload peaks used in the motivation.
        let cluster_qpm = 8.0 * peak_throughput_per_min(ModelVariant::SdXl, GpuArch::A100);
        assert!((cluster_qpm - 114.3).abs() < 1.0, "qpm {cluster_qpm}");
    }
}
