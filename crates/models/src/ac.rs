//! Approximate-caching (AC) levels.
//!
//! AC resumes SD-XL denoising from a cached intermediate noise state at step
//! `K` of `N = 50`, skipping the first `K` iterations (§2.1). Larger `K`
//! means more reuse, lower latency, and lower quality. The worker never
//! reloads weights — adjusting `K` is free — which is why Argus prefers AC
//! by default (Obs. 4).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{latency, GpuArch, ModelVariant};

/// Total denoising steps of the base SD-XL pipeline (`N`, §5.1).
pub const TOTAL_DENOISE_STEPS: u32 = 50;

/// The AC approximation ladder used in the evaluation (§5.1), least
/// approximate first.
pub const AC_LEVELS: [AcLevel; 6] = [
    AcLevel(0),
    AcLevel(5),
    AcLevel(10),
    AcLevel(15),
    AcLevel(20),
    AcLevel(25),
];

/// An approximate-caching level: the number of denoising steps skipped by
/// resuming from a cached intermediate state.
///
/// `AcLevel(0)` is exact SD-XL generation (no cache reuse).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AcLevel(pub u32);

impl AcLevel {
    /// Creates a level, validating `k < N`.
    ///
    /// # Errors
    /// Returns `Err` if `k >= TOTAL_DENOISE_STEPS` (nothing left to denoise).
    pub fn new(k: u32) -> Result<Self, InvalidAcLevel> {
        if k >= TOTAL_DENOISE_STEPS {
            Err(InvalidAcLevel { k })
        } else {
            Ok(AcLevel(k))
        }
    }

    /// Steps skipped (`K`).
    pub fn skipped_steps(self) -> u32 {
        self.0
    }

    /// Steps still executed (`N − K`).
    pub fn remaining_steps(self) -> u32 {
        TOTAL_DENOISE_STEPS - self.0
    }

    /// Compute-time per image in seconds on `gpu`, excluding cache
    /// retrieval. Modeled as a fixed pipeline cost (text encode, VAE decode)
    /// plus the per-step denoising cost scaled by remaining steps; this
    /// reproduces the paper's Fig. 6 measurements (K=0 → 4.2 s,
    /// K=20 → ~2.6 s on A100) within the published spread.
    pub fn compute_secs(self, gpu: GpuArch) -> f64 {
        let base = latency::inference_secs(ModelVariant::SdXl, gpu);
        // ~5% of the pipeline is step-independent (encoder + VAE).
        let fixed = 0.05 * base;
        let denoise = base - fixed;
        fixed + denoise * self.remaining_steps() as f64 / TOTAL_DENOISE_STEPS as f64
    }

    /// Peak serving throughput at this level in images/minute, excluding
    /// retrieval overhead.
    pub fn peak_throughput_per_min(self, gpu: GpuArch) -> f64 {
        60.0 / self.compute_secs(gpu)
    }

    /// Profiled mean PickScore under *random* prompt assignment — the `q_v`
    /// for the solver, calibrated to §5.5 (AC random ≈ 17.6 overall) and the
    /// Fig. 13 observation that AC variants Pareto-dominate same-speed
    /// small models.
    pub fn profiled_quality(self) -> f64 {
        // Piecewise-linear through the profiled anchors; extrapolated with
        // the terminal slope beyond K=25.
        const ANCHORS: [(u32, f64); 6] = [
            (0, 21.0),
            (5, 20.7),
            (10, 20.1),
            (15, 19.3),
            (20, 18.2),
            (25, 17.6),
        ];
        let k = self.0;
        for w in ANCHORS.windows(2) {
            let (k0, q0) = w[0];
            let (k1, q1) = w[1];
            if k <= k1 {
                let frac = (k - k0) as f64 / (k1 - k0) as f64;
                return q0 + (q1 - q0) * frac;
            }
        }
        let (k_last, q_last) = ANCHORS[5];
        let slope = (ANCHORS[5].1 - ANCHORS[4].1) / (ANCHORS[5].0 - ANCHORS[4].0) as f64;
        q_last + slope * (k - k_last) as f64
    }

    /// Size of a cached intermediate noise state in bytes (§4.7: 144 KB).
    pub const STATE_BYTES: usize = 144 * 1024;
}

/// Error returned by [`AcLevel::new`] for an out-of-range `K`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidAcLevel {
    k: u32,
}

impl fmt::Display for InvalidAcLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid approximate-caching level K={} (must be < {})",
            self.k, TOTAL_DENOISE_STEPS
        )
    }
}

impl std::error::Error for InvalidAcLevel {}

impl fmt::Display for AcLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "K={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(AcLevel::new(0).is_ok());
        assert!(AcLevel::new(49).is_ok());
        let err = AcLevel::new(50).unwrap_err();
        assert!(err.to_string().contains("K=50"));
    }

    #[test]
    fn k0_equals_base_model() {
        let base = latency::inference_secs(ModelVariant::SdXl, GpuArch::A100);
        assert!((AcLevel(0).compute_secs(GpuArch::A100) - base).abs() < 1e-9);
        assert_eq!(AcLevel(0).remaining_steps(), 50);
    }

    #[test]
    fn latency_decreases_with_k() {
        let ts: Vec<f64> = AC_LEVELS
            .iter()
            .map(|l| l.compute_secs(GpuArch::A100))
            .collect();
        assert!(ts.windows(2).all(|w| w[0] > w[1]), "{ts:?}");
        // Fig. 6 spread: K=20 around 2.2–2.7 s on A100.
        let k20 = AcLevel(20).compute_secs(GpuArch::A100);
        assert!(k20 > 2.0 && k20 < 3.0, "K=20 latency {k20}");
    }

    #[test]
    fn quality_decreases_with_k() {
        let qs: Vec<f64> = AC_LEVELS.iter().map(|l| l.profiled_quality()).collect();
        assert!(qs.windows(2).all(|w| w[0] > w[1]), "{qs:?}");
        // §5.5 anchor: K=20 random ≈ 17.6–18.4 band, K=0 = SD-XL 21.0.
        assert_eq!(AcLevel(0).profiled_quality(), 21.0);
    }

    #[test]
    fn ac_pareto_dominates_sm_at_matched_speed() {
        // Fig. 13: at comparable throughput AC achieves higher quality than
        // a distilled model. Compare K=25 (~2.2 s) against Tiny-SD (2.18 s).
        let ac_q = AcLevel(25).profiled_quality();
        let tiny_q = ModelVariant::TinySd.spec().profiled_quality;
        assert!(ac_q > tiny_q);
    }

    #[test]
    fn interpolated_quality_for_custom_levels() {
        let q12 = AcLevel(12).profiled_quality();
        assert!(q12 < AcLevel(10).profiled_quality());
        assert!(q12 > AcLevel(15).profiled_quality());
    }

    #[test]
    fn state_size_matches_paper() {
        assert_eq!(AcLevel::STATE_BYTES, 147_456); // 144 KB (§4.7)
    }

    #[test]
    fn display_format() {
        assert_eq!(AcLevel(15).to_string(), "K=15");
    }
}
