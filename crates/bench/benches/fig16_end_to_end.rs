//! Fig. 16 — end-to-end comparison of Argus against all baselines on the
//! Twitter-shaped, bursty, and SysX-shaped workloads.
//!
//! Expected shape (paper): Argus meets the load with the lowest quality
//! drop (relative quality > 90% throughout, best except Clipper-HA) and
//! the lowest SLO violations (up to 10× fewer); Clipper-HA has top quality
//! but drowns at peaks; Clipper-HT never violates but serves the lowest
//! quality; Proteus/Sommelier suffer load-switching overheads on jittery
//! segments; NIRVANA holds quality but violates heavily under high load;
//! PAC sits between Proteus and Argus.

use argus_bench::{banner, bucket_series, f, print_table, run_policies};
use argus_core::Policy;
use argus_workload::{bursty, sysx_like, twitter_like, Trace};

fn main() {
    let minutes = 800; // paper: 800-minute slices
    let workloads: Vec<(&str, Trace)> = vec![
        ("Twitter", twitter_like(16, minutes)),
        ("Bursty", bursty(16, minutes, 70.0, 185.0)),
        ("SysX", sysx_like(16, minutes)),
    ];

    for (name, trace) in workloads {
        banner(
            "F16",
            &format!("End-to-end on the {name} workload ({minutes} min)"),
            "Fig. 16",
        );
        println!(
            "demand: {:.0}-{:.0} QPM (mean {:.0})\n",
            trace.trough(),
            trace.peak(),
            trace.mean()
        );
        let results = run_policies(&Policy::ALL, &trace, 16);
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|(p, out)| {
                vec![
                    p.name().to_string(),
                    f(out.totals.mean_throughput_qpm(minutes as f64), 1),
                    f(out.totals.effective_accuracy(), 2),
                    f(100.0 * out.totals.relative_quality(), 1),
                    f(100.0 * out.totals.slo_violation_ratio(), 2),
                    out.totals.model_loads.to_string(),
                    f(100.0 * out.mean_utilization, 1),
                ]
            })
            .collect();
        print_table(
            &[
                "system",
                "QPM",
                "quality",
                "rel.q %",
                "SLO viol %",
                "loads",
                "util %",
            ],
            &rows,
        );

        // Time series for Argus vs the strongest competing scalers.
        for (p, out) in &results {
            if matches!(p, Policy::Argus | Policy::Proteus | Policy::Nirvana) {
                println!("\n{} time series (100-minute buckets):", p.name());
                let rows: Vec<Vec<String>> = bucket_series(out, 100)
                    .into_iter()
                    .map(|(m, offered, served, relq, viol)| {
                        vec![
                            m.to_string(),
                            f(offered, 0),
                            f(served, 0),
                            f(relq, 1),
                            f(viol, 2),
                        ]
                    })
                    .collect();
                print_table(&["minute", "offered", "served", "rel.q %", "viol %"], &rows);
            }
        }
        println!();
    }
}
