//! s62_control_plane — the actor control plane's throughput guard.
//!
//! The ISSUE 6 acceptance bar: a million-job diurnal trace must clear the
//! message-passing control plane (planner / driver / cache-plane / metrics
//! stages over bounded mailboxes) in **under 30 s of wall clock** on one
//! core. The configuration is the serving-path steady state — Argus policy,
//! 256 workers, shared LSH retrieval plane, classifier frozen after its
//! initial fit — so the guard measures the per-job cost of the stage
//! pipeline itself, not model retraining or cold caches.
//!
//! The measured jobs/sec is recorded into `BENCH_control_plane.json` at the
//! repo root so CI history tracks the number, not just the pass/fail bit.

use std::time::Instant;

use argus_bench::{banner, f, print_table, BenchReport};
use argus_core::{Policy, RunConfig};
use argus_workload::twitter_like;

fn main() {
    banner(
        "S62",
        "Actor control-plane throughput guard",
        "ISSUE 6 / §5 control plane",
    );
    let mut guard_failures: Vec<String> = Vec::new();

    // ~953 k jobs: the 260-minute diurnal trace scaled ×40.
    let trace = twitter_like(42, 260).scale(40.0);
    let jobs = trace.total_queries();
    let mut cfg = RunConfig::new(Policy::Argus, trace)
        .with_seed(42)
        .with_workers(256)
        .with_lsh_cache()
        .without_retraining();
    cfg.classifier_train_size = 800;

    let start = Instant::now();
    let out = cfg.run();
    let wall = start.elapsed().as_secs_f64();
    let jobs_per_sec = out.totals.completed as f64 / wall;

    print_table(
        &["jobs", "completed", "wall (s)", "jobs/sec", "hit rate"],
        &[vec![
            f(jobs, 0),
            out.totals.completed.to_string(),
            f(wall, 1),
            f(jobs_per_sec, 0),
            f(out.retrieval.hit_rate(), 3),
        ]],
    );

    if out.totals.completed != out.totals.offered {
        guard_failures.push(format!(
            "run dropped jobs: completed {} of {} offered",
            out.totals.completed, out.totals.offered
        ));
    }
    if wall >= 30.0 {
        guard_failures.push(format!("million-job trace took {wall:.1} s (budget 30 s)"));
    }
    // Floor with headroom below the measured ~41 k jobs/sec, above the
    // ~32 k the 30 s ceiling implies — catches creeping per-job cost even
    // on runners faster than the calibration host.
    if jobs_per_sec < 32_000.0 {
        guard_failures.push(format!(
            "control plane sustained {jobs_per_sec:.0} jobs/sec (floor 32000)"
        ));
    }

    BenchReport::new("s62_control_plane")
        .str("policy", "Argus")
        .uint("workers", 256)
        .uint("seed", 42)
        .uint("jobs", out.totals.completed)
        .float("wall_secs", wall, 3)
        .float("jobs_per_sec", jobs_per_sec, 0)
        .float("budget_wall_secs", 30.0, 1)
        .write("BENCH_control_plane.json");

    assert!(
        guard_failures.is_empty(),
        "s62_control_plane guard failed:\n{}",
        guard_failures.join("\n")
    );
    println!(
        "\nguard ok: {} jobs through the actor control plane in {wall:.1} s ({jobs_per_sec:.0} jobs/sec, budget 30 s)",
        out.totals.completed
    );
}
