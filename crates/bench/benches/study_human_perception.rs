//! §5.4 / §5.7 — simulated human-perception study: 186 threshold-raters
//! judge served images for prompt relevance and overall quality.
//!
//! Expected shape (paper): Argus 82%/70% > PAC 63%/46% > Proteus 59%/43%
//! > Clipper-HT 41%/35%; always-SD-XL reaches 94%/89% but cannot scale.

use argus_bench::{banner, f, print_table};
use argus_core::{Policy, RunConfig};
use argus_quality::simulate_suitability;
use argus_workload::sysx_like;

fn main() {
    banner(
        "S5.4",
        "Simulated 186-participant suitability study",
        "§5.4/§5.7",
    );
    let minutes = 200;
    let trace = sysx_like(54, minutes);

    let mut rows = Vec::new();
    for policy in [
        Policy::Argus,
        Policy::Pac,
        Policy::Proteus,
        Policy::ClipperHt,
        Policy::ClipperHa, // the unscalable SD-XL reference
    ] {
        let out = RunConfig::new(policy, trace.clone()).with_seed(54).run();
        let rating = simulate_suitability(&out.quality_samples, 186);
        let label = if policy == Policy::ClipperHa {
            "SD-XL (unscalable)".to_string()
        } else {
            policy.name().to_string()
        };
        rows.push(vec![
            label,
            f(100.0 * rating.prompt_relevance, 1),
            f(100.0 * rating.overall_quality, 1),
            f(100.0 * out.totals.slo_violation_ratio(), 1),
        ]);
    }
    print_table(
        &[
            "system",
            "prompt relevance %",
            "overall quality %",
            "SLO viol %",
        ],
        &rows,
    );
    println!(
        "\npaper anchors: Argus 82/70, PAC 63/46, Proteus 59/43, \
         Clipper-HT 41/35, SD-XL 94/89.\n\
         (SD-XL's votes are taken over the queries it served in time —\n\
         its violation column shows why it is not deployable.)"
    );
}
