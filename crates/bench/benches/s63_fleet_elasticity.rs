//! s63_fleet_elasticity — the elastic-fleet subsystem's two headline
//! guards (ISSUE 8, §5.6 extension).
//!
//! **Storm:** a spot pool loses 30% of its instances inside one minute.
//! With the 30-second preemption warning the driver drains each warned
//! worker — no new work routed, in-flight passes finish, queued jobs
//! migrate — so the migration damage (in-flight passes destroyed, SLO
//! misses in the storm window) must be at most half of what the same
//! storm does with no warning (`warning_secs: 0`, an unwarned crash).
//!
//! **Diurnal:** over a full synthetic day with day-scale demand swings,
//! an autoscaled fleet (min 4 / max 12) must hold SLO attainment within
//! 10% of the static peak fleet's while billing at least 25% fewer
//! GPU-minutes — the scale-to-demand value proposition in one number.
//!
//! Both scenarios' measurements are recorded into `BENCH_fleet.json` at
//! the repo root so CI history tracks the numbers, not just the bit.

use argus_bench::{banner, f, print_table, BenchReport};
use argus_core::{preemption_events, AutoscalePolicy, Policy, RunConfig, RunOutcome};
use argus_models::GpuArch;
use argus_workload::{diurnal, preemption_storm, steady};

/// SLO violations in `[from, to)` minutes — isolates storm damage from
/// background noise.
fn violations_in(out: &RunOutcome, from: u64, to: u64) -> u64 {
    out.minutes
        .iter()
        .filter(|m| (from..to).contains(&m.minute))
        .map(|m| m.violations)
        .sum()
}

/// Total billed GPU-minutes (on-demand + spot) from the cost report.
fn gpu_minutes(out: &RunOutcome) -> f64 {
    out.cost
        .gpu_minutes
        .iter()
        .map(|&(_, od, sp)| od + sp)
        .sum()
}

fn main() {
    banner(
        "S63",
        "Elastic fleet: preemption storms & scale-to-demand",
        "ISSUE 8 / §5.6 extension",
    );
    let mut guard_failures: Vec<String> = Vec::new();

    // ── Storm: 30% of a 10-worker spot pool reclaimed in one minute ──
    // 8 on-demand A100s + 10 spot A10Gs at 40% off, loaded to the point
    // where losing three instances hurts but the healthy fleet keeps the
    // SLO. Same seed, same storm, the only difference is the warning.
    let storm = preemption_storm(63, 8, 10, 0.3, 10.0);
    let storm_run = |warning_secs: f64| {
        let mut c = RunConfig::new(Policy::Argus, steady(300.0, 24))
            .with_seed(63)
            .with_spot_pool(GpuArch::A10G, 10, 0.4)
            .with_faults(preemption_events(&storm, warning_secs))
            .without_retraining();
        c.classifier_train_size = 800;
        c.run()
    };
    let warned = storm_run(30.0);
    let unwarned = storm_run(0.0);
    // Storm window: the reclaim minute plus the recovery tail.
    let warned_viol = violations_in(&warned, 10, 15);
    let unwarned_viol = violations_in(&unwarned, 10, 15);

    print_table(
        &["scenario", "storm-window viol", "ridden", "lost", "spot $"],
        &[
            vec![
                "30 s warning".into(),
                warned_viol.to_string(),
                warned.fleet.preemptions_ridden.to_string(),
                warned.fleet.preemptions_lost.to_string(),
                f(warned.cost.spot_dollars, 2),
            ],
            vec![
                "no warning".into(),
                unwarned_viol.to_string(),
                unwarned.fleet.preemptions_ridden.to_string(),
                unwarned.fleet.preemptions_lost.to_string(),
                f(unwarned.cost.spot_dollars, 2),
            ],
        ],
    );

    if warned_viol as f64 > 0.5 * unwarned_viol as f64 {
        guard_failures.push(format!(
            "warned storm violations {warned_viol} exceed half the unwarned baseline {unwarned_viol}"
        ));
    }
    if warned.fleet.preemptions_ridden + warned.fleet.preemptions_lost != 3 {
        guard_failures.push(format!(
            "storm should preempt 3 workers, tallied {} + {}",
            warned.fleet.preemptions_ridden, warned.fleet.preemptions_lost
        ));
    }
    // Migration damage: unwarned reclaims destroy the in-flight passes
    // they land on; the warning window must cut that at least in half
    // (it drains them to zero here).
    if unwarned.fleet.preemptions_lost < 2 {
        guard_failures.push(format!(
            "unwarned storm should kill in-flight passes, tallied {}",
            unwarned.fleet.preemptions_lost
        ));
    }
    if 2 * warned.fleet.preemptions_lost > unwarned.fleet.preemptions_lost {
        guard_failures.push(format!(
            "warning window saved too little in-flight work: {} lost vs {} unwarned",
            warned.fleet.preemptions_lost, unwarned.fleet.preemptions_lost
        ));
    }

    // ── Diurnal: autoscaled (4..=12) vs. the static peak fleet ──
    // One synthetic day; peaks need ~12 A100s, troughs far fewer. The
    // static fleet provisions for the peak around the clock; the
    // autoscaler starts mid-sized and follows demand.
    let day = diurnal(63, 1).normalize_to(40.0, 300.0);
    let mut static_cfg = RunConfig::new(Policy::Argus, day.clone())
        .with_seed(63)
        .with_workers(12)
        .without_retraining();
    static_cfg.classifier_train_size = 800;
    let static_out = static_cfg.run();

    // Responsive ramping: act on the first pressured tick, three workers
    // per action, one-minute cooldown — the fleet climbs 4 → 12 in three
    // allocator ticks when a morning surge builds. Scale-in keeps the
    // default 5-tick streak, protecting the troughs from flapping.
    let mut ramp = AutoscalePolicy::default()
        .with_step(3)
        .with_cooldown(60.0)
        .with_bounds(GpuArch::A100, 4, 12);
    ramp.scale_out_after = 1;
    let mut auto_cfg = RunConfig::new(Policy::Argus, day)
        .with_seed(63)
        .with_workers(8)
        .with_autoscaler(ramp)
        .without_retraining();
    auto_cfg.classifier_train_size = 800;
    let auto_out = auto_cfg.run();

    let static_minutes = gpu_minutes(&static_out);
    let auto_minutes = gpu_minutes(&auto_out);
    let saved = 1.0 - auto_minutes / static_minutes;
    let attainment = |out: &RunOutcome| out.totals.in_slo as f64 / out.totals.offered.max(1) as f64;
    let static_att = attainment(&static_out);
    let auto_att = attainment(&auto_out);

    print_table(
        &[
            "fleet",
            "SLO attainment",
            "violations",
            "GPU-min",
            "peak workers",
            "$ / 1k images",
        ],
        &[
            vec![
                "static 12".into(),
                f(static_att, 4),
                static_out.totals.violations.to_string(),
                f(static_minutes, 0),
                static_out.fleet.peak_workers.to_string(),
                f(static_out.cost.dollars_per_1k_images, 3),
            ],
            vec![
                "autoscaled 4..=12".into(),
                f(auto_att, 4),
                auto_out.totals.violations.to_string(),
                f(auto_minutes, 0),
                auto_out.fleet.peak_workers.to_string(),
                f(auto_out.cost.dollars_per_1k_images, 3),
            ],
        ],
    );

    if auto_att < 0.90 * static_att {
        guard_failures.push(format!(
            "autoscaled SLO attainment {auto_att:.4} fell more than 10% below static {static_att:.4}"
        ));
    }
    if auto_minutes > 0.75 * static_minutes {
        guard_failures.push(format!(
            "autoscaled fleet billed {auto_minutes:.0} GPU-min, needs ≤ 75% of static {static_minutes:.0}"
        ));
    }
    if auto_out.fleet.scale_out_events == 0 || auto_out.fleet.scale_in_events == 0 {
        guard_failures.push(format!(
            "autoscaler never exercised both directions: {} out / {} in",
            auto_out.fleet.scale_out_events, auto_out.fleet.scale_in_events
        ));
    }

    BenchReport::new("s63_fleet_elasticity")
        .nested(
            "storm",
            BenchReport::group()
                .uint("warned_window_violations", warned_viol)
                .uint("unwarned_window_violations", unwarned_viol)
                .uint("warned_ridden", warned.fleet.preemptions_ridden)
                .uint("warned_lost", warned.fleet.preemptions_lost)
                .uint("unwarned_lost", unwarned.fleet.preemptions_lost)
                .float("warning_secs", 30.0, 1),
        )
        .nested(
            "diurnal",
            BenchReport::group()
                .float("static_slo_attainment", static_att, 4)
                .float("auto_slo_attainment", auto_att, 4)
                .uint("static_violations", static_out.totals.violations)
                .uint("auto_violations", auto_out.totals.violations)
                .float("static_gpu_minutes", static_minutes, 0)
                .float("auto_gpu_minutes", auto_minutes, 0)
                .float("gpu_minutes_saved_frac", saved, 3)
                .uint("auto_peak_workers", auto_out.fleet.peak_workers as u64)
                .float(
                    "static_dollars_per_1k",
                    static_out.cost.dollars_per_1k_images,
                    3,
                )
                .float(
                    "auto_dollars_per_1k",
                    auto_out.cost.dollars_per_1k_images,
                    3,
                ),
        )
        .write("BENCH_fleet.json");

    assert!(
        guard_failures.is_empty(),
        "s63_fleet_elasticity guard failed:\n{}",
        guard_failures.join("\n")
    );
    println!(
        "\nguard ok: 30 s warning rides the storm ({} vs {} passes lost); autoscaler saves {:.0}% GPU-minutes within the SLO envelope ({auto_att:.4} vs {static_att:.4})",
        warned.fleet.preemptions_lost,
        unwarned.fleet.preemptions_lost,
        saved * 100.0
    );
}
