//! Fig. 9 — average PickScore under optimal vs random prompt assignment,
//! per level, plus PickScore-per-latency.
//!
//! Expected shape (paper): for the approximated levels, assigning only
//! prompts whose optimal model is that level scores far higher than
//! random assignment (e.g. Small-SD: 17.4 random vs 20.6 optimal), and
//! deeper levels win on PickScore-per-latency.

use argus_bench::{banner, f, print_table};
use argus_models::{ApproxLevel, GpuArch, Strategy};
use argus_prompts::PromptGenerator;
use argus_quality::QualityOracle;

fn main() {
    banner("F9", "Optimal vs random assignment per level", "Fig. 9");
    let oracle = QualityOracle::new(9);
    let prompts = PromptGenerator::new(9).generate_batch(12_000);

    for strategy in [Strategy::Sm, Strategy::Ac] {
        println!("\n[{strategy} ladder]");
        let ladder = ApproxLevel::ladder(strategy);
        let optimal_idx: Vec<usize> = prompts
            .iter()
            .map(|p| oracle.optimal_level(p, &ladder))
            .collect();
        let rows: Vec<Vec<String>> = ladder
            .iter()
            .enumerate()
            .map(|(i, &lvl)| {
                let random_mean = prompts.iter().map(|p| oracle.score(p, lvl)).sum::<f64>()
                    / prompts.len() as f64;
                let own: Vec<f64> = prompts
                    .iter()
                    .zip(&optimal_idx)
                    .filter(|&(_, &o)| o == i)
                    .map(|(p, _)| oracle.score(p, lvl))
                    .collect();
                let optimal_mean = if own.is_empty() {
                    f64::NAN
                } else {
                    own.iter().sum::<f64>() / own.len() as f64
                };
                let lat = lvl.compute_secs(GpuArch::A100);
                vec![
                    lvl.to_string(),
                    f(random_mean, 2),
                    if own.is_empty() {
                        "n/a".into()
                    } else {
                        f(optimal_mean, 2)
                    },
                    f(optimal_mean / lat, 2),
                    f(100.0 * own.len() as f64 / prompts.len() as f64, 1),
                ]
            })
            .collect();
        print_table(
            &[
                "level",
                "random mean",
                "optimal mean",
                "PickScore/latency",
                "% optimal here",
            ],
            &rows,
        );
    }
}
