//! s61_capacity_plan — the pluggable `CapacityModel` guards.
//!
//! Three claims, each asserted (CI fails on regression):
//!
//! 1. **Batching-aware Eq. 1** (`BatchedModel`): on the saturated
//!    Tiny-SD-class diurnal trace (Proteus' SM solver with dispatch
//!    batching enabled), planning with the Obs. 5 curve completes at
//!    least as many jobs as batch-1 planning, lifts effective accuracy
//!    (the batched headroom is spent on slower, higher-quality levels),
//!    and stops over-reporting saturation (the §6 scale-out signal now
//!    reflects what the batched fleet can actually absorb). The known
//!    trade — also printed — is a higher violation ratio at the peaks:
//!    the plan holds quality levels where batch-1 planning would have
//!    fled to Tiny-SD everywhere.
//! 2. **Per-pool strategies** on a mixed V100/A10G/A100 fleet: pinning
//!    the SM ladder on the old architectures (AC stays on A100) at least
//!    halves the diurnal-peak SLO violations of AC-everywhere at equal
//!    completions — the Fig. 5/fig16 recovery.
//! 3. **Solver budget**: building batching-aware profiles and solving
//!    Eq. 1 at 128 workers stays under the §5.7 100 ms allocation
//!    budget.

use std::time::Instant;

use argus_bench::{banner, f, print_table, BenchReport};
use argus_core::{
    AllocationProblem, Batch1Model, BatchedModel, CapacityCtx, CapacityModel, Policy, RunConfig,
};
use argus_models::{ApproxLevel, GpuArch, Strategy};
use argus_workload::twitter_like;

fn main() {
    banner(
        "S61",
        "Capacity-model planning guards",
        "Eq. 1 / Obs. 5 / Fig. 5 / §5.7",
    );
    let mut guard_failures: Vec<String> = Vec::new();

    // ---------------------------------------------------------------- //
    // 1. Batching-aware planning vs batch-1 planning (saturated Tiny-SD
    //    diurnal trace, dispatch batching B = 4 in both runs).
    // ---------------------------------------------------------------- //
    let trace = twitter_like(11, 30).normalize_to(120.0, 280.0);
    let batch1 = RunConfig::new(Policy::Proteus, trace.clone())
        .with_seed(11)
        .with_batching(4)
        .run();
    let aware = RunConfig::new(Policy::Proteus, trace.clone())
        .with_seed(11)
        .with_batching(4)
        .with_capacity_model(BatchedModel)
        .run();
    let mut rows = Vec::new();
    for (name, out) in [("batch-1 plan", &batch1), ("batching-aware", &aware)] {
        rows.push(vec![
            name.to_string(),
            out.totals.completed.to_string(),
            f(out.totals.effective_accuracy(), 3),
            f(out.totals.slo_violation_ratio(), 3),
            out.saturated_minutes.to_string(),
            f(out.makespan_secs, 0),
        ]);
    }
    print_table(
        &[
            "planner",
            "completed",
            "quality",
            "viol",
            "sat-min",
            "makespan",
        ],
        &rows,
    );
    if aware.totals.completed < batch1.totals.completed {
        guard_failures.push(format!(
            "batching-aware plan completed {} < batch-1 plan {}",
            aware.totals.completed, batch1.totals.completed
        ));
    }
    if aware.totals.effective_accuracy() <= batch1.totals.effective_accuracy() {
        guard_failures.push(format!(
            "batching-aware plan should lift quality: {:.3} vs {:.3}",
            aware.totals.effective_accuracy(),
            batch1.totals.effective_accuracy()
        ));
    }
    if aware.saturated_minutes >= batch1.saturated_minutes {
        guard_failures.push(format!(
            "batching-aware plan should report less saturation: {} vs {}",
            aware.saturated_minutes, batch1.saturated_minutes
        ));
    }

    // ---------------------------------------------------------------- //
    // 2. Per-pool strategies on the mixed fleet.
    // ---------------------------------------------------------------- //
    let fleet = vec![(GpuArch::A100, 4), (GpuArch::A10G, 2), (GpuArch::V100, 2)];
    let trace2 = twitter_like(7, 30).normalize_to(60.0, 200.0);
    let ac_everywhere = RunConfig::new(Policy::Argus, trace2.clone())
        .with_heterogeneous_pools(fleet.clone())
        .with_seed(7)
        .run();
    let per_pool = RunConfig::new(Policy::Argus, trace2)
        .with_heterogeneous_pools(fleet)
        .with_pool_strategy(GpuArch::V100, Strategy::Sm)
        .with_pool_strategy(GpuArch::A10G, Strategy::Sm)
        .with_seed(7)
        .run();
    let mut rows = Vec::new();
    for (name, out) in [
        ("AC everywhere", &ac_everywhere),
        ("SM on V100/A10G", &per_pool),
    ] {
        rows.push(vec![
            name.to_string(),
            out.totals.completed.to_string(),
            f(out.totals.effective_accuracy(), 3),
            f(out.totals.slo_violation_ratio(), 3),
            out.pools
                .iter()
                .map(|p| format!("{:?}:{}", p.gpu, p.violations))
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    print_table(
        &[
            "mixed fleet",
            "completed",
            "quality",
            "viol",
            "per-pool violations",
        ],
        &rows,
    );
    if per_pool.totals.completed != ac_everywhere.totals.completed {
        guard_failures.push("per-pool run served a different job count".to_string());
    }
    if per_pool.totals.slo_violation_ratio() > 0.5 * ac_everywhere.totals.slo_violation_ratio() {
        guard_failures.push(format!(
            "per-pool strategies should at least halve peak violations: {:.3} vs {:.3}",
            per_pool.totals.slo_violation_ratio(),
            ac_everywhere.totals.slo_violation_ratio()
        ));
    }

    // ---------------------------------------------------------------- //
    // 3. Solver budget at 128 workers with batching-aware profiles.
    // ---------------------------------------------------------------- //
    let ladder = ApproxLevel::ladder(Strategy::Sm);
    let ctx = CapacityCtx {
        max_batch: 8,
        slo_secs: 12.6,
        retrieval_overhead_secs: 0.0,
        escalation: None,
    };
    let mut worst_ms = 0.0f64;
    for demand in [800.0, 2400.0, 4200.0] {
        let start = Instant::now();
        let latencies: Vec<f64> = ladder
            .iter()
            .map(|&l| BatchedModel.job_latency_secs(l, GpuArch::A100, &ctx))
            .collect();
        let problem = AllocationProblem::from_capacity_model(
            &BatchedModel,
            &ladder,
            GpuArch::A100,
            &ctx,
            128,
            demand,
        )
        .with_slo_derating_latencies(12.6, &latencies);
        let allocation = problem.solve_fast();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        worst_ms = worst_ms.max(ms);
        println!(
            "128 workers, demand {demand:>6.0} QPM: solved in {ms:>7.2} ms (served {:.0}, saturated {})",
            allocation.served_qpm, allocation.saturated
        );
        // Sanity: the batching-aware problem must dominate batch-1.
        let b1 = AllocationProblem::from_capacity_model(
            &Batch1Model,
            &ladder,
            GpuArch::A100,
            &ctx,
            128,
            demand,
        );
        if problem.max_capacity_qpm() + 1e-9 < b1.max_capacity_qpm() {
            guard_failures.push("batched capacity fell below batch-1 at 128 workers".to_string());
        }
    }
    if worst_ms >= 100.0 {
        guard_failures.push(format!(
            "batching-aware solve at 128 workers took {worst_ms:.1} ms (budget 100 ms)"
        ));
    }

    BenchReport::new("s61_capacity_plan")
        .uint("batch1_completed", batch1.totals.completed)
        .uint("aware_completed", aware.totals.completed)
        .float("batch1_quality", batch1.totals.effective_accuracy(), 4)
        .float("aware_quality", aware.totals.effective_accuracy(), 4)
        .uint("batch1_saturated_minutes", batch1.saturated_minutes as u64)
        .uint("aware_saturated_minutes", aware.saturated_minutes as u64)
        .float(
            "ac_everywhere_violation_ratio",
            ac_everywhere.totals.slo_violation_ratio(),
            4,
        )
        .float(
            "per_pool_violation_ratio",
            per_pool.totals.slo_violation_ratio(),
            4,
        )
        .float("worst_solve_ms", worst_ms, 2)
        .float("budget_solve_ms", 100.0, 1)
        .write("BENCH_capacity_plan.json");

    assert!(
        guard_failures.is_empty(),
        "s61_capacity_plan guard failed:\n{}",
        guard_failures.join("\n")
    );
    println!(
        "\nguard ok: batching-aware plan completes >= batch-1 with higher quality and less reported saturation; per-pool strategies halve mixed-fleet violations; 128-worker batching-aware solve {worst_ms:.1} ms < 100 ms"
    );
}
