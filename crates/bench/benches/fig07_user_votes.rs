//! Fig. 7 — simulated user votes on images generated at different
//! approximation levels (AC and SM).
//!
//! Expected shape (paper): vote share stays high for shallow
//! approximation and declines with depth, with substantial per-prompt
//! variance — many prompts are indistinguishable even at deep levels
//! (Obs. 1, validated with 200 participants in the paper).

use argus_bench::{banner, f, print_table};
use argus_models::{ApproxLevel, Strategy};
use argus_prompts::PromptGenerator;
use argus_quality::{QualityOracle, RaterPanel};

fn main() {
    banner(
        "F7",
        "Simulated user votes per approximation level",
        "Fig. 7",
    );
    let oracle = QualityOracle::new(77);
    let panel = RaterPanel::new(200, 77); // paper: 200 participants
    let prompts = PromptGenerator::new(77).generate_batch(400);

    for strategy in [Strategy::Ac, Strategy::Sm] {
        println!("\n[{strategy} ladder]");
        let ladder = ApproxLevel::ladder(strategy);
        let rows: Vec<Vec<String>> = ladder
            .iter()
            .map(|&lvl| {
                let samples: Vec<(f64, f64)> = prompts
                    .iter()
                    .map(|p| (oracle.score(p, lvl), oracle.base_quality(p)))
                    .collect();
                let r = panel.rate(&samples);
                vec![
                    lvl.to_string(),
                    f(100.0 * r.prompt_relevance, 1),
                    f(100.0 * r.overall_quality, 1),
                ]
            })
            .collect();
        print_table(&["level", "relevance votes %", "quality votes %"], &rows);
    }
}
