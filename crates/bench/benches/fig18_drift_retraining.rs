//! Fig. 18 — classifier accuracy over time with drift-triggered offline
//! retraining.
//!
//! Expected shape (paper): accuracy dips when out-of-distribution prompts
//! enter the stream; the median-PickScore drift detector fires; retraining
//! (8 epochs, off the critical path) restores accuracy. Without
//! retraining, accuracy stays depressed.

use argus_bench::{banner, f, print_table};
use argus_core::{Policy, RunConfig};
use argus_prompts::DriftSchedule;
use argus_workload::steady;

fn main() {
    banner("F18", "Classifier accuracy under prompt drift", "Fig. 18");
    let minutes = 240;
    let trace = steady(120.0, minutes);
    let drift = DriftSchedule {
        start_at: 8_000, // ~minute 67 at 120 QPM
        ramp: 4_000,
        max_fraction: 0.65,
    };

    let with = RunConfig::new(Policy::Argus, trace.clone())
        .with_seed(18)
        .with_drift(drift)
        .run();
    let without = RunConfig::new(Policy::Argus, trace)
        .with_seed(18)
        .with_drift(drift)
        .without_retraining()
        .run();

    println!("classifier accuracy timeline (20-minute samples):");
    let sample = |acc: &[(u64, f64)], m: u64| -> f64 {
        acc.iter()
            .rfind(|&&(minute, _)| minute <= m)
            .map(|&(_, a)| a)
            .unwrap_or(0.0)
    };
    let rows: Vec<Vec<String>> = (0..minutes as u64 / 20)
        .map(|i| {
            let m = i * 20 + 19;
            vec![
                m.to_string(),
                f(100.0 * sample(&with.classifier_accuracy, m), 1),
                f(100.0 * sample(&without.classifier_accuracy, m), 1),
            ]
        })
        .collect();
    print_table(&["minute", "acc % (retraining)", "acc % (frozen)"], &rows);

    println!("\nretraining events at minutes: {:?}", with.retrain_minutes);
    println!(
        "effective accuracy: retraining {:.2} vs frozen {:.2}",
        with.totals.effective_accuracy(),
        without.totals.effective_accuracy()
    );
}
