//! Fig. 19 — classifier training quality translates into image quality:
//! lower training loss ⇒ higher PickScore.
//!
//! Expected shape (paper): training loss 1.0 → 0.1 raises routing-driven
//! PickScore ≈ 18.0 → 20.6. We sweep training epochs, report the loss and
//! the end-to-end effective accuracy of an Argus run using that
//! classifier, plus the §5.5 classifier-vs-random comparison.

use argus_bench::{banner, f, print_table};
use argus_classifier::{evaluate, label_prompts, train, TrainerConfig};
use argus_core::{Policy, RunConfig};
use argus_models::{ApproxLevel, Strategy};
use argus_prompts::PromptGenerator;
use argus_quality::QualityOracle;
use argus_workload::steady;

fn main() {
    banner("F19", "Classifier loss vs routing quality", "Fig. 19");

    // Offline view: loss and accuracy per epoch count.
    let ladder = ApproxLevel::ladder(Strategy::Ac);
    let oracle = QualityOracle::new(19);
    let train_set = label_prompts(
        &oracle,
        &PromptGenerator::new(19).generate_batch(4000),
        &ladder,
    );
    let test_set = label_prompts(
        &oracle,
        &PromptGenerator::new(191).generate_batch(1500),
        &ladder,
    );

    let mut rows = Vec::new();
    for epochs in [0usize, 1, 2, 4, 8, 16] {
        let (clf, report) = train(
            &train_set,
            ladder.len(),
            &TrainerConfig {
                epochs,
                ..TrainerConfig::default()
            },
        );
        let eval = evaluate(&clf, &test_set);
        // End-to-end: Argus run with this epoch budget.
        let out = RunConfig::new(Policy::Argus, steady(150.0, 30))
            .with_seed(19)
            .with_classifier_epochs(epochs)
            .run();
        rows.push(vec![
            if epochs == 0 {
                "0 (untrained)".into()
            } else {
                epochs.to_string()
            },
            if report.epoch_losses.is_empty() {
                "-".into()
            } else {
                f(report.final_loss(), 3)
            },
            f(100.0 * eval.accuracy, 1),
            f(100.0 * eval.within_one, 1),
            f(out.totals.effective_accuracy(), 2),
        ]);
    }
    print_table(
        &[
            "epochs",
            "train loss",
            "accuracy %",
            "within-1 %",
            "system PickScore",
        ],
        &rows,
    );

    // §5.5: classifier routing vs random variant selection.
    println!("\n§5.5 — classifier vs random variant selection (30-min runs @150 QPM):");
    let argus = RunConfig::new(Policy::Argus, steady(150.0, 30))
        .with_seed(19)
        .run();
    let random = RunConfig::new(Policy::Pac, steady(150.0, 30))
        .with_seed(19)
        .run();
    print_table(
        &["routing", "effective PickScore"],
        &[
            vec![
                "classifier + ODA (Argus)".into(),
                f(argus.totals.effective_accuracy(), 2),
            ],
            vec![
                "random (PAC)".into(),
                f(random.totals.effective_accuracy(), 2),
            ],
        ],
    );
    println!("paper anchors: AC classifier 20.8 vs random 17.6 (−15.4%)");
}
