//! §5.7 — solver scalability and workload-distribution-predictor accuracy.
//!
//! Expected shape (paper): the ILP computes placements in <100 ms even for
//! clusters of tens of GPUs; the predictor reaches L2 error ≤ 0.01–0.05
//! with a 1000-prompt look-back window.

use argus_bench::{banner, f, print_table};
use argus_core::{AllocationProblem, WorkloadDistributionPredictor};
use argus_models::{ApproxLevel, GpuArch, Strategy};
use argus_prompts::PromptGenerator;
use argus_quality::QualityOracle;
use std::time::Instant;

fn main() {
    banner(
        "S5.7c",
        "Solver scalability & predictor accuracy",
        "§5.7 / §6",
    );
    let ladder = ApproxLevel::ladder(Strategy::Ac);

    println!("solver wall-clock (median of 5 solves, demand = 0.8×capacity):");
    let mut rows = Vec::new();
    for workers in [8usize, 16, 24, 32, 48, 64] {
        let problem = AllocationProblem::from_ladder(
            &ladder,
            GpuArch::A100,
            0.02,
            workers,
            0.8 * 26.9 * workers as f64,
        );
        let time_exact = median_ms(5, || {
            let _ = problem.solve_exact();
        });
        let milp_ms = if workers <= 16 {
            f(
                median_ms(3, || {
                    let _ = problem.solve_milp();
                }),
                1,
            )
        } else {
            "-".to_string()
        };
        rows.push(vec![workers.to_string(), f(time_exact, 2), milp_ms]);
    }
    print_table(
        &["workers", "exact solver (ms)", "paper-form MILP (ms)"],
        &rows,
    );

    println!("\npredictor L2 error vs look-back window:");
    let oracle = QualityOracle::new(59);
    let mut generator = PromptGenerator::new(59);
    let reference = oracle.optimal_choice_histogram(&generator.generate_batch(20_000), &ladder);
    let mut rows = Vec::new();
    for window in [100usize, 300, 1000, 3000] {
        let mut p = WorkloadDistributionPredictor::new(ladder.len(), window);
        for prompt in generator.generate_batch(window) {
            p.record(oracle.optimal_level(&prompt, &ladder));
        }
        rows.push(vec![window.to_string(), f(p.l2_error(&reference), 4)]);
    }
    print_table(&["window", "L2 error"], &rows);
    println!("\npaper anchors: <100 ms at tens of GPUs; L2 ≈ 0.01 at window 1000.");
}

fn median_ms(n: usize, mut op: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..n)
        .map(|_| {
            let start = Instant::now();
            op();
            start.elapsed().as_secs_f64() * 1000.0
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[n / 2]
}
