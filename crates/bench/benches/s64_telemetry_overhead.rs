//! s64_telemetry_overhead — the telemetry plane's cost guard.
//!
//! The §12 plane is only acceptable if watching the system costs almost
//! nothing: on the s62 million-job diurnal trace, **full tracing**
//! (every job's lifecycle spans + the per-minute timeline) must stay
//! within **10%** of the telemetry-off cost, and **1-in-64 sampling**
//! within **2%**. Results must be bit-identical across all three runs —
//! telemetry is an observer, never a participant. On Linux the cost is
//! process CPU time (co-tenants on shared runners inflate wall clock by
//! 20%+ between runs, drowning a 2% budget); elsewhere it falls back to
//! wall clock. Either way each variant takes its best of three
//! interleaved rounds.
//!
//! The measured overheads are recorded into `BENCH_obs.json` at the
//! repo root so CI history tracks the numbers, not just the pass bits.

use std::time::Instant;

use argus_bench::{banner, f, print_table, BenchReport};
use argus_core::{Policy, RunConfig, RunOutcome, TelemetryConfig};
use argus_workload::{twitter_like, Trace};

fn cfg(trace: Trace) -> RunConfig {
    let mut c = RunConfig::new(Policy::Argus, trace)
        .with_seed(42)
        .with_workers(256)
        .with_lsh_cache()
        .without_retraining();
    c.classifier_train_size = 800;
    c
}

/// Process CPU time (user + system) in clock ticks from
/// `/proc/self/stat`, `None` off-Linux. The guard compares *ratios*,
/// so the tick unit cancels and no sysconf call is needed.
fn cpu_ticks() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // comm (field 2) may contain spaces; fields resume after the last ')'.
    let rest = stat.get(stat.rfind(')')? + 2..)?;
    let fields: Vec<&str> = rest.split_ascii_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?; // stat field 14
    let stime: u64 = fields.get(12)?.parse().ok()?; // stat field 15
    Some(utime + stime)
}

/// Rounds of interleaved off/sampled/full measurement. The run itself
/// is bit-deterministic, so the spread between repeats is pure
/// scheduler/allocator/co-tenant noise: interleaving spreads noise
/// bursts across all three variants and the per-variant minimum is the
/// estimator least polluted by them.
const ROUNDS: usize = 3;

#[derive(Default)]
struct Sample {
    out: Option<RunOutcome>,
    wall: f64,
    cpu: Option<f64>,
}

impl Sample {
    fn new() -> Self {
        Sample {
            wall: f64::INFINITY,
            ..Sample::default()
        }
    }

    /// Runs the configuration once, keeping the cheapest repeat of
    /// each measure seen so far. On shared single-core runners a
    /// co-tenant can inflate one variant's wall clock by 20%+, so the
    /// overhead guard prefers process CPU time, which only counts our
    /// own work; wall time is still reported for the JSON record.
    fn measure(&mut self, make: impl Fn() -> RunConfig) {
        let ticks_before = cpu_ticks();
        let start = Instant::now();
        let out = make().run();
        self.wall = self.wall.min(start.elapsed().as_secs_f64());
        let cpu = cpu_ticks()
            .zip(ticks_before)
            .map(|(after, before)| after.saturating_sub(before) as f64);
        self.cpu = match (self.cpu, cpu) {
            (Some(best), Some(new)) => Some(best.min(new)),
            (best, new) => best.or(new),
        };
        self.out.get_or_insert(out);
    }

    fn out(&self) -> &RunOutcome {
        self.out.as_ref().expect("measured at least once")
    }
}

fn main() {
    banner(
        "S64",
        "Telemetry overhead guard on the million-job trace",
        "§12 telemetry / ISSUE 9",
    );
    let mut guard_failures: Vec<String> = Vec::new();

    // The s62 configuration: ~953 k jobs through the actor control plane.
    let trace = twitter_like(42, 260).scale(40.0);

    // One discarded warmup run: the first pass pays page-cache and
    // allocator cold-start costs that would flatter whichever variant
    // runs second.
    let _ = cfg(trace.clone()).run();

    let mut off = Sample::new();
    let mut sampled = Sample::new();
    let mut full = Sample::new();
    for _ in 0..ROUNDS {
        off.measure(|| cfg(trace.clone()));
        sampled.measure(|| cfg(trace.clone()).with_telemetry(TelemetryConfig::sampled(64)));
        full.measure(|| cfg(trace.clone()).with_telemetry(TelemetryConfig::full()));
    }

    // Guard on CPU time when the platform exposes it, wall otherwise.
    let cpu_based = off.cpu.is_some() && sampled.cpu.is_some() && full.cpu.is_some();
    let measure = |s: &Sample| if cpu_based { s.cpu.unwrap() } else { s.wall };
    let sampled_ratio = measure(&sampled) / measure(&off);
    let full_ratio = measure(&full) / measure(&off);
    let mut rows = Vec::new();
    for (name, s, ratio) in [
        ("off", &off, 1.0),
        ("sampled 1/64", &sampled, sampled_ratio),
        ("full", &full, full_ratio),
    ] {
        rows.push(vec![
            name.to_string(),
            s.out().totals.completed.to_string(),
            f(s.wall, 2),
            format!("{:.3}x", ratio),
            s.out()
                .spans
                .as_ref()
                .map_or("-".to_string(), |l| l.events.len().to_string()),
        ]);
    }
    print_table(
        &[
            "telemetry",
            "completed",
            "wall (s)",
            if cpu_based {
                "vs off (cpu)"
            } else {
                "vs off (wall)"
            },
            "span events",
        ],
        &rows,
    );

    // The observer must not participate: identical results, bit for bit.
    for (label, s) in [("sampled", &sampled), ("full", &full)] {
        if s.out().totals != off.out().totals
            || s.out().minutes != off.out().minutes
            || s.out().makespan_secs.to_bits() != off.out().makespan_secs.to_bits()
        {
            guard_failures.push(format!("telemetry-{label} run diverged from telemetry-off"));
        }
    }
    let unit = if cpu_based { "cpu" } else { "wall" };
    if full_ratio > 1.10 {
        guard_failures.push(format!(
            "full tracing cost {full_ratio:.3}x the telemetry-off {unit} time (budget 1.10x)"
        ));
    }
    if sampled_ratio > 1.02 {
        guard_failures.push(format!(
            "1/64 sampling cost {sampled_ratio:.3}x the telemetry-off {unit} time (budget 1.02x)"
        ));
    }
    let full_events = full.out().spans.as_ref().map_or(0, |s| s.events.len());
    let sampled_events = sampled.out().spans.as_ref().map_or(0, |s| s.events.len());
    if sampled_events * 32 >= full_events {
        guard_failures.push(format!(
            "sampling kept too much: {sampled_events} of {full_events} events"
        ));
    }

    BenchReport::new("s64_telemetry_overhead")
        .uint("jobs", off.out().totals.completed)
        .str("measure", unit)
        .float("off_wall_secs", off.wall, 3)
        .float("sampled_wall_secs", sampled.wall, 3)
        .float("full_wall_secs", full.wall, 3)
        .float("sampled_overhead", sampled_ratio - 1.0, 4)
        .float("full_overhead", full_ratio - 1.0, 4)
        .uint("sampled_span_events", sampled_events as u64)
        .uint("full_span_events", full_events as u64)
        .float("budget_full_overhead", 0.10, 2)
        .float("budget_sampled_overhead", 0.02, 2)
        .write("BENCH_obs.json");

    assert!(
        guard_failures.is_empty(),
        "s64_telemetry_overhead guard failed:\n{}",
        guard_failures.join("\n")
    );
    println!(
        "\nguard ok: full tracing {full_ratio:.3}x / 1-in-64 sampling {sampled_ratio:.3}x \
         the telemetry-off {unit} time on {} jobs (budgets 1.10x / 1.02x), results bit-identical",
        off.out().totals.completed
    );
}
