//! s58 — allocator scalability beyond the paper's testbed (§5.7).
//!
//! The paper reports the Gurobi ILP staying under 100 ms on the 8-worker
//! testbed. This harness checks the reproduction keeps that budget as the
//! fleet grows: the exhaustive composition enumeration (`solve_exact`) is
//! timed while it is tractable, the branch-and-bound (`solve_fast`) is
//! timed up to 128 workers, and the two are asserted identical wherever
//! both run. The 3-level / 128-worker case is the pinned claim: it must
//! solve in < 100 ms.

use std::time::Instant;

use argus_bench::{banner, f, print_table};
use argus_core::{AllocationProblem, LevelProfile};
use argus_models::{ApproxLevel, GpuArch, Strategy};

fn time_solve(p: &AllocationProblem, fast: bool, reps: u32) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        let a = if fast {
            p.solve_fast()
        } else {
            p.solve_exact()
        };
        std::hint::black_box(a);
    }
    t0.elapsed().as_secs_f64() * 1e3 / reps as f64
}

fn three_level(workers: usize, demand: f64) -> AllocationProblem {
    let ladder = ApproxLevel::ladder(Strategy::Ac);
    let profiles = [(21.6, 14.2), (20.9, 21.1), (17.6, 41.3)];
    AllocationProblem {
        levels: profiles
            .iter()
            .enumerate()
            .map(|(i, &(quality, peak_qpm))| LevelProfile {
                level: ladder[i],
                quality,
                peak_qpm,
            })
            .collect(),
        workers,
        demand_qpm: demand,
    }
}

fn main() {
    banner(
        "S58",
        "Eq. 1 allocator scaling to 64-128 workers",
        "§5.7 (sub-100 ms allocation)",
    );

    let mut rows = Vec::new();
    let mut pinned_ms = None;
    for &(levels, workers) in &[
        (3usize, 8usize),
        (3, 16),
        (3, 64),
        (3, 128),
        (6, 8),
        (6, 16),
        (6, 64),
        (6, 128),
    ] {
        // Load the fleet to ~70% of its deepest-approximation capacity —
        // the regime where the allocator genuinely mixes levels.
        let p = if levels == 3 {
            let mut p = three_level(workers, 0.0);
            p.demand_qpm = 0.7 * p.max_capacity_qpm();
            p
        } else {
            let mut p = AllocationProblem::from_ladder(
                &ApproxLevel::ladder(Strategy::Ac),
                GpuArch::A100,
                0.02,
                workers,
                0.0,
            )
            .with_slo_derating(12.6);
            p.demand_qpm = 0.7 * p.max_capacity_qpm();
            p
        };

        let fast_ms = time_solve(&p, true, 10);
        let exact_ms = if workers <= 16 || levels == 3 {
            let ms = time_solve(&p, false, if workers <= 16 { 10 } else { 3 });
            assert_eq!(
                p.solve_exact(),
                p.solve_fast(),
                "exact and fast disagree at V={levels} W={workers}"
            );
            Some(ms)
        } else {
            None
        };
        if levels == 3 && workers == 128 {
            pinned_ms = Some(fast_ms);
        }
        rows.push(vec![
            levels.to_string(),
            workers.to_string(),
            f(p.demand_qpm, 0),
            exact_ms.map_or("-".into(), |ms| f(ms, 3)),
            f(fast_ms, 3),
        ]);
    }
    print_table(&["levels", "workers", "QPM", "exact ms", "fast ms"], &rows);

    let pinned = pinned_ms.expect("3-level/128-worker case ran");
    println!("\npinned: 128 workers / 3 levels solve_fast = {pinned:.3} ms (budget 100 ms)");
    assert!(
        pinned < 100.0,
        "solver-scale regression: {pinned:.3} ms >= 100 ms at 128 workers"
    );
}
