//! Criterion micro-benchmarks of the hot control-plane paths: the solver
//! (the §5.7 <100 ms claim in bench form), ODA, PASM sampling, embeddings,
//! vector search, classifier inference and raw event throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use argus_classifier::{label_prompts, train, TrainerConfig};
use argus_core::{oda, AllocationProblem};
use argus_des::{EventQueue, SimTime};
use argus_embed::embed;
use argus_models::{ApproxLevel, GpuArch, Strategy};
use argus_prompts::PromptGenerator;
use argus_quality::QualityOracle;
use argus_vdb::FlatIndex;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_solver(c: &mut Criterion) {
    let ladder = ApproxLevel::ladder(Strategy::Ac);
    for workers in [8usize, 32] {
        let problem = AllocationProblem::from_ladder(
            &ladder,
            GpuArch::A100,
            0.02,
            workers,
            0.8 * 26.9 * workers as f64,
        );
        c.bench_function(&format!("solver_exact_{workers}w"), |b| {
            b.iter(|| black_box(problem.solve_exact()))
        });
    }
    let problem = AllocationProblem::from_ladder(&ladder, GpuArch::A100, 0.02, 8, 170.0);
    c.bench_function("solver_milp_8w", |b| {
        b.iter(|| black_box(problem.solve_milp().unwrap()))
    });
}

fn bench_oda(c: &mut Criterion) {
    let phi = [0.45, 0.20, 0.15, 0.10, 0.07, 0.03];
    let omega = [0.05, 0.10, 0.15, 0.20, 0.25, 0.25];
    c.bench_function("oda_6_levels", |b| {
        b.iter(|| black_box(oda(&phi, &omega).unwrap()))
    });
    let pasm = oda(&phi, &omega).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("pasm_sample", |b| {
        b.iter(|| black_box(pasm.sample(0, &mut rng)))
    });
}

fn bench_embedding_and_vdb(c: &mut Criterion) {
    let prompts = PromptGenerator::new(1).generate_batch(768);
    c.bench_function("embed_prompt", |b| {
        b.iter(|| black_box(embed(&prompts[0].text)))
    });
    let mut index = FlatIndex::with_capacity_limit(768);
    for (i, p) in prompts.iter().enumerate() {
        index.insert(embed(&p.text), i as u64);
    }
    let query = embed("photo of a red apple on a wooden table");
    c.bench_function("vdb_nearest_768", |b| {
        b.iter(|| black_box(index.nearest(&query)))
    });
}

fn bench_classifier(c: &mut Criterion) {
    let ladder = ApproxLevel::ladder(Strategy::Ac);
    let oracle = QualityOracle::new(1);
    let pool = PromptGenerator::new(1).generate_batch(2000);
    let samples = label_prompts(&oracle, &pool, &ladder);
    let (clf, _) = train(&samples, ladder.len(), &TrainerConfig::default());
    c.bench_function("classifier_predict", |b| {
        b.iter(|| black_box(clf.predict(&pool[7].text)))
    });
    c.bench_function("oracle_score_ladder", |b| {
        b.iter(|| black_box(oracle.scores(&pool[7], &ladder)))
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_10k_schedule_pop", |b| {
        b.iter_batched(
            EventQueue::<u32>::new,
            |mut q| {
                for i in 0..10_000u32 {
                    q.schedule(SimTime::from_micros(u64::from(i % 997) * 251), i);
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_solver,
    bench_oda,
    bench_embedding_and_vdb,
    bench_classifier,
    bench_event_queue
);
criterion_main!(benches);
