//! Ablations of Argus' design choices (beyond the paper's minimum):
//!
//! 1. **ODA vs EMD vs random aligner** — substantiates the §4.3 claim
//!    that symmetric Earth-Mover's alignment is inadequate because the
//!    quality cost of shifts is asymmetric.
//! 2. **Load-cost-aware solver** (§6 future work) — charging the SM
//!    solver for amortized model-load time reduces switch churn on
//!    jittery load.
//! 3. **Strategy-switch ablation** — Argus with the AC↔SM switch frozen
//!    (the Fig. 20b black line) under congestion.
//! 4. **Classifier-epoch budget** — quality sensitivity to the predictor
//!    (companion of Fig. 19).
//! 5. **Online learning** (§6 future work) — per-completion SGD updates
//!    vs drift-triggered batch retraining under prompt drift.
//! 6. **Mixed-mode ladder** — the paper declines a combined AC+SM ladder
//!    because a `n × m`-class classifier needs far more data (§4.1); this
//!    quantifies the accuracy hit and the (small) quality headroom it
//!    would buy.

use argus_bench::{banner, f, print_table};
use argus_cachestore::NetworkRegime;
use argus_core::{emd_aligner, oda, AllocationProblem, Pasm, Policy, RunConfig};
use argus_models::{ApproxLevel, GpuArch, Strategy};
use argus_prompts::PromptGenerator;
use argus_quality::{DegradationProfile, QualityOracle};
use argus_workload::sysx_like;

fn main() {
    banner("ABL", "Design-choice ablations", "§4.3 / §6 / Fig. 20b");

    // --- 1. aligner comparison on profiled degradation -------------------
    println!("[1] aligner comparison (Eq. 2 expected degradation, AC ladder):");
    let oracle = QualityOracle::new(99);
    let ladder = ApproxLevel::ladder(Strategy::Ac);
    let prompts = PromptGenerator::new(99).generate_batch(8000);
    let profile = DegradationProfile::profile(&oracle, &prompts, &ladder);
    let phi = oracle.optimal_choice_histogram(&prompts, &ladder);
    let mut rows = Vec::new();
    for demand in [140.0, 175.0, 205.0] {
        let omega = AllocationProblem::from_ladder(&ladder, GpuArch::A100, 0.02, 8, demand)
            .solve_exact()
            .omega_normalized();
        let oda_cost = oda(&phi, &omega)
            .unwrap()
            .expected_degradation(&phi, &profile);
        let emd_cost = emd_aligner(&phi, &omega)
            .unwrap()
            .expected_degradation(&phi, &profile);
        let rand_cost = Pasm::proportional(&omega)
            .unwrap()
            .expected_degradation(&phi, &profile);
        rows.push(vec![
            f(demand, 0),
            f(oda_cost, 3),
            f(emd_cost, 3),
            f(rand_cost, 3),
        ]);
    }
    print_table(&["demand QPM", "ODA", "EMD (symmetric)", "random"], &rows);

    // --- 2. load-aware solver --------------------------------------------
    println!("\n[2] load-cost-aware solver (Proteus-style SM scaling, jittery SysX):");
    let trace = sysx_like(99, 300);
    let plain = RunConfig::new(Policy::Proteus, trace.clone())
        .with_seed(99)
        .run();
    let aware = RunConfig::new(Policy::Proteus, trace.clone())
        .with_seed(99)
        .with_load_aware_solver()
        .run();
    print_table(
        &["solver", "model loads", "QPM", "SLO viol %", "quality"],
        &[
            vec![
                "baseline".into(),
                plain.totals.model_loads.to_string(),
                f(plain.totals.mean_throughput_qpm(300.0), 1),
                f(100.0 * plain.totals.slo_violation_ratio(), 2),
                f(plain.totals.effective_accuracy(), 2),
            ],
            vec![
                "load-aware (§6)".into(),
                aware.totals.model_loads.to_string(),
                f(aware.totals.mean_throughput_qpm(300.0), 1),
                f(100.0 * aware.totals.slo_violation_ratio(), 2),
                f(aware.totals.effective_accuracy(), 2),
            ],
        ],
    );

    // --- 3. frozen-switch under congestion --------------------------------
    println!("\n[3] AC↔SM switch ablation under a 40-minute congestion window:");
    let events = vec![
        (100.0, NetworkRegime::Congested),
        (140.0, NetworkRegime::Normal),
    ];
    let adaptive = RunConfig::new(Policy::Argus, trace.clone())
        .with_seed(99)
        .with_network_events(events.clone())
        .run();
    let frozen = RunConfig::new(Policy::Argus, trace.clone())
        .with_seed(99)
        .with_network_events(events)
        .without_strategy_switch()
        .run();
    print_table(
        &["variant", "QPM", "SLO viol %", "switches"],
        &[
            vec![
                "adaptive".into(),
                f(adaptive.totals.mean_throughput_qpm(300.0), 1),
                f(100.0 * adaptive.totals.slo_violation_ratio(), 2),
                format!("{:?}", adaptive.switches),
            ],
            vec![
                "frozen AC".into(),
                f(frozen.totals.mean_throughput_qpm(300.0), 1),
                f(100.0 * frozen.totals.slo_violation_ratio(), 2),
                format!("{:?}", frozen.switches),
            ],
        ],
    );

    // --- 4. classifier budget ---------------------------------------------
    println!("\n[4] classifier epoch budget (Argus, 100-minute SysX prefix):");
    let short_trace = sysx_like(99, 100);
    let mut rows = Vec::new();
    for epochs in [1usize, 4, 8] {
        let out = RunConfig::new(Policy::Argus, short_trace.clone())
            .with_seed(99)
            .with_classifier_epochs(epochs)
            .run();
        rows.push(vec![
            epochs.to_string(),
            f(out.totals.effective_accuracy(), 2),
            f(100.0 * out.totals.slo_violation_ratio(), 2),
        ]);
    }
    print_table(&["epochs", "quality", "SLO viol %"], &rows);

    // --- 5. online learning under drift -----------------------------------
    println!("\n[5] online learning vs drift-triggered retraining (drifting stream):");
    let drift = argus_prompts::DriftSchedule {
        start_at: 4_000,
        ramp: 3_000,
        max_fraction: 0.6,
    };
    let steady_trace = argus_workload::steady(120.0, 150);
    let batch = RunConfig::new(Policy::Argus, steady_trace.clone())
        .with_seed(99)
        .with_drift(drift)
        .run();
    let online = RunConfig::new(Policy::Argus, steady_trace.clone())
        .with_seed(99)
        .with_drift(drift)
        .with_online_learning()
        .run();
    let frozen = RunConfig::new(Policy::Argus, steady_trace)
        .with_seed(99)
        .with_drift(drift)
        .without_retraining()
        .run();
    let last_acc = |o: &argus_core::RunOutcome| {
        o.classifier_accuracy
            .last()
            .map(|&(_, a)| 100.0 * a)
            .unwrap_or(0.0)
    };
    print_table(
        &[
            "adaptation",
            "quality",
            "final classifier acc %",
            "retrains",
        ],
        &[
            vec![
                "drift-triggered batch".into(),
                f(batch.totals.effective_accuracy(), 2),
                f(last_acc(&batch), 1),
                batch.retrain_minutes.len().to_string(),
            ],
            vec![
                "online SGD (§6)".into(),
                f(online.totals.effective_accuracy(), 2),
                f(last_acc(&online), 1),
                "continuous".into(),
            ],
            vec![
                "frozen".into(),
                f(frozen.totals.effective_accuracy(), 2),
                f(last_acc(&frozen), 1),
                "0".into(),
            ],
        ],
    );

    // --- 6. mixed-mode ladder ----------------------------------------------
    println!("\n[6] mixed-mode AC+SM ladder: classifier accuracy vs data budget:");
    use argus_classifier::{evaluate, label_prompts, train, TrainerConfig};
    let mut combined = ApproxLevel::ladder(Strategy::Ac);
    combined.extend(ApproxLevel::ladder(Strategy::Sm));
    // Order the combined ladder by peak throughput (slowest first), as a
    // real mixed scheduler would.
    combined.sort_by(|a, b| {
        a.peak_throughput_per_min(GpuArch::A100)
            .partial_cmp(&b.peak_throughput_per_min(GpuArch::A100))
            .unwrap()
    });
    let mut rows = Vec::new();
    for train_n in [1000usize, 3000, 8000] {
        let pool = PromptGenerator::new(6).generate_batch(train_n);
        let test = PromptGenerator::new(66).generate_batch(1500);
        let mut cells = vec![train_n.to_string()];
        for (name, ladder) in [
            ("AC", ApproxLevel::ladder(Strategy::Ac)),
            ("mixed", combined.clone()),
        ] {
            let tr = label_prompts(&oracle, &pool, &ladder);
            let te = label_prompts(&oracle, &test, &ladder);
            let (clf, _) = train(&tr, ladder.len(), &TrainerConfig::default());
            let acc = evaluate(&clf, &te).accuracy;
            // Quality achievable when routing by this classifier's pick.
            let routed: f64 = test
                .iter()
                .map(|p| oracle.score(p, ladder[clf.predict(&p.text).min(ladder.len() - 1)]))
                .sum::<f64>()
                / test.len() as f64;
            cells.push(format!("{name}: acc {:.0}% q {:.2}", 100.0 * acc, routed));
        }
        rows.push(cells);
    }
    print_table(&["train size", "6-class (AC)", "12-class (mixed)"], &rows);
    println!(
        "\nthe mixed ladder needs several times the data to match the\n\
         6-class accuracy — the paper's reason for avoiding mixed mode."
    );
}
