//! s59 — vector-database scan cost (§4.7 retrieval path).
//!
//! Every AC-mode query pays one nearest-neighbour lookup, so the index
//! scan sits on the serving hot path. `FlatIndex::search` must cost one
//! O(n) partial selection per query, not a full O(n log n) sort: this
//! harness times the index against an inline full-sort reference at
//! cache-store scale and fails if the partial-selection path regresses to
//! (or beyond) full-sort cost. It also cross-checks both against each
//! other, and reports the LSH index for scale context.

use std::time::Instant;

use argus_bench::{banner, f, print_table};
use argus_embed::{cosine, embed, Embedding};
use argus_prompts::PromptGenerator;
use argus_vdb::{FlatIndex, LshIndex, SearchHit};

/// The pre-optimization implementation: score everything, sort everything.
fn full_sort_search(
    entries: &[(Embedding, u64)],
    query: &Embedding,
    k: usize,
) -> Vec<SearchHit<u64>> {
    let mut scored: Vec<(f32, usize)> = entries
        .iter()
        .enumerate()
        .map(|(i, (e, _))| (cosine(query, e), i))
        .collect();
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    scored
        .into_iter()
        .take(k)
        .map(|(similarity, i)| SearchHit {
            similarity,
            payload: entries[i].1,
        })
        .collect()
}

fn main() {
    banner(
        "S59",
        "Top-k retrieval scan: partial selection vs full sort",
        "§4.7 (vector database on the serving path)",
    );

    let n = 8192;
    let k = 8;
    let prompts = PromptGenerator::new(59).generate_batch(n);
    let mut flat = FlatIndex::new();
    let mut lsh = LshIndex::new(10, 59);
    let mut entries: Vec<(Embedding, u64)> = Vec::with_capacity(n);
    for (i, p) in prompts.iter().enumerate() {
        let e = embed(&p.text);
        flat.insert(e.clone(), i as u64);
        lsh.insert(e.clone(), i as u64);
        entries.push((e, i as u64));
    }
    let queries: Vec<Embedding> = PromptGenerator::new(60)
        .generate_batch(64)
        .iter()
        .map(|p| embed(&p.text))
        .collect();

    // Correctness first: the partial-selection path must return exactly
    // what the full sort returns, including tie order.
    for q in &queries {
        assert_eq!(flat.search(q, k), full_sort_search(&entries, q, k));
    }

    let time_per_query = |mut run: Box<dyn FnMut(&Embedding) + '_>| -> f64 {
        // Warm-up pass, then three timed rounds over all queries.
        for q in &queries {
            run(q);
        }
        let t0 = Instant::now();
        for _ in 0..3 {
            for q in &queries {
                run(q);
            }
        }
        t0.elapsed().as_secs_f64() * 1e6 / (3.0 * queries.len() as f64)
    };

    let flat_us = time_per_query(Box::new(|q| {
        std::hint::black_box(flat.search(q, k));
    }));
    let sort_us = time_per_query(Box::new(|q| {
        std::hint::black_box(full_sort_search(&entries, q, k));
    }));
    let lsh_us = time_per_query(Box::new(|q| {
        std::hint::black_box(lsh.search(q, k));
    }));

    print_table(
        &["index", "µs/query"],
        &[
            vec!["flat (partial top-k)".into(), f(flat_us, 2)],
            vec!["flat (full sort)".into(), f(sort_us, 2)],
            vec!["lsh multi-probe".into(), f(lsh_us, 2)],
        ],
    );

    // Regression guard: partial selection must not cost more than the full
    // sort it replaced (slack for timer noise).
    assert!(
        flat_us < sort_us * 1.15,
        "vdb scan regression: top-k {flat_us:.2} µs vs full sort {sort_us:.2} µs"
    );
    println!("\nguard: top-k {flat_us:.2} µs ≤ 1.15 × full-sort {sort_us:.2} µs");
}
