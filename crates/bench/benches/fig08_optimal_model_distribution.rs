//! Fig. 8 — distribution of prompts among their optimal model choices,
//! for both smaller-model variants and approximate caching, including the
//! paper's elimination analysis (drop M1, then M1+M2).
//!
//! Expected shape (paper): a majority of prompts are optimally served by
//! an approximated level; when the slowest models are removed, their
//! prompts spill into the adjacent remaining levels.

use argus_bench::{banner, f, print_table};
use argus_models::{ApproxLevel, Strategy};
use argus_prompts::PromptGenerator;
use argus_quality::QualityOracle;

fn main() {
    banner(
        "F8",
        "Optimal-model choice distribution (10k prompts)",
        "Fig. 8",
    );
    let oracle = QualityOracle::new(8);
    let prompts = PromptGenerator::new(8).generate_batch(10_000);

    for strategy in [Strategy::Sm, Strategy::Ac] {
        println!("\n[{strategy} ladder]");
        let full = ApproxLevel::ladder(strategy);
        for drop in 0..3usize {
            let ladder = &full[drop..];
            let hist = oracle.optimal_choice_histogram(&prompts, ladder);
            let label = match drop {
                0 => "full ladder".to_string(),
                1 => format!("without {}", full[0]),
                _ => format!("without {} + {}", full[0], full[1]),
            };
            let rows: Vec<Vec<String>> = ladder
                .iter()
                .zip(&hist)
                .map(|(l, h)| vec![l.to_string(), f(100.0 * h, 1)])
                .collect();
            println!("-- {label}:");
            print_table(&["optimal level", "% of prompts"], &rows);
        }
    }
}
