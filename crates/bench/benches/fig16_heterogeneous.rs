//! Fig. 16 variant — end-to-end comparison on a heterogeneous fleet.
//!
//! The paper's testbed is 8×A100; production fleets mix GPU generations.
//! This harness reruns the Fig. 16 comparison on a mixed
//! V100 + A10G + A100 cluster whose aggregate capacity roughly matches
//! the homogeneous testbed, so the same workloads exercise the per-pool
//! allocator. Expected shape: Argus/PAC keep the highest quality among
//! the scalers with far fewer violations than Clipper-HA, because the
//! Eq. 1 decomposition gives each pool latency tables matching its
//! silicon and the per-arch Eq. 3 estimate keeps slow V100s from
//! becoming the tail. One heterogeneity-specific effect is visible on
//! diurnal peaks: AC's base model is disproportionately slow on old
//! silicon (Fig. 5), so the AC-first strategies trade a few violations
//! for their quality lead there — per-pool strategy selection is the
//! open item this measures.

use argus_bench::{banner, f, print_table};
use argus_core::{Policy, RunConfig};
use argus_models::GpuArch;
use argus_workload::{sysx_like, twitter_like, Trace};

fn main() {
    let minutes = 400;
    let pools = vec![(GpuArch::A100, 4), (GpuArch::A10G, 4), (GpuArch::V100, 4)];
    let workloads: Vec<(&str, Trace)> = vec![
        ("Twitter", twitter_like(16, minutes)),
        ("SysX", sysx_like(16, minutes)),
    ];
    let policies = [
        Policy::Argus,
        Policy::Pac,
        Policy::Proteus,
        Policy::ClipperHa,
        Policy::ClipperHt,
    ];

    for (name, trace) in workloads {
        banner(
            "F16h",
            &format!("Heterogeneous 4×A100 + 4×A10G + 4×V100 on {name} ({minutes} min)"),
            "Fig. 16 (heterogeneous variant)",
        );
        let rows: Vec<Vec<String>> = policies
            .iter()
            .map(|&p| {
                let out = RunConfig::new(p, trace.clone())
                    .with_heterogeneous_pools(pools.clone())
                    .with_seed(16)
                    .run();
                vec![
                    p.name().to_string(),
                    f(out.totals.mean_throughput_qpm(minutes as f64), 1),
                    f(out.totals.effective_accuracy(), 2),
                    f(100.0 * out.totals.relative_quality(), 1),
                    f(100.0 * out.totals.slo_violation_ratio(), 2),
                    out.totals.model_loads.to_string(),
                    f(100.0 * out.mean_utilization, 1),
                ]
            })
            .collect();
        print_table(
            &[
                "system",
                "QPM",
                "quality",
                "rel.q %",
                "SLO viol %",
                "loads",
                "util %",
            ],
            &rows,
        );
        println!();
    }
}
