//! s60 — the sharded retrieval plane (cache-plane experiments).
//!
//! Two guards on `argus_vdb::shard`, the substrate behind
//! `RunConfig::with_sharded_cache`:
//!
//! 1. **Hit-rate tolerance** — at equal *total* capacity, locality
//!    routing over `N` shards may cost only a sliver of recall versus the
//!    monolithic index: near-duplicates of resident entries must still be
//!    found, and the nearest-neighbour similarity seen by fresh queries
//!    must stay within tolerance of the monolithic answer.
//! 2. **Scan-cost scaling** — a lookup probes at most four of the `N`
//!    shards (primary cell plus the flips of the two boundary-nearest
//!    routing planes), so the per-query scan must shrink with the shard
//!    count (measured with exact `FlatIndex` shards, where scan time is
//!    proportional to entries scanned).
//!
//! An informational section shows fault degradation: recall after killing
//! replicas, with and without replication.

use std::time::Instant;

use argus_bench::{banner, f, print_table, BenchReport};
use argus_embed::{embed, Embedding};
use argus_prompts::PromptGenerator;
use argus_vdb::{FlatIndex, LshIndex, ShardedIndex};

/// Formats a fraction as a percentage.
fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

const TOTAL_CAPACITY: usize = 4096;
const SHARDS: usize = 8;
const SEED: u64 = 60;

fn lsh_plane(shards: usize, replication: usize) -> ShardedIndex<u64, LshIndex<u64>> {
    let per_shard = TOTAL_CAPACITY.div_ceil(shards);
    ShardedIndex::new(shards, replication, SEED, move |_, _| {
        LshIndex::with_capacity_limit(8, SEED, per_shard)
    })
}

/// Fraction of `queries` (re-embedded corpus entries) whose nearest
/// neighbour is their own entry.
fn duplicate_recall(
    nearest: impl Fn(&Embedding) -> Option<u64>,
    queries: &[(Embedding, u64)],
) -> f64 {
    let found = queries
        .iter()
        .filter(|(e, id)| nearest(e) == Some(*id))
        .count();
    found as f64 / queries.len() as f64
}

fn main() {
    banner(
        "S60",
        "Sharded retrieval plane: hit-rate tolerance and scan scaling",
        "cache plane (DESIGN.md §7; ROADMAP vector-index sharding)",
    );

    // ---------------------------------------------------------------- //
    // Guard 1: hit-rate within tolerance at equal total capacity.
    // ---------------------------------------------------------------- //
    let corpus = PromptGenerator::new(SEED).generate_batch(3500);
    let mut mono = LshIndex::with_capacity_limit(8, SEED, TOTAL_CAPACITY);
    let mut plane = lsh_plane(SHARDS, 2);
    for (i, p) in corpus.iter().enumerate() {
        let e = embed(&p.text);
        mono.insert(e.clone(), i as u64);
        plane.insert(e, i as u64);
    }

    // Query the most recently inserted half, resident in both layouts
    // (per-shard FIFO caps may have evicted the oldest from hot shards).
    let dup_queries: Vec<(Embedding, u64)> = corpus
        .iter()
        .enumerate()
        .skip(3000)
        .map(|(i, p)| (embed(&p.text), i as u64))
        .collect();
    let mono_recall = duplicate_recall(|e| mono.nearest(e).map(|h| h.payload), &dup_queries);
    let plane_recall = duplicate_recall(|e| plane.nearest(e).map(|h| h.payload), &dup_queries);

    // Fresh queries: how close is the best neighbour each layout offers?
    let fresh: Vec<Embedding> = PromptGenerator::new(SEED + 1)
        .generate_batch(300)
        .iter()
        .map(|p| embed(&p.text))
        .collect();
    let mean_sim = |near: &dyn Fn(&Embedding) -> Option<f32>| -> f64 {
        fresh
            .iter()
            .filter_map(|e| near(e).map(|s| s as f64))
            .sum::<f64>()
            / fresh.len() as f64
    };
    let mono_sim = mean_sim(&|e| mono.nearest(e).map(|h| h.similarity));
    let plane_sim = mean_sim(&|e| plane.nearest(e).map(|h| h.similarity));

    print_table(
        &["layout", "resident", "dup recall", "fresh mean sim"],
        &[
            vec![
                "monolithic lsh".into(),
                mono.len().to_string(),
                pct(mono_recall),
                f(mono_sim, 4),
            ],
            vec![
                format!("{SHARDS} shards x 2 replicas"),
                plane.len().to_string(),
                pct(plane_recall),
                f(plane_sim, 4),
            ],
        ],
    );

    assert!(
        plane_recall >= mono_recall - 0.05,
        "sharded duplicate recall {plane_recall:.3} fell below monolithic {mono_recall:.3} - 0.05"
    );
    // Fresh-query tolerance covers the two structural costs of the split:
    // neighbours outside the probe set, and per-shard FIFO caps evicting
    // under residual routing skew where the monolithic cap still had
    // headroom. Measured gap ≈ 0.033 similarity; guard at 0.05.
    assert!(
        plane_sim >= mono_sim - 0.05,
        "sharded fresh-query similarity {plane_sim:.4} fell below monolithic {mono_sim:.4} - 0.05"
    );

    // ---------------------------------------------------------------- //
    // Guard 2: per-query scan cost shrinks with the shard count.
    // ---------------------------------------------------------------- //
    // 16 shards, at most 4 probed per query: ≤0.25 of the corpus scanned
    // at perfect balance, ~0.3 with residual skew.
    let scan_shards = 16;
    let n = 8192;
    let entries = PromptGenerator::new(SEED + 2).generate_batch(n);
    let mut flat_mono: FlatIndex<u64> = FlatIndex::new();
    let mut flat_plane: ShardedIndex<u64, FlatIndex<u64>> =
        ShardedIndex::new(scan_shards, 1, SEED, |_, _| FlatIndex::new());
    for (i, p) in entries.iter().enumerate() {
        let e = embed(&p.text);
        flat_mono.insert(e.clone(), i as u64);
        flat_plane.insert(e, i as u64);
    }
    let queries: Vec<Embedding> = PromptGenerator::new(SEED + 3)
        .generate_batch(64)
        .iter()
        .map(|p| embed(&p.text))
        .collect();
    let time_per_query = |mut run: Box<dyn FnMut(&Embedding) + '_>| -> f64 {
        for q in &queries {
            run(q);
        }
        let t0 = Instant::now();
        for _ in 0..3 {
            for q in &queries {
                run(q);
            }
        }
        t0.elapsed().as_secs_f64() * 1e6 / (3.0 * queries.len() as f64)
    };
    let mono_us = time_per_query(Box::new(|q| {
        std::hint::black_box(flat_mono.nearest(q));
    }));
    let plane_us = time_per_query(Box::new(|q| {
        std::hint::black_box(flat_plane.nearest(q));
    }));
    // Deterministic companion metric: the fraction of stored entries a
    // query's probe set actually scans (immune to timer noise).
    let shard_sizes = flat_plane.live_replica_counts();
    let scanned: usize = queries
        .iter()
        .map(|q| {
            flat_plane
                .lookup_shards(q)
                .iter()
                .map(|&s| shard_sizes[s])
                .sum::<usize>()
        })
        .sum();
    let scanned_fraction = scanned as f64 / (queries.len() * n) as f64;

    print_table(
        &["layout (flat scan)", "µs/query", "scanned"],
        &[
            vec![format!("monolithic ({n} entries)"), f(mono_us, 2), pct(1.0)],
            vec![
                format!("{scan_shards} shards"),
                f(plane_us, 2),
                pct(scanned_fraction),
            ],
        ],
    );
    assert!(
        scanned_fraction < 0.5,
        "probe sets scan {scanned_fraction:.3} of the corpus — sharding is not paying"
    );
    assert!(
        plane_us < mono_us * 0.6,
        "sharded scan {plane_us:.2} µs not under 0.6 × monolithic {mono_us:.2} µs"
    );

    // ---------------------------------------------------------------- //
    // Context: fault degradation with and without replication.
    // ---------------------------------------------------------------- //
    let mut degraded = Vec::new();
    for replication in [1usize, 2] {
        let mut p = lsh_plane(SHARDS, replication);
        for (i, prompt) in corpus.iter().enumerate() {
            p.insert(embed(&prompt.text), i as u64);
        }
        // Kill replica 0 of half the shards (one worker rack).
        for s in 0..SHARDS / 2 {
            p.fail_replica(s, 0);
        }
        let recall = duplicate_recall(|e| p.nearest(e).map(|h| h.payload), &dup_queries);
        degraded.push(vec![
            format!("R={replication}, 4 replicas down"),
            pct(recall),
        ]);
    }
    print_table(&["fault scenario", "dup recall"], &degraded);

    BenchReport::new("s60_sharded_retrieval")
        .uint("shards", SHARDS as u64)
        .float("mono_dup_recall", mono_recall, 4)
        .float("plane_dup_recall", plane_recall, 4)
        .float("mono_fresh_sim", mono_sim, 4)
        .float("plane_fresh_sim", plane_sim, 4)
        .float("scanned_fraction", scanned_fraction, 4)
        .float("mono_us_per_query", mono_us, 2)
        .float("plane_us_per_query", plane_us, 2)
        .write("BENCH_sharded_retrieval.json");

    println!(
        "\nguards: recall {plane_recall:.3} ≥ {mono_recall:.3} − 0.05, \
         sim {plane_sim:.4} ≥ {mono_sim:.4} − 0.05, \
         scanned {scanned_fraction:.3} < 0.5, \
         scan {plane_us:.2} µs < 0.6 × {mono_us:.2} µs"
    );
}
