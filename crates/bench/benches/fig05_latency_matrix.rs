//! Fig. 5 — inference latency of Tiny-SD, SD-1.5 and SD-XL across GPU
//! generations (V100, A10G, A100).
//!
//! Expected shape (paper): SD-XL is slowest everywhere ("while older
//! models run faster on newer GPUs, the latest models still incur
//! significantly high latency"); ~10 s for SD-XL on A10G, 4.2 s on A100.

use argus_bench::{banner, f, print_table};
use argus_models::{latency, GpuArch, ModelVariant};

fn main() {
    banner(
        "F5",
        "Inference latency (seconds) per model × GPU",
        "Fig. 5",
    );
    let models = [ModelVariant::TinySd, ModelVariant::Sd15, ModelVariant::SdXl];
    let rows: Vec<Vec<String>> = models
        .iter()
        .map(|&m| {
            let mut row = vec![m.name().to_string()];
            for gpu in GpuArch::ALL {
                row.push(f(latency::inference_secs(m, gpu), 2));
            }
            row
        })
        .collect();
    print_table(&["model", "V100", "A10G", "A100"], &rows);

    println!("\nper-instance peak throughput (images/min):");
    let rows: Vec<Vec<String>> = models
        .iter()
        .map(|&m| {
            let mut row = vec![m.name().to_string()];
            for gpu in GpuArch::ALL {
                row.push(f(latency::peak_throughput_per_min(m, gpu), 1));
            }
            row
        })
        .collect();
    print_table(&["model", "V100", "A10G", "A100"], &rows);
}
