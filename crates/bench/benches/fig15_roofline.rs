//! Fig. 15 — roofline placement of diffusion UNets vs conventional DL
//! models on an A100.
//!
//! Expected shape (paper): all DMs sit right of the ridge point
//! (compute-bound); YOLO/ResNet/EfficientNet/GPT-decode sit left
//! (memory-bound). The A100 ridge is ≈153 FLOP/byte.

use argus_bench::{banner, f, print_table};
use argus_models::roofline::figure15_points;
use argus_models::GpuArch;

fn main() {
    banner("F15", "Roofline model on A100", "Fig. 15");
    let gpu = GpuArch::A100;
    println!(
        "peak {:.0} TFLOPS, bandwidth {:.0} GB/s, ridge point {:.1} FLOP/byte\n",
        gpu.peak_tflops(),
        gpu.mem_bw_gbps(),
        gpu.ridge_point()
    );
    let rows: Vec<Vec<String>> = figure15_points(gpu)
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                f(p.arithmetic_intensity, 1),
                f(p.attainable_tflops, 1),
                if p.compute_bound {
                    "compute-bound"
                } else {
                    "memory-bound"
                }
                .to_string(),
            ]
        })
        .collect();
    print_table(
        &["workload", "AI (FLOP/byte)", "attainable TFLOPS", "regime"],
        &rows,
    );
}
