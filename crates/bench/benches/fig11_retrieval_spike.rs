//! Fig. 11 — cache-retrieval latency spiking under network congestion,
//! the trigger for the AC→SM switch.
//!
//! Expected shape (paper): tens-of-milliseconds retrievals in the healthy
//! regime; a congestion window pushes latencies up by ~two orders of
//! magnitude, after which Argus switches strategy.

use argus_bench::{banner, f, print_table};
use argus_cachestore::{CacheKey, CacheStore, NetworkModel, NetworkRegime};
use argus_des::rng::RngFactory;
use argus_des::SimTime;

fn main() {
    banner("F11", "Cache-retrieval latency under congestion", "Fig. 11");
    let net = NetworkModel::new(RngFactory::new(11))
        .with_event(SimTime::from_minutes(20.0), NetworkRegime::Congested)
        .with_event(SimTime::from_minutes(35.0), NetworkRegime::Normal);
    let mut store = CacheStore::with_network(net);
    let key = CacheKey {
        prompt_id: 1,
        k: 20,
    };
    store.put(key, SimTime::ZERO);

    // One retrieval per 30 s over a 60-minute window.
    let mut rows = Vec::new();
    for i in 0..120 {
        let t = SimTime::from_secs(i as f64 * 30.0);
        let out = store.fetch(key, t);
        if i % 6 == 0 {
            rows.push(vec![
                f(t.as_minutes(), 0),
                f(out.latency.as_secs() * 1000.0, 1),
                format!("{:?}", store.regime_at(t)),
                format!("{:?}", out.status),
            ]);
        }
    }
    print_table(&["minute", "retrieval (ms)", "regime", "status"], &rows);
    let (fetches, hits, failures) = store.stats();
    println!("\n{fetches} fetches, {hits} hits, {failures} failures during the window");
}
