//! Fig. 12 — approximation overhead timelines: SM pays model-loading
//! overhead on every reallocation, AC pays (normally negligible) cache
//! retrieval per request.
//!
//! Expected shape (paper): under a normal network, aggregated model-load
//! overhead (SM) dominates retrieval overhead (AC); under congestion the
//! relation flips — which is exactly when Argus switches.

use argus_bench::{banner, f, print_table};
use argus_cachestore::NetworkRegime;
use argus_core::{Policy, RunConfig};
use argus_models::latency::{load_secs, Loader};
use argus_models::ModelVariant;
use argus_workload::bursty;

fn main() {
    banner(
        "F12",
        "Cumulative overhead: SM loads vs AC retrieval",
        "Fig. 12",
    );
    let minutes = 120;
    let trace = bursty(12, minutes, 70.0, 180.0);
    // Mean Accelerate load time across the SM ladder, for converting load
    // counts into seconds.
    let mean_load: f64 = ModelVariant::ALL
        .iter()
        .map(|&m| load_secs(m, Loader::Accelerate))
        .sum::<f64>()
        / ModelVariant::ALL.len() as f64;

    let sm = RunConfig::new(Policy::Proteus, trace.clone())
        .with_seed(12)
        .run();
    let ac = RunConfig::new(Policy::Argus, trace.clone())
        .with_seed(12)
        .run();
    let ac_congested = RunConfig::new(Policy::Argus, trace)
        .with_seed(12)
        .with_network_events(vec![(0.0, NetworkRegime::Congested)])
        .without_strategy_switch()
        .run();

    println!("per-20-minute overhead seconds (cluster-wide):");
    let mut rows = Vec::new();
    for b in 0..minutes / 20 {
        let window = |o: &argus_core::RunOutcome| {
            o.minutes
                .iter()
                .filter(|m| m.minute >= (b * 20) as u64 && m.minute < ((b + 1) * 20) as u64)
                .fold((0u64, 0.0), |(l, r), m| {
                    (l + m.model_loads, r + m.retrieval_latency_sum)
                })
        };
        let (sm_loads, _) = window(&sm);
        let (_, ac_ret) = window(&ac);
        let (_, ac_cong_ret) = window(&ac_congested);
        rows.push(vec![
            format!("{}-{}", b * 20, (b + 1) * 20),
            f(sm_loads as f64 * mean_load, 1),
            f(ac_ret, 1),
            f(ac_cong_ret, 1),
        ]);
    }
    print_table(
        &[
            "minutes",
            "SM load ovh (s)",
            "AC retrieval ovh (s)",
            "AC ovh, congested (s)",
        ],
        &rows,
    );

    println!(
        "\ntotals: Proteus loads {} models; Argus/AC loads {} — AC shifts \
         approximation level without touching weights (Obs. 4).",
        sm.totals.model_loads, ac.totals.model_loads
    );
}
