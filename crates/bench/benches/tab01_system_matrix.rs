//! Table 1 — feature matrix of inference-serving systems, restricted to
//! the rows this reproduction implements end-to-end.
//!
//! Expected: only Argus combines model selection, query-specific
//! approximation, strategy switching and throughput targets for T2I.

use argus_bench::{banner, print_table};
use argus_core::Policy;

fn main() {
    banner("T1", "Serving-system feature matrix", "Table 1");
    let yn = |b: bool| if b { "yes" } else { "no" }.to_string();
    let rows: Vec<Vec<String>> = Policy::ALL
        .iter()
        .map(|&p| {
            vec![
                p.name().to_string(),
                yn(p.uses_solver()),
                yn(p.uses_classifier()),
                yn(p.uses_oda()),
                yn(p.switches_strategy()),
                yn(p.uses_cache()),
                yn(p.per_gpu_scaling()),
                p.initial_strategy().to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "system",
            "cluster solver",
            "query-specific",
            "ODA/PASM",
            "AC<->SM switch",
            "approx. caching",
            "per-GPU scaling",
            "default strategy",
        ],
        &rows,
    );
}
