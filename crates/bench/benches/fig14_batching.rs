//! Fig. 14 — throughput speed-up vs batch size for diffusion models vs
//! conventional DL models on an A100.
//!
//! Expected shape (paper): "DMs show significantly slower speed-ups that
//! plateau rapidly"; YOLOv5 handles batch 16 efficiently while SD-Tiny
//! bottlenecks around batch 4.

use argus_bench::{banner, f, print_table};
use argus_models::batching::unet_pass_profile;
use argus_models::nondm::NonDmModel;
use argus_models::{GpuArch, ModelVariant};

fn main() {
    banner("F14", "Batching speed-up vs batch size (A100)", "Fig. 14");
    let batches = [1u32, 2, 4, 8, 16, 32];
    let mut rows = Vec::new();
    for m in NonDmModel::ALL {
        let p = m.pass_profile();
        let mut row = vec![m.name().to_string()];
        for &b in &batches {
            row.push(f(p.throughput_speedup(GpuArch::A100, b), 2));
        }
        rows.push(row);
    }
    for v in [
        ModelVariant::TinySd,
        ModelVariant::SmallSd,
        ModelVariant::Sd20,
        ModelVariant::SdXl,
    ] {
        let p = unet_pass_profile(v);
        let mut row = vec![format!("{v} (UNet)")];
        for &b in &batches {
            row.push(f(p.throughput_speedup(GpuArch::A100, b), 2));
        }
        rows.push(row);
    }
    print_table(
        &["model", "b=1", "b=2", "b=4", "b=8", "b=16", "b=32"],
        &rows,
    );

    println!("\nlatency inflation at batch 8 (why Argus serves batch=1, §4.5):");
    let rows: Vec<Vec<String>> = [ModelVariant::SdXl, ModelVariant::TinySd]
        .iter()
        .map(|&v| {
            vec![
                v.name().to_string(),
                f(unet_pass_profile(v).latency_inflation(GpuArch::A100, 8), 1),
            ]
        })
        .collect();
    print_table(&["model", "latency inflation (x)"], &rows);
}
