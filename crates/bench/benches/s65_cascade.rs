//! s65_cascade — the query-aware cascade serving plane guards.
//!
//! Three claims over a diurnal trace whose peaks saturate the two-pass
//! cascade, each asserted (CI fails on regression):
//!
//! 1. **Throughput at quality** (DESIGN.md §13): the cascade — every
//!    job's first pass on the cheap rung, the discriminator escalating
//!    doubtful outputs to SD-XL through the ordinary dispatch path —
//!    completes at least as many jobs as the Argus ladder baseline,
//!    with mean relative quality within 0.05. The cascade spends compute
//!    *per query* where the ladder spends it *per minute*, so under
//!    saturation it must not lose throughput to buy its quality.
//! 2. **Escalation pricing pays**: feeding the escalation-rate EWMA
//!    into Eq. 1 (capacity derate on the first-pass rung) keeps SLO
//!    violations from regressing against the unpriced ablation
//!    (`with_escalation_pricing(false)`), which plans as if second
//!    passes were free.
//! 3. **Substrate independence**: the cascade run is bit-identical
//!    across actor-pacing modes — the D1–D3 contract extends to the
//!    escalation plane.
//!
//! Results land in `BENCH_cascade.json` at the repo root.

use argus_bench::{banner, f, print_table, BenchReport};
use argus_core::{ActorPacing, CascadeConfig, Policy, RunConfig, RunOutcome};
use argus_workload::{twitter_like, Trace};

fn cascade_run(trace: &Trace, pricing: bool, pacing: ActorPacing) -> RunOutcome {
    let mut c = RunConfig::new(Policy::Argus, trace.clone())
        .with_seed(11)
        .with_cascade(CascadeConfig::new().with_escalation_pricing(pricing))
        .with_actor_pacing(pacing);
    c.classifier_train_size = 800;
    c.run()
}

fn main() {
    banner(
        "S65",
        "Cascade serving plane guards",
        "DESIGN.md §13 / DiffServe-style discriminator cascade",
    );
    let mut guard_failures: Vec<String> = Vec::new();

    // Diurnal trace scaled so the *cascade* saturates at the peaks (the
    // second passes roughly add half the offered load again) while the
    // single-pass ladder still clears it — the regime where escalation
    // pricing has headroom to matter.
    let trace = twitter_like(11, 30).normalize_to(45.0, 125.0);

    let mut ladder_cfg = RunConfig::new(Policy::Argus, trace.clone()).with_seed(11);
    ladder_cfg.classifier_train_size = 800;
    let ladder = ladder_cfg.run();
    let priced = cascade_run(&trace, true, ActorPacing::Auto);
    let unpriced = cascade_run(&trace, false, ActorPacing::Auto);

    let stats = priced.cascade.as_ref().expect("cascade run carries stats");
    let mut rows = Vec::new();
    for (name, out) in [
        ("Argus ladder", &ladder),
        ("cascade (priced)", &priced),
        ("cascade (unpriced)", &unpriced),
    ] {
        rows.push(vec![
            name.to_string(),
            out.totals.completed.to_string(),
            f(out.totals.relative_quality(), 3),
            f(out.totals.slo_violation_ratio(), 3),
        ]);
    }
    print_table(&["plan", "completed", "quality", "viol ratio"], &rows);
    println!(
        "cascade: {} first passes, {} escalated ({} completed), quality delta {:+.3}",
        stats.first_pass_total(),
        stats.escalated_total(),
        stats.escalated_completed,
        stats.quality_delta,
    );

    // ---------------------------------------------------------------- //
    // Guard 1: completions >= ladder, quality within 0.05.
    // ---------------------------------------------------------------- //
    if priced.totals.completed < ladder.totals.completed {
        guard_failures.push(format!(
            "cascade completed {} < ladder {}",
            priced.totals.completed, ladder.totals.completed
        ));
    }
    let quality_gap = ladder.totals.relative_quality() - priced.totals.relative_quality();
    if quality_gap > 0.05 {
        guard_failures.push(format!(
            "cascade quality trails the ladder by {quality_gap:.4} (budget 0.05)"
        ));
    }
    if stats.escalated_total() == 0 {
        guard_failures.push("the discriminator never escalated — the cascade is idle".into());
    }

    // ---------------------------------------------------------------- //
    // Guard 2: escalation pricing keeps violations from regressing
    //          against the unpriced ablation.
    // ---------------------------------------------------------------- //
    if priced.totals.violations > unpriced.totals.violations {
        guard_failures.push(format!(
            "priced cascade violated {} > unpriced {}",
            priced.totals.violations, unpriced.totals.violations
        ));
    }

    // ---------------------------------------------------------------- //
    // Guard 3: bit-identical across actor-pacing modes.
    // ---------------------------------------------------------------- //
    for (mode, pacing) in [
        ("inline", ActorPacing::SingleCoreInline),
        ("threaded", ActorPacing::Threaded),
    ] {
        let out = cascade_run(&trace, true, pacing);
        if out.totals != priced.totals
            || out.minutes != priced.minutes
            || out.cascade != priced.cascade
        {
            guard_failures.push(format!("cascade run diverged under {mode} pacing"));
        }
    }

    BenchReport::new("s65_cascade")
        .uint("ladder_completed", ladder.totals.completed)
        .uint("cascade_completed", priced.totals.completed)
        .uint("unpriced_completed", unpriced.totals.completed)
        .float("ladder_quality", ladder.totals.relative_quality(), 4)
        .float("cascade_quality", priced.totals.relative_quality(), 4)
        .uint("ladder_violations", ladder.totals.violations)
        .uint("cascade_violations", priced.totals.violations)
        .uint("unpriced_violations", unpriced.totals.violations)
        .uint("first_pass_total", stats.first_pass_total())
        .uint("escalated_total", stats.escalated_total())
        .uint("escalated_completed", stats.escalated_completed)
        .float("quality_delta", stats.quality_delta, 4)
        .float("budget_quality_gap", 0.05, 2)
        .write("BENCH_cascade.json");

    assert!(
        guard_failures.is_empty(),
        "s65_cascade guard failed:\n{}",
        guard_failures.join("\n")
    );
    println!(
        "\nguard ok: cascade completes >= ladder at quality within 0.05, escalation pricing does not regress violations, bit-identical across pacing modes"
    );
}
