//! Table 2 — model sizes, loading times (PyTorch vs Accelerate) and A100
//! inference latency.
//!
//! Expected values (paper, verbatim for the four published rows): SD-XL
//! 5.14 GB / 45.78 s / 9.42 s / 4.2 s; Tiny 0.63 GB / 11.78 s / 2.91 s /
//! 2.18 s. Loading a model takes 2–10× longer than generating an image —
//! the switch-overhead motivation of Obs. 4.

use argus_bench::{banner, f, print_table};
use argus_models::{latency, latency::Loader, GpuArch, ModelVariant};

fn main() {
    banner("T2", "Model loading times and sizes", "Table 2");
    let rows: Vec<Vec<String>> = [
        ModelVariant::SdXl,
        ModelVariant::Sd20,
        ModelVariant::Sd15,
        ModelVariant::Sd14,
        ModelVariant::SmallSd,
        ModelVariant::TinySd,
    ]
    .iter()
    .map(|&m| {
        vec![
            m.name().to_string(),
            f(m.spec().size_gib, 2),
            f(latency::load_secs(m, Loader::PyTorch), 2),
            f(latency::load_secs(m, Loader::Accelerate), 2),
            f(latency::inference_secs(m, GpuArch::A100), 2),
        ]
    })
    .collect();
    print_table(
        &[
            "model",
            "size (GB)",
            "PyTorch (s)",
            "Accelerate (s)",
            "latency (s)",
        ],
        &rows,
    );
    println!(
        "\nload/inference ratio (Accelerate): SD-XL {:.1}x — why AC's \
         zero-reload K switch wins under dynamic load",
        latency::load_secs(ModelVariant::SdXl, Loader::Accelerate)
            / latency::inference_secs(ModelVariant::SdXl, GpuArch::A100)
    );
}
