//! Fig. 1 — motivation: a fixed 8×A100 cluster running only SD-XL cannot
//! meet the peaks of either production trace.
//!
//! Expected shape (paper): served throughput tracks demand at the troughs
//! and clips at the ~114 QPM exact-serving capacity during peaks, with SLO
//! violations concentrated there.

use argus_bench::{banner, bucket_series, f, print_table};
use argus_core::{Policy, RunConfig};
use argus_models::{latency, GpuArch, ModelVariant};
use argus_workload::{sysx_like, twitter_like};

fn main() {
    banner("F1", "SD-XL-only cluster vs production demand", "Fig. 1");
    let capacity = 8.0 * latency::peak_throughput_per_min(ModelVariant::SdXl, GpuArch::A100);
    println!("exact-serving capacity (8×A100, SD-XL): {capacity:.1} QPM\n");

    for (name, trace) in [
        ("SysX", sysx_like(1, 400)),
        ("Twitter", twitter_like(1, 400)),
    ] {
        println!("[{name} workload, 400 minutes]");
        let out = RunConfig::new(Policy::ClipperHa, trace).with_seed(1).run();
        let rows: Vec<Vec<String>> = bucket_series(&out, 40)
            .into_iter()
            .map(|(m, offered, served, _, viol)| {
                vec![
                    m.to_string(),
                    f(offered, 1),
                    f(served, 1),
                    if offered > capacity { "over" } else { "" }.to_string(),
                    f(viol, 1),
                ]
            })
            .collect();
        print_table(
            &[
                "minute",
                "demand QPM",
                "served QPM",
                "> capacity?",
                "SLO viol %",
            ],
            &rows,
        );
        println!(
            "aggregate: {:.1} QPM served, {:.1}% SLO violations\n",
            out.totals.mean_throughput_qpm(400.0),
            100.0 * out.totals.slo_violation_ratio()
        );
    }
}
