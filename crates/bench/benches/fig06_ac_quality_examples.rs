//! Fig. 6 — per-prompt image quality across approximate-caching levels.
//!
//! Expected shape (paper): simple prompts ("a red apple lying on a table")
//! hold quality through K=20; compositional prompts ("kids walking with a
//! dog") lose content beyond K=15 — per-prompt tolerance varies, which is
//! the premise of prompt-aware scheduling.

use argus_bench::{banner, f, print_table};
use argus_models::{AcLevel, ApproxLevel, GpuArch};
use argus_prompts::{Prompt, PromptId};
use argus_quality::QualityOracle;

fn main() {
    banner(
        "F6",
        "Quality across AC levels for example prompts",
        "Fig. 6",
    );
    let oracle = QualityOracle::new(2024);
    // Fig. 6's four prompts, with structural complexity mirroring them.
    let examples = [
        ("a red apple lying on a table", 0.18),
        ("photo of a happy man", 0.22),
        ("photo of kids walking with a dog", 0.56),
        ("photo of a bear", 0.20),
    ];
    let ks = [0u32, 10, 15, 20, 25];
    let mut rows = Vec::new();
    for (i, &(text, complexity)) in examples.iter().enumerate() {
        let p = Prompt {
            id: PromptId(i as u64),
            text: text.to_string(),
            complexity,
            theme: 0,
        };
        let mut row = vec![text.to_string()];
        for &k in &ks {
            let lvl = ApproxLevel::Ac(AcLevel(k));
            row.push(format!(
                "{} ({}s)",
                f(oracle.score(&p, lvl), 1),
                f(lvl.compute_secs(GpuArch::A100), 1)
            ));
        }
        row.push(f(oracle.tolerance(&p), 2));
        rows.push(row);
    }
    print_table(
        &["prompt", "K=0", "K=10", "K=15", "K=20", "K=25", "tolerance"],
        &rows,
    );
    println!(
        "\ncompositional prompts (low tolerance) degrade visibly at high K;\n\
         simple prompts stay within the optimal-quality band (θ=0.9)."
    );
}
