//! Fig. 13 — quality–throughput Pareto plot: 17 T2I models (A–Q) plus AC
//! variants of the base SD-XL.
//!
//! Expected shape (paper): "AC variants frequently lie on the Pareto
//! frontier, indicating higher image quality at similar or better
//! throughput than corresponding small or distilled models."

use argus_bench::{banner, f, print_table};
use argus_models::extended::{ac_points, catalog, pareto_frontier, QtPoint};
use argus_models::GpuArch;

fn main() {
    banner("F13", "Quality vs throughput Pareto analysis", "Fig. 13");
    let models = catalog();
    let ac = ac_points(GpuArch::A100);
    let mut points: Vec<QtPoint> = models
        .iter()
        .map(|m| QtPoint {
            throughput: m.throughput_per_min,
            quality: m.median_quality,
        })
        .collect();
    points.extend(ac.iter().map(|(_, p)| *p));
    let frontier = pareto_frontier(&points);

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, m) in models.iter().enumerate() {
        rows.push(vec![
            m.letter.to_string(),
            m.name.to_string(),
            f(m.throughput_per_min, 1),
            f(m.median_quality, 1),
            if frontier.contains(&i) {
                "*frontier*"
            } else {
                ""
            }
            .to_string(),
        ]);
    }
    for (j, (k, p)) in ac.iter().enumerate() {
        rows.push(vec![
            "X".to_string(),
            format!("AC {k}"),
            f(p.throughput, 1),
            f(p.quality, 1),
            if frontier.contains(&(models.len() + j)) {
                "*frontier*"
            } else {
                ""
            }
            .to_string(),
        ]);
    }
    print_table(
        &["mark", "model", "imgs/min", "median PickScore", "Pareto"],
        &rows,
    );

    let ac_on = frontier.iter().filter(|&&i| i >= models.len()).count();
    println!(
        "\nAC variants on the Pareto frontier: {ac_on}/{} (paper: \"frequently\")",
        ac.len()
    );
}
