//! Fig. 17 — stress test under monotonically increasing workload.
//!
//! Expected shape (paper): at low load all systems behave alike at full
//! quality; as load climbs, Argus tracks the ramp with the lowest SLO
//! violations while degrading quality gracefully; Clipper-HA and NIRVANA
//! fall behind on throughput; Clipper-HT holds throughput at the lowest
//! quality. Past the deepest-approximation capacity, Argus saturates —
//! the signal for horizontal scaling (§6).
//!
//! Load scale: the paper ramps 40→540+ QPM on axes normalized to its
//! cluster; we ramp 30→290 QPM so the ramp crosses both the exact-serving
//! capacity (~114 QPM) and the fully-approximated capacity (~215 QPM) at
//! the same relative positions (see EXPERIMENTS.md).

use argus_bench::{banner, bucket_series, f, print_table, run_policies};
use argus_core::Policy;
use argus_workload::diagonal;

fn main() {
    banner(
        "F17",
        "Stress ramp 30 → 290 QPM over 400 minutes",
        "Fig. 17",
    );
    let minutes = 400;
    let trace = diagonal(30.0, 290.0, minutes);
    let policies = [
        Policy::Argus,
        Policy::Pac,
        Policy::Proteus,
        Policy::Nirvana,
        Policy::ClipperHa,
        Policy::ClipperHt,
    ];
    let results = run_policies(&policies, &trace, 17);

    for (p, out) in &results {
        println!("\n{}:", p.name());
        let rows: Vec<Vec<String>> = bucket_series(out, 50)
            .into_iter()
            .map(|(m, offered, served, relq, viol)| {
                vec![
                    f(offered, 0),
                    f(served, 0),
                    f(relq, 1),
                    f(viol, 1),
                    m.to_string(),
                ]
            })
            .collect();
        print_table(
            &["offered QPM", "served QPM", "rel.q %", "viol %", "minute"],
            &rows,
        );
        if *p == Policy::Argus {
            println!(
                "saturated minutes (horizontal-scaling signal): {}",
                out.saturated_minutes
            );
        }
    }
}
