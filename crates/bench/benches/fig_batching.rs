//! fig_batching — batched dispatch on the diurnal trace (Obs. 5, §4.5).
//!
//! Runs the diurnal (Twitter-shaped) trace with peaks beyond the 8×A100
//! capacity under batch bounds B ∈ {1, 2, 4, 8} and reports completions,
//! makespan, per-GPU-second throughput and SLO violations. Expected shape
//! (Obs. 5 / Fig. 14): the AC ladder stays at batch-1 — the dispatcher
//! budgets AC batches at the cache-miss (full SD-XL) cost, and the
//! compute-bound UNet has no SLO slack for that (why Argus serves
//! batch-1, §4.5) — while memory-amortizing small variants (Clipper-HT's
//! Tiny-SD fleet, Proteus' deep SM levels at peak) drain saturated
//! queues measurably faster.
//!
//! CI guards:
//! * batched runs complete at least as many jobs as batch-1 on the
//!   diurnal trace, for every policy benchmarked;
//! * Clipper-HT's completed jobs per GPU-second at B ≥ 2 improve over
//!   batch-1, as the Obs. 5 model predicts;
//! * batch-1 throughput is bit-unchanged by enabling the batched
//!   dispatcher (`with_batching(1)` vs default).

use argus_bench::{banner, f, print_table};
use argus_core::{Policy, RunConfig, RunOutcome};
use argus_workload::twitter_like;

const WORKERS: f64 = 8.0;

fn gpu_second_throughput(out: &RunOutcome) -> f64 {
    out.totals.completed as f64 / (out.makespan_secs * WORKERS)
}

fn main() {
    banner(
        "FB",
        "Batched dispatch on the diurnal trace",
        "Obs. 5 / §4.5",
    );

    let trace = twitter_like(11, 30).normalize_to(120.0, 340.0);
    let batches = [1u32, 2, 4, 8];
    let mut rows = Vec::new();
    let mut guard_failures: Vec<String> = Vec::new();

    for policy in [Policy::Argus, Policy::Proteus, Policy::ClipperHt] {
        let mut batch1: Option<RunOutcome> = None;
        for &b in &batches {
            let out = RunConfig::new(policy, trace.clone())
                .with_seed(11)
                .with_batching(b)
                .run();
            let tput = gpu_second_throughput(&out);
            let speedup = batch1
                .as_ref()
                .map(|o| tput / gpu_second_throughput(o))
                .unwrap_or(1.0);
            rows.push(vec![
                policy.name().to_string(),
                b.to_string(),
                out.totals.completed.to_string(),
                f(out.makespan_secs, 1),
                f(tput, 5),
                f(speedup, 4),
                f(out.totals.slo_violation_ratio(), 3),
            ]);

            if let Some(base) = &batch1 {
                if out.totals.completed < base.totals.completed {
                    guard_failures.push(format!(
                        "{policy} B={b}: completed {} < batch-1 {}",
                        out.totals.completed, base.totals.completed
                    ));
                }
                if policy == Policy::ClipperHt && tput <= gpu_second_throughput(base) {
                    guard_failures.push(format!(
                        "{policy} B={b}: GPU-second throughput {tput:.5} did not improve \
                         over batch-1 {:.5}",
                        gpu_second_throughput(base)
                    ));
                }
            } else {
                batch1 = Some(out);
            }
        }
    }
    print_table(
        &[
            "policy",
            "B",
            "completed",
            "makespan s",
            "jobs/GPU-s",
            "vs B=1",
            "viol",
        ],
        &rows,
    );

    // Batch-1 must be bit-identical to the default dispatch path.
    let default = RunConfig::new(Policy::Argus, trace.clone())
        .with_seed(11)
        .run();
    let batch1 = RunConfig::new(Policy::Argus, trace)
        .with_seed(11)
        .with_batching(1)
        .run();
    if default.totals != batch1.totals {
        guard_failures.push("with_batching(1) diverged from the default path".to_string());
    }

    assert!(
        guard_failures.is_empty(),
        "fig_batching guard failed:\n{}",
        guard_failures.join("\n")
    );
    println!("\nguard ok: batched completions >= batch-1 for all policies; Clipper-HT jobs/GPU-s improve at every B >= 2; batch-1 bit-identical to default");
}
