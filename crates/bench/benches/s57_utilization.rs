//! §5.7 — cluster utilization: a fixed cluster sized for average load
//! under Argus vs static peak over-provisioning.
//!
//! Expected shape (paper): peak provisioning idles at 37–60% utilization;
//! Argus reaches 71–91% (1.5–2× higher) while meeting the same demand.

use argus_bench::{banner, f, print_table};
use argus_core::{Policy, RunConfig};
use argus_workload::{sysx_like, twitter_like, Trace};

fn main() {
    banner(
        "S5.7b",
        "Cluster utilization vs provisioning strategy",
        "§5.7",
    );
    let minutes = 400;
    let traces: Vec<(&str, Trace)> = vec![
        ("Twitter", twitter_like(58, minutes)),
        ("SysX", sysx_like(58, minutes)),
    ];

    let mut rows = Vec::new();
    for (name, trace) in traces {
        // Argus on the paper's 8-GPU cluster (sized for average load).
        let argus = RunConfig::new(Policy::Argus, trace.clone())
            .with_seed(58)
            .run();
        // Peak provisioning: enough exact-serving GPUs for the trace peak
        // (SD-XL at 14.3 QPM per worker).
        let peak_workers = (trace.peak() / 14.28).ceil() as usize;
        let peak = RunConfig::new(Policy::ClipperHa, trace)
            .with_seed(58)
            .with_workers(peak_workers)
            .run();
        rows.push(vec![
            name.to_string(),
            format!("Argus (8 GPUs)"),
            f(100.0 * argus.mean_utilization, 1),
            f(100.0 * argus.totals.slo_violation_ratio(), 2),
        ]);
        rows.push(vec![
            name.to_string(),
            format!("peak SD-XL ({peak_workers} GPUs)"),
            f(100.0 * peak.mean_utilization, 1),
            f(100.0 * peak.totals.slo_violation_ratio(), 2),
        ]);
    }
    print_table(
        &["trace", "provisioning", "utilization %", "SLO viol %"],
        &rows,
    );
    println!("\npaper anchors: 37–60% (peak provisioning) → 71–91% (Argus).");
}
