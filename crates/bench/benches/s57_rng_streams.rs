//! Criterion micro-benchmarks of the DES random-number hot paths: stream
//! derivation (§4.7 reproducibility contract) and the distribution samplers
//! that every arrival, service and cache event draws from.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use argus_des::rng::{exponential, log_normal, normal, poisson, weighted_index, RngFactory};

fn bench_stream_derivation(c: &mut Criterion) {
    let factory = RngFactory::new(42);
    c.bench_function("rng_stream_derive", |b| {
        b.iter(|| black_box(factory.stream("arrivals")))
    });
    c.bench_function("rng_stream_derive_indexed", |b| {
        b.iter(|| black_box(factory.stream_indexed("worker", 7)))
    });
}

fn bench_distributions(c: &mut Criterion) {
    let factory = RngFactory::new(42);
    let mut rng = factory.stream("bench");
    c.bench_function("rng_exponential", |b| {
        b.iter(|| black_box(exponential(&mut rng, 2.5)))
    });
    c.bench_function("rng_normal", |b| {
        b.iter(|| black_box(normal(&mut rng, 3.0, 0.5)))
    });
    c.bench_function("rng_log_normal", |b| {
        b.iter(|| black_box(log_normal(&mut rng, 1.0, 0.4)))
    });
    c.bench_function("rng_poisson_small_lambda", |b| {
        b.iter(|| black_box(poisson(&mut rng, 4.0)))
    });
    c.bench_function("rng_poisson_large_lambda", |b| {
        b.iter(|| black_box(poisson(&mut rng, 80.0)))
    });
    let weights = [0.45, 0.20, 0.15, 0.10, 0.07, 0.03];
    c.bench_function("rng_weighted_index_6", |b| {
        b.iter(|| black_box(weighted_index(&mut rng, &weights)))
    });
}

criterion_group!(benches, bench_stream_derivation, bench_distributions);
criterion_main!(benches);
