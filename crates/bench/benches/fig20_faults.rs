//! Fig. 20 — fault handling: (a) GPU failures under moderate and high
//! load; (b) cache-retrieval outage with and without adaptive strategy
//! switching.
//!
//! Expected shape (paper): (a) the solver re-allocates within a minute —
//! throughput holds at moderate load by deepening approximation (quality
//! dips); at high load violations rise 3–5× because quality cannot degrade
//! further. (b) on outage, Argus first serves K=0 (throughput dips), then
//! small models take over; without switching, performance is severely hit.

use argus_bench::{banner, bucket_series, f, print_table};
use argus_cachestore::NetworkRegime;
use argus_core::{FaultEvent, Policy, RunConfig};
use argus_workload::twitter_like;

fn main() {
    banner("F20a", "GPU failure: 4/8 workers down twice", "Fig. 20(a)");
    let minutes = 300;
    let trace = twitter_like(20, minutes);
    let faults = vec![
        FaultEvent::WorkerFail {
            at_minute: 60.0,
            workers: vec![0, 1, 2, 3],
        },
        FaultEvent::WorkerRecover {
            at_minute: 100.0,
            workers: vec![0, 1, 2, 3],
        },
        FaultEvent::WorkerFail {
            at_minute: 180.0,
            workers: vec![0, 1, 2, 3],
        },
        FaultEvent::WorkerRecover {
            at_minute: 220.0,
            workers: vec![0, 1, 2, 3],
        },
    ];
    let out = RunConfig::new(Policy::Argus, trace.clone())
        .with_seed(20)
        .with_faults(faults)
        .run();
    let rows: Vec<Vec<String>> = bucket_series(&out, 20)
        .into_iter()
        .map(|(m, offered, served, relq, viol)| {
            let phase =
                if (60..100).contains(&(m as i64 + 10)) || (180..220).contains(&(m as i64 + 10)) {
                    "FAILED(4/8)"
                } else {
                    ""
                };
            vec![
                m.to_string(),
                f(offered, 0),
                f(served, 0),
                f(relq, 1),
                f(viol, 1),
                phase.into(),
            ]
        })
        .collect();
    print_table(
        &["minute", "offered", "served", "rel.q %", "viol %", "phase"],
        &rows,
    );

    banner(
        "F20b",
        "Cache-retrieval outage: adaptive switch vs frozen AC",
        "Fig. 20(b)",
    );
    let events = vec![
        (60.0, NetworkRegime::Outage),
        (100.0, NetworkRegime::Normal),
        (180.0, NetworkRegime::Outage),
        (220.0, NetworkRegime::Normal),
    ];
    let adaptive = RunConfig::new(Policy::Argus, trace.clone())
        .with_seed(20)
        .with_network_events(events.clone())
        .run();
    let frozen = RunConfig::new(Policy::Argus, trace)
        .with_seed(20)
        .with_network_events(events)
        .without_strategy_switch()
        .run();

    for (name, out) in [("adaptive (AC→SM→AC)", &adaptive), ("no-switch", &frozen)] {
        println!("\n{name}: switches {:?}", out.switches);
        let rows: Vec<Vec<String>> = bucket_series(out, 40)
            .into_iter()
            .map(|(m, offered, served, relq, viol)| {
                vec![
                    m.to_string(),
                    f(offered, 0),
                    f(served, 0),
                    f(relq, 1),
                    f(viol, 1),
                ]
            })
            .collect();
        print_table(&["minute", "offered", "served", "rel.q %", "viol %"], &rows);
    }
    println!(
        "\naggregate SLO violations: adaptive {:.2}% vs frozen {:.2}%",
        100.0 * adaptive.totals.slo_violation_ratio(),
        100.0 * frozen.totals.slo_violation_ratio()
    );
}
