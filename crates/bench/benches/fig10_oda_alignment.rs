//! Fig. 10 — aligning the affinity distribution φ with the solver's load
//! distribution ω: ODA vs random redistribution vs the (infeasible) ideal.
//!
//! Expected shape (paper, with production workload data): ideal
//! (affinity-respecting) assignment ≈ 20.9 PickScore; random
//! redistribution drops to ≈ 17.8; ODA recovers to ≈ 19.5.

use argus_bench::{banner, f, print_table};
use argus_core::AllocationProblem;
use argus_core::{oda, Pasm};
use argus_models::{ApproxLevel, GpuArch, Strategy};
use argus_prompts::PromptGenerator;
use argus_quality::QualityOracle;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("F10", "ODA vs random redistribution quality", "Fig. 10");
    let oracle = QualityOracle::new(10);
    let ladder = ApproxLevel::ladder(Strategy::Ac);
    let prompts = PromptGenerator::new(10).generate_batch(12_000);

    // φ: true affinity; ω: what a loaded 8-worker cluster must serve
    // (demand beyond exact-serving capacity forces deeper levels).
    let phi = oracle.optimal_choice_histogram(&prompts, &ladder);
    let problem = AllocationProblem::from_ladder(&ladder, GpuArch::A100, 0.02, 8, 185.0);
    let allocation = problem.solve_exact();
    let omega = allocation.omega_normalized();

    println!("affinity φ(v) vs target load ω(v):");
    let rows: Vec<Vec<String>> = ladder
        .iter()
        .enumerate()
        .map(|(i, l)| vec![l.to_string(), f(100.0 * phi[i], 1), f(100.0 * omega[i], 1)])
        .collect();
    print_table(&["level", "φ %", "ω %"], &rows);

    // Evaluate realized quality per plan by sampling assignments.
    let pasm_oda = oda(&phi, &omega).expect("oda");
    let pasm_rand = Pasm::proportional(&omega).expect("proportional");
    let mut rng = StdRng::seed_from_u64(1010);
    let mut eval = |plan: Option<&Pasm>| -> f64 {
        let mut total = 0.0;
        for p in &prompts {
            let opt = oracle.optimal_level(p, &ladder);
            let serve = match plan {
                Some(map) => map.sample(opt, &mut rng),
                None => opt, // the infeasible ideal
            };
            total += oracle.score(p, ladder[serve]);
        }
        total / prompts.len() as f64
    };

    let ideal = eval(None);
    let oda_q = eval(Some(&pasm_oda));
    let rand_q = eval(Some(&pasm_rand));
    println!("\nmean PickScore under each redistribution plan:");
    print_table(
        &["plan", "mean PickScore"],
        &[
            vec!["ideal (infeasible)".into(), f(ideal, 2)],
            vec!["ODA (PASM)".into(), f(oda_q, 2)],
            vec!["random (proportional)".into(), f(rand_q, 2)],
        ],
    );
    println!(
        "\npaper anchors: ideal 20.9, ODA 19.5, random 17.8 — the ordering\n\
         and the ~2:1 split of the recovery gap are the reproduction target."
    );
}
