//! Table 3 — per-component parameters, size, FLOPs and arithmetic
//! intensity for the diffusion variants.
//!
//! Expected (paper, verbatim rows): the UNet dominates compute (e.g.
//! SD-XL UNet 11958 GFLOPs/invocation at AI 2329); with 50 iterations per
//! image, generation is compute-bound for virtually all of its runtime.

use argus_bench::{banner, f, print_table};
use argus_models::{GpuArch, ModelVariant};

fn main() {
    banner("T3", "Component FLOPs and arithmetic intensity", "Table 3");
    let mut rows = Vec::new();
    for m in [
        ModelVariant::TinySd,
        ModelVariant::SmallSd,
        ModelVariant::Sd20,
        ModelVariant::SdXl,
    ] {
        for c in &m.spec().components {
            rows.push(vec![
                m.name().to_string(),
                c.name.to_string(),
                f(c.params_b, 3),
                f(c.size_gib, 3),
                f(c.gflops, 3),
                f(c.arithmetic_intensity, 3),
            ]);
        }
    }
    print_table(
        &[
            "model",
            "component",
            "#param (B)",
            "size (GiB)",
            "FLOPs (G)",
            "arith. intensity",
        ],
        &rows,
    );

    println!("\nper-image totals (UNet × 50 denoising steps):");
    let rows: Vec<Vec<String>> = ModelVariant::ALL
        .iter()
        .map(|&m| {
            let s = m.spec();
            vec![
                m.name().to_string(),
                f(s.gflops_per_image() / 1000.0, 1),
                f(s.effective_arithmetic_intensity(), 0),
                if s.effective_arithmetic_intensity() > GpuArch::A100.ridge_point() {
                    "compute-bound".into()
                } else {
                    "memory-bound".into()
                },
            ]
        })
        .collect();
    print_table(
        &["model", "TFLOPs/image", "effective AI", "A100 regime"],
        &rows,
    );
}
