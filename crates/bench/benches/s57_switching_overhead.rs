//! §5.7 — variant-switching overhead: Argus (AC) avoids the model-loading
//! churn that Proteus/PAC-style SM scaling pays on jittery workloads.
//!
//! Expected shape (paper): Proteus/PAC switch models for 27–42% of
//! allocator decisions while Argus barely ever moves weights, worth
//! 15–20% throughput and fewer SLO violations.

use argus_bench::{banner, f, print_table};
use argus_core::{Policy, RunConfig};
use argus_workload::sysx_like;

fn main() {
    banner("S5.7a", "Variant-switching overhead", "§5.7");
    let minutes = 400;
    let trace = sysx_like(57, minutes);
    let ticks = minutes as f64; // one allocator decision per minute

    let mut rows = Vec::new();
    for policy in [
        Policy::Argus,
        Policy::Pac,
        Policy::Proteus,
        Policy::Sommelier,
    ] {
        let out = RunConfig::new(policy, trace.clone()).with_seed(57).run();
        rows.push(vec![
            policy.name().to_string(),
            out.totals.model_loads.to_string(),
            f(100.0 * out.totals.model_loads as f64 / (ticks * 8.0), 1),
            f(out.totals.mean_throughput_qpm(minutes as f64), 1),
            f(100.0 * out.totals.slo_violation_ratio(), 2),
        ]);
    }
    print_table(
        &[
            "system",
            "model loads",
            "loads per worker-tick %",
            "QPM",
            "SLO viol %",
        ],
        &rows,
    );
    println!(
        "\nAC changes approximation level by adjusting K on resident SD-XL \
         weights, so Argus' load count stays near its cold-start floor."
    );
}
