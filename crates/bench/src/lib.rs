//! # argus-bench — experiment harnesses
//!
//! One `harness = false` bench target per table/figure of the paper (see
//! `DESIGN.md` §4 for the index), so `cargo bench --workspace` regenerates
//! every artifact, plus Criterion micro-benchmarks in `benches/micro.rs`.
//!
//! This library holds the shared plumbing: table printing and multi-policy
//! run helpers.

use argus_core::{Policy, RunConfig, RunOutcome};
use argus_workload::Trace;

/// Prints a fixed-width table: a header row, a rule, then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Prints the experiment banner.
pub fn banner(id: &str, title: &str, paper_ref: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {title}");
    println!("paper reference: {paper_ref}");
    println!("================================================================");
}

/// Runs each policy over the trace with a common seed.
pub fn run_policies(policies: &[Policy], trace: &Trace, seed: u64) -> Vec<(Policy, RunOutcome)> {
    policies
        .iter()
        .map(|&p| {
            let out = RunConfig::new(p, trace.clone()).with_seed(seed).run();
            (p, out)
        })
        .collect()
}

/// Aggregates per-minute records into buckets of `bucket` minutes,
/// returning `(bucket start, offered QPM, served QPM, relative quality %,
/// violation %)` rows.
pub fn bucket_series(out: &RunOutcome, bucket: usize) -> Vec<(u64, f64, f64, f64, f64)> {
    out.minutes
        .chunks(bucket.max(1))
        .map(|chunk| {
            let start = chunk.first().map(|m| m.minute).unwrap_or(0);
            let mins = chunk.len() as f64;
            let offered: u64 = chunk.iter().map(|m| m.offered).sum();
            let completed: u64 = chunk.iter().map(|m| m.completed).sum();
            let violations: u64 = chunk.iter().map(|m| m.violations).sum();
            let in_slo: u64 = chunk.iter().map(|m| m.in_slo).sum();
            let rel: f64 = chunk.iter().map(|m| m.relative_quality_sum).sum();
            (
                start,
                offered as f64 / mins,
                completed as f64 / mins,
                if in_slo > 0 {
                    100.0 * rel / in_slo as f64
                } else {
                    0.0
                },
                if offered > 0 {
                    100.0 * violations as f64 / offered as f64
                } else {
                    0.0
                },
            )
        })
        .collect()
}

/// Formats a float with the given precision.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_workload::steady;

    #[test]
    fn bucket_series_aggregates() {
        let out = RunConfig::new(Policy::ClipperHt, steady(60.0, 4))
            .with_seed(1)
            .run();
        let rows = bucket_series(&out, 2);
        assert!(rows.len() >= 2);
        assert!(rows[0].1 > 0.0);
    }

    #[test]
    fn format_helper() {
        assert_eq!(f(1.23456, 2), "1.23");
    }
}
