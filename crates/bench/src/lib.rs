//! # argus-bench — experiment harnesses
//!
//! One `harness = false` bench target per table/figure of the paper (see
//! `DESIGN.md` §4 for the index), so `cargo bench --workspace` regenerates
//! every artifact, plus Criterion micro-benchmarks in `benches/micro.rs`.
//!
//! This library holds the shared plumbing: table printing and multi-policy
//! run helpers.

use argus_core::{Policy, RunConfig, RunOutcome};
use argus_workload::Trace;

/// Prints a fixed-width table: a header row, a rule, then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Prints the experiment banner.
pub fn banner(id: &str, title: &str, paper_ref: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {title}");
    println!("paper reference: {paper_ref}");
    println!("================================================================");
}

/// Runs each policy over the trace with a common seed.
pub fn run_policies(policies: &[Policy], trace: &Trace, seed: u64) -> Vec<(Policy, RunOutcome)> {
    policies
        .iter()
        .map(|&p| {
            let out = RunConfig::new(p, trace.clone()).with_seed(seed).run();
            (p, out)
        })
        .collect()
}

/// Aggregates per-minute records into buckets of `bucket` minutes,
/// returning `(bucket start, offered QPM, served QPM, relative quality %,
/// violation %)` rows.
pub fn bucket_series(out: &RunOutcome, bucket: usize) -> Vec<(u64, f64, f64, f64, f64)> {
    out.minutes
        .chunks(bucket.max(1))
        .map(|chunk| {
            let start = chunk.first().map(|m| m.minute).unwrap_or(0);
            let mins = chunk.len() as f64;
            let offered: u64 = chunk.iter().map(|m| m.offered).sum();
            let completed: u64 = chunk.iter().map(|m| m.completed).sum();
            let violations: u64 = chunk.iter().map(|m| m.violations).sum();
            let in_slo: u64 = chunk.iter().map(|m| m.in_slo).sum();
            let rel: f64 = chunk.iter().map(|m| m.relative_quality_sum).sum();
            (
                start,
                offered as f64 / mins,
                completed as f64 / mins,
                if in_slo > 0 {
                    100.0 * rel / in_slo as f64
                } else {
                    0.0
                },
                if offered > 0 {
                    100.0 * violations as f64 / offered as f64
                } else {
                    0.0
                },
            )
        })
        .collect()
}

/// Formats a float with the given precision.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Ordered builder for the `BENCH_*.json` artifacts the s-series guard
/// benches leave at the repo root for CI to diff.
///
/// Every report opens with the same two stamped fields — `"bench"` (the
/// guard's name) and `"schema_version"` (shared with the JSONL telemetry
/// header, [`argus_obs::JSONL_SCHEMA_VERSION`]) — followed by the
/// caller's fields in insertion order, pretty-printed with two-space
/// indents and a trailing newline. Numeric precision is the caller's
/// choice per field, so migrated emitters keep their historical formats.
#[derive(Debug, Clone)]
pub struct BenchReport {
    fields: Vec<(String, String)>,
}

impl BenchReport {
    /// A report for the guard bench named `bench`, stamped with the
    /// shared schema version.
    pub fn new(bench: &str) -> Self {
        BenchReport {
            fields: vec![
                (
                    "bench".into(),
                    format!("\"{}\"", argus_obs::json_escape(bench)),
                ),
                (
                    "schema_version".into(),
                    argus_obs::JSONL_SCHEMA_VERSION.to_string(),
                ),
            ],
        }
    }

    /// An unstamped group, for nesting via [`BenchReport::nested`].
    pub fn group() -> Self {
        BenchReport { fields: Vec::new() }
    }

    /// Appends an unsigned-integer field.
    pub fn uint(mut self, key: &str, v: u64) -> Self {
        self.fields.push((key.into(), v.to_string()));
        self
    }

    /// Appends a float field rendered with `prec` decimal places.
    pub fn float(mut self, key: &str, v: f64, prec: usize) -> Self {
        self.fields.push((key.into(), f(v, prec)));
        self
    }

    /// Appends a string field (JSON-escaped).
    pub fn str(mut self, key: &str, v: &str) -> Self {
        self.fields
            .push((key.into(), format!("\"{}\"", argus_obs::json_escape(v))));
        self
    }

    /// Appends a nested object field.
    pub fn nested(mut self, key: &str, group: BenchReport) -> Self {
        let indented = group.render(1);
        self.fields.push((key.into(), indented));
        self
    }

    fn render(&self, depth: usize) -> String {
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        let body = self
            .fields
            .iter()
            .map(|(k, v)| format!("{pad}\"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(",\n");
        format!("{{\n{body}\n{close}}}")
    }

    /// The rendered document, trailing newline included.
    pub fn to_json(&self) -> String {
        format!("{}\n", self.render(0))
    }

    /// Writes the report to `file_name` at the repository root (the
    /// conventional `BENCH_*.json` location).
    ///
    /// # Panics
    /// Panics when the write fails, failing the guard bench loudly.
    pub fn write(&self, file_name: &str) {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(file_name);
        std::fs::write(&path, self.to_json()).unwrap_or_else(|e| panic!("write {file_name}: {e}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_workload::steady;

    #[test]
    fn bucket_series_aggregates() {
        let out = RunConfig::new(Policy::ClipperHt, steady(60.0, 4))
            .with_seed(1)
            .run();
        let rows = bucket_series(&out, 2);
        assert!(rows.len() >= 2);
        assert!(rows[0].1 > 0.0);
    }

    #[test]
    fn format_helper() {
        assert_eq!(f(1.23456, 2), "1.23");
    }

    #[test]
    fn bench_report_renders_the_benchmark_artifact_format() {
        let json = BenchReport::new("s99_example")
            .uint("jobs", 1000)
            .float("ratio", 0.12345, 3)
            .str("policy", "Argus")
            .nested(
                "inner",
                BenchReport::group().uint("a", 1).float("b", 2.0, 1),
            )
            .to_json();
        assert_eq!(
            json,
            "{\n  \"bench\": \"s99_example\",\n  \"schema_version\": 1,\n  \"jobs\": 1000,\n  \"ratio\": 0.123,\n  \"policy\": \"Argus\",\n  \"inner\": {\n    \"a\": 1,\n    \"b\": 2.0\n  }\n}\n"
        );
        // The schema version is the shared telemetry one, not a local copy.
        assert!(json.contains(&format!(
            "\"schema_version\": {}",
            argus_obs::JSONL_SCHEMA_VERSION
        )));
    }
}
