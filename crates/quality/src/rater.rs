//! Simulated human-perception study (§5.4, §5.7).
//!
//! The paper surveyed 186 participants who rated generated images for
//! *prompt relevance* and *overall quality* under load-conditioned serving.
//! We cannot reproduce human subjects; we substitute a threshold-rater
//! model: each simulated rater accepts an image when its **relative
//! quality** (oracle score over the prompt's base score) clears the rater's
//! personal threshold, drawn once per rater. Thresholds are calibrated so
//! that always-SD-XL service scores ≈ 94% / 89% as in the paper.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Outcome of a simulated suitability survey.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuitabilityRating {
    /// Fraction of votes rating the image suitable for prompt relevance.
    pub prompt_relevance: f64,
    /// Fraction of votes rating the image suitable for overall quality.
    pub overall_quality: f64,
}

/// A panel of simulated raters with per-rater acceptance thresholds.
#[derive(Debug, Clone)]
pub struct RaterPanel {
    relevance_thresholds: Vec<f64>,
    quality_thresholds: Vec<f64>,
}

impl RaterPanel {
    /// Creates a panel of `n` raters. The paper's panel size is 186.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "panel needs at least one rater");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7261_7465_7273); // "raters"
        let gauss = move |rng: &mut StdRng| {
            let u1: f64 = 1.0 - rng.random::<f64>();
            let u2: f64 = rng.random::<f64>();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let relevance_thresholds = (0..n).map(|_| 0.850 + 0.10 * gauss(&mut rng)).collect();
        let quality_thresholds = (0..n).map(|_| 0.875 + 0.10 * gauss(&mut rng)).collect();
        RaterPanel {
            relevance_thresholds,
            quality_thresholds,
        }
    }

    /// Number of raters on the panel.
    pub fn len(&self) -> usize {
        self.relevance_thresholds.len()
    }

    /// Whether the panel is empty (never true: construction requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.relevance_thresholds.is_empty()
    }

    /// Rates a batch of images given `(score, base_score)` pairs; each
    /// rater votes on every image, and the returned rates are vote
    /// fractions over all (rater, image) pairs.
    ///
    /// # Panics
    /// Panics if `samples` is empty.
    pub fn rate(&self, samples: &[(f64, f64)]) -> SuitabilityRating {
        assert!(!samples.is_empty(), "no samples to rate");
        let mut rel_votes = 0usize;
        let mut qual_votes = 0usize;
        let total = samples.len() * self.len();
        for &(score, base) in samples {
            let rel_quality = if base > 0.0 { score / base } else { 0.0 };
            rel_votes += self
                .relevance_thresholds
                .iter()
                .filter(|&&t| rel_quality >= t)
                .count();
            qual_votes += self
                .quality_thresholds
                .iter()
                .filter(|&&t| rel_quality >= t)
                .count();
        }
        SuitabilityRating {
            prompt_relevance: rel_votes as f64 / total as f64,
            overall_quality: qual_votes as f64 / total as f64,
        }
    }
}

/// Convenience: rates samples with a fresh panel of the paper's size (186).
pub fn simulate_suitability(samples: &[(f64, f64)], seed: u64) -> SuitabilityRating {
    RaterPanel::new(186, seed).rate(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdxl_service_scores_like_the_paper() {
        // Serving everything with the base model: relative quality 1.0.
        // Paper §5.4: SD-XL scored 94% / 89%.
        let samples = vec![(21.0, 21.0); 200];
        let r = simulate_suitability(&samples, 1);
        assert!((r.prompt_relevance - 0.94).abs() < 0.04, "{r:?}");
        assert!((r.overall_quality - 0.89).abs() < 0.05, "{r:?}");
    }

    #[test]
    fn low_quality_service_scores_low() {
        // Clipper-HT-like service (relative quality ≈ 0.80) lands far below
        // the SD-XL ceiling, near the paper's 41%/35%.
        let samples = vec![(16.9, 21.0); 200];
        let r = simulate_suitability(&samples, 2);
        assert!(r.prompt_relevance < 0.55, "{r:?}");
        assert!(r.overall_quality < r.prompt_relevance);
    }

    #[test]
    fn rating_is_monotone_in_quality() {
        let lo = simulate_suitability(&[(18.0, 21.0)], 3);
        let mid = simulate_suitability(&[(19.8, 21.0)], 3);
        let hi = simulate_suitability(&[(21.0, 21.0)], 3);
        assert!(lo.prompt_relevance <= mid.prompt_relevance);
        assert!(mid.prompt_relevance <= hi.prompt_relevance);
        assert!(lo.overall_quality <= mid.overall_quality);
        assert!(mid.overall_quality <= hi.overall_quality);
    }

    #[test]
    fn relevance_is_easier_than_overall_quality() {
        // Same image: overall-quality bar is stricter, as in the paper
        // (every system's second number is lower).
        let r = simulate_suitability(&[(19.8, 21.0); 50], 4);
        assert!(r.prompt_relevance >= r.overall_quality);
    }

    #[test]
    fn panel_is_deterministic_per_seed() {
        let a = RaterPanel::new(186, 9).rate(&[(20.0, 21.0)]);
        let b = RaterPanel::new(186, 9).rate(&[(20.0, 21.0)]);
        assert_eq!(a, b);
        assert_eq!(RaterPanel::new(10, 0).len(), 10);
        assert!(!RaterPanel::new(10, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one rater")]
    fn empty_panel_rejected() {
        let _ = RaterPanel::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_samples_rejected() {
        let _ = RaterPanel::new(5, 1).rate(&[]);
    }
}
