//! Empirically profiled degradation `d(v', v)` — the explicit input to ODA.
//!
//! §4.3: "Argus assumes no fixed degradation form; `d` is an explicit
//! input, and ODA minimizes total expected loss across redistributions" and
//! "empirically, `d` increases super-linearly with the model speed gap".
//! This module profiles `d` from the quality oracle exactly the way the
//! paper profiles it from generated images.

use argus_models::ApproxLevel;
use argus_prompts::Prompt;

use crate::QualityOracle;

/// A profiled degradation matrix over an approximation ladder.
///
/// `cost(i, j)` is the expected PickScore loss when a prompt whose optimal
/// level is `ladder[i]` is instead served at `ladder[j]`. Serving at a
/// *less* approximate level never degrades quality (cost 0) — the
/// asymmetry that makes Earth-Mover's Distance inadequate (§4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationProfile {
    n: usize,
    /// Row-major `n × n` matrix.
    cost: Vec<f64>,
}

impl DegradationProfile {
    /// Profiles degradation from the oracle over a prompt sample.
    ///
    /// For each pair `(i, j)` the cost is the mean of
    /// `max(0, score(p, ladder[i]) − score(p, ladder[j]))` over prompts `p`
    /// whose optimal level is `i`.
    ///
    /// # Panics
    /// Panics if `ladder` is empty.
    pub fn profile(oracle: &QualityOracle, prompts: &[Prompt], ladder: &[ApproxLevel]) -> Self {
        assert!(!ladder.is_empty(), "empty approximation ladder");
        let n = ladder.len();
        let mut sums = vec![0.0f64; n * n];
        let mut counts = vec![0usize; n];
        for p in prompts {
            let i = oracle.optimal_level(p, ladder);
            counts[i] += 1;
            let scores = oracle.scores(p, ladder);
            for j in 0..n {
                sums[i * n + j] += (scores[i] - scores[j]).max(0.0);
            }
        }
        let mut cost = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                if counts[i] > 0 {
                    cost[i * n + j] = sums[i * n + j] / counts[i] as f64;
                }
            }
        }
        // Never charge for running less approximate (slower) than optimal.
        for i in 0..n {
            for j in 0..=i {
                cost[i * n + j] = 0.0;
            }
        }
        DegradationProfile { n, cost }
    }

    /// A synthetic super-linear profile `d(i → j) = scale · (j − i)^power`
    /// for `j > i`, 0 otherwise. Used by unit tests and as a fallback when
    /// no profiling sample is available.
    ///
    /// # Panics
    /// Panics if `n == 0` or `power < 1.0` (sub-linear profiles violate the
    /// ODA optimality precondition).
    pub fn synthetic(n: usize, power: f64, scale: f64) -> Self {
        assert!(n > 0, "empty ladder");
        assert!(
            power >= 1.0,
            "sub-linear degradation profile (power {power}) violates ODA preconditions"
        );
        let mut cost = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i + 1..n {
                cost[i * n + j] = scale * ((j - i) as f64).powf(power);
            }
        }
        DegradationProfile { n, cost }
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the ladder is empty (never true for constructed profiles).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Expected quality loss moving a prompt with optimal level `from` to
    /// level `to`.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn cost(&self, from: usize, to: usize) -> f64 {
        assert!(from < self.n && to < self.n, "level index out of range");
        self.cost[from * self.n + to]
    }

    /// Whether each row is non-decreasing in the target depth (moving
    /// further right never gets cheaper) — the monotonicity ODA relies on.
    pub fn is_monotone(&self) -> bool {
        (0..self.n).all(|i| {
            (i + 1..self.n).all(|j| j + 1 >= self.n || self.cost(i, j + 1) >= self.cost(i, j))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_models::Strategy;
    use argus_prompts::PromptGenerator;

    fn profile(strategy: Strategy) -> DegradationProfile {
        let oracle = QualityOracle::new(21);
        let prompts = PromptGenerator::new(22).generate_batch(8000);
        DegradationProfile::profile(&oracle, &prompts, &ApproxLevel::ladder(strategy))
    }

    #[test]
    fn leftward_moves_are_free() {
        for strategy in [Strategy::Sm, Strategy::Ac] {
            let d = profile(strategy);
            for i in 0..d.len() {
                for j in 0..=i {
                    assert_eq!(d.cost(i, j), 0.0, "{strategy}: d({i},{j})");
                }
            }
        }
    }

    #[test]
    fn profiled_costs_are_monotone_in_gap() {
        for strategy in [Strategy::Sm, Strategy::Ac] {
            let d = profile(strategy);
            assert!(d.is_monotone(), "{strategy}: {d:?}");
        }
    }

    #[test]
    fn profiled_costs_are_superlinear_in_gap() {
        // §4.3: d grows super-linearly with the speed gap. Check that a
        // two-rung jump costs more than twice a one-rung jump from the same
        // origin, for origins with meaningful mass.
        let d = profile(Strategy::Ac);
        for i in 0..3 {
            let one = d.cost(i, i + 1);
            let two = d.cost(i, i + 2);
            if one > 0.05 {
                assert!(two > 1.6 * one, "d({i},·): one={one:.3} two={two:.3}");
            }
        }
    }

    #[test]
    fn synthetic_profile_shape() {
        let d = DegradationProfile::synthetic(4, 2.0, 0.5);
        assert_eq!(d.cost(0, 0), 0.0);
        assert_eq!(d.cost(2, 0), 0.0);
        assert_eq!(d.cost(0, 1), 0.5);
        assert_eq!(d.cost(0, 3), 4.5);
        assert!(d.is_monotone());
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "sub-linear")]
    fn synthetic_rejects_sublinear() {
        let _ = DegradationProfile::synthetic(3, 0.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cost_bounds_checked() {
        let d = DegradationProfile::synthetic(3, 2.0, 1.0);
        let _ = d.cost(3, 0);
    }
}
