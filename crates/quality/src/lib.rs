//! # argus-quality — the synthetic PickScore oracle
//!
//! The paper measures image quality with PickScore [50], a learned
//! preference model over (prompt, image) pairs, and defines a prompt's
//! **optimal model** as the fastest approximation level whose score is
//! within `θ = 0.9` of the best achievable score (§3). Neither the images
//! nor PickScore exist offline, so this crate supplies the *quality
//! landscape* directly: a deterministic oracle mapping
//! `(prompt, approximation level)` to a PickScore-scale value.
//!
//! The oracle is calibrated against every number the paper publishes:
//!
//! * SD-XL mean ≈ 21.0; Small-SD mean under random assignment ≈ 17.4 vs
//!   ≈ 20.6 under optimal assignment (Fig. 9);
//! * AC classifier-routed 20.8 vs random 17.6, SM 20.6 vs 18.2 (§5.5);
//! * a majority of prompts tolerate some approximation while a solid
//!   minority requires the base model (Fig. 8);
//! * degradation grows super-linearly with the speed gap between levels
//!   (§4.3), which is what makes ODA's nearest-neighbour shifting optimal.
//!
//! Mechanism: each prompt carries a latent *tolerance* `t ∈ [0, 1]`
//! (derived from its structural complexity plus noise). Each approximation
//! level has a *depth* `a ∈ [0, 1]`. Quality is approximately
//! `base − λ·a − κ·(max(0, a − t))² − noise`: approximation is nearly free
//! until depth exceeds tolerance, then cost grows quadratically.
//!
//! # Example
//!
//! ```
//! use argus_prompts::PromptGenerator;
//! use argus_quality::QualityOracle;
//! use argus_models::ApproxLevel;
//!
//! let oracle = QualityOracle::new(42);
//! let p = PromptGenerator::new(1).generate();
//! let ladder = ApproxLevel::ladder(argus_models::Strategy::Sm);
//! let optimal = oracle.optimal_level(&p, &ladder);
//! let score = oracle.score(&p, ladder[optimal]);
//! assert!(score >= 0.9 * oracle.scores(&p, &ladder).into_iter().fold(f64::MIN, f64::max));
//! assert!(optimal < ladder.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod degradation;
mod depth;
mod oracle;
mod rater;

pub use degradation::DegradationProfile;
pub use depth::approximation_depth;
pub use oracle::{QualityOracle, DEFAULT_AC_SIMILARITY, OPTIMAL_QUALITY_THETA};
pub use rater::{simulate_suitability, RaterPanel};
