//! The deterministic PickScore oracle.

use argus_models::{ApproxLevel, Strategy};
use argus_prompts::Prompt;

use crate::depth::approximation_depth;

/// The optimal-quality threshold `θ` (§3): a score within `θ · max` counts
/// as optimal quality. The paper uses 0.9, consistent with NIRVANA [20].
pub const OPTIMAL_QUALITY_THETA: f64 = 0.9;

/// Nominal cache-neighbour similarity for AC when none is supplied: the
/// warm-cache average. [`QualityOracle::score`] uses this; the full system
/// simulation passes the actually retrieved similarity.
pub const DEFAULT_AC_SIMILARITY: f64 = 0.75;

/// Severity exponent: per-prompt degradation multiplier is
/// `exp(GAMMA · complexity) / MU`.
const GAMMA: f64 = 4.5;

/// Normalisation constant `E[exp(GAMMA · (complexity + η))]` under the
/// `argus-prompts` generator distribution (mixture over subjects/settings/
/// modifiers/jitter, η ~ N(0, 0.04)); derived in closed form from the
/// generator's mixture weights and verified by
/// `severity_multiplier_has_unit_mean`.
const MU: f64 = 15.0;

/// Std-dev of the per-prompt latent noise added to complexity before the
/// severity transform (captures non-structural quality factors).
const ETA_SD: f64 = 0.04;

/// Std-dev of the idiosyncratic per-(prompt, level) score noise. This is
/// what makes per-prompt quality orderings non-monotone in approximation
/// depth — the paper's Fig. 8 explicitly counts prompts where an
/// intermediate model is optimal while a *faster and a slower* model both
/// are not, which requires level-specific affinity.
const LEVEL_NOISE_SD: f64 = 0.6;

/// Mean degradation (PickScore drop from the SD-XL base) as a piecewise-
/// linear function of approximation depth. Anchored to the profiled
/// per-level qualities of `argus-models` (paper Fig. 9 / Fig. 13 / §5.5).
fn mean_drop_at_depth(depth: f64) -> f64 {
    // Profiled anchors scaled by 1.1: the score floor truncates the loss of
    // the most fragile prompts, and the scaling restores the population
    // means to the profiled q_v values (verified by calibration tests).
    const ANCHORS: [(f64, f64); 7] = [
        (0.0, 0.0),
        (0.176, 0.33),
        (0.352, 0.99),
        (0.528, 1.87),
        (0.704, 3.08),
        (0.88, 3.74),
        (1.0, 4.51),
    ];
    if depth <= 0.0 {
        return 0.0;
    }
    for w in ANCHORS.windows(2) {
        let (d0, q0) = w[0];
        let (d1, q1) = w[1];
        if depth <= d1 {
            return q0 + (q1 - q0) * (depth - d0) / (d1 - d0);
        }
    }
    // Similarity-modulated AC depth can exceed 1; extrapolate the terminal
    // slope.
    let slope = (4.51 - 3.74) / (1.0 - 0.88);
    4.51 + slope * (depth - 1.0)
}

/// Score clamp range: PickScore values for recognizable T2I output.
const SCORE_FLOOR: f64 = 10.0;
const SCORE_CEIL: f64 = 24.0;

/// Deterministic oracle for per-prompt, per-level image quality.
///
/// All scores derive from `(oracle seed, prompt text, prompt id, level)`;
/// two oracles with the same seed agree everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QualityOracle {
    seed: u64,
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in [0, 1) from a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Standard normal from two hashes (Box–Muller).
fn gauss(h1: u64, h2: u64) -> f64 {
    let u1 = (1.0 - unit(h1)).max(f64::MIN_POSITIVE);
    let u2 = unit(h2);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl QualityOracle {
    /// Creates an oracle with the given seed.
    pub fn new(seed: u64) -> Self {
        QualityOracle { seed }
    }

    fn prompt_hash(&self, p: &Prompt) -> u64 {
        mix(mix(self.seed, fnv(p.text.as_bytes())), p.id.0)
    }

    /// The best achievable PickScore for this prompt (its SD-XL / K=0
    /// score before level noise) — the `max{s_1..s_n}` of §3.
    pub fn base_quality(&self, p: &Prompt) -> f64 {
        let h = self.prompt_hash(p);
        (21.0 + 0.5 * gauss(mix(h, 1), mix(h, 2))).clamp(19.5, 22.5)
    }

    /// The per-prompt degradation severity multiplier (mean ≈ 1 over the
    /// generator distribution). Tolerant prompts (low complexity) have
    /// multipliers well below 1 — they are the "approximation tolerant"
    /// majority of Observation 1.
    pub fn severity(&self, p: &Prompt) -> f64 {
        let h = self.prompt_hash(p);
        let eta = ETA_SD * gauss(mix(h, 3), mix(h, 4));
        ((GAMMA * (p.complexity + eta)).exp() / MU).clamp(0.05, 6.0)
    }

    /// The prompt's approximation tolerance in `[0, 1]` (diagnostic view of
    /// the latent: `1 − complexity`).
    pub fn tolerance(&self, p: &Prompt) -> f64 {
        (1.0 - p.complexity).clamp(0.0, 1.0)
    }

    /// PickScore of the image generated for `p` at `level`, using the
    /// nominal cache similarity for AC levels.
    pub fn score(&self, p: &Prompt, level: ApproxLevel) -> f64 {
        self.score_with_similarity(p, level, DEFAULT_AC_SIMILARITY)
    }

    /// PickScore when the AC cache retrieval found a neighbour of the given
    /// cosine `similarity` (ignored for SM levels). Better neighbours mean
    /// the resumed trajectory needs less correction, i.e. shallower
    /// effective approximation.
    pub fn score_with_similarity(&self, p: &Prompt, level: ApproxLevel, similarity: f64) -> f64 {
        let mut depth = approximation_depth(level);
        if level.strategy() == Strategy::Ac && depth > 0.0 {
            let mult = 1.0 + 0.5 * (DEFAULT_AC_SIMILARITY - similarity.clamp(0.0, 1.0));
            depth *= mult;
        }
        let drop = mean_drop_at_depth(depth) * self.severity(p);
        let h = self.prompt_hash(p);
        let lt = level_tag(level);
        let level_noise = LEVEL_NOISE_SD * gauss(mix(h, 31 * lt + 7), mix(h, 17 * lt + 3));
        (self.base_quality(p) - drop + level_noise).clamp(SCORE_FLOOR, SCORE_CEIL)
    }

    /// Scores for every level of a ladder.
    pub fn scores(&self, p: &Prompt, ladder: &[ApproxLevel]) -> Vec<f64> {
        ladder.iter().map(|&l| self.score(p, l)).collect()
    }

    /// The index (into `ladder`) of the prompt's **optimal model** (§3): the
    /// fastest level whose score is within [`OPTIMAL_QUALITY_THETA`] of the
    /// best score across the ladder. `ladder` must be ordered slowest
    /// (least approximate) first, as produced by [`ApproxLevel::ladder`].
    ///
    /// # Panics
    /// Panics if `ladder` is empty.
    pub fn optimal_level(&self, p: &Prompt, ladder: &[ApproxLevel]) -> usize {
        assert!(!ladder.is_empty(), "empty approximation ladder");
        let scores = self.scores(p, ladder);
        let best = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Fastest = deepest approximation = last in ladder order; scan from
        // the fast end and take the first level meeting the bar.
        for i in (0..ladder.len()).rev() {
            if scores[i] >= OPTIMAL_QUALITY_THETA * best {
                return i;
            }
        }
        0
    }

    /// Histogram (fractions summing to 1) of optimal-level choices over a
    /// prompt set — the affinity distribution `φ(v)` in its exact form.
    pub fn optimal_choice_histogram(&self, prompts: &[Prompt], ladder: &[ApproxLevel]) -> Vec<f64> {
        let mut counts = vec![0usize; ladder.len()];
        for p in prompts {
            counts[self.optimal_level(p, ladder)] += 1;
        }
        let n = prompts.len().max(1) as f64;
        counts.iter().map(|&c| c as f64 / n).collect()
    }
}

fn level_tag(level: ApproxLevel) -> u64 {
    match level {
        ApproxLevel::Sm(v) => 100 + v as u64,
        ApproxLevel::Ac(k) => 200 + u64::from(k.skipped_steps()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_models::{AcLevel, ModelVariant};
    use argus_prompts::PromptGenerator;

    fn prompts(n: usize) -> Vec<Prompt> {
        PromptGenerator::new(404).generate_batch(n)
    }

    fn mean<'a>(it: impl Iterator<Item = &'a f64>) -> f64 {
        let v: Vec<f64> = it.copied().collect();
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn scores_are_deterministic() {
        let o1 = QualityOracle::new(9);
        let o2 = QualityOracle::new(9);
        let p = prompts(1).remove(0);
        for l in ApproxLevel::ladder(Strategy::Sm) {
            assert_eq!(o1.score(&p, l), o2.score(&p, l));
        }
        let o3 = QualityOracle::new(10);
        let l = ApproxLevel::Sm(ModelVariant::Sd15);
        assert_ne!(o1.score(&p, l), o3.score(&p, l));
    }

    #[test]
    fn severity_multiplier_has_unit_mean() {
        let o = QualityOracle::new(1);
        let ps = prompts(30_000);
        let m = mean(ps.iter().map(|p| o.severity(p)).collect::<Vec<_>>().iter());
        assert!((m - 1.0).abs() < 0.06, "E[severity] = {m}");
    }

    #[test]
    fn random_assignment_means_match_profiled_quality() {
        // The calibration contract: mean score per level over the prompt
        // population ≈ the profiled q_v the solver uses (Fig. 9 anchors).
        let o = QualityOracle::new(2);
        let ps = prompts(20_000);
        for strategy in [Strategy::Sm, Strategy::Ac] {
            for l in ApproxLevel::ladder(strategy) {
                let scores: Vec<f64> = ps.iter().map(|p| o.score(p, l)).collect();
                let m = mean(scores.iter());
                let target = l.profiled_quality();
                assert!(
                    (m - target).abs() < 0.45,
                    "{l}: mean {m:.2} vs profiled {target:.2}"
                );
            }
        }
    }

    #[test]
    fn optimal_assignment_beats_random_for_small_model() {
        // Fig. 9: SD-Small random ≈ 17.4 vs optimal-only ≈ 20.6.
        let o = QualityOracle::new(3);
        let ps = prompts(20_000);
        let ladder = ApproxLevel::ladder(Strategy::Sm);
        let small = ApproxLevel::Sm(ModelVariant::SmallSd);
        let small_idx = ladder.iter().position(|&l| l == small).unwrap();
        let random_mean = mean(
            ps.iter()
                .map(|p| o.score(p, small))
                .collect::<Vec<_>>()
                .iter(),
        );
        let optimal: Vec<f64> = ps
            .iter()
            .filter(|p| o.optimal_level(p, &ladder) == small_idx)
            .map(|p| o.score(p, small))
            .collect();
        assert!(!optimal.is_empty());
        let optimal_mean = mean(optimal.iter());
        assert!((random_mean - 17.4).abs() < 0.5, "random {random_mean:.2}");
        assert!(
            optimal_mean > 19.6,
            "optimal-assignment mean {optimal_mean:.2} (paper: 20.6)"
        );
        assert!(optimal_mean - random_mean > 2.0);
    }

    #[test]
    fn majority_of_prompts_tolerate_approximation() {
        // Observation 1 / Fig. 8: most prompts do not require the base
        // model, and a sizable share tolerates the deepest level.
        let o = QualityOracle::new(4);
        let ps = prompts(10_000);
        for strategy in [Strategy::Sm, Strategy::Ac] {
            let ladder = ApproxLevel::ladder(strategy);
            let hist = o.optimal_choice_histogram(&ps, &ladder);
            assert!((hist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            let base_share = hist[0];
            let strict_share = hist[0] + hist[1]; // two least-approximate levels
            let deepest_share = hist[5];
            assert!(
                base_share <= 0.35,
                "{strategy}: base-model share {base_share}"
            );
            assert!(
                (0.02..=0.45).contains(&strict_share),
                "{strategy}: strict share {strict_share}"
            );
            assert!(
                (0.20..=0.60).contains(&deepest_share),
                "{strategy}: deepest share {deepest_share}"
            );
            assert!(1.0 - base_share > 0.6, "{strategy}: tolerance too rare");
        }
    }

    #[test]
    fn mean_scores_decrease_with_depth_but_orderings_vary() {
        let o = QualityOracle::new(5);
        let ps = prompts(5000);
        for strategy in [Strategy::Sm, Strategy::Ac] {
            let ladder = ApproxLevel::ladder(strategy);
            // Population means strictly decrease along the ladder …
            let means: Vec<f64> = ladder
                .iter()
                .map(|&l| mean(ps.iter().map(|p| o.score(p, l)).collect::<Vec<_>>().iter()))
                .collect();
            assert!(
                means.windows(2).all(|w| w[0] > w[1]),
                "{strategy}: {means:?}"
            );
            // … while some individual prompts prefer a deeper level
            // (idiosyncratic affinity — Fig. 8's mixed optimal choices).
            let inversions = ps
                .iter()
                .filter(|p| {
                    let s = o.scores(p, &ladder);
                    s.windows(2).any(|w| w[1] > w[0])
                })
                .count();
            assert!(inversions > 0, "{strategy}: perfectly monotone oracle");
            // Large per-prompt inversions across two rungs stay rare.
            let big = ps
                .iter()
                .filter(|p| {
                    let s = o.scores(p, &ladder);
                    (0..s.len() - 2).any(|i| s[i] + 3.0 < s[i + 2])
                })
                .count();
            assert!(big * 100 < ps.len(), "{strategy}: {big} large inversions");
        }
    }

    #[test]
    fn better_cache_neighbours_give_better_ac_quality() {
        let o = QualityOracle::new(6);
        let ps = prompts(300);
        let k20 = ApproxLevel::Ac(AcLevel(20));
        let mut improved = 0;
        for p in &ps {
            let close = o.score_with_similarity(p, k20, 0.95);
            let far = o.score_with_similarity(p, k20, 0.30);
            assert!(close + 1e-9 >= far, "{}: {close} < {far}", p.text);
            if close > far {
                improved += 1;
            }
        }
        assert!(
            improved > 200,
            "similarity had almost no effect: {improved}"
        );
    }

    #[test]
    fn similarity_does_not_affect_sm_or_k0() {
        let o = QualityOracle::new(7);
        let p = prompts(1).remove(0);
        let sm = ApproxLevel::Sm(ModelVariant::Sd15);
        assert_eq!(
            o.score_with_similarity(&p, sm, 0.1),
            o.score_with_similarity(&p, sm, 0.9)
        );
        let k0 = ApproxLevel::Ac(AcLevel(0));
        assert_eq!(
            o.score_with_similarity(&p, k0, 0.1),
            o.score_with_similarity(&p, k0, 0.9)
        );
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // slice of scores past idx, by index
    fn optimal_level_respects_theta() {
        let o = QualityOracle::new(8);
        let ladder = ApproxLevel::ladder(Strategy::Ac);
        for p in prompts(2000) {
            let idx = o.optimal_level(&p, &ladder);
            let scores = o.scores(&p, &ladder);
            let best = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(scores[idx] >= OPTIMAL_QUALITY_THETA * best);
            // No faster level also meets the bar.
            for j in idx + 1..ladder.len() {
                assert!(scores[j] < OPTIMAL_QUALITY_THETA * best);
            }
        }
    }

    #[test]
    fn scores_stay_in_clamp_range() {
        let o = QualityOracle::new(11);
        for p in prompts(3000) {
            for l in ApproxLevel::ladder(Strategy::Sm) {
                let s = o.score(&p, l);
                assert!((SCORE_FLOOR..=SCORE_CEIL).contains(&s));
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty approximation ladder")]
    fn optimal_level_panics_on_empty_ladder() {
        let o = QualityOracle::new(1);
        let p = prompts(1).remove(0);
        let _ = o.optimal_level(&p, &[]);
    }

    #[test]
    fn drop_curve_is_monotone_and_anchored() {
        assert_eq!(mean_drop_at_depth(0.0), 0.0);
        assert!((mean_drop_at_depth(0.88) - 3.74).abs() < 1e-12);
        assert!((mean_drop_at_depth(1.0) - 4.51).abs() < 1e-12);
        let mut last = -1.0;
        for i in 0..=120 {
            let d = mean_drop_at_depth(i as f64 / 100.0);
            assert!(d >= last);
            last = d;
        }
    }
}
