//! Approximation depth: the scalar severity of each approximation level.
//!
//! Depth is the oracle's internal coordinate: 0 for exact SD-XL generation,
//! 1 for the most aggressive approximation in either strategy. The mapping
//! is calibrated so that the per-level mean scores land on the profiled
//! quality anchors of `argus-models` (which in turn come from the paper's
//! Fig. 9 / Fig. 13 / §5.5).

use argus_models::{AcLevel, ApproxLevel, ModelVariant};

/// The approximation depth of a level in `[0, 1]`.
///
/// For AC levels the returned value is the depth at nominal cache-neighbour
/// similarity ([`crate::DEFAULT_AC_SIMILARITY`]); retrieval similarity
/// modulates effective depth in the oracle.
pub fn approximation_depth(level: ApproxLevel) -> f64 {
    match level {
        ApproxLevel::Sm(v) => sm_depth(v),
        ApproxLevel::Ac(k) => ac_depth(k),
    }
}

fn sm_depth(v: ModelVariant) -> f64 {
    match v {
        ModelVariant::SdXl => 0.0,
        ModelVariant::Sd20 => 0.38,
        ModelVariant::Sd15 => 0.50,
        ModelVariant::Sd14 => 0.55,
        ModelVariant::SmallSd => 0.90,
        ModelVariant::TinySd => 1.00,
    }
}

fn ac_depth(k: AcLevel) -> f64 {
    // Linear in skipped steps; slightly gentler than the SM endpoint at the
    // matched-throughput point (K=25 ≈ Tiny speed), per Fig. 13's Pareto
    // dominance of AC.
    k.skipped_steps() as f64 / 25.0 * 0.88
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_models::{GpuArch, Strategy, AC_LEVELS};

    #[test]
    fn depth_bounds_and_anchors() {
        assert_eq!(
            approximation_depth(ApproxLevel::Sm(ModelVariant::SdXl)),
            0.0
        );
        assert_eq!(
            approximation_depth(ApproxLevel::Sm(ModelVariant::TinySd)),
            1.0
        );
        assert_eq!(approximation_depth(ApproxLevel::Ac(AcLevel(0))), 0.0);
        for s in [Strategy::Ac, Strategy::Sm] {
            for l in ApproxLevel::ladder(s) {
                let d = approximation_depth(l);
                assert!((0.0..=1.0).contains(&d), "{l}: depth {d}");
            }
        }
    }

    #[test]
    fn depth_increases_along_both_ladders() {
        for s in [Strategy::Ac, Strategy::Sm] {
            let depths: Vec<f64> = ApproxLevel::ladder(s)
                .iter()
                .map(|&l| approximation_depth(l))
                .collect();
            assert!(depths.windows(2).all(|w| w[0] < w[1]), "{s}: {depths:?}");
        }
    }

    #[test]
    fn ac_is_gentler_than_sm_at_matched_throughput() {
        // K=25 runs at ~Tiny-SD speed but at lower depth (higher quality).
        let ac = approximation_depth(ApproxLevel::Ac(AcLevel(25)));
        let tiny = approximation_depth(ApproxLevel::Sm(ModelVariant::TinySd));
        let tp_ac = ApproxLevel::Ac(AcLevel(25)).peak_throughput_per_min(GpuArch::A100);
        let tp_tiny = ApproxLevel::Sm(ModelVariant::TinySd).peak_throughput_per_min(GpuArch::A100);
        assert!((tp_ac - tp_tiny).abs() / tp_tiny < 0.05, "speeds diverge");
        assert!(ac < tiny);
    }

    #[test]
    fn depth_tracks_slowdown_ordering() {
        // Within a ladder, deeper approximation must mean faster serving.
        for s in [Strategy::Ac, Strategy::Sm] {
            let ladder = ApproxLevel::ladder(s);
            for w in ladder.windows(2) {
                assert!(
                    w[1].peak_throughput_per_min(GpuArch::A100)
                        > w[0].peak_throughput_per_min(GpuArch::A100)
                );
            }
        }
    }

    #[test]
    fn ac_depth_for_all_standard_levels() {
        let ds: Vec<f64> = AC_LEVELS
            .iter()
            .map(|&k| approximation_depth(ApproxLevel::Ac(k)))
            .collect();
        assert!((ds[5] - 0.88).abs() < 1e-12);
        assert!((ds[1] - 0.176).abs() < 1e-12);
    }
}
