//! Per-tick time-series: named counters, gauges and fixed-bound
//! histograms sampled every simulated minute into a bounded ring buffer.
//!
//! Determinism rules (DESIGN.md §12):
//!
//! * series are stored in **first-registration order** (`Vec`-backed, no
//!   hash iteration), and the driver registers every series up front, so
//!   every [`TickSample`] carries the same vector layout;
//! * histogram buckets have **fixed upper bounds** chosen at registration
//!   — merging histograms with different bounds is a programming error
//!   and panics;
//! * the ring buffer drops the **oldest** samples when full and counts
//!   the drops, so a truncated timeline is detectable, never silent.

/// A fixed-bound histogram: `bounds.len() + 1` buckets where bucket `i`
/// counts values `v <= bounds[i]` (boundary values land in the lower
/// bucket) and the last bucket is the `+Inf` overflow.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: &'static [f64],
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram over ascending `bounds`.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &'static [f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending: {bounds:?}"
        );
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket upper bounds (exclusive of the `+Inf` overflow bucket).
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Per-bucket counts; `counts()[bounds().len()]` is the overflow.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded value, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded values, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.sum / self.count as f64)
    }

    /// Records one value. A value exactly equal to a bound lands in the
    /// bucket that bound closes (the lower one).
    pub fn record(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) estimated as the upper bound of
    /// the bucket holding the target rank; the overflow bucket reports
    /// the recorded maximum. Returns `None` on an empty histogram.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                });
            }
        }
        Some(self.max)
    }

    /// Adds `other`'s population into `self`. Merging is associative and
    /// commutative: bucket counts, totals and extrema all combine with
    /// associative operations.
    ///
    /// # Panics
    /// Panics if the two histograms have different bucket bounds.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Resets the histogram to empty, keeping its bounds.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }
}

/// One per-minute snapshot of every registered series.
///
/// Vector positions align with the name vectors on [`Timeline`]:
/// `counters[i]` is the series named `timeline.counter_names[i]`, and so
/// on.
#[derive(Debug, Clone, PartialEq)]
pub struct TickSample {
    /// Simulated minute index (0-based).
    pub minute: u32,
    /// Sim-time of the sample in microseconds.
    pub t_us: u64,
    /// Cumulative counter values, in registration order.
    pub counters: Vec<u64>,
    /// Instantaneous gauge values, in registration order.
    pub gauges: Vec<f64>,
    /// Per-tick histograms (reset after each sample), in registration
    /// order.
    pub hists: Vec<Histogram>,
}

/// The finished time-series: every surviving [`TickSample`] plus
/// whole-run cumulative histograms.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Counter series names, in registration order.
    pub counter_names: Vec<&'static str>,
    /// Gauge series names, in registration order.
    pub gauge_names: Vec<&'static str>,
    /// Histogram series names, in registration order.
    pub hist_names: Vec<&'static str>,
    /// Per-minute samples, oldest first (after ring-buffer eviction).
    pub samples: Vec<TickSample>,
    /// Samples evicted by the ring buffer.
    pub dropped: u64,
    /// Whole-run cumulative histogram per `hist_names` entry.
    pub totals: Vec<Histogram>,
}

impl Timeline {
    /// The samples of the counter series named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<Vec<u64>> {
        let i = self.counter_names.iter().position(|&n| n == name)?;
        Some(self.samples.iter().map(|s| s.counters[i]).collect())
    }

    /// The samples of the gauge series named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<Vec<f64>> {
        let i = self.gauge_names.iter().position(|&n| n == name)?;
        Some(self.samples.iter().map(|s| s.gauges[i]).collect())
    }

    /// The whole-run cumulative histogram named `name`, if registered.
    pub fn total_hist(&self, name: &str) -> Option<&Histogram> {
        let i = self.hist_names.iter().position(|&n| n == name)?;
        Some(&self.totals[i])
    }
}

/// The live registry the driver writes into: named series plus the
/// sample ring buffer. Finished into a [`Timeline`] at teardown.
#[derive(Debug)]
pub struct Registry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    hists: Vec<(&'static str, Histogram)>,
    totals: Vec<Histogram>,
    samples: Vec<TickSample>,
    capacity: usize,
    dropped: u64,
}

impl Registry {
    /// An empty registry whose ring buffer holds `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        Registry {
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
            totals: Vec::new(),
            samples: Vec::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    fn counter_idx(&mut self, name: &'static str) -> usize {
        match self.counters.iter().position(|&(n, _)| n == name) {
            Some(i) => i,
            None => {
                self.counters.push((name, 0));
                self.counters.len() - 1
            }
        }
    }

    fn gauge_idx(&mut self, name: &'static str) -> usize {
        match self.gauges.iter().position(|&(n, _)| n == name) {
            Some(i) => i,
            None => {
                self.gauges.push((name, 0.0));
                self.gauges.len() - 1
            }
        }
    }

    fn hist_idx(&mut self, name: &'static str, bounds: &'static [f64]) -> usize {
        match self.hists.iter().position(|&(n, _)| n == name) {
            Some(i) => i,
            None => {
                self.hists.push((name, Histogram::new(bounds)));
                self.totals.push(Histogram::new(bounds));
                self.hists.len() - 1
            }
        }
    }

    /// Sets the cumulative counter `name` to `v` (registering it on
    /// first use).
    pub fn counter_set(&mut self, name: &'static str, v: u64) {
        let i = self.counter_idx(name);
        self.counters[i].1 = v;
    }

    /// Adds `delta` to the cumulative counter `name`.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        let i = self.counter_idx(name);
        self.counters[i].1 += delta;
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &'static str, v: f64) {
        let i = self.gauge_idx(name);
        self.gauges[i].1 = v;
    }

    /// Registers the histogram `name` with the given bounds without
    /// recording anything, so every tick sample carries the series from
    /// minute zero.
    pub fn hist_register(&mut self, name: &'static str, bounds: &'static [f64]) {
        self.hist_idx(name, bounds);
    }

    /// Records `v` into the histogram `name` with the given bounds
    /// (fixed at first use).
    pub fn hist_record(&mut self, name: &'static str, bounds: &'static [f64], v: f64) {
        let i = self.hist_idx(name, bounds);
        self.hists[i].1.record(v);
    }

    /// Takes the per-minute snapshot: pushes a [`TickSample`] into the
    /// ring buffer (evicting the oldest when full), folds the per-tick
    /// histograms into the cumulative totals, and resets them.
    pub fn sample(&mut self, minute: u32, t_us: u64) {
        let sample = TickSample {
            minute,
            t_us,
            counters: self.counters.iter().map(|&(_, v)| v).collect(),
            gauges: self.gauges.iter().map(|&(_, v)| v).collect(),
            hists: self.hists.iter().map(|(_, h)| h.clone()).collect(),
        };
        if self.samples.len() >= self.capacity {
            self.samples.remove(0);
            self.dropped += 1;
        }
        self.samples.push(sample);
        for ((_, h), total) in self.hists.iter_mut().zip(&mut self.totals) {
            total.merge(h);
            h.reset();
        }
    }

    /// The live series names in registration order — `(counters,
    /// gauges, hists)` — matching the name vectors a [`Registry::finish`]
    /// would produce right now. Incremental exporters render the JSONL
    /// header from these.
    pub fn series_names(&self) -> (Vec<&'static str>, Vec<&'static str>, Vec<&'static str>) {
        (
            self.counters.iter().map(|&(n, _)| n).collect(),
            self.gauges.iter().map(|&(n, _)| n).collect(),
            self.hists.iter().map(|&(n, _)| n).collect(),
        )
    }

    /// The most recent tick sample, if any survive in the ring.
    pub fn last_sample(&self) -> Option<&TickSample> {
        self.samples.last()
    }

    /// Consumes the registry into its finished [`Timeline`], folding
    /// anything recorded after the last tick into the run totals so
    /// [`Timeline::totals`] covers the entire run.
    pub fn finish(mut self) -> Timeline {
        for ((_, h), total) in self.hists.iter_mut().zip(&mut self.totals) {
            total.merge(h);
        }
        Timeline {
            counter_names: self.counters.iter().map(|&(n, _)| n).collect(),
            gauge_names: self.gauges.iter().map(|&(n, _)| n).collect(),
            hist_names: self.hists.iter().map(|&(n, _)| n).collect(),
            samples: self.samples,
            dropped: self.dropped,
            totals: self.totals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOUNDS: &[f64] = &[1.0, 2.0, 4.0];

    #[test]
    fn boundary_values_land_in_the_lower_bucket() {
        let mut h = Histogram::new(BOUNDS);
        h.record(1.0); // exactly on a bound → bucket 0
        h.record(1.0000001); // just over → bucket 1
        h.record(2.0); // on the next bound → bucket 1
        h.record(4.0); // last finite bound → bucket 2
        h.record(4.1); // overflow
        assert_eq!(h.counts(), &[1, 2, 1, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(4.1));
    }

    #[test]
    fn empty_histogram_percentiles_are_none() {
        let h = Histogram::new(BOUNDS);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.percentile(1.0), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn percentiles_report_bucket_upper_bounds() {
        let mut h = Histogram::new(BOUNDS);
        for _ in 0..90 {
            h.record(0.5);
        }
        for _ in 0..10 {
            h.record(3.0);
        }
        assert_eq!(h.percentile(0.5), Some(1.0));
        assert_eq!(h.percentile(0.9), Some(1.0));
        assert_eq!(h.percentile(0.95), Some(4.0));
        // Overflow bucket reports the recorded maximum.
        h.record(100.0);
        assert_eq!(h.percentile(1.0), Some(100.0));
    }

    #[test]
    fn merge_is_associative() {
        let mk = |vals: &[f64]| {
            let mut h = Histogram::new(BOUNDS);
            vals.iter().for_each(|&v| h.record(v));
            h
        };
        let (a, b, c) = (mk(&[0.5, 3.0]), mk(&[1.0, 9.0]), mk(&[2.5]));
        // (a ⊔ b) ⊔ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊔ (b ⊔ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.count(), 5);
        assert_eq!(left.max(), Some(9.0));
        assert_eq!(left.min(), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn merge_rejects_mismatched_bounds() {
        const OTHER: &[f64] = &[1.0, 3.0];
        let mut a = Histogram::new(BOUNDS);
        a.merge(&Histogram::new(OTHER));
    }

    #[test]
    fn registry_samples_align_and_ring_evicts_oldest() {
        let mut r = Registry::new(2);
        r.counter_set("arrivals", 0);
        r.gauge_set("backlog", 0.0);
        for minute in 0..4u32 {
            r.counter_add("arrivals", 10);
            r.gauge_set("backlog", minute as f64);
            r.hist_record("lat", BOUNDS, minute as f64);
            r.sample(minute, minute as u64 * 60_000_000);
        }
        let tl = r.finish();
        assert_eq!(tl.counter_names, vec!["arrivals"]);
        assert_eq!(tl.gauge_names, vec!["backlog"]);
        assert_eq!(tl.hist_names, vec!["lat"]);
        // Capacity 2: minutes 0 and 1 were evicted.
        assert_eq!(tl.dropped, 2);
        assert_eq!(tl.counter("arrivals"), Some(vec![30, 40]));
        assert_eq!(tl.gauge("backlog"), Some(vec![2.0, 3.0]));
        assert_eq!(tl.samples[0].minute, 2);
        // Per-tick histograms reset between samples but totals accumulate.
        assert_eq!(tl.samples[1].hists[0].count(), 1);
        assert_eq!(tl.total_hist("lat").unwrap().count(), 4);
        assert_eq!(tl.counter("missing"), None);
    }
}
