//! Job-lifecycle span events.
//!
//! A span event is one point on a job's lifecycle path:
//! arrival → level assignment → cache lookup → dispatch → terminal
//! (completion, SLO violation, or loss). Events are recorded in
//! **sim-time** only — the plane never reads a wall clock — and in the
//! deterministic order the driver emits them, so two runs of the same
//! configuration produce byte-identical logs.

use argus_des::SimTime;
use argus_models::{ApproxLevel, GpuArch};

/// Sentinel for "no worker attached to this event".
pub const NO_WORKER: u32 = u32::MAX;
/// Sentinel for "no batch attached to this event".
pub const NO_BATCH: u32 = u32::MAX;

/// The lifecycle stage a [`SpanEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Job entered the system.
    Arrive,
    /// Planner assigned an approximation level and a target worker.
    Assign,
    /// Cache lookup hit a reusable neighbour.
    CacheHit,
    /// Cache lookup found no reusable neighbour.
    CacheMiss,
    /// Cache lookup failed (shard fault / degraded read).
    CacheFailed,
    /// Job started executing on a worker (possibly inside a batch).
    Dispatch,
    /// Cascade discriminator flagged the first pass; the job re-enters
    /// dispatch as escalation work (non-terminal — its lifecycle
    /// continues through a second Assign/Dispatch to the terminal kind).
    Escalate,
    /// Job finished within its SLO.
    Complete,
    /// Job finished but violated its SLO.
    Violation,
    /// Job was dropped (no capacity, or stranded at teardown).
    Lost,
}

impl SpanKind {
    /// Stable lower-case name used in the JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Arrive => "arrive",
            SpanKind::Assign => "assign",
            SpanKind::CacheHit => "cache_hit",
            SpanKind::CacheMiss => "cache_miss",
            SpanKind::CacheFailed => "cache_failed",
            SpanKind::Dispatch => "dispatch",
            SpanKind::Escalate => "escalate",
            SpanKind::Complete => "complete",
            SpanKind::Violation => "violation",
            SpanKind::Lost => "lost",
        }
    }

    /// Whether this kind ends a job's lifecycle.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SpanKind::Complete | SpanKind::Violation | SpanKind::Lost
        )
    }
}

/// One structured point on a job's lifecycle, stamped in sim-time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// Sim-time of the event, integer microseconds.
    pub t_us: u64,
    /// Job id.
    pub job: u32,
    /// Lifecycle stage.
    pub kind: SpanKind,
    /// Approximation level in effect, when one is known.
    pub level: Option<ApproxLevel>,
    /// GPU pool (architecture) involved, when one is known.
    pub pool: Option<GpuArch>,
    /// Worker id, or [`NO_WORKER`].
    pub worker: u32,
    /// Batch id, or [`NO_BATCH`].
    pub batch: u32,
}

impl SpanEvent {
    /// A bare event with no level / pool / worker / batch attached.
    pub fn new(t: SimTime, job: u32, kind: SpanKind) -> Self {
        SpanEvent {
            t_us: t.as_micros(),
            job,
            kind,
            level: None,
            pool: None,
            worker: NO_WORKER,
            batch: NO_BATCH,
        }
    }

    /// Attaches an approximation level.
    pub fn with_level(mut self, level: ApproxLevel) -> Self {
        self.level = Some(level);
        self
    }

    /// Attaches a GPU pool.
    pub fn with_pool(mut self, pool: GpuArch) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attaches a worker id.
    pub fn with_worker(mut self, worker: u32) -> Self {
        self.worker = worker;
        self
    }

    /// Attaches a batch id.
    pub fn with_batch(mut self, batch: u32) -> Self {
        self.batch = batch;
        self
    }
}

/// An append-only log of [`SpanEvent`]s with modulo sampling and a hard
/// volume cap.
///
/// Sampling is by job id (`job % sample_every == 0`), not by a random
/// draw, so the sampled population is identical across runs and across
/// actor-pacing modes. Events past `max_events` are counted in
/// [`SpanLog::dropped`] rather than silently discarded.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanLog {
    /// Record jobs whose id is divisible by this; `1` records every job.
    pub sample_every: u32,
    /// Recorded events, in emission order.
    pub events: Vec<SpanEvent>,
    /// Events that the `max_events` cap rejected.
    pub dropped: u64,
    max_events: usize,
}

impl SpanLog {
    /// Creates a log sampling one in `sample_every` jobs, holding at most
    /// `max_events` events.
    pub fn new(sample_every: u32, max_events: usize) -> Self {
        SpanLog {
            sample_every: sample_every.max(1),
            events: Vec::new(),
            dropped: 0,
            max_events,
        }
    }

    /// Whether this log records events for `job`.
    pub fn wants(&self, job: u32) -> bool {
        job.is_multiple_of(self.sample_every)
    }

    /// Appends `ev` if its job is sampled and the cap has room, and
    /// reports whether it was recorded (so incremental sinks mirror the
    /// log exactly).
    pub fn record(&mut self, ev: SpanEvent) -> bool {
        if !self.wants(ev.job) {
            return false;
        }
        if self.events.len() >= self.max_events {
            self.dropped += 1;
            return false;
        }
        self.events.push(ev);
        true
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_by_job_id_modulo() {
        let mut log = SpanLog::new(4, usize::MAX);
        for job in 0..16 {
            log.record(SpanEvent::new(
                SimTime::from_secs(1.0),
                job,
                SpanKind::Arrive,
            ));
        }
        assert_eq!(log.len(), 4); // jobs 0, 4, 8, 12
        assert!(log.events.iter().all(|e| e.job % 4 == 0));
        assert_eq!(log.dropped, 0);
    }

    #[test]
    fn cap_counts_drops() {
        let mut log = SpanLog::new(1, 2);
        for job in 0..5 {
            log.record(SpanEvent::new(SimTime::ZERO, job, SpanKind::Arrive));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped, 3);
    }

    #[test]
    fn builders_attach_fields() {
        let level = argus_models::ApproxLevel::ladder(argus_models::Strategy::Ac)[0];
        let ev = SpanEvent::new(SimTime::from_millis(1.5), 7, SpanKind::Dispatch)
            .with_level(level)
            .with_pool(GpuArch::A100)
            .with_worker(3)
            .with_batch(9);
        assert_eq!(ev.t_us, 1_500);
        assert_eq!(ev.worker, 3);
        assert_eq!(ev.batch, 9);
        assert!(ev.level.is_some());
        assert_eq!(ev.pool, Some(GpuArch::A100));
        assert!(!ev.kind.is_terminal());
        assert!(SpanKind::Lost.is_terminal());
    }
}
