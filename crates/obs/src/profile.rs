//! Actor-stage profiling: logical message counters collected inside
//! each stage and merged into the run outcome at `Finish`.
//!
//! Counters track **logical** messages — the same sequence a stage
//! handles whether it runs inline on the driver thread or on its own
//! thread — so profiles are bit-identical across all actor-pacing
//! modes. Queue-depth high-water marks are tracked on the driver side
//! as the maximum number of envelopes outstanding between rendezvous
//! points, which is likewise pacing-independent (see DESIGN.md §12).

/// Message counters a stage increments inside its `handle` loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounters {
    /// Individual (non-envelope) messages processed.
    pub processed: u64,
    /// `Batch` envelopes unpacked.
    pub batches: u64,
    /// Largest single `Batch` envelope seen.
    pub max_batch_len: u64,
    /// Request/reply round trips served (oneshot replies sent).
    pub replies: u64,
}

impl StageCounters {
    /// Folds `other` into `self` (sums, except `max_batch_len` which
    /// takes the maximum).
    pub fn merge(&mut self, other: StageCounters) {
        self.processed += other.processed;
        self.batches += other.batches;
        self.max_batch_len = self.max_batch_len.max(other.max_batch_len);
        self.replies += other.replies;
    }

    /// Notes one `Batch` envelope carrying `len` messages.
    pub fn note_batch(&mut self, len: usize) {
        self.batches += 1;
        self.max_batch_len = self.max_batch_len.max(len as u64);
    }
}

/// The merged profile of one actor stage over a whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageProfile {
    /// Stage name (`"planner"`, `"cache-plane"`, `"metrics"`, `"fleet"`).
    pub stage: &'static str,
    /// Counters collected inside the stage.
    pub counters: StageCounters,
    /// Envelopes the driver dispatched toward the stage (counting inline
    /// executions and mailbox pushes identically, so the count is
    /// pacing-independent).
    pub sent: u64,
    /// Deterministic mailbox high-water mark: the maximum envelopes
    /// outstanding between two driver↔stage rendezvous, clamped to the
    /// mailbox capacity.
    pub mailbox_hwm: u64,
}

/// Driver-side queue-depth tracker for one stage.
///
/// Real mailbox occupancy depends on thread scheduling; this instead
/// counts envelopes sent since the last rendezvous (a request/reply or
/// drain), which upper-bounds occupancy and is identical across pacing
/// modes.
#[derive(Debug, Clone, Copy, Default)]
pub struct MailboxGauge {
    pending: u64,
    hwm: u64,
    sent: u64,
}

impl MailboxGauge {
    /// Notes one envelope dispatched toward the stage.
    pub fn on_send(&mut self, cap: u64) {
        self.sent += 1;
        self.pending = (self.pending + 1).min(cap);
        self.hwm = self.hwm.max(self.pending);
    }

    /// Notes a rendezvous (request/reply or drain): the mailbox is
    /// known-empty afterwards.
    pub fn on_rendezvous(&mut self) {
        self.pending = 0;
    }

    /// The high-water mark observed so far.
    pub fn hwm(&self) -> u64 {
        self.hwm
    }

    /// Total envelopes dispatched over the run.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = StageCounters {
            processed: 10,
            batches: 2,
            max_batch_len: 5,
            replies: 1,
        };
        a.merge(StageCounters {
            processed: 3,
            batches: 1,
            max_batch_len: 9,
            replies: 2,
        });
        assert_eq!(a.processed, 13);
        assert_eq!(a.batches, 3);
        assert_eq!(a.max_batch_len, 9);
        assert_eq!(a.replies, 3);
    }

    #[test]
    fn mailbox_gauge_tracks_pending_between_rendezvous() {
        let mut g = MailboxGauge::default();
        for _ in 0..5 {
            g.on_send(4096);
        }
        assert_eq!(g.hwm(), 5);
        g.on_rendezvous();
        g.on_send(4096);
        assert_eq!(g.hwm(), 5); // 1 pending now, hwm unchanged
        assert_eq!(g.sent(), 6); // total dispatches keep accumulating
                                 // Clamped to capacity.
        let mut h = MailboxGauge::default();
        for _ in 0..10 {
            h.on_send(4);
        }
        assert_eq!(h.hwm(), 4);
    }
}
