//! # argus-obs — the deterministic telemetry plane
//!
//! Observability for the Argus simulation that never perturbs it:
//!
//! * [`event`] — job-lifecycle spans (arrival → level assignment →
//!   cache lookup → dispatch/batch → completion | violation | lost),
//!   stamped in **sim-time** and sampled by job-id modulo;
//! * [`timeseries`] — a per-tick registry of named counters, gauges and
//!   fixed-bound histograms, sampled every simulated minute into a
//!   bounded ring buffer and surfaced as `RunOutcome::timeline`;
//! * [`profile`] — actor-stage profiling (messages processed, batch
//!   flushes, mailbox high-water marks, request/reply round trips);
//! * [`export`] — byte-deterministic JSONL and Chrome trace-event
//!   (`chrome://tracing` / Perfetto) documents, plus a dependency-free
//!   validator used by tests and CI.
//!
//! # Determinism contract (DESIGN.md §12)
//!
//! The plane reads **no wall clock** (lint rule D1 applies to this
//! crate), iterates **no hash maps** (D2), draws **no randomness**:
//! sampling is `job % N`, series live in registration-order vectors,
//! and exports are pure functions of already-deterministic state.
//! Telemetry off (the default) leaves the simulation bit-identical to a
//! build without the plane; telemetry on is itself bit-deterministic
//! across runs and across actor-pacing modes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod profile;
pub mod stream;
pub mod timeseries;

pub use event::{SpanEvent, SpanKind, SpanLog, NO_BATCH, NO_WORKER};
pub use export::{
    chrome_trace_document, json_escape, json_f64, jsonl_document, parse_json,
    validate_chrome_trace, validate_jsonl, Json, JsonlSummary, JSONL_SCHEMA_VERSION,
};
pub use profile::{MailboxGauge, StageCounters, StageProfile};
pub use stream::JsonlStream;
pub use timeseries::{Histogram, Registry, TickSample, Timeline};

use std::path::PathBuf;

/// Default ring-buffer capacity: one sample per minute for 7 simulated
/// days.
pub const DEFAULT_RING_CAPACITY: usize = 10_080;

/// Default hard cap on recorded span events (~16.7 M ≈ 640 MB).
pub const DEFAULT_MAX_EVENTS: usize = 1 << 24;

/// What to record and where to export it
/// (`RunConfig::with_telemetry`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Record lifecycle spans for jobs with `id % lifecycle_sample == 0`;
    /// `1` records every job, `0` disables span recording.
    pub lifecycle_sample: u32,
    /// Whether to sample the per-tick time-series registry.
    pub timeline: bool,
    /// Ring-buffer capacity for tick samples (oldest evicted first).
    pub ring_capacity: usize,
    /// Hard cap on recorded span events (excess counted as dropped).
    pub max_events: usize,
    /// Write the JSONL event log here at teardown.
    pub jsonl_path: Option<PathBuf>,
    /// Write the Chrome trace-event document here at teardown.
    pub chrome_trace_path: Option<PathBuf>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig::full()
    }
}

impl TelemetryConfig {
    /// Full-fidelity recording: every job's spans plus the timeline.
    pub fn full() -> Self {
        TelemetryConfig {
            lifecycle_sample: 1,
            timeline: true,
            ring_capacity: DEFAULT_RING_CAPACITY,
            max_events: DEFAULT_MAX_EVENTS,
            jsonl_path: None,
            chrome_trace_path: None,
        }
    }

    /// Span recording for one in `n` jobs (timeline still at full
    /// fidelity — it is O(minutes), not O(jobs)).
    pub fn sampled(n: u32) -> Self {
        TelemetryConfig {
            lifecycle_sample: n.max(1),
            ..TelemetryConfig::full()
        }
    }

    /// Timeline only: no per-job spans at all.
    pub fn timeline_only() -> Self {
        TelemetryConfig {
            lifecycle_sample: 0,
            ..TelemetryConfig::full()
        }
    }

    /// Sets the JSONL export path.
    pub fn with_jsonl(mut self, path: impl Into<PathBuf>) -> Self {
        self.jsonl_path = Some(path.into());
        self
    }

    /// Sets the Chrome trace export path.
    pub fn with_chrome_trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.chrome_trace_path = Some(path.into());
        self
    }

    /// Overrides the tick-sample ring-buffer capacity.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Whether any span recording is enabled.
    pub fn spans_enabled(&self) -> bool {
        self.lifecycle_sample > 0
    }
}

/// The live recorder the driver owns for one run: the span log plus the
/// time-series registry, configured by a [`TelemetryConfig`].
#[derive(Debug)]
pub struct Recorder {
    cfg: TelemetryConfig,
    spans: SpanLog,
    /// The time-series registry (public so the driver writes series
    /// directly).
    pub registry: Registry,
    jsonl: Option<JsonlStream>,
}

impl Recorder {
    /// A recorder for one run under `cfg`. A configured `jsonl_path`
    /// attaches an incremental [`JsonlStream`] sink: span lines reach
    /// disk as they are recorded instead of buffering until teardown.
    pub fn new(cfg: TelemetryConfig) -> Self {
        let spans = SpanLog::new(cfg.lifecycle_sample.max(1), cfg.max_events);
        let registry = Registry::new(cfg.ring_capacity);
        let jsonl = cfg.jsonl_path.as_ref().map(|p| {
            JsonlStream::new(
                p.clone(),
                cfg.lifecycle_sample,
                cfg.timeline,
                cfg.ring_capacity,
            )
        });
        Recorder {
            cfg,
            spans,
            registry,
            jsonl,
        }
    }

    /// The configuration this recorder was built with.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Whether spans are recorded for `job` (cheap pre-check so callers
    /// can skip building events for unsampled jobs).
    pub fn wants(&self, job: u32) -> bool {
        self.cfg.spans_enabled() && self.spans.wants(job)
    }

    /// Records one span event (no-op for unsampled jobs). Recorded
    /// events also stream to the JSONL sink, when one is attached.
    pub fn span(&mut self, ev: SpanEvent) {
        if self.cfg.spans_enabled() && self.spans.record(ev) {
            if let Some(stream) = self.jsonl.as_mut() {
                stream.span(&ev, &self.registry);
            }
        }
    }

    /// Takes the per-minute registry snapshot, if the timeline is
    /// enabled, mirroring it into the JSONL sink's tick ring.
    pub fn sample_tick(&mut self, minute: u32, t_us: u64) {
        if self.cfg.timeline {
            self.registry.sample(minute, t_us);
            if let Some(stream) = self.jsonl.as_mut() {
                let s = self.registry.last_sample().expect("sample just pushed");
                stream.tick(s);
            }
        }
    }

    /// Detaches the incremental JSONL sink, if one is attached, so the
    /// caller can [`JsonlStream::finish`] it once [`Recorder::finish`]
    /// has produced the run artifacts the footer needs.
    pub fn take_jsonl_stream(&mut self) -> Option<JsonlStream> {
        self.jsonl.take()
    }

    /// Consumes the recorder into its finished artifacts.
    pub fn finish(self) -> (Option<SpanLog>, Option<Timeline>) {
        let spans = self.cfg.spans_enabled().then_some(self.spans);
        let timeline = self.cfg.timeline.then(|| self.registry.finish());
        (spans, timeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_des::SimTime;

    #[test]
    fn config_presets() {
        let full = TelemetryConfig::full();
        assert!(full.spans_enabled());
        assert_eq!(full.lifecycle_sample, 1);
        let sampled = TelemetryConfig::sampled(64);
        assert_eq!(sampled.lifecycle_sample, 64);
        assert!(sampled.timeline);
        let tl = TelemetryConfig::timeline_only();
        assert!(!tl.spans_enabled());
        assert!(TelemetryConfig::sampled(0).spans_enabled()); // clamped to 1
    }

    #[test]
    fn recorder_respects_span_gating() {
        let mut off = Recorder::new(TelemetryConfig::timeline_only());
        assert!(!off.wants(0));
        off.span(SpanEvent::new(SimTime::ZERO, 0, SpanKind::Arrive));
        let (spans, timeline) = off.finish();
        assert!(spans.is_none());
        assert!(timeline.is_some());

        let mut on = Recorder::new(TelemetryConfig::sampled(2));
        assert!(on.wants(0));
        assert!(!on.wants(1));
        on.span(SpanEvent::new(SimTime::ZERO, 0, SpanKind::Arrive));
        on.span(SpanEvent::new(SimTime::ZERO, 1, SpanKind::Arrive));
        let (spans, _) = on.finish();
        assert_eq!(spans.unwrap().len(), 1);
    }

    #[test]
    fn tick_sampling_respects_timeline_flag() {
        let mut cfg = TelemetryConfig::full();
        cfg.timeline = false;
        let mut r = Recorder::new(cfg);
        r.registry.counter_set("x", 1);
        r.sample_tick(0, 0);
        let (_, timeline) = r.finish();
        assert!(timeline.is_none());
    }
}
