//! CLI JSONL / Chrome-trace validator, used by CI.
//!
//! Usage:
//!
//! ```text
//! validate_trace <telemetry.jsonl> [trace.trace.json]
//! ```
//!
//! Exits non-zero (with a diagnostic on stderr) if any document fails
//! schema validation.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: validate_trace <telemetry.jsonl> [trace.trace.json]");
        return ExitCode::FAILURE;
    }

    let jsonl = match std::fs::read_to_string(&args[0]) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("validate_trace: cannot read {}: {e}", args[0]);
            return ExitCode::FAILURE;
        }
    };
    match argus_obs::validate_jsonl(&jsonl) {
        Ok(summary) => println!(
            "{}: OK ({} spans, {} ticks, {} stages)",
            args[0], summary.spans, summary.ticks, summary.stages
        ),
        Err(e) => {
            eprintln!("validate_trace: {} is invalid: {e}", args[0]);
            return ExitCode::FAILURE;
        }
    }

    if let Some(trace_path) = args.get(1) {
        let trace = match std::fs::read_to_string(trace_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("validate_trace: cannot read {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match argus_obs::validate_chrome_trace(&trace) {
            Ok(n) => println!("{trace_path}: OK ({n} trace events)"),
            Err(e) => {
                eprintln!("validate_trace: {trace_path} is invalid: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
