//! Incremental JSONL sink: span lines reach disk as they are recorded
//! instead of buffering the whole document until teardown.
//!
//! The JSONL document is *sectioned* — header, every span, every tick,
//! stages, footer — while the run interleaves spans and ticks in time
//! and the registry's ring buffer may still evict old tick samples. So
//! only the span section (the O(jobs · events) bulk of the document)
//! can stream to disk during the run. Tick lines are rendered
//! incrementally into a bounded ring that evicts in lockstep with the
//! registry's, and [`JsonlStream::finish`] appends the survivors, the
//! stage lines and the footer.
//!
//! Byte-identity with the buffered [`crate::export::jsonl_document`]
//! path holds by construction — both render through the same per-line
//! functions — and is pinned by `streamed_jsonl_is_byte_identical` in
//! this module's tests plus the driver-level roundtrip test in
//! `tests/observability.rs`. The header is written lazily at the first
//! streamed span from the registry's *live* series names, which matches
//! the finished timeline's names because the driver registers every
//! series up front, before the first event (DESIGN.md §12).

use crate::event::{SpanEvent, SpanLog};
use crate::export::{
    jsonl_footer_line, jsonl_header_line, jsonl_header_names, jsonl_span_line, jsonl_stage_line,
    jsonl_tick_line, str_list,
};
use crate::profile::StageProfile;
use crate::timeseries::{Registry, TickSample, Timeline};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;

/// The incremental JSONL writer a [`crate::Recorder`] drives when
/// `TelemetryConfig::jsonl_path` is set. Detach it with
/// [`crate::Recorder::take_jsonl_stream`] and call
/// [`JsonlStream::finish`] once the run's artifacts exist.
#[derive(Debug)]
pub struct JsonlStream {
    path: PathBuf,
    lifecycle_sample: u32,
    timeline: bool,
    writer: Option<BufWriter<File>>,
    spans_written: u64,
    tick_lines: VecDeque<String>,
    tick_capacity: usize,
}

impl JsonlStream {
    /// A sink writing to `path`; nothing touches the filesystem until
    /// the first line is emitted.
    pub(crate) fn new(
        path: PathBuf,
        lifecycle_sample: u32,
        timeline: bool,
        ring_capacity: usize,
    ) -> Self {
        JsonlStream {
            path,
            lifecycle_sample,
            timeline,
            writer: None,
            spans_written: 0,
            tick_lines: VecDeque::new(),
            tick_capacity: ring_capacity.max(1),
        }
    }

    fn io_fail(&self, e: std::io::Error) -> ! {
        panic!("telemetry JSONL export to {:?} failed: {e}", self.path)
    }

    /// Opens the file and writes the header line from pre-rendered name
    /// lists. No-op once open.
    fn open_with_header(&mut self, names: (String, String, String)) {
        if self.writer.is_some() {
            return;
        }
        let file = File::create(&self.path).unwrap_or_else(|e| self.io_fail(e));
        let mut w = BufWriter::new(file);
        let header = jsonl_header_line(self.lifecycle_sample, &names.0, &names.1, &names.2);
        if let Err(e) = writeln!(w, "{header}") {
            self.io_fail(e);
        }
        self.writer = Some(w);
    }

    /// The header's series-name lists from the live registry —
    /// empty when the timeline is disabled, matching the buffered
    /// document's `timeline: None` header.
    fn live_header_names(&self, registry: &Registry) -> (String, String, String) {
        if self.timeline {
            let (c, g, h) = registry.series_names();
            (str_list(&c), str_list(&g), str_list(&h))
        } else {
            (String::new(), String::new(), String::new())
        }
    }

    /// Streams one recorded span straight to disk (writing the header
    /// first if this is the first line).
    pub(crate) fn span(&mut self, ev: &SpanEvent, registry: &Registry) {
        if self.writer.is_none() {
            let names = self.live_header_names(registry);
            self.open_with_header(names);
        }
        let line = jsonl_span_line(ev);
        let w = self.writer.as_mut().expect("opened above");
        if let Err(e) = writeln!(w, "{line}") {
            self.io_fail(e);
        }
        self.spans_written += 1;
    }

    /// Renders one tick sample into the bounded line ring, evicting the
    /// oldest line when full — in lockstep with the registry's own ring,
    /// so the survivors match the finished timeline's samples exactly.
    pub(crate) fn tick(&mut self, sample: &TickSample) {
        if self.tick_lines.len() >= self.tick_capacity {
            self.tick_lines.pop_front();
        }
        self.tick_lines.push_back(jsonl_tick_line(sample));
    }

    /// Appends the tail sections — surviving tick lines, stage lines,
    /// the footer — and flushes. Also writes the header when nothing was
    /// streamed during the run, so the file always holds a complete
    /// document.
    ///
    /// # Panics
    /// Panics on any I/O error, like the buffered export path.
    pub fn finish(
        mut self,
        spans: Option<&SpanLog>,
        timeline: Option<&Timeline>,
        profiles: &[StageProfile],
    ) {
        if self.writer.is_none() {
            let names = jsonl_header_names(timeline);
            self.open_with_header(names);
        }
        let ticks = self.tick_lines.len() as u64;
        let footer = jsonl_footer_line(
            self.spans_written,
            spans.map_or(0, |s| s.dropped),
            ticks,
            timeline.map_or(0, |t| t.dropped),
            profiles.len(),
        );
        let w = self.writer.as_mut().expect("opened above");
        let mut emit = |line: &str| {
            if let Err(e) = writeln!(w, "{line}") {
                panic!("telemetry JSONL export failed: {e}");
            }
        };
        for line in &self.tick_lines {
            emit(line);
        }
        for p in profiles {
            emit(&jsonl_stage_line(p));
        }
        emit(&footer);
        if let Err(e) = self.writer.as_mut().expect("opened above").flush() {
            self.io_fail(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanKind;
    use crate::export::jsonl_document;
    use crate::profile::StageCounters;
    use crate::{Recorder, TelemetryConfig};
    use argus_des::SimTime;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "argus_obs_stream_{}_{name}.jsonl",
            std::process::id()
        ));
        p
    }

    fn profiles() -> Vec<StageProfile> {
        vec![StageProfile {
            stage: "planner",
            counters: StageCounters {
                processed: 7,
                batches: 2,
                max_batch_len: 4,
                replies: 1,
            },
            sent: 9,
            mailbox_hwm: 3,
        }]
    }

    /// Drives a recorder through spans + ticks (enough ticks to evict)
    /// and asserts the streamed file is byte-identical to the buffered
    /// document over the finished artifacts.
    #[test]
    fn streamed_jsonl_is_byte_identical() {
        let path = tmp("identical");
        let cfg = TelemetryConfig::full()
            .with_jsonl(&path)
            .with_ring_capacity(3);
        let mut rec = Recorder::new(cfg);
        // Register series up front, as the driver does.
        rec.registry.counter_set("arrivals", 0);
        rec.registry.gauge_set("backlog", 0.0);
        rec.registry.hist_register("lat", &[1.0, 2.0]);
        for minute in 0..5u32 {
            let t = SimTime::from_micros(u64::from(minute) * 60_000_000);
            rec.span(SpanEvent::new(t, minute, SpanKind::Arrive));
            rec.span(
                SpanEvent::new(t, minute, SpanKind::Complete)
                    .with_worker(minute)
                    .with_batch(2),
            );
            rec.registry.counter_add("arrivals", 1);
            rec.registry.gauge_set("backlog", f64::from(minute));
            rec.registry
                .hist_record("lat", &[1.0, 2.0], f64::from(minute));
            rec.sample_tick(minute, t.as_micros());
        }
        let stream = rec.take_jsonl_stream().expect("jsonl path configured");
        let (spans, timeline) = rec.finish();
        let profiles = profiles();
        stream.finish(spans.as_ref(), timeline.as_ref(), &profiles);

        let tl = timeline.as_ref().unwrap();
        assert_eq!(tl.dropped, 2, "ring capacity 3 over 5 ticks evicts 2");
        let buffered = jsonl_document(1, spans.as_ref(), timeline.as_ref(), &profiles);
        let streamed = std::fs::read_to_string(&path).unwrap();
        assert_eq!(streamed, buffered);
        std::fs::remove_file(&path).ok();
    }

    /// A run that never records anything still leaves a complete
    /// document (header + footer) on disk.
    #[test]
    fn empty_stream_still_writes_a_complete_document() {
        let path = tmp("empty");
        let cfg = TelemetryConfig::timeline_only().with_jsonl(&path);
        let mut rec = Recorder::new(cfg);
        // Span recording is off: this must not open the file early.
        rec.span(SpanEvent::new(SimTime::ZERO, 0, SpanKind::Arrive));
        assert!(!path.exists(), "no line emitted yet, no file expected");
        let stream = rec.take_jsonl_stream().unwrap();
        let (spans, timeline) = rec.finish();
        assert!(spans.is_none());
        stream.finish(spans.as_ref(), timeline.as_ref(), &[]);
        let buffered = jsonl_document(0, None, timeline.as_ref(), &[]);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), buffered);
        std::fs::remove_file(&path).ok();
    }

    /// Unsampled and over-cap spans never reach the stream, keeping the
    /// streamed span count equal to the buffered log's.
    #[test]
    fn stream_mirrors_span_log_sampling_and_cap() {
        let path = tmp("sampled");
        let mut cfg = TelemetryConfig::sampled(2).with_jsonl(&path);
        cfg.max_events = 2;
        cfg.timeline = false;
        let mut rec = Recorder::new(cfg);
        for job in 0..8u32 {
            rec.span(SpanEvent::new(SimTime::ZERO, job, SpanKind::Arrive));
        }
        let stream = rec.take_jsonl_stream().unwrap();
        let (spans, timeline) = rec.finish();
        stream.finish(spans.as_ref(), timeline.as_ref(), &[]);
        let log = spans.as_ref().unwrap();
        assert_eq!(log.len(), 2, "cap admits two of the four sampled jobs");
        assert_eq!(log.dropped, 2);
        let buffered = jsonl_document(2, spans.as_ref(), timeline.as_ref(), &[]);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), buffered);
        std::fs::remove_file(&path).ok();
    }
}
