//! Deterministic exporters: JSONL event log and Chrome trace-event
//! output, plus a dependency-free JSON validator used by tests and CI.
//!
//! Both documents are rendered as strings from already-deterministic
//! in-memory telemetry, so byte-for-byte equality across runs follows
//! from the determinism of [`SpanLog`] / [`Timeline`] /
//! [`StageProfile`]. Floats are formatted with Rust's shortest
//! round-trip representation (`{:?}`), which is stable across
//! platforms; non-finite values are rendered as `null`.

use crate::event::{SpanLog, NO_BATCH, NO_WORKER};
use crate::profile::StageProfile;
use crate::timeseries::{Histogram, Timeline};
use argus_models::GpuArch;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema version stamped into the JSONL header (and every
/// `BENCH_*.json`); bump on any breaking format change.
pub const JSONL_SCHEMA_VERSION: u32 = 1;

/// Renders an `f64` as a JSON number (shortest round-trip form), or
/// `null` when non-finite.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for embedding inside JSON quotes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn hist_json(h: &Histogram) -> String {
    let bounds: Vec<String> = h.bounds().iter().map(|&b| json_f64(b)).collect();
    let counts: Vec<String> = h.counts().iter().map(|c| c.to_string()).collect();
    let extrema = match (h.min(), h.max()) {
        (Some(lo), Some(hi)) => {
            format!(",\"min\":{},\"max\":{}", json_f64(lo), json_f64(hi))
        }
        _ => String::new(),
    };
    format!(
        "{{\"bounds\":[{}],\"counts\":[{}],\"count\":{},\"sum\":{}{}}}",
        bounds.join(","),
        counts.join(","),
        h.count(),
        json_f64(h.sum()),
        extrema
    )
}

pub(crate) fn str_list(names: &[&'static str]) -> String {
    names
        .iter()
        .map(|n| format!("\"{}\"", json_escape(n)))
        .collect::<Vec<_>>()
        .join(",")
}

// ------------------------------------------------------------------ //
// Per-line renderers, shared verbatim by the buffered document below
// and the incremental `JsonlStream` sink — byte-identity of the two
// paths holds by construction. None emit a trailing newline.
// ------------------------------------------------------------------ //

/// Renders the JSONL header line from pre-rendered name lists (each the
/// comma-joined quoted series names, or empty).
pub(crate) fn jsonl_header_line(
    lifecycle_sample: u32,
    counter_names: &str,
    gauge_names: &str,
    hist_names: &str,
) -> String {
    format!(
        "{{\"schema_version\":{JSONL_SCHEMA_VERSION},\"kind\":\"header\",\
         \"source\":\"argus_obs\",\"lifecycle_sample\":{lifecycle_sample},\
         \"counters\":[{counter_names}],\"gauges\":[{gauge_names}],\"hists\":[{hist_names}]}}"
    )
}

/// The header's name lists: the timeline's series names when sampling
/// is enabled, empty lists otherwise.
pub(crate) fn jsonl_header_names(timeline: Option<&Timeline>) -> (String, String, String) {
    match timeline {
        Some(tl) => (
            str_list(&tl.counter_names),
            str_list(&tl.gauge_names),
            str_list(&tl.hist_names),
        ),
        None => (String::new(), String::new(), String::new()),
    }
}

/// Renders one span line.
pub(crate) fn jsonl_span_line(ev: &crate::event::SpanEvent) -> String {
    let mut extra = String::new();
    if let Some(level) = ev.level {
        let _ = write!(extra, ",\"level\":\"{}\"", json_escape(&level.to_string()));
    }
    if let Some(pool) = ev.pool {
        let _ = write!(extra, ",\"pool\":\"{}\"", json_escape(pool.name()));
    }
    if ev.worker != NO_WORKER {
        let _ = write!(extra, ",\"worker\":{}", ev.worker);
    }
    if ev.batch != NO_BATCH {
        let _ = write!(extra, ",\"batch\":{}", ev.batch);
    }
    format!(
        "{{\"kind\":\"span\",\"t_us\":{},\"job\":{},\"event\":\"{}\"{}}}",
        ev.t_us,
        ev.job,
        ev.kind.as_str(),
        extra
    )
}

/// Renders one tick line.
pub(crate) fn jsonl_tick_line(s: &crate::timeseries::TickSample) -> String {
    let counters: Vec<String> = s.counters.iter().map(|c| c.to_string()).collect();
    let gauges: Vec<String> = s.gauges.iter().map(|&g| json_f64(g)).collect();
    let hists: Vec<String> = s.hists.iter().map(hist_json).collect();
    format!(
        "{{\"kind\":\"tick\",\"minute\":{},\"t_us\":{},\"counters\":[{}],\
         \"gauges\":[{}],\"hists\":[{}]}}",
        s.minute,
        s.t_us,
        counters.join(","),
        gauges.join(","),
        hists.join(",")
    )
}

/// Renders one stage-profile line.
pub(crate) fn jsonl_stage_line(p: &StageProfile) -> String {
    format!(
        "{{\"kind\":\"stage\",\"stage\":\"{}\",\"processed\":{},\"batches\":{},\
         \"max_batch_len\":{},\"replies\":{},\"sent\":{},\"mailbox_hwm\":{}}}",
        json_escape(p.stage),
        p.counters.processed,
        p.counters.batches,
        p.counters.max_batch_len,
        p.counters.replies,
        p.sent,
        p.mailbox_hwm
    )
}

/// Renders the footer line.
pub(crate) fn jsonl_footer_line(
    spans: u64,
    spans_dropped: u64,
    ticks: u64,
    ticks_dropped: u64,
    stages: usize,
) -> String {
    format!(
        "{{\"kind\":\"footer\",\"spans\":{spans},\"spans_dropped\":{spans_dropped},\
         \"ticks\":{ticks},\"ticks_dropped\":{ticks_dropped},\"stages\":{stages}}}"
    )
}

/// Renders the full JSONL telemetry document: one header line, then
/// span lines, tick lines, stage lines, and a footer with totals.
pub fn jsonl_document(
    lifecycle_sample: u32,
    spans: Option<&SpanLog>,
    timeline: Option<&Timeline>,
    profiles: &[StageProfile],
) -> String {
    let mut out = String::new();
    let (counter_names, gauge_names, hist_names) = jsonl_header_names(timeline);
    let _ = writeln!(
        out,
        "{}",
        jsonl_header_line(lifecycle_sample, &counter_names, &gauge_names, &hist_names)
    );

    let mut span_lines = 0u64;
    if let Some(log) = spans {
        for ev in &log.events {
            let _ = writeln!(out, "{}", jsonl_span_line(ev));
            span_lines += 1;
        }
    }

    let mut tick_lines = 0u64;
    if let Some(tl) = timeline {
        for s in &tl.samples {
            let _ = writeln!(out, "{}", jsonl_tick_line(s));
            tick_lines += 1;
        }
    }

    for p in profiles {
        let _ = writeln!(out, "{}", jsonl_stage_line(p));
    }

    let (spans_dropped, ticks_dropped) = (
        spans.map_or(0, |s| s.dropped),
        timeline.map_or(0, |t| t.dropped),
    );
    let _ = writeln!(
        out,
        "{}",
        jsonl_footer_line(
            span_lines,
            spans_dropped,
            tick_lines,
            ticks_dropped,
            profiles.len()
        )
    );
    out
}

fn pool_pid(pool: Option<GpuArch>) -> u32 {
    match pool {
        // pid 0 is reserved for the timeline counters.
        Some(g) => 1 + GpuArch::ALL.iter().position(|&a| a == g).unwrap_or(0) as u32,
        None => 1 + GpuArch::ALL.len() as u32,
    }
}

/// Renders a Chrome trace-event (`chrome://tracing` / Perfetto) JSON
/// document.
///
/// Field mapping (DESIGN.md §12): executed jobs become complete (`X`)
/// events — `ts` at dispatch, `dur` to the terminal event, `pid` the
/// GPU pool, `tid` the worker, name the approximation level; every
/// sampled job also gets an async `b`/`e` pair (id = job) spanning
/// arrival → terminal; lost jobs become instant (`i`) events; timeline
/// gauges become counter (`C`) events on pid 0.
pub fn chrome_trace_document(spans: Option<&SpanLog>, timeline: Option<&Timeline>) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\
         \"args\":{\"name\":\"timeline\"}}"
            .to_string(),
    );
    for (i, g) in GpuArch::ALL.iter().enumerate() {
        events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\
             \"args\":{{\"name\":\"pool {}\"}}}}",
            i + 1,
            g.name()
        ));
    }

    if let Some(log) = spans {
        // Pair each job's latest dispatch with its terminal event. A job
        // re-dispatched after a worker fault keeps only the surviving
        // attempt, matching what actually completed.
        let mut open: BTreeMap<u32, &crate::event::SpanEvent> = BTreeMap::new();
        let mut arrivals: BTreeMap<u32, u64> = BTreeMap::new();
        for ev in &log.events {
            use crate::event::SpanKind::*;
            match ev.kind {
                Arrive => {
                    arrivals.insert(ev.job, ev.t_us);
                    events.push(format!(
                        "{{\"ph\":\"b\",\"cat\":\"job\",\"name\":\"job\",\"id\":{},\
                         \"ts\":{},\"pid\":0,\"tid\":0}}",
                        ev.job, ev.t_us
                    ));
                }
                Dispatch => {
                    open.insert(ev.job, ev);
                }
                Complete | Violation => {
                    if let Some(start) = open.remove(&ev.job) {
                        let name = start
                            .level
                            .map(|l| l.to_string())
                            .unwrap_or_else(|| "exec".to_string());
                        let batch = if start.batch == NO_BATCH {
                            String::new()
                        } else {
                            format!(",\"batch\":{}", start.batch)
                        };
                        events.push(format!(
                            "{{\"ph\":\"X\",\"cat\":\"exec\",\"name\":\"{}\",\"ts\":{},\
                             \"dur\":{},\"pid\":{},\"tid\":{},\
                             \"args\":{{\"job\":{},\"slo_violation\":{}{}}}}}",
                            json_escape(&name),
                            start.t_us,
                            ev.t_us.saturating_sub(start.t_us),
                            pool_pid(start.pool),
                            if start.worker == NO_WORKER {
                                0
                            } else {
                                start.worker
                            },
                            ev.job,
                            ev.kind == Violation,
                            batch
                        ));
                    }
                    if arrivals.remove(&ev.job).is_some() {
                        events.push(format!(
                            "{{\"ph\":\"e\",\"cat\":\"job\",\"name\":\"job\",\"id\":{},\
                             \"ts\":{},\"pid\":0,\"tid\":0}}",
                            ev.job, ev.t_us
                        ));
                    }
                }
                Lost => {
                    events.push(format!(
                        "{{\"ph\":\"i\",\"cat\":\"job\",\"name\":\"lost\",\"ts\":{},\
                         \"pid\":0,\"tid\":0,\"s\":\"t\",\"args\":{{\"job\":{}}}}}",
                        ev.t_us, ev.job
                    ));
                    if arrivals.remove(&ev.job).is_some() {
                        events.push(format!(
                            "{{\"ph\":\"e\",\"cat\":\"job\",\"name\":\"job\",\"id\":{},\
                             \"ts\":{},\"pid\":0,\"tid\":0}}",
                            ev.job, ev.t_us
                        ));
                    }
                }
                _ => {}
            }
        }
    }

    if let Some(tl) = timeline {
        for s in &tl.samples {
            let series: Vec<String> = tl
                .gauge_names
                .iter()
                .zip(&s.gauges)
                .map(|(n, &v)| format!("\"{}\":{}", json_escape(n), json_f64(v)))
                .collect();
            events.push(format!(
                "{{\"ph\":\"C\",\"name\":\"argus\",\"ts\":{},\"pid\":0,\
                 \"args\":{{{}}}}}",
                s.t_us,
                series.join(",")
            ));
        }
    }

    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        events.join(",\n")
    )
}

// ---------------------------------------------------------------------
// Minimal JSON parser + JSONL schema validator (no external deps).
// ---------------------------------------------------------------------

/// A parsed JSON value (dependency-free; used for validation only).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses one complete JSON document.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Counts produced by [`validate_jsonl`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonlSummary {
    /// Span lines seen.
    pub spans: u64,
    /// Tick lines seen.
    pub ticks: u64,
    /// Stage lines seen.
    pub stages: u64,
}

const SPAN_KINDS: &[&str] = &[
    "arrive",
    "assign",
    "cache_hit",
    "cache_miss",
    "cache_failed",
    "dispatch",
    "escalate",
    "complete",
    "violation",
    "lost",
];

fn field_u64(obj: &Json, key: &str, line_no: usize) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .map(|v| v as u64)
        .ok_or_else(|| format!("line {line_no}: missing numeric `{key}`"))
}

/// Validates a telemetry JSONL document against the schema
/// (DESIGN.md §12): header first with the current schema version, every
/// line a well-formed object of a known kind, tick vectors aligned with
/// the header's series names, span timestamps non-decreasing, and a
/// footer whose counts match the body.
pub fn validate_jsonl(text: &str) -> Result<JsonlSummary, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header_line) = lines.next().ok_or("empty document")?;
    let header = parse_json(header_line).map_err(|e| format!("header: {e}"))?;
    if header.get("kind").and_then(Json::as_str) != Some("header") {
        return Err("first line is not a header".into());
    }
    let version = header
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("header missing schema_version")?;
    if version as u32 != JSONL_SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != {JSONL_SCHEMA_VERSION}"
        ));
    }
    let n_counters = header
        .get("counters")
        .and_then(Json::as_arr)
        .ok_or("header missing counters")?
        .len();
    let n_gauges = header
        .get("gauges")
        .and_then(Json::as_arr)
        .ok_or("header missing gauges")?
        .len();
    let n_hists = header
        .get("hists")
        .and_then(Json::as_arr)
        .ok_or("header missing hists")?
        .len();

    let mut summary = JsonlSummary {
        spans: 0,
        ticks: 0,
        stages: 0,
    };
    let mut footer: Option<Json> = None;
    let mut last_span_t = 0u64;
    for (idx, line) in lines {
        let line_no = idx + 1;
        if footer.is_some() {
            return Err(format!("line {line_no}: content after footer"));
        }
        let v = parse_json(line).map_err(|e| format!("line {line_no}: {e}"))?;
        match v.get("kind").and_then(Json::as_str) {
            Some("span") => {
                let t = field_u64(&v, "t_us", line_no)?;
                field_u64(&v, "job", line_no)?;
                let ev = v
                    .get("event")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {line_no}: span missing event"))?;
                if !SPAN_KINDS.contains(&ev) {
                    return Err(format!("line {line_no}: unknown span event `{ev}`"));
                }
                if t < last_span_t {
                    return Err(format!(
                        "line {line_no}: span t_us went backwards ({t} < {last_span_t})"
                    ));
                }
                last_span_t = t;
                summary.spans += 1;
            }
            Some("tick") => {
                field_u64(&v, "minute", line_no)?;
                field_u64(&v, "t_us", line_no)?;
                for (key, want) in [
                    ("counters", n_counters),
                    ("gauges", n_gauges),
                    ("hists", n_hists),
                ] {
                    let got = v
                        .get(key)
                        .and_then(Json::as_arr)
                        .ok_or_else(|| format!("line {line_no}: tick missing {key}"))?
                        .len();
                    if got != want {
                        return Err(format!(
                            "line {line_no}: tick has {got} {key}, header declares {want}"
                        ));
                    }
                }
                summary.ticks += 1;
            }
            Some("stage") => {
                v.get("stage")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {line_no}: stage missing name"))?;
                for key in ["processed", "batches", "max_batch_len", "replies", "sent"] {
                    field_u64(&v, key, line_no)?;
                }
                summary.stages += 1;
            }
            Some("footer") => footer = Some(v),
            Some(k) => return Err(format!("line {line_no}: unknown kind `{k}`")),
            None => return Err(format!("line {line_no}: missing kind")),
        }
    }
    let footer = footer.ok_or("missing footer")?;
    for (key, want) in [
        ("spans", summary.spans),
        ("ticks", summary.ticks),
        ("stages", summary.stages),
    ] {
        let got = field_u64(&footer, key, 0).map_err(|_| format!("footer missing `{key}`"))?;
        if got != want {
            return Err(format!("footer says {got} {key}, body has {want}"));
        }
    }
    Ok(summary)
}

/// Validates a Chrome trace document: parses it, checks the
/// `traceEvents` array exists and every event has a `ph`. Returns the
/// event count.
pub fn validate_chrome_trace(text: &str) -> Result<u64, String> {
    let v = parse_json(text)?;
    let events = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    for (i, ev) in events.iter().enumerate() {
        ev.get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} missing ph"))?;
    }
    Ok(events.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SpanEvent, SpanKind};
    use crate::profile::StageCounters;
    use crate::timeseries::Registry;
    use argus_des::SimTime;
    use argus_models::{ApproxLevel, Strategy};

    fn sample_log() -> SpanLog {
        let level = ApproxLevel::ladder(Strategy::Ac)[0];
        let mut log = SpanLog::new(1, usize::MAX);
        let t = |s: f64| SimTime::from_secs(s);
        log.record(SpanEvent::new(t(1.0), 0, SpanKind::Arrive));
        log.record(
            SpanEvent::new(t(1.0), 0, SpanKind::Assign)
                .with_level(level)
                .with_pool(GpuArch::A100)
                .with_worker(2),
        );
        log.record(
            SpanEvent::new(t(1.5), 0, SpanKind::Dispatch)
                .with_level(level)
                .with_pool(GpuArch::A100)
                .with_worker(2)
                .with_batch(0),
        );
        log.record(SpanEvent::new(t(4.0), 0, SpanKind::Complete).with_worker(2));
        log.record(SpanEvent::new(t(5.0), 1, SpanKind::Arrive));
        log.record(SpanEvent::new(t(5.0), 1, SpanKind::Lost));
        log
    }

    fn sample_timeline() -> Timeline {
        const B: &[f64] = &[0.1, 1.0];
        let mut r = Registry::new(16);
        r.counter_set("arrivals", 2);
        r.gauge_set("backlog", 3.5);
        r.hist_record("lat", B, 0.05);
        r.sample(0, 60_000_000);
        r.finish()
    }

    #[test]
    fn jsonl_round_trips_through_the_validator() {
        let log = sample_log();
        let tl = sample_timeline();
        let profiles = [StageProfile {
            stage: "metrics",
            counters: StageCounters {
                processed: 10,
                batches: 2,
                max_batch_len: 5,
                replies: 1,
            },
            sent: 12,
            mailbox_hwm: 7,
        }];
        let doc = jsonl_document(1, Some(&log), Some(&tl), &profiles);
        let summary = validate_jsonl(&doc).expect("valid document");
        assert_eq!(
            summary,
            JsonlSummary {
                spans: 6,
                ticks: 1,
                stages: 1
            }
        );
        // Optional span fields only appear when set.
        assert!(doc.contains("\"event\":\"dispatch\""));
        assert!(doc.contains("\"pool\":\"A100\""));
        let arrive_line = doc.lines().nth(1).unwrap();
        assert!(!arrive_line.contains("worker"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        let ok = jsonl_document(1, Some(&sample_log()), None, &[]);
        // Header tampering.
        let bad = ok.replacen("\"schema_version\":1", "\"schema_version\":99", 1);
        assert!(validate_jsonl(&bad).unwrap_err().contains("schema_version"));
        // Dropped footer.
        let no_footer: String = ok
            .lines()
            .filter(|l| !l.contains("\"footer\""))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(validate_jsonl(&no_footer).unwrap_err().contains("footer"));
        // Unknown span kind.
        let bad_kind = ok.replacen("\"event\":\"arrive\"", "\"event\":\"nope\"", 1);
        assert!(validate_jsonl(&bad_kind).unwrap_err().contains("nope"));
        assert!(validate_jsonl("").is_err());
    }

    #[test]
    fn chrome_trace_pairs_dispatch_with_terminal() {
        let doc = chrome_trace_document(Some(&sample_log()), Some(&sample_timeline()));
        let n = validate_chrome_trace(&doc).expect("valid trace");
        // 4 metadata + b/X/e for job 0 + b/i/e for job 1 + 1 counter.
        assert_eq!(n, 11);
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"dur\":2500000"));
        assert!(doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("pool A100"));
    }

    #[test]
    fn parser_handles_numbers_strings_and_nesting() {
        let v = parse_json(r#"{"a":[1,-2.5,1e3],"b":"x\"yA","c":{"d":null,"e":true}}"#)
            .expect("parses");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(1e3));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\"yA"));
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Json::Null));
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,2").is_err());
        assert!(parse_json("true false").is_err());
    }

    #[test]
    fn floats_render_shortest_round_trip() {
        assert_eq!(json_f64(0.1), "0.1");
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
