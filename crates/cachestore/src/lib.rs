//! # argus-cachestore — intermediate-state storage and its network
//!
//! Approximate caching stores the intermediate noise state of every
//! generated image (144 KB each, §4.7) in shared storage (AWS EFS in the
//! paper) and fetches the best match on every AC request. The fetch
//! traverses a network whose health is *the* input to Argus' strategy
//! switcher: "if, due to network failure or congestion, the retrieval
//! latency increases substantially … Argus initiates a switch to SM"
//! (§4.6, Fig. 11, Fig. 20b).
//!
//! This crate models both pieces:
//!
//! * [`NetworkModel`] — a regime-switching latency process
//!   (normal ≈ 20 ms log-normal; congested ≈ seconds with heavy tail;
//!   outage = timeouts), driven by a deterministic schedule so failure
//!   experiments are reproducible;
//! * [`CacheStore`] — the blob store keyed by `(prompt, K)`, returning
//!   per-fetch outcomes (hit/miss/failure + latency) that the switcher
//!   monitors.
//!
//! # Example
//!
//! ```
//! use argus_cachestore::{CacheStore, CacheKey, FetchStatus};
//! use argus_des::{rng::RngFactory, SimTime};
//!
//! let mut store = CacheStore::new(RngFactory::new(1));
//! let key = CacheKey { prompt_id: 7, k: 20 };
//! store.put(key, SimTime::ZERO);
//! let outcome = store.fetch(key, SimTime::from_secs(1.0));
//! assert_eq!(outcome.status, FetchStatus::Hit);
//! assert!(outcome.latency.as_secs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use argus_des::rng::{log_normal, RngFactory};
use argus_des::{SimDuration, SimTime};
use bytes::Bytes;
use rand::rngs::StdRng;

/// Logical size of one cached intermediate noise state (§4.7: 144 KB).
pub const STATE_BYTES: u64 = 144 * 1024;

/// Where a cache lookup is served from, relative to the requesting
/// worker — the cost model of the sharded cache plane.
///
/// The monolithic deployment (one Qdrant/EFS endpoint, §4.7) is always
/// [`Locality::Remote`]: every fetch pays the full network round trip.
/// With worker-attached shards, a lookup served by a replica hosted on
/// the requesting worker skips the network entirely and pays only a local
/// index-plus-NVMe read — which also rides through congestion and
/// outages, the fault-domain payoff of sharding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Locality {
    /// Served by a shard replica on the requesting worker: no network hop.
    Local,
    /// Served across the network (the monolithic store, or a replica on
    /// another worker): one full round trip under the current regime.
    Remote,
}

/// Network health regime governing retrieval latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkRegime {
    /// Healthy: retrieval latency is negligible versus denoising savings.
    Normal,
    /// Congested: latencies inflate by two orders of magnitude (Fig. 11).
    Congested,
    /// Outage: the VDB/EFS endpoint is unreachable; fetches time out.
    Outage,
}

/// A deterministic, schedule-driven retrieval-latency process.
#[derive(Debug)]
pub struct NetworkModel {
    rng: StdRng,
    /// Regime transitions, sorted by time; regime at `t` is the last entry
    /// with `time <= t` (Normal before the first entry).
    schedule: Vec<(SimTime, NetworkRegime)>,
    /// Client-side timeout for failed fetches.
    timeout: SimDuration,
}

impl NetworkModel {
    /// Creates a model that stays [`NetworkRegime::Normal`] forever.
    pub fn new(factory: RngFactory) -> Self {
        NetworkModel {
            rng: factory.stream("cachestore-network"),
            schedule: Vec::new(),
            timeout: SimDuration::from_secs(5.0),
        }
    }

    /// Adds a regime transition at `t` (builder style). Transitions may be
    /// added in any order; they are kept sorted.
    pub fn with_event(mut self, t: SimTime, regime: NetworkRegime) -> Self {
        self.schedule.push((t, regime));
        self.schedule.sort_by_key(|&(t, _)| t);
        self
    }

    /// Overrides the client-side fetch timeout.
    pub fn with_timeout(mut self, timeout: SimDuration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The regime in effect at time `t`.
    pub fn regime_at(&self, t: SimTime) -> NetworkRegime {
        self.schedule
            .iter()
            .take_while(|&&(at, _)| at <= t)
            .last()
            .map(|&(_, r)| r)
            .unwrap_or(NetworkRegime::Normal)
    }

    /// Samples one round-trip (VDB query + EFS read) at time `t`.
    /// Returns the latency and whether the request succeeded.
    pub fn sample_round_trip(&mut self, t: SimTime) -> (SimDuration, bool) {
        match self.regime_at(t) {
            NetworkRegime::Normal => {
                // ~5 ms VDB similarity query + ~15 ms EFS read, log-normal.
                let secs = log_normal(&mut self.rng, (0.020f64).ln(), 0.30);
                (SimDuration::from_secs(secs.min(0.5)), true)
            }
            NetworkRegime::Congested => {
                // Median ≈ 1.5 s, heavy upper tail (Fig. 11's spike shape);
                // a small fraction exceeds the timeout and fails outright.
                let secs = log_normal(&mut self.rng, (1.5f64).ln(), 0.8);
                if secs > self.timeout.as_secs() {
                    (self.timeout, false)
                } else {
                    (SimDuration::from_secs(secs), true)
                }
            }
            NetworkRegime::Outage => (self.timeout, false),
        }
    }

    /// Samples one lookup at time `t` with the given [`Locality`].
    ///
    /// [`Locality::Remote`] is exactly [`NetworkModel::sample_round_trip`]
    /// (same RNG stream, same draw — the monolithic path is bit-unchanged).
    /// [`Locality::Local`] models the worker-attached shard read: ~2 ms
    /// log-normal (index probe + NVMe state read), immune to the network
    /// regime, and always successful.
    pub fn sample_lookup(&mut self, t: SimTime, locality: Locality) -> (SimDuration, bool) {
        match locality {
            Locality::Remote => self.sample_round_trip(t),
            Locality::Local => {
                let secs = log_normal(&mut self.rng, (0.002f64).ln(), 0.25);
                (SimDuration::from_secs(secs.min(0.05)), true)
            }
        }
    }

    /// The configured client-side timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }
}

/// Key of a cached intermediate state: which prompt produced it and at
/// which denoising step it was captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Producing prompt id.
    pub prompt_id: u64,
    /// Denoising step at which the state was captured.
    pub k: u32,
}

/// Result status of a cache fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchStatus {
    /// The state was present and retrieved.
    Hit,
    /// The network worked but no state exists for the key.
    Miss,
    /// The request failed (congestion drop or outage timeout).
    Failed,
}

/// Outcome of one cache fetch: what happened and how long it took. The
/// latency stream is what the strategy switcher monitors (§4.6).
#[derive(Debug, Clone, PartialEq)]
pub struct FetchOutcome {
    /// Hit / miss / failure.
    pub status: FetchStatus,
    /// End-to-end retrieval latency (network + lookup).
    pub latency: SimDuration,
    /// The stored state digest on a hit.
    pub state: Option<Bytes>,
}

#[derive(Debug, Clone)]
struct StoredState {
    #[allow(dead_code)] // retained for cache-age diagnostics
    stored_at: SimTime,
}

/// The digest of a stored state is a pure function of its key (the
/// simulation never holds pixel data), so it is materialized on fetch
/// rather than stored per blob — million-job runs hold millions of
/// states, and a per-put allocation is the hot path of the cache plane.
fn digest_of(key: CacheKey) -> Bytes {
    let mut bytes = [0u8; 12];
    bytes[..8].copy_from_slice(&key.prompt_id.to_le_bytes());
    bytes[8..].copy_from_slice(&key.k.to_le_bytes());
    Bytes::copy_from_slice(&bytes)
}

/// The EFS-like blob store holding intermediate noise states.
///
/// States are represented by a 32-byte digest plus logical size — the
/// scheduler only ever observes latency and hit/miss, never pixel data.
#[derive(Debug)]
pub struct CacheStore {
    network: NetworkModel,
    blobs: HashMap<CacheKey, StoredState>,
    stored_bytes: u64,
    fetches: u64,
    hits: u64,
    failures: u64,
}

impl CacheStore {
    /// Creates a store with a healthy network.
    pub fn new(factory: RngFactory) -> Self {
        Self::with_network(NetworkModel::new(factory))
    }

    /// Creates a store over a custom network model (failure injection).
    pub fn with_network(network: NetworkModel) -> Self {
        CacheStore {
            network,
            blobs: HashMap::new(),
            stored_bytes: 0,
            fetches: 0,
            hits: 0,
            failures: 0,
        }
    }

    /// Stores the intermediate state for `key` at time `t` (writes are
    /// asynchronous in the paper's deployment and never block generation,
    /// so no latency is charged here).
    pub fn put(&mut self, key: CacheKey, t: SimTime) {
        if self
            .blobs
            .insert(key, StoredState { stored_at: t })
            .is_none()
        {
            self.stored_bytes += STATE_BYTES;
        }
    }

    /// Fetches the state for `key` at time `t`, sampling the network
    /// (always [`Locality::Remote`] — the monolithic deployment).
    pub fn fetch(&mut self, key: CacheKey, t: SimTime) -> FetchOutcome {
        self.fetch_routed(key, t, Locality::Remote)
    }

    /// Fetches the state for `key` at time `t` from the given
    /// [`Locality`] — the sharded cache plane's cost model: a local-shard
    /// hit is a cheap on-worker read, a remote-shard hop pays the full
    /// round trip, and a miss still pays the lookup that discovered it.
    pub fn fetch_routed(&mut self, key: CacheKey, t: SimTime, locality: Locality) -> FetchOutcome {
        self.fetches += 1;
        let (latency, ok) = self.network.sample_lookup(t, locality);
        if !ok {
            self.failures += 1;
            return FetchOutcome {
                status: FetchStatus::Failed,
                latency,
                state: None,
            };
        }
        match self.blobs.get(&key) {
            Some(_) => {
                self.hits += 1;
                FetchOutcome {
                    status: FetchStatus::Hit,
                    latency,
                    state: Some(digest_of(key)),
                }
            }
            None => FetchOutcome {
                status: FetchStatus::Miss,
                latency,
                state: None,
            },
        }
    }

    /// A background "test retrieval" (§4.6): samples the network without
    /// touching the blob map, used while running in SM mode to detect
    /// recovery.
    pub fn probe(&mut self, t: SimTime) -> (SimDuration, bool) {
        self.network.sample_round_trip(t)
    }

    /// Whether a state exists for `key` (no network charge).
    pub fn contains(&self, key: CacheKey) -> bool {
        self.blobs.contains_key(&key)
    }

    /// Number of stored states.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Total logical bytes stored.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Lifetime (fetches, hits, failures) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.fetches, self.hits, self.failures)
    }

    /// The current network regime (diagnostics).
    pub fn regime_at(&self, t: SimTime) -> NetworkRegime {
        self.network.regime_at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> CacheStore {
        CacheStore::new(RngFactory::new(11))
    }

    #[test]
    fn put_then_fetch_hits() {
        let mut s = store();
        let key = CacheKey {
            prompt_id: 1,
            k: 15,
        };
        assert!(!s.contains(key));
        s.put(key, SimTime::ZERO);
        assert!(s.contains(key));
        assert_eq!(s.len(), 1);
        assert_eq!(s.stored_bytes(), STATE_BYTES);
        let out = s.fetch(key, SimTime::from_secs(1.0));
        assert_eq!(out.status, FetchStatus::Hit);
        assert!(out.state.is_some());
        assert_eq!(s.stats(), (1, 1, 0));
    }

    #[test]
    fn missing_key_is_a_miss_with_latency() {
        let mut s = store();
        let out = s.fetch(
            CacheKey {
                prompt_id: 99,
                k: 5,
            },
            SimTime::ZERO,
        );
        assert_eq!(out.status, FetchStatus::Miss);
        assert!(out.state.is_none());
        assert!(!out.latency.is_zero());
    }

    #[test]
    fn duplicate_put_does_not_double_count() {
        let mut s = store();
        let key = CacheKey {
            prompt_id: 1,
            k: 15,
        };
        s.put(key, SimTime::ZERO);
        s.put(key, SimTime::from_secs(1.0));
        assert_eq!(s.len(), 1);
        assert_eq!(s.stored_bytes(), STATE_BYTES);
    }

    #[test]
    fn normal_latency_is_tens_of_milliseconds() {
        let mut s = store();
        let key = CacheKey {
            prompt_id: 1,
            k: 10,
        };
        s.put(key, SimTime::ZERO);
        let mut total = 0.0;
        for i in 0..500 {
            let out = s.fetch(key, SimTime::from_secs(i as f64));
            assert_eq!(out.status, FetchStatus::Hit);
            total += out.latency.as_secs();
        }
        let mean = total / 500.0;
        // "orders of magnitude less" than the ~2 s of saved denoising.
        assert!(mean > 0.005 && mean < 0.05, "mean retrieval {mean}");
    }

    #[test]
    fn congestion_inflates_latency_and_outage_fails() {
        let net = NetworkModel::new(RngFactory::new(3))
            .with_event(SimTime::from_secs(100.0), NetworkRegime::Congested)
            .with_event(SimTime::from_secs(200.0), NetworkRegime::Outage)
            .with_event(SimTime::from_secs(300.0), NetworkRegime::Normal);
        let mut s = CacheStore::with_network(net);
        let key = CacheKey {
            prompt_id: 2,
            k: 20,
        };
        s.put(key, SimTime::ZERO);

        assert_eq!(s.regime_at(SimTime::from_secs(50.0)), NetworkRegime::Normal);
        assert_eq!(
            s.regime_at(SimTime::from_secs(150.0)),
            NetworkRegime::Congested
        );
        assert_eq!(
            s.regime_at(SimTime::from_secs(250.0)),
            NetworkRegime::Outage
        );
        assert_eq!(
            s.regime_at(SimTime::from_secs(350.0)),
            NetworkRegime::Normal
        );

        let normal = s.fetch(key, SimTime::from_secs(50.0));
        let congested = s.fetch(key, SimTime::from_secs(150.0));
        assert!(congested.latency.as_secs() > 10.0 * normal.latency.as_secs());

        let outage = s.fetch(key, SimTime::from_secs(250.0));
        assert_eq!(outage.status, FetchStatus::Failed);
        assert_eq!(outage.latency, SimDuration::from_secs(5.0));

        let recovered = s.fetch(key, SimTime::from_secs(350.0));
        assert_eq!(recovered.status, FetchStatus::Hit);
        assert!(recovered.latency.as_secs() < 0.5);
    }

    #[test]
    fn probe_reflects_regime_without_touching_blobs() {
        let net = NetworkModel::new(RngFactory::new(4))
            .with_event(SimTime::from_secs(10.0), NetworkRegime::Outage);
        let mut s = CacheStore::with_network(net);
        let (lat, ok) = s.probe(SimTime::ZERO);
        assert!(ok);
        assert!(lat.as_secs() < 0.5);
        let (lat, ok) = s.probe(SimTime::from_secs(20.0));
        assert!(!ok);
        assert_eq!(lat, SimDuration::from_secs(5.0));
        assert!(s.is_empty());
        assert_eq!(s.stats(), (0, 0, 0)); // probes are not fetches
    }

    #[test]
    fn custom_timeout_is_respected() {
        let net = NetworkModel::new(RngFactory::new(5))
            .with_event(SimTime::ZERO, NetworkRegime::Outage)
            .with_timeout(SimDuration::from_secs(2.0));
        assert_eq!(net.timeout(), SimDuration::from_secs(2.0));
        let mut s = CacheStore::with_network(net);
        let out = s.fetch(CacheKey { prompt_id: 1, k: 0 }, SimTime::ZERO);
        assert_eq!(out.latency, SimDuration::from_secs(2.0));
        assert_eq!(out.status, FetchStatus::Failed);
    }

    #[test]
    fn local_lookups_are_cheap_and_ride_through_outages() {
        let net = NetworkModel::new(RngFactory::new(8))
            .with_event(SimTime::from_secs(100.0), NetworkRegime::Outage);
        let mut s = CacheStore::with_network(net);
        let key = CacheKey {
            prompt_id: 3,
            k: 25,
        };
        s.put(key, SimTime::ZERO);
        // Healthy network: local reads are an order of magnitude under the
        // ~20 ms remote round trip.
        let mut total = 0.0;
        for i in 0..200 {
            let out = s.fetch_routed(key, SimTime::from_secs(i as f64 * 0.1), Locality::Local);
            assert_eq!(out.status, FetchStatus::Hit);
            total += out.latency.as_secs();
        }
        let mean = total / 200.0;
        assert!(mean > 0.0005 && mean < 0.01, "local mean {mean}");
        // During the outage the remote path fails but the local shard
        // keeps serving — the fault-domain payoff of worker attachment.
        let remote = s.fetch_routed(key, SimTime::from_secs(150.0), Locality::Remote);
        assert_eq!(remote.status, FetchStatus::Failed);
        let local = s.fetch_routed(key, SimTime::from_secs(150.0), Locality::Local);
        assert_eq!(local.status, FetchStatus::Hit);
        assert!(local.latency.as_secs() < 0.05);
    }

    #[test]
    fn remote_routed_fetch_is_the_plain_fetch() {
        // Same seed, same call sequence: fetch_routed(Remote) must consume
        // the RNG identically to fetch() — the monolithic path is
        // bit-unchanged (the sharded (1,1) parity contract).
        let key = CacheKey {
            prompt_id: 9,
            k: 10,
        };
        let mut a = CacheStore::new(RngFactory::new(12));
        let mut b = CacheStore::new(RngFactory::new(12));
        a.put(key, SimTime::ZERO);
        b.put(key, SimTime::ZERO);
        for i in 0..50 {
            let t = SimTime::from_secs(i as f64);
            assert_eq!(a.fetch(key, t), b.fetch_routed(key, t, Locality::Remote));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn congested_latencies_show_heavy_tail() {
        let net = NetworkModel::new(RngFactory::new(6))
            .with_event(SimTime::ZERO, NetworkRegime::Congested);
        let mut s = CacheStore::with_network(net);
        let mut lats = Vec::new();
        for i in 0..1000 {
            let (lat, _) = s.probe(SimTime::from_secs(i as f64));
            lats.push(lat.as_secs());
        }
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = lats[500];
        let p95 = lats[950];
        assert!(p50 > 0.8 && p50 < 2.5, "p50 {p50}");
        assert!(p95 / p50 > 2.0, "tail ratio {}", p95 / p50);
    }
}
