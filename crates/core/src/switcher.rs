//! The AC ↔ SM strategy switcher (§4.6).
//!
//! Argus serves with approximate caching by default. It continuously
//! monitors cache-retrieval latencies; when the recent average exceeds a
//! threshold (or retrievals outright fail), it initiates an **AC → SM**
//! switch: workers first serve with the already-loaded SD-XL *without*
//! caching (no downtime), smaller models load concurrently, and the solver
//! diverts extra load to them with a 1.5× margin as they come online.
//! While in SM mode, background probes test the network; a streak of
//! healthy probes triggers the **SM → AC** switch back.

use argus_des::stats::MovingAverage;
use argus_des::SimTime;
use argus_models::Strategy;

/// Switcher tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitcherConfig {
    /// Mean retrieval latency (seconds, over the monitoring window) above
    /// which AC is considered degraded. Normal retrievals are ~20 ms;
    /// congestion pushes seconds (Fig. 11), so 0.5 s separates cleanly.
    pub latency_threshold_secs: f64,
    /// Fraction of failed retrievals in the window that forces a switch
    /// regardless of latency.
    pub failure_ratio_threshold: f64,
    /// Monitoring window, in retrievals.
    pub window: usize,
    /// Consecutive healthy probes required to switch back to AC.
    pub healthy_probes_required: usize,
    /// Load-diversion margin used by the solver during a switch (§4.6:
    /// "the solver uses a 1.5× margin to divert more load to a smaller
    /// model to cover for the throughput drop").
    pub switch_margin: f64,
}

impl Default for SwitcherConfig {
    fn default() -> Self {
        SwitcherConfig {
            latency_threshold_secs: 0.5,
            failure_ratio_threshold: 0.3,
            window: 20,
            healthy_probes_required: 4,
            switch_margin: 1.5,
        }
    }
}

/// The switcher's operating state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitcherState {
    /// Serving with approximate caching.
    Ac,
    /// AC → SM in progress: serving K=0 without caching while small
    /// models load.
    SwitchingToSm,
    /// Serving with smaller model variants; probing for recovery.
    Sm,
    /// SM → AC in progress: small models still serving while SD-XL loads.
    SwitchingToAc,
}

/// A switch decision emitted by the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchCommand {
    /// Begin the AC → SM transition.
    ToSm,
    /// Begin the SM → AC transition.
    ToAc,
}

/// Monitors retrieval health and drives the strategy state machine.
#[derive(Debug, Clone)]
pub struct StrategySwitcher {
    cfg: SwitcherConfig,
    state: SwitcherState,
    latency: MovingAverage,
    failures: MovingAverage,
    healthy_streak: usize,
    switches_to_sm: u64,
    switches_to_ac: u64,
    last_transition: SimTime,
}

impl StrategySwitcher {
    /// Creates a switcher in the AC state.
    ///
    /// # Panics
    /// Panics if the config window is zero.
    pub fn new(cfg: SwitcherConfig) -> Self {
        assert!(cfg.window > 0, "monitor window must be positive");
        StrategySwitcher {
            latency: MovingAverage::new(cfg.window),
            failures: MovingAverage::new(cfg.window),
            cfg,
            state: SwitcherState::Ac,
            healthy_streak: 0,
            switches_to_sm: 0,
            switches_to_ac: 0,
            last_transition: SimTime::ZERO,
        }
    }

    /// Current state.
    pub fn state(&self) -> SwitcherState {
        self.state
    }

    /// The strategy whose ladder the allocator should plan with right now.
    ///
    /// During `SwitchingToSm` the plan is already SM (small models are the
    /// target); during `SwitchingToAc` the plan is AC.
    pub fn planning_strategy(&self) -> Strategy {
        match self.state {
            SwitcherState::Ac | SwitcherState::SwitchingToAc => Strategy::Ac,
            SwitcherState::Sm | SwitcherState::SwitchingToSm => Strategy::Sm,
        }
    }

    /// Whether cache retrieval should be attempted for new requests.
    pub fn cache_enabled(&self) -> bool {
        self.state == SwitcherState::Ac
    }

    /// The configured switch margin.
    pub fn config(&self) -> &SwitcherConfig {
        &self.cfg
    }

    /// Lifetime switch counts `(to_sm, to_ac)`.
    pub fn switch_counts(&self) -> (u64, u64) {
        (self.switches_to_sm, self.switches_to_ac)
    }

    /// Time of the last state transition.
    pub fn last_transition(&self) -> SimTime {
        self.last_transition
    }

    /// Feeds one cache-retrieval observation (only meaningful in AC).
    /// Returns a command when the health monitor trips.
    pub fn on_retrieval(
        &mut self,
        latency_secs: f64,
        ok: bool,
        now: SimTime,
    ) -> Option<SwitchCommand> {
        if self.state != SwitcherState::Ac {
            return None;
        }
        self.latency.push(latency_secs);
        self.failures.push(if ok { 0.0 } else { 1.0 });
        if !self.latency.is_saturated() {
            return None;
        }
        let lat = self.latency.value().unwrap_or(0.0);
        let fail = self.failures.value().unwrap_or(0.0);
        if lat > self.cfg.latency_threshold_secs || fail > self.cfg.failure_ratio_threshold {
            self.begin(SwitcherState::SwitchingToSm, now);
            self.switches_to_sm += 1;
            return Some(SwitchCommand::ToSm);
        }
        None
    }

    /// Feeds one background probe observation (only meaningful in SM).
    /// Returns a command once enough consecutive probes look healthy.
    pub fn on_probe(&mut self, latency_secs: f64, ok: bool, now: SimTime) -> Option<SwitchCommand> {
        if self.state != SwitcherState::Sm {
            return None;
        }
        if ok && latency_secs <= self.cfg.latency_threshold_secs {
            self.healthy_streak += 1;
        } else {
            self.healthy_streak = 0;
        }
        if self.healthy_streak >= self.cfg.healthy_probes_required {
            self.begin(SwitcherState::SwitchingToAc, now);
            self.switches_to_ac += 1;
            return Some(SwitchCommand::ToAc);
        }
        None
    }

    /// Notifies that the in-progress transition finished (target models
    /// loaded and serving).
    pub fn on_transition_complete(&mut self, now: SimTime) {
        match self.state {
            SwitcherState::SwitchingToSm => self.begin(SwitcherState::Sm, now),
            SwitcherState::SwitchingToAc => self.begin(SwitcherState::Ac, now),
            _ => {}
        }
    }

    fn begin(&mut self, state: SwitcherState, now: SimTime) {
        self.state = state;
        self.last_transition = now;
        self.healthy_streak = 0;
        // Reset monitors: observations from the previous regime are stale.
        self.latency = MovingAverage::new(self.cfg.window);
        self.failures = MovingAverage::new(self.cfg.window);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn switcher() -> StrategySwitcher {
        StrategySwitcher::new(SwitcherConfig::default())
    }

    #[test]
    fn healthy_retrievals_keep_ac() {
        let mut s = switcher();
        for i in 0..100 {
            assert_eq!(s.on_retrieval(0.02, true, t(i as f64)), None);
        }
        assert_eq!(s.state(), SwitcherState::Ac);
        assert!(s.cache_enabled());
        assert_eq!(s.planning_strategy(), Strategy::Ac);
    }

    #[test]
    fn latency_spike_triggers_switch_to_sm() {
        let mut s = switcher();
        for i in 0..19 {
            s.on_retrieval(0.02, true, t(i as f64));
        }
        let mut cmd = None;
        for i in 0..30 {
            cmd = s.on_retrieval(2.0, true, t(20.0 + i as f64));
            if cmd.is_some() {
                break;
            }
        }
        assert_eq!(cmd, Some(SwitchCommand::ToSm));
        assert_eq!(s.state(), SwitcherState::SwitchingToSm);
        assert!(!s.cache_enabled());
        assert_eq!(s.planning_strategy(), Strategy::Sm);
        assert_eq!(s.switch_counts(), (1, 0));
    }

    #[test]
    fn outright_failures_trigger_switch_even_when_fast() {
        let mut s = switcher();
        let mut cmd = None;
        for i in 0..40 {
            // Failures report the timeout latency in practice, but even a
            // fast-failing endpoint must trip the failure-ratio rule.
            cmd = s.on_retrieval(0.01, i % 2 == 0, t(i as f64));
            if cmd.is_some() {
                break;
            }
        }
        assert_eq!(cmd, Some(SwitchCommand::ToSm));
    }

    #[test]
    fn full_cycle_ac_sm_ac() {
        let mut s = switcher();
        // Trip the monitor.
        for i in 0..40 {
            if s.on_retrieval(3.0, false, t(i as f64)).is_some() {
                break;
            }
        }
        assert_eq!(s.state(), SwitcherState::SwitchingToSm);
        // Probes during the transition are ignored.
        assert_eq!(s.on_probe(0.01, true, t(50.0)), None);
        s.on_transition_complete(t(60.0));
        assert_eq!(s.state(), SwitcherState::Sm);
        assert_eq!(s.planning_strategy(), Strategy::Sm);
        // Three healthy probes: not yet. One unhealthy resets the streak.
        assert_eq!(s.on_probe(0.01, true, t(70.0)), None);
        assert_eq!(s.on_probe(0.01, true, t(80.0)), None);
        assert_eq!(s.on_probe(4.0, true, t(90.0)), None);
        assert_eq!(s.on_probe(0.01, true, t(100.0)), None);
        assert_eq!(s.on_probe(0.01, true, t(110.0)), None);
        assert_eq!(s.on_probe(0.01, true, t(120.0)), None);
        let cmd = s.on_probe(0.01, true, t(130.0));
        assert_eq!(cmd, Some(SwitchCommand::ToAc));
        assert_eq!(s.state(), SwitcherState::SwitchingToAc);
        assert_eq!(s.planning_strategy(), Strategy::Ac);
        s.on_transition_complete(t(140.0));
        assert_eq!(s.state(), SwitcherState::Ac);
        assert!(s.cache_enabled());
        assert_eq!(s.switch_counts(), (1, 1));
        assert_eq!(s.last_transition(), t(140.0));
    }

    #[test]
    fn retrievals_ignored_outside_ac() {
        let mut s = switcher();
        for i in 0..40 {
            if s.on_retrieval(3.0, false, t(i as f64)).is_some() {
                break;
            }
        }
        s.on_transition_complete(t(50.0));
        assert_eq!(s.state(), SwitcherState::Sm);
        // A retrieval observation in SM must not flip anything.
        assert_eq!(s.on_retrieval(5.0, false, t(60.0)), None);
        assert_eq!(s.state(), SwitcherState::Sm);
    }

    #[test]
    fn monitor_resets_across_transitions() {
        let mut s = switcher();
        for i in 0..40 {
            if s.on_retrieval(3.0, false, t(i as f64)).is_some() {
                break;
            }
        }
        s.on_transition_complete(t(50.0));
        for i in 0..4 {
            s.on_probe(0.01, true, t(60.0 + i as f64));
        }
        s.on_transition_complete(t(70.0));
        assert_eq!(s.state(), SwitcherState::Ac);
        // Fresh window: a single slow retrieval must not instantly trip.
        assert_eq!(s.on_retrieval(3.0, true, t(71.0)), None);
    }

    #[test]
    fn default_config_matches_paper_margin() {
        let cfg = SwitcherConfig::default();
        assert_eq!(cfg.switch_margin, 1.5);
        let s = StrategySwitcher::new(cfg);
        assert_eq!(s.config().switch_margin, 1.5);
    }
}
