//! # argus-core — the Argus control plane and end-to-end system
//!
//! This crate assembles the full serving system of the paper on top of the
//! substrate crates:
//!
//! * [`solver`] — the Eq. 1 allocator: which approximation level each
//!   worker runs and what load fraction each level serves, via an exact
//!   specialized search and the paper's MILP formulation (cross-validated
//!   against each other);
//! * [`predictor`] — the Workload Distribution Predictor: the look-back
//!   window of classifier outputs yielding the affinity histogram `φ(v)`;
//! * [`oda`] — the Optimized Distribution Aligner (Algorithm 1) producing
//!   the Probabilistic Approximation Shift Map (PASM);
//! * [`capacity`] — the pluggable [`CapacityModel`] behind Eq. 1's
//!   `peak(v)`: the batch-1 paper profile and the Obs. 5 batching-aware
//!   profile, swappable per run (`RunConfig::with_capacity_model`);
//! * [`cacheplane`] — the sharded retrieval plane: the vector index
//!   partitioned across worker-attached shards with replication, lookup
//!   locality and fault-driven rebalance
//!   (`RunConfig::with_sharded_cache`);
//! * [`cascade`] — the query-aware cascade serving plane: cheap-first
//!   dispatch, a deterministic discriminator gating escalation, and the
//!   observed escalation rate priced into Eq. 1
//!   (`RunConfig::with_cascade`);
//! * [`pipeline`] — the staged serving-pipeline API: a [`ServingPolicy`]
//!   composes `LevelPlanner`/`CacheGate`/`WorkerSelector`/`Dispatcher`
//!   stages that the event loop drives generically, with one
//!   implementation per policy and batched dispatch on top;
//! * [`scheduler`] — the Prompt Scheduler and Worker-Selector (Eq. 3);
//! * [`switcher`] — the AC ↔ SM strategy switch driven by cache-retrieval
//!   latency monitoring (§4.6);
//! * [`fleet`] — the elastic fleet subsystem: the autoscale controller,
//!   spot pools with warning-window preemption, and cost-aware
//!   accounting (`RunConfig::with_autoscaler` / `with_spot_pool`);
//! * [`metrics`] — per-minute throughput / effective accuracy / SLO
//!   violation accounting (§5.1);
//! * telemetry (the `argus_obs` crate) — opt-in job-lifecycle spans,
//!   the per-tick time-series registry and actor-stage profiles, wired
//!   through `RunConfig::with_telemetry` (§12);
//! * [`system`] — the discrete-event simulation binding everything to the
//!   GPU cluster, vector DB, cache store and workload traces;
//! * [`policy`] — Argus plus every baseline the paper compares against
//!   (PAC, Proteus, Sommelier, NIRVANA, Clipper-HA/HT).
//!
//! # Example
//!
//! ```
//! use argus_core::{Policy, RunConfig};
//! use argus_workload::steady;
//!
//! let cfg = RunConfig::new(Policy::Argus, steady(100.0, 5)).with_seed(1);
//! let outcome = cfg.run();
//! assert!(outcome.totals.completed > 300);
//! assert!(outcome.totals.slo_violation_ratio() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod actors;
pub mod cacheplane;
pub mod capacity;
pub mod cascade;
pub mod fleet;
pub mod metrics;
pub mod oda;
pub mod pipeline;
pub mod policy;
pub mod predictor;
pub mod scheduler;
pub mod solver;
pub mod switcher;
pub mod system;

pub use actors::ActorPacing;
pub use cacheplane::{CachePlane, InsertReceipt};
pub use capacity::{
    Batch1Model, BatchedModel, CapacityCtx, CapacityModel, EscalationCtx, TAIL_BUDGET_FRACTION,
};
pub use cascade::{CascadeConfig, CascadePolicy, CascadeStats, Discriminator, OracleDiscriminator};
pub use fleet::{
    on_demand_hourly, preemption_events, AutoscalePolicy, CostReport, FleetStats, MembershipSample,
    SpotPool,
};
pub use metrics::{LevelCacheCounts, MinuteRecord, PoolStats, RetrievalStats, RunTotals};
pub use oda::{emd_aligner, oda, Pasm, PasmError};
pub use pipeline::{
    pipeline_for, ArgusPolicy, CacheGate, ClipperPolicy, Dispatcher, InitialPlacement,
    LevelPlanner, NirvanaPolicy, PacPolicy, ProteusPolicy, RouteCtx, SelectCtx, ServingPolicy,
    SommelierPolicy, TickAction, WorkerSelector,
};
pub use policy::Policy;
pub use predictor::WorkloadDistributionPredictor;
pub use scheduler::PoolView;
pub use solver::{Allocation, AllocationProblem, LevelProfile, SolveCache, FAST_SOLVER_THRESHOLD};
pub use switcher::{StrategySwitcher, SwitcherConfig, SwitcherState};
pub use system::{FaultEvent, RunConfig, RunOutcome, SystemSimulation};

// Telemetry vocabulary, re-exported so downstream code can configure
// `RunConfig::with_telemetry` and consume `RunOutcome::{timeline, spans,
// stage_profiles}` without naming the obs crate.
pub use argus_obs::{
    SpanEvent, SpanKind, SpanLog, StageCounters, StageProfile, TelemetryConfig, TickSample,
    Timeline,
};
