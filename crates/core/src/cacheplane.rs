//! The sharded cache plane: retrieval as its own distributed serving
//! plane alongside the compute plane.
//!
//! The paper's testbed keeps one shared Qdrant/EFS pair for the whole
//! cluster (§4.7). At fleet scale that single endpoint is both the
//! scalability bottleneck (every AC query scans one index) and a single
//! fault domain (one outage disables approximate caching everywhere —
//! Fig. 11/20b). This module distributes it: the vector index is
//! partitioned into `N` shards replicated `R` ways across *worker-attached*
//! hosts ([`argus_vdb::shard`]), and this controller owns everything the
//! index itself must not know about the cluster:
//!
//! * **Placement** — replica slot `(s, j)` lives on worker
//!   `(s + ⌊j·W/R⌋) mod W`, so a shard's replicas stripe across distinct,
//!   distant workers and correlated failures (adjacent worker ids, as in
//!   the Fig. 20a experiments) hit at most one replica of each shard;
//! * **Lookup locality** — a lookup from the worker hosting the serving
//!   replica is a [`Locality::Local`] read (no network hop, immune to
//!   regime faults); anything else pays the full remote round trip through
//!   the `argus-cachestore` network model;
//! * **Fault-driven rebalance** — when a worker dies, every replica it
//!   hosted is lost and its shards fail over to surviving replicas; a
//!   shard with no live replica re-routes *inserts* to its ring
//!   neighbour, while *lookups* skip it, so queries whose probe set is
//!   entirely dead serve misses. The observable outcome is a lower
//!   hit-rate, never a crash — the retrieval-plane mirror of the compute
//!   plane's ODA re-alignment after a fault (see [`crate::oda`]).
//!
//! The configuration `shards = 1, replication = 1` is special-cased as the
//! paper's *external* monolithic deployment: no worker hosts the index, so
//! every lookup is remote and worker faults never touch the cache —
//! bit-identical to `RunConfig::with_lsh_cache` (pinned by
//! `tests/sharded_cache.rs`).

use argus_cachestore::Locality;
use argus_embed::Embedding;
use argus_vdb::{LshIndex, SearchHit, ShardedIndex};

/// The write fan-out of one cache-plane insert: how many replica copies
/// were stored and how many of them crossed the network. A copy landing
/// on the worker that produced the state is a free local write; every
/// other copy — and any write to an off-cluster (external) index — is
/// charged one network hop. Writes are asynchronous (§4.7), so the hops
/// are a budget counter (`RetrievalStats`), never job latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InsertReceipt {
    /// Replica copies stored (0 when every shard was down and the insert
    /// was dropped).
    pub replica_writes: u32,
    /// Copies that paid a network hop (cross-worker replicas; all writes
    /// in external mode).
    pub remote_hops: u32,
}

/// LSH hyperplanes per shard replica — the recall/scan-cost knee measured
/// for the monolithic index (`tests/lsh_cache.rs`), kept identical so
/// `shards = 1` reproduces it exactly.
const SHARD_LSH_BITS: usize = 8;

/// Inserts between load-aware capacity rebalances. Frequent enough to
/// track diurnal routing drift, coarse enough that the largest-remainder
/// re-split stays off the insert fast path.
const REBALANCE_PERIOD: usize = 256;

/// The cache-plane controller: the sharded retrieval index plus the
/// worker placement map and fault bookkeeping.
#[derive(Debug)]
pub struct CachePlane {
    index: ShardedIndex<u64, LshIndex<u64>>,
    /// Host worker of each replica slot (`hosts[shard][replica]`); empty
    /// rows in external mode.
    hosts: Vec<Vec<usize>>,
    /// `shards == 1 && replication == 1`: the monolithic external VDB.
    external: bool,
}

impl CachePlane {
    /// Builds a plane of `shards × replication` replica slots over a
    /// cluster of `workers`. Shards start with an even `⌈C/N⌉` split of
    /// `total_capacity` (so the total matches the monolithic configuration
    /// it replaces) and, in sharded mode, thereafter rebalance their caps
    /// toward observed routing load every [`REBALANCE_PERIOD`] inserts —
    /// a flat split under routing skew makes the hot shards evict FIFO
    /// while cold shards sit half empty, wasting a quarter of the
    /// effective capacity at `N = 8`. `seed` must be the run's VDB seed
    /// for unsharded parity.
    ///
    /// Replication is clamped to the cluster size: more copies than
    /// workers would just co-locate replicas in the same fault domain.
    ///
    /// # Panics
    /// Panics if `shards`, `replication`, `workers` or `total_capacity`
    /// is zero.
    pub fn new(
        shards: usize,
        replication: usize,
        workers: usize,
        seed: u64,
        total_capacity: usize,
    ) -> Self {
        assert!(shards > 0, "cache plane needs at least one shard");
        assert!(replication > 0, "cache plane needs at least one replica");
        assert!(workers > 0, "cache plane needs at least one worker");
        assert!(total_capacity > 0, "cache plane needs capacity");
        let replication = replication.min(workers);
        let external = shards == 1 && replication == 1;
        let per_shard = total_capacity.div_ceil(shards);
        let index = ShardedIndex::new(shards, replication, seed, move |_, _| {
            LshIndex::with_capacity_limit(SHARD_LSH_BITS, seed, per_shard)
        });
        // External mode keeps the monolithic index bit-identical to
        // `with_lsh_cache`; the sharded plane follows routing load.
        let index = if external {
            index
        } else {
            index.with_capacity_rebalance(total_capacity, REBALANCE_PERIOD)
        };
        // Stripe a shard's replicas across distant workers: replica j of
        // shard s sits at offset ⌊j·W/R⌋. The floor-scaled offsets are
        // pairwise distinct for R ≤ W (consecutive offsets differ by at
        // least ⌊W/R⌋ ≥ 1 and stay below W), so a shard's replicas never
        // co-locate and adjacent-id failure bursts shorter than ⌊W/R⌋
        // take out at most one replica per shard.
        let hosts = if external {
            vec![Vec::new()]
        } else {
            (0..shards)
                .map(|s| {
                    (0..replication)
                        .map(|j| (s + j * workers / replication) % workers)
                        .collect()
                })
                .collect()
        };
        CachePlane {
            index,
            hosts,
            external,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.index.shards()
    }

    /// Replication factor (post worker-count clamp).
    pub fn replication(&self) -> usize {
        self.index.replication()
    }

    /// Whether this is the external monolithic deployment (`1 × 1`).
    pub fn is_external(&self) -> bool {
        self.external
    }

    /// Shards with at least one live replica.
    pub fn live_shards(&self) -> usize {
        self.index.live_shards()
    }

    /// Logical entry count (serving replica, summed over shards).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the plane holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Inserts dropped because every shard was down.
    pub fn dropped_inserts(&self) -> u64 {
        self.index.dropped_inserts()
    }

    /// Entries re-homed by recovery anti-entropy passes: inserts that
    /// ring-rerouted past a fully-dead shard and were migrated back when
    /// it recovered.
    pub fn migrated_entries(&self) -> u64 {
        self.index.migrated_entries()
    }

    /// The host worker of a replica slot (`None` in external mode).
    pub fn host_of(&self, shard: usize, replica: usize) -> Option<usize> {
        self.hosts.get(shard).and_then(|r| r.get(replica)).copied()
    }

    /// Inserts an embedding into every live replica of its routed shard
    /// (ring fallback when the shard is dead). Dropped without panicking
    /// when every shard is down. `origin` is the worker whose completion
    /// produced the state (`None` for off-cluster producers, e.g. the
    /// offline pre-warm loader); the returned [`InsertReceipt`] charges
    /// one network hop per replica copy not hosted on `origin`.
    pub fn insert(
        &mut self,
        origin: Option<usize>,
        embedding: Embedding,
        id: u64,
    ) -> InsertReceipt {
        let Some(shard) = self.index.insert(embedding, id) else {
            return InsertReceipt::default();
        };
        if self.external {
            // The monolithic off-cluster index: one write, one hop.
            return InsertReceipt {
                replica_writes: 1,
                remote_hops: 1,
            };
        }
        let mut receipt = InsertReceipt::default();
        for replica in 0..self.replication() {
            if !self.index.replica_up(shard, replica) {
                continue;
            }
            receipt.replica_writes += 1;
            if self.host_of(shard, replica) != origin {
                receipt.remote_hops += 1;
            }
        }
        receipt
    }

    /// Nearest-neighbour lookup issued by `worker`: returns the best hit
    /// across the probed shards (if any is live and non-empty) and the
    /// [`Locality`] the retrieval must be charged at —
    /// [`Locality::Local`] only when the replica serving the best hit
    /// lives on the requesting worker (the state fetch goes wherever the
    /// winning neighbour's intermediate state is stored).
    pub fn lookup(&self, worker: usize, query: &Embedding) -> (Option<SearchHit<u64>>, Locality) {
        match self.index.nearest_with_shard(query) {
            Some((hit, shard)) => {
                let replica = self
                    .index
                    .serving_replica(shard)
                    .expect("a hit implies a live replica");
                let locality = match self.host_of(shard, replica) {
                    Some(host) if host == worker => Locality::Local,
                    _ => Locality::Remote,
                };
                (Some(hit), locality)
            }
            None => (None, Locality::Remote),
        }
    }

    /// Rebalances after a worker crash: every replica hosted on `worker`
    /// loses its copy and stops serving; surviving replicas take over,
    /// and fully-dead shards re-route their inserts to ring neighbours
    /// while lookups serve misses. A no-op in external mode (the
    /// monolithic VDB is off-cluster).
    pub fn on_worker_fail(&mut self, worker: usize) {
        if self.external {
            return;
        }
        for s in 0..self.hosts.len() {
            for j in 0..self.hosts[s].len() {
                if self.hosts[s][j] == worker {
                    self.index.fail_replica(s, j);
                }
            }
        }
    }

    /// Brings `worker`'s replicas back — cold; they refill from subsequent
    /// inserts. Where the worker's death had taken a whole shard dark,
    /// recovery also runs the anti-entropy pass
    /// ([`argus_vdb::ShardedIndex::recover_replica`]): entries that
    /// ring-rerouted to foster shards while the shard was down are
    /// migrated home, since they route to the recovered shard and would
    /// otherwise stay outside every lookup's probe set. A no-op in
    /// external mode.
    pub fn on_worker_recover(&mut self, worker: usize) {
        if self.external {
            return;
        }
        for s in 0..self.hosts.len() {
            for j in 0..self.hosts[s].len() {
                if self.hosts[s][j] == worker {
                    self.index.recover_replica(s, j);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_embed::embed;
    use argus_prompts::PromptGenerator;

    #[test]
    fn external_mode_is_remote_and_fault_immune() {
        let mut plane = CachePlane::new(1, 1, 8, 42, 768);
        assert!(plane.is_external());
        let prompts = PromptGenerator::new(1).generate_batch(50);
        for (i, p) in prompts.iter().enumerate() {
            plane.insert(None, embed(&p.text), i as u64);
        }
        for w in 0..8 {
            let (hit, locality) = plane.lookup(w, &embed(&prompts[0].text));
            assert_eq!(hit.unwrap().payload, 0);
            assert_eq!(locality, Locality::Remote);
        }
        // Worker faults never touch the off-cluster index.
        for w in 0..8 {
            plane.on_worker_fail(w);
        }
        assert_eq!(plane.len(), 50);
        assert_eq!(plane.live_shards(), 1);
    }

    #[test]
    fn placement_stripes_replicas_across_workers() {
        let plane = CachePlane::new(8, 2, 8, 7, 768);
        for s in 0..8 {
            let h0 = plane.host_of(s, 0).unwrap();
            let h1 = plane.host_of(s, 1).unwrap();
            assert_ne!(h0, h1, "shard {s} replicas co-located");
            assert_eq!(h1, (h0 + 4) % 8);
        }
    }

    #[test]
    fn replication_clamps_to_cluster_size() {
        let plane = CachePlane::new(4, 8, 2, 7, 256);
        assert_eq!(plane.replication(), 2);
    }

    #[test]
    fn replicas_of_a_shard_never_co_locate() {
        // Wrap-prone configurations (R does not divide W) must still give
        // every replica of a shard its own worker.
        for (shards, replication, workers) in
            [(4, 3, 4), (4, 4, 6), (8, 3, 8), (3, 5, 5), (16, 2, 3)]
        {
            let plane = CachePlane::new(shards, replication, workers, 1, 64);
            for s in 0..plane.shards() {
                let hosts: Vec<usize> = (0..plane.replication())
                    .map(|j| plane.host_of(s, j).unwrap())
                    .collect();
                let mut dedup = hosts.clone();
                dedup.sort_unstable();
                dedup.dedup();
                assert_eq!(
                    dedup.len(),
                    hosts.len(),
                    "{shards}x{replication} over {workers}: shard {s} hosts {hosts:?}"
                );
            }
        }
    }

    #[test]
    fn local_lookups_only_on_the_serving_host() {
        let mut plane = CachePlane::new(4, 2, 8, 3, 512);
        let prompts = PromptGenerator::new(2).generate_batch(100);
        for (i, p) in prompts.iter().enumerate() {
            plane.insert(None, embed(&p.text), i as u64);
        }
        let mut local = 0;
        let mut remote = 0;
        for p in &prompts {
            for w in 0..8 {
                match plane.lookup(w, &embed(&p.text)).1 {
                    Locality::Local => local += 1,
                    Locality::Remote => remote += 1,
                }
            }
        }
        // Exactly one of the 8 workers hosts the serving replica of each
        // query's shard.
        assert_eq!(local, 100);
        assert_eq!(remote, 700);
    }

    #[test]
    fn insert_receipts_charge_cross_worker_hops() {
        let mut plane = CachePlane::new(4, 2, 8, 3, 512);
        let prompts = PromptGenerator::new(9).generate_batch(40);
        let mut hop_counts = std::collections::HashMap::new();
        for (i, p) in prompts.iter().enumerate() {
            // Off-cluster origin: both replica copies cross the network.
            let off = plane.insert(None, embed(&p.text), i as u64);
            assert_eq!((off.replica_writes, off.remote_hops), (2, 2));
            // Each replica of the routed shard lives on one distinct
            // worker; inserting from that worker saves exactly its hop.
            for w in 0..8 {
                let receipt = plane.insert(Some(w), embed(&p.text), i as u64);
                assert_eq!(receipt.replica_writes, 2);
                *hop_counts.entry(receipt.remote_hops).or_insert(0u32) += 1;
            }
        }
        // Exactly two of the eight workers host the routed shard's
        // replicas, so 2/8 of origins pay one hop and 6/8 pay two.
        assert_eq!(hop_counts.get(&1).copied().unwrap_or(0), 2 * 40);
        assert_eq!(hop_counts.get(&2).copied().unwrap_or(0), 6 * 40);

        // External mode: always one off-cluster write hop.
        let mut external = CachePlane::new(1, 1, 8, 3, 512);
        let r = external.insert(Some(0), embed("anything"), 1);
        assert_eq!((r.replica_writes, r.remote_hops), (1, 1));
    }

    #[test]
    fn dropped_inserts_report_zero_writes() {
        let mut plane = CachePlane::new(2, 1, 4, 5, 64);
        for w in 0..4 {
            plane.on_worker_fail(w);
        }
        assert_eq!(plane.live_shards(), 0);
        let receipt = plane.insert(Some(0), embed("lost state"), 9);
        assert_eq!(receipt, InsertReceipt::default());
        assert_eq!(plane.dropped_inserts(), 1);
    }

    #[test]
    fn recovery_rehomes_entries_rerouted_past_a_dead_shard() {
        // R = 1 over 4 workers: worker s hosts the sole replica of shard
        // s, so killing worker 2 takes shard 2 fully dark and its inserts
        // ring-walk to shard 3. Recovery must migrate them home — every
        // entry inserted during the outage stays exactly findable.
        let mut plane = CachePlane::new(4, 1, 4, 5, 512);
        plane.on_worker_fail(2);
        let prompts = PromptGenerator::new(8).generate_batch(160);
        for (i, p) in prompts.iter().enumerate() {
            plane.insert(None, embed(&p.text), i as u64);
        }
        plane.on_worker_recover(2);
        assert!(
            plane.migrated_entries() > 0,
            "trace never routed to the dead shard"
        );
        for (i, p) in prompts.iter().enumerate() {
            let (hit, _) = plane.lookup(0, &embed(&p.text));
            assert_eq!(
                hit.map(|h| h.payload),
                Some(i as u64),
                "entry {i} unreachable after recovery"
            );
        }
    }

    #[test]
    fn worker_failure_fails_over_without_data_loss() {
        let mut plane = CachePlane::new(4, 2, 8, 5, 512);
        let prompts = PromptGenerator::new(3).generate_batch(120);
        for (i, p) in prompts.iter().enumerate() {
            plane.insert(None, embed(&p.text), i as u64);
        }
        let before = plane.len();
        // Workers 0..4 host replica 0 of shards 0..4; their loss must be
        // absorbed by the replica-1 copies on workers 4..8.
        for w in 0..4 {
            plane.on_worker_fail(w);
        }
        assert_eq!(plane.live_shards(), 4);
        assert_eq!(plane.len(), before, "replicated entries were lost");
        for (i, p) in prompts.iter().enumerate() {
            let (hit, _) = plane.lookup(7, &embed(&p.text));
            assert_eq!(hit.map(|h| h.payload), Some(i as u64), "entry {i} lost");
        }
        plane.on_worker_recover(0);
        // Recovered replicas come back cold but serving resumes.
        assert_eq!(plane.len(), before);
    }
}
