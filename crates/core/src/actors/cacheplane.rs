//! The cache-plane stage: the retrieval index (flat scan, shared LSH, or
//! the sharded plane) plus the blob [`CacheStore`], behind one mailbox.
//!
//! Retrieval ([`CacheMsg::Retrieve`]) is a request/reply round trip that
//! fuses what the old loop did inline: nearest-neighbour search, the
//! pipeline's cache-gate mapping from similarity to an effective AC
//! level, and the store fetch with its locality-dependent network cost.
//! Index inserts and blob puts are fire-and-forget — they are
//! asynchronous, off-critical-path writes (§4.7), and the FIFO mailbox
//! guarantees every later lookup still observes them in exactly the old
//! order. The stage counts its own insert receipts and surrenders them at
//! [`CacheMsg::Drain`], preserving `replica_writes ≥ inserts` without a
//! per-write rendezvous.

use std::sync::Arc;

use argus_cachestore::{CacheKey, CacheStore, FetchOutcome, Locality};
use argus_des::{SimDuration, SimTime};
use argus_embed::Embedding;
use argus_models::{AcLevel, AC_LEVELS};
use argus_obs::StageCounters;
use argus_vdb::{FlatIndex, LshIndex, SearchHit, SharedIndex};

use super::{ActorPacing, OneshotSender, StageHandle};
use crate::cacheplane::CachePlane;
use crate::pipeline::ServingPolicy;

/// The retrieval index behind approximate caching: the exact flat scan of
/// the paper's testbed, the shared multi-probe LSH index for the
/// shared-VDB deployment at scale (§4.7), or the sharded cache plane
/// distributed across worker-attached shards
/// ([`crate::system::RunConfig::with_sharded_cache`]).
pub(crate) enum Vdb {
    Flat(FlatIndex<u64>),
    Lsh(SharedIndex<u64, LshIndex<u64>>),
    Sharded(CachePlane),
}

impl Vdb {
    /// Inserts an embedding, returning `(replica writes, remote write
    /// hops)` for the cache-plane write-amplification accounting.
    /// `origin` is the worker whose completion produced the state
    /// (`None` for the offline pre-warm loader). The monolithic indexes
    /// are off-cluster services: one write, one remote hop.
    pub(crate) fn insert(
        &mut self,
        origin: Option<usize>,
        embedding: Embedding,
        id: u64,
    ) -> (u32, u32) {
        match self {
            Vdb::Flat(i) => {
                i.insert(embedding, id);
                (1, 1)
            }
            Vdb::Lsh(s) => {
                s.insert(embedding, id);
                (1, 1)
            }
            Vdb::Sharded(p) => {
                let receipt = p.insert(origin, embedding, id);
                (receipt.replica_writes, receipt.remote_hops)
            }
        }
    }

    /// Nearest neighbour for a lookup issued by `worker`, plus the
    /// [`Locality`] the retrieval is charged at. The monolithic indexes
    /// are off-cluster services: always remote.
    fn nearest(&self, worker: usize, query: &Embedding) -> (Option<SearchHit<u64>>, Locality) {
        match self {
            Vdb::Flat(i) => (i.nearest(query), Locality::Remote),
            Vdb::Lsh(s) => (s.nearest(query), Locality::Remote),
            Vdb::Sharded(p) => p.lookup(worker, query),
        }
    }
}

/// What a retrieval round trip resolved to, mirroring the old inline
/// control flow: `fetch` is the store round trip when one happened (a
/// usable neighbour above the gate), `record_miss` flags the no-usable-
/// neighbour case that still counts toward the hit-rate.
pub(crate) struct RetrieveReply {
    pub fetch: Option<FetchOutcome>,
    pub k_eff: AcLevel,
    pub similarity: Option<f64>,
    pub record_miss: bool,
}

/// Cache-plane messages, in driver event order.
pub(crate) enum CacheMsg {
    /// A buffer of writes delivered as one mailbox message. The driver
    /// coalesces fire-and-forget writes and flushes the buffer before any
    /// request/reply rendezvous, so every lookup still observes all prior
    /// writes in the old order — only the wake-per-message cost goes away.
    Batch(Vec<CacheMsg>),
    /// Nearest-neighbour + gate + store fetch for a job on `worker`
    /// assigned AC level `assigned`.
    Retrieve {
        worker: usize,
        assigned: AcLevel,
        query: Embedding,
        t: SimTime,
        reply: OneshotSender<RetrieveReply>,
    },
    /// Serving-time index insert from a completion on `origin`
    /// (fire-and-forget; receipts accumulate stage-locally).
    Insert {
        origin: usize,
        embedding: Embedding,
        id: u64,
    },
    /// Persist every reusable intermediate state of a completed prompt
    /// (the per-level blob puts, coalesced into one message).
    PutLevels { id: u64, t: SimTime },
    /// SM-mode background network probe (§4.6).
    Probe {
        t: SimTime,
        reply: OneshotSender<(SimDuration, bool)>,
    },
    /// A worker crashed: fail its hosted replicas (sharded plane only).
    WorkerFail(usize),
    /// A worker came back cold: recover its replicas.
    WorkerRecover(usize),
    /// Surrender the accumulated write counters and the stage profile at
    /// teardown.
    Drain {
        reply: OneshotSender<CacheDrainReport>,
    },
}

/// Everything the cache-plane stage surrenders at teardown.
pub(crate) struct CacheDrainReport {
    pub inserts: u64,
    pub replica_writes: u64,
    pub remote_hops: u64,
    /// Logical message counters for the stage profile (§12 telemetry).
    pub profile: StageCounters,
}

struct CacheStage {
    vdb: Vdb,
    store: CacheStore,
    pipeline: Arc<dyn ServingPolicy>,
    inserts: u64,
    replica_writes: u64,
    remote_hops: u64,
    profile: StageCounters,
}

impl CacheStage {
    fn handle(&mut self, msg: CacheMsg) {
        match &msg {
            CacheMsg::Batch(msgs) => self.profile.note_batch(msgs.len()),
            m => {
                self.profile.processed += 1;
                if matches!(
                    m,
                    CacheMsg::Retrieve { .. } | CacheMsg::Probe { .. } | CacheMsg::Drain { .. }
                ) {
                    self.profile.replies += 1;
                }
            }
        }
        match msg {
            CacheMsg::Batch(msgs) => {
                for m in msgs {
                    self.handle(m);
                }
            }
            CacheMsg::Retrieve {
                worker,
                assigned,
                query,
                t,
                reply,
            } => reply.send(self.retrieve(worker, assigned, &query, t)),
            CacheMsg::Insert {
                origin,
                embedding,
                id,
            } => {
                let (writes, hops) = self.vdb.insert(Some(origin), embedding, id);
                // An insert dropped by a fully-dead cache plane persisted
                // nothing, so it must not count toward the
                // write-amplification counters (`replica_writes >=
                // inserts` stays an invariant).
                if writes > 0 {
                    self.inserts += 1;
                    self.replica_writes += u64::from(writes);
                    self.remote_hops += u64::from(hops);
                }
            }
            CacheMsg::PutLevels { id, t } => {
                for k in AC_LEVELS.iter().skip(1) {
                    self.store.put(
                        CacheKey {
                            prompt_id: id,
                            k: k.skipped_steps(),
                        },
                        t,
                    );
                }
            }
            CacheMsg::Probe { t, reply } => reply.send(self.store.probe(t)),
            CacheMsg::WorkerFail(w) => {
                if let Vdb::Sharded(plane) = &mut self.vdb {
                    plane.on_worker_fail(w);
                }
            }
            CacheMsg::WorkerRecover(w) => {
                if let Vdb::Sharded(plane) = &mut self.vdb {
                    plane.on_worker_recover(w);
                }
            }
            CacheMsg::Drain { reply } => reply.send(CacheDrainReport {
                inserts: self.inserts,
                replica_writes: self.replica_writes,
                remote_hops: self.remote_hops,
                profile: self.profile,
            }),
        }
    }

    /// The fused lookup: per-prompt K for NIRVANA comes from retrieval
    /// similarity (the cache gate maps hits to levels); Argus/PAC use the
    /// worker's assigned level. Bit-identical to the old inline sequence:
    /// one `nearest`, one gate call, at most one store fetch.
    fn retrieve(
        &mut self,
        worker: usize,
        assigned: AcLevel,
        query: &Embedding,
        t: SimTime,
    ) -> RetrieveReply {
        let (neighbour, locality) = self.vdb.nearest(worker, query);
        let (k_eff, similarity, neighbour_id) = match &neighbour {
            Some(hit) => (
                self.pipeline
                    .ac_level_for_hit(assigned, hit.similarity as f64),
                Some(hit.similarity as f64),
                Some(hit.payload),
            ),
            None => (AcLevel(0), None, None),
        };
        if k_eff.skipped_steps() > 0 {
            if let Some(nid) = neighbour_id {
                let outcome = self.store.fetch_routed(
                    CacheKey {
                        prompt_id: nid,
                        k: k_eff.skipped_steps(),
                    },
                    t,
                    locality,
                );
                return RetrieveReply {
                    fetch: Some(outcome),
                    k_eff,
                    similarity,
                    record_miss: false,
                };
            }
        }
        // No usable neighbour: the retrieval plane had nothing to offer
        // (empty/dead probe set, or a similarity too low to reuse) — a
        // cache miss served by full generation, recorded only where a
        // perfect neighbour *would* have been reused (probing the gate
        // with similarity 1), so levels that never reuse stay out of the
        // hit-rate.
        RetrieveReply {
            fetch: None,
            k_eff: AcLevel(0),
            similarity: None,
            record_miss: self
                .pipeline
                .ac_level_for_hit(assigned, 1.0)
                .skipped_steps()
                > 0,
        }
    }
}

/// Spawns the cache-plane stage around a pre-warmed index and store.
pub(crate) fn spawn(
    pacing: ActorPacing,
    vdb: Vdb,
    store: CacheStore,
    pipeline: Arc<dyn ServingPolicy>,
) -> StageHandle<CacheMsg> {
    let stage = CacheStage {
        vdb,
        store,
        pipeline,
        inserts: 0,
        replica_writes: 0,
        remote_hops: 0,
        profile: StageCounters::default(),
    };
    StageHandle::spawn("cache-plane", pacing, stage, CacheStage::handle)
}
