//! The planner stage: Eq. 1 allocation solving behind a mailbox.
//!
//! The stage owns every piece of solver state the old loop kept inline —
//! the per-(architecture, strategy) [`SolveCache`]s and the memo of
//! derated level profiles — and answers three queries: a full plan over
//! the fleet's pools ([`PlannerMsg::Plan`]), a single-pool re-solve for
//! the mid-minute demand re-split ([`PlannerMsg::Solve`]), and a derated
//! capacity probe ([`PlannerMsg::Capacity`]) for the retrieval-spike
//! re-split trigger.
//!
//! Heterogeneous plans solve their pools **data-parallel** on scoped
//! threads: every pool's problem is fully specified before the fan-out,
//! each thread gets that pool's own solve cache (pools are keyed by
//! architecture, so the caches are disjoint), and results re-join in pool
//! order. Eq. 1 solving is a pure function of the problem — cache hits
//! are debug-asserted bit-identical against fresh solves — so the
//! parallel schedule cannot perturb any result.

use argus_models::{latency, ApproxLevel, GpuArch, Strategy};
use argus_obs::StageCounters;

use super::{ActorPacing, OneshotSender, StageHandle};
use crate::capacity::{CapacityCtx, CapacityModel, EscalationCtx};
use crate::solver::{AllocationProblem, LevelProfile, SolveCache};
use std::sync::Arc;

/// Memoized per-architecture derated level profiles: heterogeneous runs
/// used to rebuild and re-derate every pool's Eq. 1 profiles on every
/// tick, although they only change when the ladder, the
/// retrieval-overhead estimate, or the §6 load-aware ablation change.
/// Keyed by the exact inputs, so a hit is bit-identical to a fresh
/// derivation (debug-asserted at the lookup site); cleared on fault
/// events as a hygiene bound.
#[derive(Debug, Default)]
struct DeratedCache {
    entries: Vec<(DerateKey, Vec<LevelProfile>)>,
}

/// Memo key of one derated profile set: `(architecture, strategy,
/// retrieval-overhead bits, load-aware-solver flag, cascade escalation
/// fingerprint)`. The fingerprint carries the exact rate bits and the
/// from/to levels, so two ticks with different observed escalation rates
/// never share a memo entry.
type DerateKey = (
    GpuArch,
    Strategy,
    u64,
    bool,
    Option<(u64, ApproxLevel, ApproxLevel)>,
);

/// The memo fingerprint of a pool's escalation context.
fn escalation_key(e: Option<EscalationCtx>) -> Option<(u64, ApproxLevel, ApproxLevel)> {
    e.map(|e| (e.rate.to_bits(), e.from, e.to))
}

/// Retained (architecture × strategy × overhead) profile sets.
const DERATED_CACHE_CAP: usize = 16;

/// One pool's solve inputs, as the driver sees them: the retrieval
/// overhead is resolved driver-side (the EWMA for AC strategies, zero for
/// SM) so the stage never reads mutable driver state.
#[derive(Debug, Clone)]
pub(crate) struct PoolSpec {
    pub gpu: GpuArch,
    pub strategy: Strategy,
    pub ladder: Vec<ApproxLevel>,
    pub workers: usize,
    pub overhead: f64,
    /// Observed cascade escalation demand to price into Eq. 1 (`None`
    /// for every non-cascade run).
    pub escalation: Option<EscalationCtx>,
}

/// One pool's solved allocation.
#[derive(Debug, Clone)]
pub(crate) struct PoolAllocation {
    /// Derated maximum capacity (QPM) at solve time.
    pub cap_qpm: f64,
    /// Demand share (QPM) the pool was solved with.
    pub share_qpm: f64,
    /// Solved per-level load vector (QPM).
    pub omega_qpm: Vec<f64>,
    /// Solved per-level worker counts.
    pub workers_per_level: Vec<usize>,
}

/// A full plan: per-pool allocations in pool order, plus the cluster-wide
/// saturation verdict.
pub(crate) struct PlanReply {
    pub saturated: bool,
    pub pools: Vec<PoolAllocation>,
}

/// Planner queries.
pub(crate) enum PlannerMsg {
    /// Solve the whole fleet for `total_demand` QPM: a single pool takes
    /// the demand unsplit (the paper's homogeneous testbed), several
    /// pools split it proportionally to their derated capacity and solve
    /// data-parallel.
    Plan {
        pools: Vec<PoolSpec>,
        total_demand: f64,
        reply: OneshotSender<PlanReply>,
    },
    /// Re-solve one pool at an explicit demand share (mid-minute
    /// re-split).
    Solve {
        pool: PoolSpec,
        demand_qpm: f64,
        reply: OneshotSender<PoolAllocation>,
    },
    /// The pool's derated maximum capacity (QPM) at the spec's overhead —
    /// the retrieval-spike trigger compares this against the plan-time
    /// share.
    Capacity {
        pool: PoolSpec,
        reply: OneshotSender<f64>,
    },
    /// Fault hygiene: drop memoized derated profiles.
    Invalidate,
    /// Surrender the stage profile at teardown (§12 telemetry).
    Finish { reply: OneshotSender<StageCounters> },
}

struct PlannerStage {
    capacity_model: Arc<dyn CapacityModel>,
    slo_secs: f64,
    max_batch: u32,
    load_aware: bool,
    /// Per-(architecture, strategy) solve caches. Disjoint per pool, so
    /// parallel pool solves can each take theirs without sharing.
    solve_caches: Vec<((GpuArch, Strategy), SolveCache)>,
    derated: DeratedCache,
    profile: StageCounters,
}

impl PlannerStage {
    fn handle(&mut self, msg: PlannerMsg) {
        self.profile.processed += 1;
        if !matches!(msg, PlannerMsg::Invalidate) {
            self.profile.replies += 1;
        }
        match msg {
            PlannerMsg::Plan {
                pools,
                total_demand,
                reply,
            } => reply.send(self.plan(pools, total_demand)),
            PlannerMsg::Solve {
                pool,
                demand_qpm,
                reply,
            } => {
                let problem = self.pool_problem(&pool, demand_qpm);
                let cap_qpm = problem.max_capacity_qpm();
                let allocation = {
                    let cache = self.cache_for(pool.gpu, pool.strategy);
                    problem.solve_cached(cache)
                };
                reply.send(PoolAllocation {
                    cap_qpm,
                    share_qpm: demand_qpm,
                    omega_qpm: allocation.omega_qpm,
                    workers_per_level: allocation.workers_per_level,
                });
            }
            PlannerMsg::Capacity { pool, reply } => {
                reply.send(self.pool_problem(&pool, 0.0).max_capacity_qpm())
            }
            PlannerMsg::Invalidate => self.derated.entries.clear(),
            PlannerMsg::Finish { reply } => reply.send(self.profile),
        }
    }

    fn plan(&mut self, pools: Vec<PoolSpec>, total_demand: f64) -> PlanReply {
        if let [pool] = pools.as_slice() {
            // Homogeneous fast path (the paper's testbed): no demand split.
            let problem = self.pool_problem(pool, total_demand);
            let cap_qpm = problem.max_capacity_qpm();
            let allocation = {
                let cache = self.cache_for(pool.gpu, pool.strategy);
                problem.solve_cached(cache)
            };
            return PlanReply {
                saturated: allocation.saturated,
                pools: vec![PoolAllocation {
                    cap_qpm,
                    share_qpm: total_demand,
                    omega_qpm: allocation.omega_qpm,
                    workers_per_level: allocation.workers_per_level,
                }],
            };
        }
        // Heterogeneous: fully specify every pool's problem (shares
        // proportional to derated capacity), then solve them in parallel.
        let mut inputs: Vec<(PoolSpec, AllocationProblem)> = pools
            .into_iter()
            .map(|pool| {
                let problem = self.pool_problem(&pool, 0.0);
                (pool, problem)
            })
            .collect();
        let total_cap: f64 = inputs.iter().map(|(_, p)| p.max_capacity_qpm()).sum();
        let saturated = total_demand > total_cap + 1e-9;
        let mut work: Vec<(PoolSpec, AllocationProblem, SolveCache)> = inputs
            .drain(..)
            .map(|(pool, mut problem)| {
                problem.demand_qpm = if total_cap > 0.0 {
                    total_demand * problem.max_capacity_qpm() / total_cap
                } else {
                    0.0
                };
                let cache = self.take_cache(pool.gpu, pool.strategy);
                (pool, problem, cache)
            })
            .collect();
        // Data-parallel Eq. 1: one scoped thread per pool, each with its
        // own disjoint solve cache; joined in pool order, so the merge is
        // order-deterministic regardless of the thread schedule.
        let solved: Vec<PoolAllocation> = std::thread::scope(|s| {
            let handles: Vec<_> = work
                .iter_mut()
                .map(|(_, problem, cache)| {
                    s.spawn(|| {
                        let cap_qpm = problem.max_capacity_qpm();
                        let allocation = problem.solve_cached(cache);
                        PoolAllocation {
                            cap_qpm,
                            share_qpm: problem.demand_qpm,
                            omega_qpm: allocation.omega_qpm,
                            workers_per_level: allocation.workers_per_level,
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool solve thread panicked"))
                .collect()
        });
        for (pool, _, cache) in work {
            self.put_cache(pool.gpu, pool.strategy, cache);
        }
        PlanReply {
            saturated,
            pools: solved,
        }
    }

    /// Builds the Eq. 1 problem for one pool, with derated profiles
    /// memoized per (architecture, strategy, overhead, load-aware flag);
    /// debug builds assert each hit against a fresh derivation.
    fn pool_problem(&mut self, pool: &PoolSpec, demand_qpm: f64) -> AllocationProblem {
        let key = (
            pool.gpu,
            pool.strategy,
            pool.overhead.to_bits(),
            self.load_aware,
            escalation_key(pool.escalation),
        );
        let levels = match self
            .derated
            .entries
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.clone())
        {
            Some(cached) => {
                debug_assert_eq!(
                    cached,
                    self.derated_profiles(pool),
                    "memoized derated profiles diverged from a fresh derivation"
                );
                cached
            }
            None => {
                let fresh = self.derated_profiles(pool);
                if self.derated.entries.len() == DERATED_CACHE_CAP {
                    self.derated.entries.remove(0);
                }
                self.derated.entries.push((key, fresh.clone()));
                fresh
            }
        };
        AllocationProblem {
            levels,
            workers: pool.workers,
            demand_qpm,
        }
    }

    /// Derives one pool's derated Eq. 1 level profiles from scratch: the
    /// run's [`CapacityModel`] answers the raw per-level peaks (under the
    /// batch bound and SLO), then SLO-aware queueing derating applies on
    /// top.
    fn derated_profiles(&self, pool: &PoolSpec) -> Vec<LevelProfile> {
        let (ladder, strategy, gpu) = (&pool.ladder[..], pool.strategy, pool.gpu);
        let ctx = CapacityCtx {
            max_batch: self.max_batch,
            slo_secs: self.slo_secs,
            retrieval_overhead_secs: pool.overhead,
            escalation: pool.escalation,
        };
        // Queueing derating budgets against each level's *wall* latency —
        // for batched plans the full inflated pass, not the amortized
        // service time (Batch1Model: identical by definition). The
        // cascade escalation surcharge is a throughput-side price, not a
        // wall-latency one (the second pass is a separate dispatch), so
        // latencies are derived escalation-free.
        let wall_ctx = CapacityCtx {
            escalation: None,
            ..ctx
        };
        let latencies: Vec<f64> = ladder
            .iter()
            .map(|&lvl| self.capacity_model.job_latency_secs(lvl, gpu, &wall_ctx))
            .collect();
        let mut problem = AllocationProblem::from_capacity_model(
            self.capacity_model.as_ref(),
            ladder,
            gpu,
            &ctx,
            1,
            0.0,
        )
        .with_slo_derating_latencies(self.slo_secs, &latencies);
        if self.load_aware && strategy == Strategy::Sm {
            // §6 ablation: charge each level's peak throughput with the
            // amortized load time of switching a worker to it.
            for lp in problem.levels.iter_mut() {
                let load =
                    latency::load_secs(lp.level.resident_model(), latency::Loader::Accelerate);
                let amortized = load / 60.0; // one potential switch per tick
                lp.peak_qpm = 60.0 / (60.0 / lp.peak_qpm + amortized) * 1.0;
            }
        }
        problem.levels
    }

    fn cache_for(&mut self, gpu: GpuArch, strategy: Strategy) -> &mut SolveCache {
        let key = (gpu, strategy);
        if let Some(i) = self.solve_caches.iter().position(|(k, _)| *k == key) {
            return &mut self.solve_caches[i].1;
        }
        self.solve_caches.push((key, SolveCache::new()));
        &mut self.solve_caches.last_mut().expect("just pushed").1
    }

    fn take_cache(&mut self, gpu: GpuArch, strategy: Strategy) -> SolveCache {
        let key = (gpu, strategy);
        match self.solve_caches.iter().position(|(k, _)| *k == key) {
            Some(i) => self.solve_caches.remove(i).1,
            None => SolveCache::new(),
        }
    }

    fn put_cache(&mut self, gpu: GpuArch, strategy: Strategy, cache: SolveCache) {
        self.solve_caches.push(((gpu, strategy), cache));
    }
}

/// Spawns the planner stage.
pub(crate) fn spawn(
    pacing: ActorPacing,
    capacity_model: Arc<dyn CapacityModel>,
    slo_secs: f64,
    max_batch: u32,
    load_aware: bool,
) -> StageHandle<PlannerMsg> {
    let stage = PlannerStage {
        capacity_model,
        slo_secs,
        max_batch,
        load_aware,
        solve_caches: Vec::new(),
        derated: DeratedCache::default(),
        profile: StageCounters::default(),
    };
    StageHandle::spawn("planner", pacing, stage, PlannerStage::handle)
}
