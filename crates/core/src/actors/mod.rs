//! The message-passing actor control plane.
//!
//! The control plane decomposes the former monolithic tick loop into
//! independently-paced stages connected by bounded channels:
//!
//! * [`planner`] — owns the Eq. 1 solver state ([`crate::solver::SolveCache`]
//!   and the derated-profile memo) and answers allocation requests, solving
//!   heterogeneous pools **data-parallel** inside the stage;
//! * [`cacheplane`] — owns the retrieval index (flat / LSH / sharded) and
//!   the blob [`argus_cachestore::CacheStore`]; retrieval is a
//!   request/reply round trip, while inserts and puts are fire-and-forget
//!   writes that drain off the caller's critical path;
//! * [`metrics`] — owns every accounting sink (per-minute collector,
//!   level-completion counts, quality reservoir, per-pool outcomes,
//!   classifier-accuracy sampling) and absorbs it all as fire-and-forget
//!   telemetry;
//! * [`driver`] — the event pump: pops virtual-time events and drives the
//!   cluster, routing, the strategy switcher and the stages. Rebuilds
//!   [`crate::system::SystemSimulation::run`] on top of the stage handles.
//!
//! # Channel contracts and determinism
//!
//! Every mailbox is a **bounded** [`std::sync::mpsc::sync_channel`] with a
//! **single producer** (the driver). A full mailbox applies backpressure —
//! the send blocks — which can only delay wall-clock progress, never
//! reorder messages. Each stage therefore consumes its operations in
//! exactly the order the old synchronous loop performed them, so stage
//! state (RNG draw sequences, f64 accumulation order, FIFO evictions) is
//! bit-identical to the pre-actor implementation. Queries that the driver
//! needs an answer to (retrieval, planning, probes) carry a [`oneshot`]
//! reply channel and rendezvous synchronously; telemetry and writes are
//! fire-and-forget and only rendezvous once, at run teardown.
//! Fire-and-forget traffic is additionally *coalesced*: the driver
//! buffers writes and telemetry and ships them as one `Batch` envelope,
//! flushing before any rendezvous on the same stage — the delivery
//! granularity changes, the consumption order does not.
//!
//! Parallelism inside a stage is allowed exactly where the merge is
//! element-wise deterministic: the planner solves per-pool Eq. 1 problems
//! on scoped threads and re-joins them in pool order (each solve is a pure
//! function of its problem), and nothing else races. No stage reads the
//! wall clock; virtual time travels inside messages.

pub(crate) mod cacheplane;
pub(crate) mod driver;
pub(crate) mod fleet;
pub(crate) mod metrics;
pub(crate) mod planner;

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::thread::JoinHandle;

/// Mailbox depth of every stage. Deep enough that fire-and-forget
/// telemetry bursts (batched completions, tick-time sampling) never stall
/// the driver in practice, small enough to bound memory under sustained
/// imbalance.
const MAILBOX_CAP: usize = 4096;

/// Iterations an expectant receiver spins before parking. Replies to
/// driver queries arrive within a few microseconds; spinning through that
/// window keeps the request/reply round trip off the OS scheduler.
const SPIN_RECVS: u32 = 10_000;

/// The actual spin budget: [`SPIN_RECVS`] only when the machine has
/// spare cores for the stages to spin on. With fewer cores than stages —
/// in particular on a single-core host — a spinning receiver burns the
/// very quantum the *sender* needs to produce the message it is waiting
/// for, turning every rendezvous into a scheduler-granularity stall;
/// there, parking immediately is strictly faster.
fn spin_budget() -> u32 {
    static BUDGET: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *BUDGET.get_or_init(|| {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores > 4 {
            SPIN_RECVS
        } else {
            0
        }
    })
}

/// Depth of a [`oneshot`] reply channel: exactly one reply, so the
/// stage's send never blocks (D3: every channel cap is a named constant).
const ONESHOT_CAP: usize = 1;

/// How driver↔stage rendezvous are executed — the determinism-audit knob
/// behind [`crate::system::RunConfig::with_actor_pacing`].
///
/// The D1–D3 invariants (no wall-clock reads, ordered iteration, bounded
/// single-producer mailboxes) exist precisely so that the execution
/// substrate cannot leak into results; this knob pins both extremes of
/// that substrate so `tests/determinism.rs` can assert the run outcome is
/// bit-identical across them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ActorPacing {
    /// Adaptive (production) pacing: a rendezvous runs inline on the
    /// caller whenever the mailbox is provably drained, through the
    /// mailbox otherwise.
    #[default]
    Auto,
    /// Force the single-core fast path: every rendezvous waits for the
    /// mailbox to drain and then executes inline on the caller.
    SingleCoreInline,
    /// Force multi-threaded pacing: every rendezvous goes through the
    /// mailbox and is executed by the stage's own OS thread.
    Threaded,
}

/// One-shot reply channel: a rendezvous buffer of depth 1.
pub(crate) struct OneshotSender<T>(SyncSender<T>);

/// Receiving half of a [`oneshot`].
pub(crate) struct OneshotReceiver<T>(Receiver<T>);

/// Creates a one-shot reply channel.
pub(crate) fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let (tx, rx) = sync_channel(ONESHOT_CAP);
    (OneshotSender(tx), OneshotReceiver(rx))
}

impl<T> OneshotSender<T> {
    /// Sends the reply. The buffer has room for it by construction, so
    /// this never blocks.
    pub(crate) fn send(self, value: T) {
        // The receiver half being gone means the requester died mid-query;
        // the stage itself has nothing further to do with the reply.
        let _ = self.0.send(value);
    }
}

/// Yields an expectant single-core receiver takes before futex-parking.
/// The replying stage is already runnable (the request send woke it), so
/// handing it the core with `yield_now` completes the rendezvous in one
/// scheduler hop; parking would add a futex wait + wake pair on top.
const YIELD_RECVS: u32 = 64;

impl<T> OneshotReceiver<T> {
    /// Waits for the reply, spinning or yielding briefly before parking.
    pub(crate) fn recv(self) -> T {
        if spin_budget() == 0 {
            for _ in 0..YIELD_RECVS {
                match self.0.try_recv() {
                    Ok(v) => return v,
                    Err(TryRecvError::Empty) => std::thread::yield_now(),
                    Err(TryRecvError::Disconnected) => {
                        panic!("stage dropped a pending reply")
                    }
                }
            }
        }
        spin_recv(&self.0).expect("stage dropped a pending reply")
    }
}

/// Spin-then-park receive shared by reply waits and stage main loops.
fn spin_recv<T>(rx: &Receiver<T>) -> Option<T> {
    for _ in 0..spin_budget() {
        match rx.try_recv() {
            Ok(v) => return Some(v),
            Err(TryRecvError::Empty) => std::hint::spin_loop(),
            Err(TryRecvError::Disconnected) => return None,
        }
    }
    rx.recv().ok()
}

/// Handle to a spawned stage: the bounded mailbox plus the join handle.
/// Dropping the handle closes the mailbox, lets the stage drain and
/// joins it (propagating a stage panic instead of losing it).
///
/// # The inline fast path
///
/// The stage's state lives behind an `Arc<Mutex<_>>` shared between the
/// stage thread and the handle, and the handle (whose owner is the
/// stage's *single producer*) counts its sends while the stage publishes
/// a processed-message counter. When the two agree the mailbox is
/// provably empty, so a request may execute the handler **inline on the
/// calling thread** under the state lock — same state, same operation
/// order, zero scheduler hops. This is what makes rendezvous affordable
/// on hosts where driver and stage share one core: a mailbox round trip
/// there costs two context switches, ~10× the typical handler body.
/// Queued traffic still flows through the mailbox and is consumed by the
/// stage thread, so fire-and-forget writes overlap with the driver
/// whenever there are spare cores.
pub(crate) struct StageHandle<M> {
    tx: Option<SyncSender<M>>,
    thread: Option<JoinHandle<()>>,
    name: &'static str,
    /// Rendezvous execution mode (see [`ActorPacing`]).
    pacing: ActorPacing,
    /// Messages handed to the mailbox (inline executions not included).
    sent: std::cell::Cell<u64>,
    /// Messages the stage thread has consumed, published with `Release`
    /// after the state lock is dropped — observing `processed == sent`
    /// therefore guarantees both an empty mailbox and a free lock.
    processed: std::sync::Arc<std::sync::atomic::AtomicU64>,
    /// Locks the shared state and runs the handler on the caller.
    inline: Box<dyn Fn(M) + Send>,
}

impl<M: Send + 'static> StageHandle<M> {
    /// Spawns a stage: `state` is shared between the stage thread (which
    /// consumes mailbox messages in send order until the handle drops)
    /// and the handle's inline fast path.
    pub(crate) fn spawn<S, F>(name: &'static str, pacing: ActorPacing, state: S, handler: F) -> Self
    where
        S: Send + 'static,
        F: Fn(&mut S, M) + Send + Sync + 'static,
    {
        let (tx, rx) = sync_channel::<M>(MAILBOX_CAP);
        let state = std::sync::Arc::new(std::sync::Mutex::new(state));
        let handler = std::sync::Arc::new(handler);
        let processed = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let thread = {
            let state = std::sync::Arc::clone(&state);
            let handler = std::sync::Arc::clone(&handler);
            let processed = std::sync::Arc::clone(&processed);
            std::thread::Builder::new()
                .name(format!("argus-{name}"))
                .spawn(move || {
                    while let Some(msg) = spin_recv(&rx) {
                        handler(&mut state.lock().expect("stage state poisoned"), msg);
                        processed.fetch_add(1, std::sync::atomic::Ordering::Release);
                    }
                })
                .expect("spawning a control-plane stage")
        };
        let inline = Box::new(move |msg: M| {
            handler(&mut state.lock().expect("stage state poisoned"), msg);
        });
        StageHandle {
            tx: Some(tx),
            thread: Some(thread),
            name,
            pacing,
            sent: std::cell::Cell::new(0),
            processed,
            inline,
        }
    }

    /// Fire-and-forget send; blocks only on mailbox backpressure.
    pub(crate) fn send(&self, msg: M) {
        self.tx
            .as_ref()
            .expect("stage already shut down")
            .send(msg)
            .unwrap_or_else(|_| panic!("{} stage hung up", self.name));
        self.sent.set(self.sent.get() + 1);
    }

    /// Whether the stage has consumed every message sent so far. While
    /// this holds (and the owner is the sole producer), executing the
    /// next operation inline cannot reorder it against queued work.
    pub(crate) fn is_drained(&self) -> bool {
        self.processed.load(std::sync::atomic::Ordering::Acquire) == self.sent.get()
    }

    /// Executes a message inline on the calling thread, under the state
    /// lock. Callers must have observed [`StageHandle::is_drained`] with
    /// no sends in between, or the operation jumps the mailbox queue.
    pub(crate) fn run_inline(&self, msg: M) {
        (self.inline)(msg);
    }

    /// Whether the next rendezvous should execute inline on the caller,
    /// per the pacing mode. Under [`ActorPacing::SingleCoreInline`] this
    /// first waits for the stage thread to drain every queued message, so
    /// an inline execution can never jump the mailbox queue.
    pub(crate) fn use_inline(&self) -> bool {
        match self.pacing {
            ActorPacing::Auto => self.is_drained(),
            ActorPacing::SingleCoreInline => {
                while !self.is_drained() {
                    std::thread::yield_now();
                }
                true
            }
            ActorPacing::Threaded => false,
        }
    }

    /// Request/reply rendezvous: builds the message around a fresh
    /// [`oneshot`] reply channel and waits for the answer — inline when
    /// the mailbox is drained (per the pacing mode), through the mailbox
    /// otherwise.
    pub(crate) fn request<R>(&self, make: impl FnOnce(OneshotSender<R>) -> M) -> R {
        let (reply_tx, reply_rx) = oneshot();
        if self.use_inline() {
            (self.inline)(make(reply_tx));
        } else {
            self.send(make(reply_tx));
        }
        reply_rx.recv()
    }
}

impl<M> Drop for StageHandle<M> {
    fn drop(&mut self) {
        self.tx.take();
        if let Some(thread) = self.thread.take() {
            if thread.join().is_err() && !std::thread::panicking() {
                panic!("{} stage panicked", self.name);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_processes_messages_in_order_and_replies() {
        let handle: StageHandle<(u64, OneshotSender<u64>)> = StageHandle::spawn(
            "test",
            ActorPacing::Auto,
            0u64,
            |sum, (v, reply): (u64, OneshotSender<u64>)| {
                *sum += v;
                reply.send(*sum);
            },
        );
        assert_eq!(handle.request(|r| (3, r)), 3);
        assert_eq!(handle.request(|r| (4, r)), 7);
    }

    #[test]
    fn dropping_the_handle_joins_the_stage() {
        let handle: StageHandle<u32> =
            StageHandle::spawn("drain", ActorPacing::Auto, Vec::new(), |v, m| v.push(m));
        for i in 0..100 {
            handle.send(i);
        }
        drop(handle); // must not deadlock or panic
    }
}
