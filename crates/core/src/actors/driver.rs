//! The driver: the virtual-time event pump of the actor control plane.
//!
//! [`SystemSimulation::run`] lives here, rebuilt on the stage handles: the
//! driver pops discrete events and drives the cluster, routing, batching
//! and the strategy switcher synchronously, while planning goes through
//! the planner stage (request/reply), retrieval through the cache-plane
//! stage (request/reply for lookups, fire-and-forget for writes) and all
//! accounting through the metrics stage (fire-and-forget, drained once at
//! teardown).
//!
//! What stays on the driver is exactly the state the determinism bar pins
//! to synchronous execution: the cluster and switcher participate in the
//! reentrant chain `service_for → switcher.on_retrieval →
//! begin_transition → reallocate → apply_allocation → maybe_start` (a
//! retrieval observed mid-dispatch can re-plan the very worker being
//! dispatched — see the batch guards in [`SystemSimulation::maybe_start`]),
//! so deferring any of it to a stage would change which worker state each
//! step observes. Everything that leaves the driver is either a pure
//! query answered in rendezvous or telemetry whose consumption order the
//! single-producer FIFO mailbox fixes to the old loop's call order.

use argus_cachestore::FetchStatus;
use argus_classifier::{label_prompts, train, TrainerConfig};
use argus_cluster::{SwitchOutcome, WorkerId};
use argus_des::rng::log_normal;
use argus_des::{SimDuration, SimTime};
use argus_embed::{embed, Embedding};
use argus_models::batching::unet_pass_profile;
use argus_models::{latency, AcLevel, ApproxLevel, GpuArch, Strategy};
use argus_obs::{SpanEvent, SpanKind, StageProfile};
use argus_prompts::Prompt;

use super::cacheplane::CacheMsg;
use super::fleet::FleetMsg;
use super::metrics::MetricsMsg;
use super::planner::{PlannerMsg, PoolSpec};
use crate::capacity::EscalationCtx;
use crate::fleet::{hourly_rate, CostReport, PoolSignal, ScaleAction};
use crate::metrics::PoolStats;
use crate::oda::{oda, Pasm};
use crate::pipeline::{RouteCtx, SelectCtx, TickAction};
use crate::scheduler::PoolView;
use crate::switcher::{SwitchCommand, SwitcherState};
use crate::system::{
    alloc_gauge_name, provisioning_target, Event, Exec, FaultEvent, PoolPlan, RunOutcome,
    SystemSimulation, E2E_BOUNDS, PROBE, RECENT_POOL, RETRIEVAL_BOUNDS, TICK,
};

/// Coalescing threshold for fire-and-forget sends. Each send to a parked
/// stage costs a futex wake — on a single-core host a full scheduler
/// round trip — so the driver buffers telemetry and cache writes and
/// ships them as one [`MetricsMsg::Batch`] / [`CacheMsg::Batch`] per this
/// many messages (or earlier, whenever a request/reply rendezvous needs
/// the stage to have observed every prior write).
const SEND_BATCH: usize = 64;

/// The stage mailbox capacity, as the queue-depth gauges clamp to it.
const MAILBOX_CAP_U64: u64 = super::MAILBOX_CAP as u64;

impl SystemSimulation {
    /// Buffers a telemetry message (flushed at [`SEND_BATCH`], before the
    /// teardown rendezvous, and on drop of the run).
    fn tell_metrics(&mut self, msg: MetricsMsg) {
        self.metrics_buf.push(msg);
        if self.metrics_buf.len() >= SEND_BATCH {
            self.flush_metrics();
        }
    }

    fn flush_metrics(&mut self) {
        if !self.metrics_buf.is_empty() {
            let batch = std::mem::replace(&mut self.metrics_buf, Vec::with_capacity(SEND_BATCH));
            self.mailboxes.metrics.on_send(MAILBOX_CAP_U64);
            self.metrics_stage.send(MetricsMsg::Batch(batch));
        }
    }

    /// Buffers a fire-and-forget cache write. Every cache-plane
    /// request/reply goes through [`SystemSimulation::ask_cache`], which
    /// flushes first, so lookups observe all prior writes in order.
    fn tell_cache(&mut self, msg: CacheMsg) {
        self.cache_buf.push(msg);
        if self.cache_buf.len() >= SEND_BATCH {
            self.flush_cache();
        }
    }

    fn flush_cache(&mut self) {
        if !self.cache_buf.is_empty() {
            let batch = std::mem::replace(&mut self.cache_buf, Vec::with_capacity(SEND_BATCH));
            self.mailboxes.cache.on_send(MAILBOX_CAP_U64);
            self.cache_stage.send(CacheMsg::Batch(batch));
        }
    }

    /// Cache-plane rendezvous: applies buffered writes, then asks. When
    /// the stage is drained both steps run inline on the driver (see the
    /// [`super::StageHandle`] fast path); otherwise the batch is flushed
    /// through the mailbox ahead of the request, so either way every
    /// prior write is observed in order.
    fn ask_cache<R>(&mut self, make: impl FnOnce(super::OneshotSender<R>) -> CacheMsg) -> R {
        if self.cache_stage.use_inline() {
            if !self.cache_buf.is_empty() {
                let batch = std::mem::replace(&mut self.cache_buf, Vec::with_capacity(SEND_BATCH));
                self.mailboxes.cache.on_send(MAILBOX_CAP_U64);
                self.cache_stage.run_inline(CacheMsg::Batch(batch));
            }
        } else {
            self.flush_cache();
        }
        self.mailboxes.cache.on_send(MAILBOX_CAP_U64);
        let r = self.cache_stage.request(make);
        self.mailboxes.cache.on_rendezvous();
        r
    }

    /// Planner fire-and-forget with the queue-depth gauge maintained.
    fn planner_send(&mut self, msg: PlannerMsg) {
        self.mailboxes.planner.on_send(MAILBOX_CAP_U64);
        self.planner_stage.send(msg);
    }

    /// Planner rendezvous with the queue-depth gauge maintained.
    fn planner_request<R>(
        &mut self,
        make: impl FnOnce(super::OneshotSender<R>) -> PlannerMsg,
    ) -> R {
        self.mailboxes.planner.on_send(MAILBOX_CAP_U64);
        let r = self.planner_stage.request(make);
        self.mailboxes.planner.on_rendezvous();
        r
    }

    /// Fleet fire-and-forget with the queue-depth gauge maintained.
    pub(crate) fn fleet_send(&mut self, msg: FleetMsg) {
        self.mailboxes.fleet.on_send(MAILBOX_CAP_U64);
        self.fleet_stage.send(msg);
    }

    /// Fleet rendezvous with the queue-depth gauge maintained.
    fn fleet_request<R>(&mut self, make: impl FnOnce(super::OneshotSender<R>) -> FleetMsg) -> R {
        self.mailboxes.fleet.on_send(MAILBOX_CAP_U64);
        let r = self.fleet_stage.request(make);
        self.mailboxes.fleet.on_rendezvous();
        r
    }

    // ---------------------------------------------------------------- //
    // Telemetry plane (RunConfig::with_telemetry). Every helper is a
    // no-op when the recorder is off, so default runs record nothing
    // and stay bit-identical to builds without the plane.
    // ---------------------------------------------------------------- //

    /// Whether span recording wants this job (cheap pre-check so hot
    /// paths skip building events for unsampled jobs).
    fn obs_wants(&self, job: usize) -> bool {
        self.recorder.as_ref().is_some_and(|r| r.wants(job as u32))
    }

    /// Records one lifecycle span.
    fn obs_span(&mut self, ev: SpanEvent) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.span(ev);
        }
    }

    /// Bumps a cumulative counter series.
    fn obs_counter_add(&mut self, name: &'static str, delta: u64) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.registry.counter_add(name, delta);
        }
    }

    /// Records into a fixed-bound histogram series.
    fn obs_hist(&mut self, name: &'static str, bounds: &'static [f64], v: f64) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.registry.hist_record(name, bounds, v);
        }
    }

    /// Sets a gauge series.
    fn obs_gauge_set(&mut self, name: &'static str, v: f64) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.registry.gauge_set(name, v);
        }
    }

    /// The next batched-dispatch id (monotone per started pass).
    fn next_batch_id(&mut self) -> u32 {
        let id = self.batch_seq;
        self.batch_seq = self.batch_seq.wrapping_add(1);
        id
    }

    /// Per-tick gauge sweep + ring-buffer sample, taken after the tick's
    /// fleet work so the sample reflects the post-scale fleet.
    /// `saturated` is the solver's verdict captured before
    /// [`SystemSimulation::fleet_tick`] consumes it.
    fn obs_tick(&mut self, t: SimTime, saturated: bool) {
        if self.recorder.is_none() {
            return;
        }
        let backlog: u64 = self
            .cluster
            .iter()
            .filter(|w| !w.is_failed())
            .map(|w| w.backlog() as u64)
            .sum();
        let alive = self.cluster.alive().len() as f64;
        let draining = self
            .cluster
            .iter()
            .filter(|w| !w.is_failed() && w.is_draining())
            .count() as f64;
        // The instantaneous billing rate: everything rented right now
        // (draining spot instances included), at its pool's rate.
        let dollars_per_hour: f64 = self
            .cluster
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.is_failed())
            .map(|(i, w)| {
                let discount = self.worker_spot.get(i).copied().flatten().unwrap_or(0.0);
                hourly_rate(w.gpu(), discount)
            })
            .sum();
        let resplits = self.demand_resplits;
        let rec = self.recorder.as_mut().expect("checked above");
        rec.registry.counter_set("resplits", resplits);
        rec.registry.gauge_set("backlog", backlog as f64);
        rec.registry
            .gauge_set("saturated", if saturated { 1.0 } else { 0.0 });
        rec.registry.gauge_set("fleet_alive", alive);
        rec.registry.gauge_set("draining", draining);
        rec.registry.gauge_set("dollars_per_hour", dollars_per_hour);
        rec.sample_tick(t.as_minutes() as u32, t.as_micros());
    }

    /// The ladder the system currently plans and routes with (pipeline
    /// stage: [`crate::pipeline::LevelPlanner`]).
    fn active_ladder(&self) -> Vec<ApproxLevel> {
        self.pipeline.active_ladder(&self.switcher)
    }

    /// Whether cache retrieval is attempted for new jobs right now
    /// (pipeline stage: [`crate::pipeline::CacheGate`]).
    fn cache_active(&self) -> bool {
        self.pipeline.cache_active(&self.switcher)
    }

    fn embedding_of(&mut self, idx: usize) -> Embedding {
        if self.embeddings[idx].is_none() {
            self.embeddings[idx] = Some(embed(&self.prompts[idx].text));
        }
        self.embeddings[idx].clone().expect("just inserted")
    }

    /// Runs to completion and reports.
    pub fn run(mut self) -> RunOutcome {
        while let Some((t, ev)) = self.queue.pop() {
            match ev {
                Event::Arrive(i) => self.on_arrive(i as usize, t),
                Event::Finish(w, job) => self.on_finish(w, job as usize, t),
                Event::LoadDone(w) => self.on_load_done(w, t),
                Event::Tick => self.on_tick(t),
                Event::Probe => self.on_probe(t),
                Event::Fault(i) => self.on_fault(i as usize, t),
                Event::Provision(wi) => self.on_provision(wi as usize, t),
                Event::Preempt(wi) => self.on_preempt_fire(wi as usize, t),
            }
        }
        let end = self.queue.now().max(self.horizon);
        // Jobs still stuck on workers (e.g. total failure) are lost.
        let stranded: Vec<u32> = self
            .cluster
            .iter()
            .flat_map(|w| w.queued_jobs().chain(w.in_flight_jobs()))
            .map(|j| j as u32)
            .collect();
        self.obs_counter_add("lost", stranded.len() as u64);
        for job in stranded {
            self.tell_metrics(MetricsMsg::Lost(end));
            self.obs_span(SpanEvent::new(end, job, SpanKind::Lost));
        }
        // Teardown rendezvous: the cache plane surrenders its insert
        // receipts, the metrics stage folds them in and finalizes.
        let drain = self.ask_cache(|reply| CacheMsg::Drain { reply });
        self.tell_metrics(MetricsMsg::CacheInsertTotals {
            inserts: drain.inserts,
            replica_writes: drain.replica_writes,
            remote_hops: drain.remote_hops,
        });
        self.flush_metrics();
        self.mailboxes.metrics.on_send(MAILBOX_CAP_U64);
        let report = self
            .metrics_stage
            .request(|reply| MetricsMsg::Finish { end, reply });
        self.mailboxes.metrics.on_rendezvous();
        // Fleet teardown: close the billed-membership integral at `end`
        // and fold the completion count into the dollar report.
        let fleet_report = self.fleet_request(|reply| FleetMsg::Finish { end, reply });
        let total_dollars = fleet_report.on_demand_dollars + fleet_report.spot_dollars;
        let cost = CostReport {
            total_dollars,
            on_demand_dollars: fleet_report.on_demand_dollars,
            spot_dollars: fleet_report.spot_dollars,
            dollars_per_1k_images: if report.totals.completed == 0 {
                0.0
            } else {
                total_dollars * 1000.0 / report.totals.completed as f64
            },
            gpu_minutes: fleet_report.gpu_minutes,
        };
        let mut level_completions: Vec<(ApproxLevel, u64)> =
            report.level_completions.into_iter().collect();
        level_completions.sort_by_key(|&(l, _)| l.ordinal());
        // Per-pool reporting covers the whole configured fleet: spot
        // workers fold into their architecture's entry (appended when no
        // on-demand pool shares the architecture).
        let mut configured_pools = self.cfg.effective_pools();
        for sp in &self.cfg.spot_pools {
            match configured_pools.iter_mut().find(|(g, _)| *g == sp.gpu) {
                Some(e) => e.1 += sp.workers,
                None => configured_pools.push((sp.gpu, sp.workers)),
            }
        }
        let pools = configured_pools
            .into_iter()
            .map(|(gpu, workers)| {
                let (completions, violations) =
                    report.pool_outcomes.get(&gpu).copied().unwrap_or((0, 0));
                let (alloc_sum, samples) = report
                    .pool_alloc_samples
                    .get(&gpu)
                    .copied()
                    .unwrap_or((0, 0));
                PoolStats {
                    gpu,
                    workers,
                    completions,
                    violations,
                    mean_allocated_workers: if samples == 0 {
                        0.0
                    } else {
                        alloc_sum as f64 / samples as f64
                    },
                }
            })
            .collect();
        // Telemetry teardown: the planner surrenders its profile,
        // driver-side envelope gauges pair with each stage's own
        // counters, and the recorder finishes into the outcome (plus any
        // configured exports).
        let (spans, timeline, stage_profiles) = if let Some(mut rec) = self.recorder.take() {
            let planner_counters = self.planner_request(|reply| PlannerMsg::Finish { reply });
            let m = &self.mailboxes;
            let stage_profiles = vec![
                StageProfile {
                    stage: "planner",
                    counters: planner_counters,
                    sent: m.planner.sent(),
                    mailbox_hwm: m.planner.hwm(),
                },
                StageProfile {
                    stage: "cache-plane",
                    counters: drain.profile,
                    sent: m.cache.sent(),
                    mailbox_hwm: m.cache.hwm(),
                },
                StageProfile {
                    stage: "metrics",
                    counters: report.profile,
                    sent: m.metrics.sent(),
                    mailbox_hwm: m.metrics.hwm(),
                },
                StageProfile {
                    stage: "fleet",
                    counters: fleet_report.profile,
                    sent: m.fleet.sent(),
                    mailbox_hwm: m.fleet.hwm(),
                },
            ];
            let tcfg = rec.config().clone();
            // Span lines already streamed to disk during the run; the
            // sink only appends ticks, stages and the footer here.
            let jsonl_stream = rec.take_jsonl_stream();
            let (spans, timeline) = rec.finish();
            if let Some(stream) = jsonl_stream {
                stream.finish(spans.as_ref(), timeline.as_ref(), &stage_profiles);
            }
            if let Some(path) = &tcfg.chrome_trace_path {
                let doc = argus_obs::chrome_trace_document(spans.as_ref(), timeline.as_ref());
                std::fs::write(path, doc)
                    .unwrap_or_else(|e| panic!("Chrome trace export to {path:?} failed: {e}"));
            }
            (spans, timeline, stage_profiles)
        } else {
            (None, None, Vec::new())
        };
        RunOutcome {
            minutes: report.minutes,
            totals: report.totals,
            retrieval: report.retrieval,
            pools,
            demand_resplits: self.demand_resplits,
            mean_utilization: self.cluster.mean_utilization(end),
            switches: self.switcher.switch_counts(),
            retrain_minutes: std::mem::take(&mut self.retrain_minutes),
            classifier_accuracy: report.accuracy_log,
            level_completions,
            quality_samples: report.quality_samples,
            saturated_minutes: self.saturated_minutes,
            makespan_secs: end.as_secs(),
            cascade: self.cascade.is_some().then_some(report.cascade),
            fleet: fleet_report.stats,
            cost,
            timeline,
            spans,
            stage_profiles,
        }
    }

    // ---------------------------------------------------------------- //
    // Event handlers
    // ---------------------------------------------------------------- //

    fn on_arrive(&mut self, idx: usize, t: SimTime) {
        self.obs_counter_add("arrivals", 1);
        if self.obs_wants(idx) {
            self.obs_span(SpanEvent::new(t, idx as u32, SpanKind::Arrive));
        }
        self.tell_metrics(MetricsMsg::Arrival(t));
        self.arrival_rate.record(t);
        if self.recent.len() == RECENT_POOL {
            self.recent.pop_front();
        }
        self.recent.push_back(idx as u32);
        // Intra-tick pool-saturation check before routing, so this very
        // arrival already sees the re-split allocation.
        self.maybe_resplit(t);
        self.dispatch(idx, t);
    }

    /// Routes a prompt to a worker (used for fresh arrivals and for jobs
    /// rerouted after a failure) by driving the pipeline's planner and
    /// worker-selector stages.
    pub(crate) fn dispatch(&mut self, idx: usize, t: SimTime) {
        let pipeline = std::sync::Arc::clone(&self.pipeline);
        let ladder = pipeline.active_ladder(&self.switcher);
        // Escalated cascade jobs re-enter this same path — cache gate,
        // selector, dispatcher — but are pinned to the escalation rung:
        // the discriminator's verdict *is* their routing decision, so the
        // level planner (and its RNG) is not consulted again.
        let escalate_to = self
            .cascade
            .as_ref()
            .filter(|c| c.escalated[idx])
            .map(|c| c.escalate_rung.min(ladder.len() - 1));
        let target = match escalate_to {
            Some(rung) => rung,
            None => {
                let mut ctx = RouteCtx {
                    cluster: &self.cluster,
                    switcher: &self.switcher,
                    classifiers: &self.classifiers,
                    predictors: &mut self.predictors,
                    pasm: &self.pasm,
                    omega_norm: &self.omega_norm,
                    route_rng: &mut self.route_rng,
                    prompt_text: &self.prompts[idx].text,
                };
                pipeline.pick_target_level(&mut ctx, &ladder)
            }
        };
        // Per-level, per-architecture processing estimates for the
        // Worker-Selector (Eq. 3). On per-pool-strategy fleets the ladder
        // index resolves to each architecture's own rung.
        let overhead = if self.cache_active() {
            self.retrieval_ewma
        } else {
            0.0
        };
        let view = self.pool_view.as_ref();
        let proc = |l: usize, gpu: GpuArch| {
            let lvl = match view {
                Some(v) => v.level_of(gpu, l).unwrap_or(ladder[l]),
                None => ladder[l],
            };
            lvl.compute_secs(gpu)
                + if lvl.strategy() == Strategy::Ac {
                    overhead
                } else {
                    0.0
                }
        };
        let ctx = SelectCtx {
            cluster: &self.cluster,
            slo_secs: self.slo.as_secs(),
            max_batch: self.cfg.max_batch,
            pool_view: view,
        };
        let choice = { pipeline.select_worker(&ctx, &ladder, target, &proc) };
        match choice {
            Some((w, _)) => {
                if self.obs_wants(idx) {
                    // The assigned rung, resolved to the chosen pool's
                    // own ladder on per-pool-strategy fleets.
                    let gpu = self.cluster.worker(w).gpu();
                    let lvl = match self.pool_view.as_ref() {
                        Some(v) => v.level_of(gpu, target).unwrap_or(ladder[target]),
                        None => ladder[target],
                    };
                    self.obs_span(
                        SpanEvent::new(t, idx as u32, SpanKind::Assign)
                            .with_level(lvl)
                            .with_pool(gpu)
                            .with_worker(w.0 as u32),
                    );
                }
                self.cluster.worker_mut(w).enqueue(idx as u64, t);
                self.maybe_start(w, t);
            }
            None => {
                self.obs_counter_add("lost", 1);
                if self.obs_wants(idx) {
                    self.obs_span(SpanEvent::new(t, idx as u32, SpanKind::Lost));
                }
                self.tell_metrics(MetricsMsg::Lost(t))
            }
        }
    }

    /// Starts the next (possibly batched) pass on an idle worker, per the
    /// pipeline's dispatcher stage. With a batch of 1 the start is
    /// bit-identical to unbatched serving; larger batches drain up to `B`
    /// queued jobs whose pass completes together under the Obs. 5 latency
    /// model.
    pub(crate) fn maybe_start(&mut self, w: WorkerId, t: SimTime) {
        if !self.cluster.worker(w).can_start() {
            return;
        }
        let level = self
            .cluster
            .worker(w)
            .level()
            .expect("can_start implies a level");
        let gpu = self.cluster.worker(w).gpu();
        let batch = {
            let ctx = SelectCtx {
                cluster: &self.cluster,
                slo_secs: self.slo.as_secs(),
                max_batch: self.cfg.max_batch,
                pool_view: None,
            };
            self.pipeline.batch_size(&ctx, w, level)
        };
        if batch <= 1 {
            let job = self
                .cluster
                .worker(w)
                .peek_next_job()
                .expect("can_start implies a queued job") as usize;
            let (retrieval, base, jitter, exec) = self.service_for(job, w, level, gpu, t);
            let service = retrieval + SimDuration::from_secs(base * jitter);
            self.cluster.worker_mut(w).try_start(t, service);
            let batch_id = self.next_batch_id();
            if self.obs_wants(job) {
                self.obs_span(
                    SpanEvent::new(t, job as u32, SpanKind::Dispatch)
                        .with_level(exec.level)
                        .with_pool(gpu)
                        .with_worker(w.0 as u32)
                        .with_batch(batch_id),
                );
            }
            self.exec_info.insert(w.0, vec![exec]);
            self.queue
                .schedule(t + service, Event::Finish(w, job as u32));
            return;
        }
        // Batched start: per-job retrieval and jittered compute are
        // evaluated exactly as for unbatched serving (in queue order), and
        // the batch completes together after the slowest member inflated
        // by the Obs. 5 pass-level latency ratio.
        let jobs: Vec<u64> = self
            .cluster
            .worker(w)
            .queued_jobs()
            .take(batch as usize)
            .collect();
        let mut max_retrieval = SimDuration::ZERO;
        let mut max_base = 0.0f64;
        let mut pass_jitter = 1.0f64;
        let mut execs = Vec::with_capacity(jobs.len());
        for (i, &job) in jobs.iter().enumerate() {
            if !self.cluster.worker(w).can_start() {
                // A member's retrieval triggered a strategy switch whose
                // reallocation re-entered the dispatcher and started this
                // worker (scheduling its own completion): stop planning
                // before double-executing the remaining members' retrieval.
                return;
            }
            let (retrieval, base, jitter, exec) = self.service_for(job as usize, w, level, gpu, t);
            max_retrieval = max_retrieval.max(retrieval);
            max_base = max_base.max(base);
            if i == 0 {
                // One jitter per pass: the batch executes as a single
                // fused kernel sequence, so its variance does not compound
                // over members.
                pass_jitter = jitter;
            }
            execs.push(exec);
        }
        let inflation =
            unet_pass_profile(level.resident_model()).latency_inflation(gpu, jobs.len() as u32);
        let service = max_retrieval + SimDuration::from_secs(max_base * pass_jitter * inflation);
        let started = self
            .cluster
            .worker_mut(w)
            .try_start_batch(t, service, jobs.len());
        if started.is_empty() {
            // A retrieval-triggered strategy switch re-entered the
            // dispatcher and started this worker mid-planning; its start
            // already scheduled a completion.
            return;
        }
        if started != jobs {
            // Part of the planned batch was consumed by a reentrant
            // reallocation: keep the execution records of the jobs that
            // actually started.
            execs = started
                .iter()
                .map(|s| {
                    let i = jobs.iter().position(|j| j == s).expect("started ⊆ planned");
                    execs[i]
                })
                .collect();
        }
        let first = started[0];
        let batch_id = self.next_batch_id();
        for (&job, exec) in started.iter().zip(&execs) {
            if self.obs_wants(job as usize) {
                self.obs_span(
                    SpanEvent::new(t, job as u32, SpanKind::Dispatch)
                        .with_level(exec.level)
                        .with_pool(gpu)
                        .with_worker(w.0 as u32)
                        .with_batch(batch_id),
                );
            }
        }
        self.exec_info.insert(w.0, execs);
        self.queue
            .schedule(t + service, Event::Finish(w, first as u32));
    }

    /// Samples the service of `job` on worker `w` (of the given
    /// architecture) serving `level`, performing cache retrieval when the
    /// pipeline's cache gate is open. The retrieval round trip goes
    /// through the cache-plane stage, which fuses nearest-neighbour
    /// search, the cache gate and the store fetch into one rendezvous;
    /// the switcher reaction to the observed latency stays here, because
    /// it can re-enter the dispatcher. Returns `(retrieval latency, base
    /// compute seconds, jitter, execution record)`.
    fn service_for(
        &mut self,
        job: usize,
        w: WorkerId,
        level: ApproxLevel,
        gpu: GpuArch,
        t: SimTime,
    ) -> (SimDuration, f64, f64, Exec) {
        let jitter = {
            let cv = latency::LATENCY_JITTER_CV;
            log_normal(&mut self.service_rng, -0.5 * cv * cv, cv)
        };

        let assigned_k = match level {
            ApproxLevel::Ac(k) => Some(k),
            ApproxLevel::Sm(_) => None,
        };

        if let Some(k) = assigned_k {
            if self.cache_active() {
                let query = self.embedding_of(job);
                let r = self.ask_cache(|reply| CacheMsg::Retrieve {
                    worker: w.0,
                    assigned: k,
                    query,
                    t,
                    reply,
                });
                if let Some(outcome) = r.fetch {
                    self.tell_metrics(MetricsMsg::Retrieval {
                        t,
                        latency: outcome.latency,
                    });
                    self.obs_hist(
                        "retrieval_latency_secs",
                        RETRIEVAL_BOUNDS,
                        outcome.latency.as_secs(),
                    );
                    self.note_cache_lookup(job, k, outcome.status, t);
                    self.retrieval_ewma =
                        0.9 * self.retrieval_ewma + 0.1 * outcome.latency.as_secs();
                    let ok = outcome.status != FetchStatus::Failed;
                    if self.pipeline.switches_strategy() && self.cfg.allow_strategy_switch {
                        if let Some(SwitchCommand::ToSm) =
                            self.switcher.on_retrieval(outcome.latency.as_secs(), ok, t)
                        {
                            self.begin_transition(t);
                        }
                    }
                    if outcome.status == FetchStatus::Hit {
                        return (
                            outcome.latency,
                            r.k_eff.compute_secs(gpu),
                            jitter,
                            Exec {
                                level: ApproxLevel::Ac(r.k_eff),
                                similarity: r.similarity,
                            },
                        );
                    }
                    // Miss or failure: pay the lookup, generate fully.
                    return (
                        outcome.latency,
                        AcLevel(0).compute_secs(gpu),
                        jitter,
                        Exec {
                            level: ApproxLevel::Ac(AcLevel(0)),
                            similarity: None,
                        },
                    );
                }
                // No usable neighbour — a cache miss served by full
                // generation. No store round trip happened, so no
                // retrieval latency is charged; the miss is still
                // accounted (where reuse was possible at all) so
                // fault-degraded hit-rates are observable.
                if r.record_miss {
                    self.note_cache_lookup(job, k, FetchStatus::Miss, t);
                }
                return (
                    SimDuration::ZERO,
                    AcLevel(0).compute_secs(gpu),
                    jitter,
                    Exec {
                        level: ApproxLevel::Ac(AcLevel(0)),
                        similarity: None,
                    },
                );
            }
            // AC level but cache disabled (mid-switch fallback, §4.6):
            // serve the base model in full.
            return (
                SimDuration::ZERO,
                AcLevel(0).compute_secs(gpu),
                jitter,
                Exec {
                    level: ApproxLevel::Ac(AcLevel(0)),
                    similarity: None,
                },
            );
        }

        // SM level.
        (
            SimDuration::ZERO,
            level.compute_secs(gpu),
            jitter,
            Exec {
                level,
                similarity: None,
            },
        )
    }

    /// The single emission point for a cache-lookup outcome: the metrics
    /// tally plus, for sampled jobs, the matching lifecycle span. Both
    /// lookup paths in [`Self::service_for`] (store round trip and
    /// no-neighbour miss) go through here so the accounting cannot drift.
    fn note_cache_lookup(&mut self, job: usize, k: AcLevel, status: FetchStatus, t: SimTime) {
        self.tell_metrics(MetricsMsg::CacheLookup {
            level: ApproxLevel::Ac(k),
            status,
        });
        if self.obs_wants(job) {
            let kind = match status {
                FetchStatus::Hit => SpanKind::CacheHit,
                FetchStatus::Miss => SpanKind::CacheMiss,
                FetchStatus::Failed => SpanKind::CacheFailed,
            };
            self.obs_span(SpanEvent::new(t, job as u32, kind).with_level(ApproxLevel::Ac(k)));
        }
    }

    fn on_finish(&mut self, w: WorkerId, job: usize, t: SimTime) {
        // A failure may have drained this pass (and rerouted its jobs)
        // after the completion event was scheduled: ignore stale events.
        // One event is scheduled per (possibly batched) start, keyed by
        // the first job of the pass.
        if self.cluster.worker(w).in_flight_job() != Some(job as u64) {
            return;
        }
        let jobs = self.cluster.worker_mut(w).finish_batch(t);
        let execs = self
            .exec_info
            .remove(&w.0)
            .expect("every in-flight pass has exec info");
        debug_assert_eq!(jobs.len(), execs.len(), "exec records must match the batch");
        for (&job, exec) in jobs.iter().zip(&execs) {
            self.complete_job(job as usize, *exec, w, t);
        }
        self.maybe_start(w, t);
    }

    /// Post-completion accounting for one job: quality scoring, drift
    /// handling, and the telemetry + cache-persistence sends. `w` is the
    /// worker that ran the pass — the pool the completion is attributed
    /// to, and the origin replica-write locality of the cache insert.
    fn complete_job(&mut self, job: usize, exec: Exec, w: WorkerId, t: SimTime) {
        let prompt = &self.prompts[job];
        let score = self.oracle.score_with_similarity(
            prompt,
            exec.level,
            exec.similarity
                .unwrap_or(argus_quality::DEFAULT_AC_SIMILARITY),
        );
        let base = self.oracle.base_quality(prompt);
        let latency_e2e = t - self.arrivals[job];

        // Cascade gate. A first pass is judged by the discriminator:
        // flagged jobs re-enter [`SystemSimulation::dispatch`] as
        // escalation work and *none* of the completion accounting below
        // runs for them — exactly one completion is recorded per job, at
        // its final pass, measured from the original arrival
        // (`latency_e2e` always subtracts `arrivals[job]`, so SLO
        // violation accounting charges the full cascade latency).
        if let Some(c) = self.cascade.as_ref() {
            if c.escalated[job] {
                // Second pass: report the quality movement and fall
                // through to the normal terminal accounting.
                let first_ratio = c.first_ratio[job];
                self.tell_metrics(MetricsMsg::CascadeOutcome {
                    first_ratio,
                    final_ratio: score / base,
                });
            } else {
                // Two degenerate accepts: a cascade *configured* with its
                // first pass at the escalation rung has nowhere to
                // escalate to (top-level no-op — spill may still execute
                // first passes elsewhere, but the config promises no
                // second passes), and a pass already *executed* at the
                // escalation rung would re-run the same level.
                let escalated = c.first_level != c.escalate_level
                    && exec.level != c.escalate_level
                    && c.discriminator.doubt(
                        prompt,
                        exec.level,
                        exec.similarity
                            .unwrap_or(argus_quality::DEFAULT_AC_SIMILARITY),
                    ) >= c.threshold;
                let level = exec.level;
                self.tell_metrics(MetricsMsg::CascadeJudged { level, escalated });
                if escalated {
                    let c = self.cascade.as_mut().expect("cascade checked above");
                    c.escalated[job] = true;
                    c.first_ratio[job] = score / base;
                    self.obs_counter_add("escalations", 1);
                    if self.obs_wants(job) {
                        self.obs_span(
                            SpanEvent::new(t, job as u32, SpanKind::Escalate)
                                .with_level(level)
                                .with_pool(self.cluster.worker(w).gpu())
                                .with_worker(w.0 as u32),
                        );
                    }
                    self.dispatch(job, t);
                    return;
                }
            }
        }
        self.tell_metrics(MetricsMsg::Completion {
            t,
            latency: latency_e2e,
            score,
            base,
            level: exec.level,
            gpu: self.cluster.worker(w).gpu(),
        });
        // `>` matches the metrics stage's strict SLO comparison exactly.
        let violated = latency_e2e > self.slo;
        self.obs_counter_add("completions", 1);
        if violated {
            self.obs_counter_add("violations", 1);
        }
        self.obs_hist("e2e_latency_secs", E2E_BOUNDS, latency_e2e.as_secs());
        if self.obs_wants(job) {
            let kind = if violated {
                SpanKind::Violation
            } else {
                SpanKind::Complete
            };
            self.obs_span(
                SpanEvent::new(t, job as u32, kind)
                    .with_level(exec.level)
                    .with_pool(self.cluster.worker(w).gpu())
                    .with_worker(w.0 as u32),
            );
        }

        // Drift detection and off-critical-path retraining (§4.1), or the
        // §6 online-learning alternative: one SGD step per labelled
        // completion (the label reuses the just-generated image's scores,
        // exactly like batch retraining does).
        if self.pipeline.uses_classifier() {
            if self.cfg.online_learning {
                let strategy = self.switcher.planning_strategy();
                let ladder = ApproxLevel::ladder(strategy);
                let label = self.oracle.optimal_level(&self.prompts[job], &ladder);
                let text = self.prompts[job].text.clone();
                if let Some(clf) = self.classifiers.get_mut(&strategy) {
                    clf.update(&text, label, 0.02);
                }
            } else if self.cfg.retrain_on_drift && self.drift_detector.record(score) {
                self.retrain(t);
            }
        }

        // Persist this generation for future cache reuse. Replica
        // fan-out is charged as write hops by the cache-plane stage
        // (writes are asynchronous and off the critical path, §4.7, so no
        // latency accrues and the driver does not wait).
        if self.pipeline.uses_cache_store() {
            let e = self.embedding_of(job);
            self.tell_cache(CacheMsg::Insert {
                origin: w.0,
                embedding: e,
                id: job as u64,
            });
            self.tell_cache(CacheMsg::PutLevels { id: job as u64, t });
        }
    }

    fn retrain(&mut self, t: SimTime) {
        let minute = (t.as_minutes()) as u64;
        self.retrain_minutes.push(minute);
        self.drift_detector.reset_window();
        let strategy = self.switcher.planning_strategy();
        let ladder = ApproxLevel::ladder(strategy);
        let pool: Vec<Prompt> = self
            .recent
            .iter()
            .map(|&i| self.prompts[i as usize].clone())
            .collect();
        if pool.len() < 200 {
            return;
        }
        let samples = label_prompts(&self.oracle, &pool, &ladder);
        let (clf, _) = train(
            &samples,
            ladder.len(),
            &TrainerConfig {
                epochs: self.cfg.classifier_epochs,
                seed: self.cfg.seed ^ minute,
                ..TrainerConfig::default()
            },
        );
        self.classifiers.insert(strategy, clf);
    }

    fn on_load_done(&mut self, w: WorkerId, t: SimTime) {
        self.cluster.worker_mut(w).finish_load(t);
        self.maybe_start(w, t);
        self.check_transition_complete(t);
    }

    fn on_tick(&mut self, t: SimTime) {
        // A re-split this minute is an autoscale pressure signal; capture
        // it before opening the new tick's re-split window.
        let resplit_fired = self.resplit_done;
        self.resplit_done = false;
        self.tell_metrics(MetricsMsg::Utilization {
            t,
            value: self.cluster.mean_utilization(t),
        });

        // Cascade runs: snapshot the per-level escalation-rate EWMA from
        // the metrics stage ahead of planning, so this tick's Eq. 1
        // pricing (see [`SystemSimulation::escalation_ctx_for`]) sees
        // every verdict already emitted. The flush first keeps the FIFO
        // exact: buffered `CascadeJudged` messages land before the
        // rendezvous.
        if self.cascade.is_some() {
            self.flush_metrics();
            self.mailboxes.metrics.on_send(MAILBOX_CAP_U64);
            let rates = self
                .metrics_stage
                .request(|reply| MetricsMsg::EscalationRates { reply });
            self.mailboxes.metrics.on_rendezvous();
            let c = self.cascade.as_mut().expect("checked above");
            c.rates = rates;
            let rate = c.rates.get(&c.first_level).copied().unwrap_or(0.0);
            self.obs_gauge_set("escalation_rate", rate);
        }

        // The pipeline's level planner decides what the tick does and how
        // the demand estimate is smoothed (§4.2): Argus/PAC decay the
        // estimate at most 15% per minute so single-minute Poisson dips do
        // not flap the allocation; Proteus re-solves each window from the
        // raw observation — the very behaviour §5.7 charges with constant
        // model switching; per-worker and static policies do not estimate
        // demand at all.
        let observed = self.arrival_rate.per_minute(t);
        match self.pipeline.plan_tick(observed, self.last_demand) {
            TickAction::Reallocate { estimate_qpm } => {
                self.last_demand = estimate_qpm;
                let demand = provisioning_target(estimate_qpm);
                let margin = if self.switcher.state() == SwitcherState::SwitchingToSm {
                    self.switcher.config().switch_margin
                } else {
                    1.0
                };
                self.reallocate(t, demand, margin);
            }
            TickAction::AdaptPerWorker => {
                self.last_demand = observed;
                let ladder = self.active_ladder();
                let changes = self.pipeline.adapt_worker_levels(&self.cluster, &ladder);
                for (w, level) in changes {
                    self.assign_and_schedule(w, level, t);
                }
            }
            TickAction::Heal => {
                // Static placements; just heal recovered workers.
                self.last_demand = observed;
                self.heal_unassigned(t);
            }
        }

        // Classifier accuracy sampling for Fig. 18, offloaded to the
        // metrics stage with a snapshot of the live classifier (the ≤200
        // oracle probes were the biggest fixed per-tick cost of the old
        // loop).
        if self.pipeline.uses_classifier() && !self.recent.is_empty() {
            let strategy = self.switcher.planning_strategy();
            let ladder = ApproxLevel::ladder(strategy);
            let classifier = Box::new(self.classifiers[&strategy].clone());
            let sample: Vec<u32> = self.recent.iter().rev().take(200).copied().collect();
            self.tell_metrics(MetricsMsg::Accuracy {
                minute: t.as_minutes() as u64,
                sample,
                ladder,
                classifier,
            });
        }

        self.sample_pool_allocation();
        // Saturation is consumed (and cleared) by the fleet tick; latch it
        // first so the telemetry sample reports what this minute saw.
        let tick_saturated = self.tick_saturated;
        self.fleet_tick(t, resplit_fired);
        self.obs_tick(t, tick_saturated);
        if t + TICK <= self.horizon {
            self.queue.schedule(t + TICK, Event::Tick);
        }
    }

    /// Fleet work at the allocator tick: a membership sample for the
    /// cost integral, then — when an autoscaler is configured — the
    /// controller round trip and the execution of its decisions.
    fn fleet_tick(&mut self, t: SimTime, resplit_fired: bool) {
        self.send_membership(t);
        let Some(policy) = self.cfg.autoscaler.clone() else {
            self.tick_saturated = false;
            return;
        };
        // Per-pool pressure/idle signals off the last plan. Non-solver
        // policies never plan, so they produce no signals and never scale
        // — the autoscaler is a planner feature by construction.
        let tick_secs = TICK.as_secs();
        let signals: Vec<PoolSignal> = self
            .pool_plans
            .iter()
            .map(|plan| {
                let alive = self.cluster.alive_on(plan.gpu);
                let jobs: usize = alive
                    .iter()
                    .map(|&w| self.cluster.worker(w).backlog())
                    .sum();
                // Backlog expressed as the drain rate needed to clear it
                // within one tick, against the plan's capacity at the
                // pool's current size.
                let backlog_qpm = jobs as f64 * 60.0 / tick_secs;
                let cap = plan.current_cap_qpm(alive.len().max(1));
                let pressured = self.tick_saturated || resplit_fired || backlog_qpm > cap;
                // Idle: both the planned share and the instantaneous
                // backlog sit far below capacity. (Requiring a literally
                // empty backlog would make the signal flicker with every
                // in-flight straggler and never sustain a streak.)
                let idle_cap = policy.idle_utilization * cap;
                let idle = !pressured && backlog_qpm < idle_cap && plan.share_qpm < idle_cap;
                let pending = self
                    .provisioning
                    .iter()
                    .filter(|&&p| self.cluster.worker(WorkerId(p)).gpu() == plan.gpu)
                    .count();
                PoolSignal {
                    gpu: plan.gpu,
                    pressured,
                    idle,
                    alive: alive.len(),
                    pending,
                }
            })
            .collect();
        self.tick_saturated = false;
        if signals.is_empty() {
            return;
        }
        let actions = self.fleet_request(|reply| FleetMsg::Tick { t, signals, reply });
        let changed = !actions.is_empty();
        for action in actions {
            match action {
                ScaleAction::Out { gpu, n } => {
                    let delay = SimDuration::from_secs(policy.provisioning_delay_secs);
                    for _ in 0..n {
                        let wid = self.cluster.provision(gpu, t);
                        self.worker_spot.push(None);
                        self.provisioning.push(wid.0);
                        self.queue
                            .schedule(t + delay, Event::Provision(wid.0 as u32));
                    }
                }
                ScaleAction::In { gpu, n } => {
                    // Victims: idle workers only (no in-flight pass),
                    // youngest first, so long-lived members keep their
                    // cache-plane replicas. Queued jobs migrate.
                    let mut victims: Vec<WorkerId> = self
                        .cluster
                        .alive_on(gpu)
                        .into_iter()
                        .filter(|&w| self.cluster.worker(w).in_flight_count() == 0)
                        .collect();
                    victims.sort_by_key(|w| std::cmp::Reverse(w.0));
                    victims.truncate(n);
                    self.fleet_send(FleetMsg::Retired(victims.len() as u64));
                    for w in victims {
                        assert_eq!(
                            self.cluster.worker(w).in_flight_count(),
                            0,
                            "scale-in must never evict a worker with in-flight jobs"
                        );
                        self.fail_worker_now(w.0, t);
                    }
                }
            }
        }
        if changed {
            self.send_membership(t);
        }
    }

    fn on_probe(&mut self, t: SimTime) {
        if self.pipeline.switches_strategy()
            && self.cfg.allow_strategy_switch
            && self.switcher.state() == SwitcherState::Sm
        {
            let (lat, ok) = self.ask_cache(|reply| CacheMsg::Probe { t, reply });
            if let Some(SwitchCommand::ToAc) = self.switcher.on_probe(lat.as_secs(), ok, t) {
                self.begin_transition(t);
            }
        }
        if t + PROBE <= self.horizon {
            self.queue.schedule(t + PROBE, Event::Probe);
        }
    }

    fn on_fault(&mut self, i: usize, t: SimTime) {
        // Fault events bound the lifetime of memoized derated profiles
        // (the ladder itself is unaffected, but this keeps the memo from
        // outliving the regime that produced it).
        self.planner_send(PlannerMsg::Invalidate);
        match self.cfg.faults[i].clone() {
            FaultEvent::WorkerFail { workers, .. } => {
                for wi in workers {
                    if wi >= self.cluster.len() {
                        continue;
                    }
                    self.fail_worker_now(wi, t);
                }
            }
            FaultEvent::WorkerRecover { workers, .. } => {
                for wi in workers {
                    if wi < self.cluster.len() {
                        self.cluster.worker_mut(WorkerId(wi)).recover(t);
                        // Its cache-plane replicas come back (cold where
                        // the shard survived elsewhere, migrated where the
                        // whole shard had died — see the anti-entropy pass
                        // in `argus_vdb::ShardedIndex::recover_replica`).
                        self.tell_cache(CacheMsg::WorkerRecover(wi));
                    }
                }
                // The allocator reassigns them on its next tick (within a
                // minute, §5.6).
            }
            FaultEvent::Preemption {
                workers,
                warning_secs,
                ..
            } => {
                for wi in workers {
                    if wi >= self.cluster.len() {
                        continue;
                    }
                    if warning_secs <= 0.0 {
                        // No warning window: an unwarned crash. Counted
                        // against the preemption tallies, but the serving
                        // effect is bit-identical to a WorkerFail.
                        let clean = self.cluster.worker(WorkerId(wi)).in_flight_count() == 0;
                        self.obs_counter_add("spot_drains", 1);
                        self.fleet_send(FleetMsg::Preempt {
                            ridden: clean as u64,
                            lost: !clean as u64,
                        });
                        self.fail_worker_now(wi, t);
                        continue;
                    }
                    // Warned reclaim: drain the doomed worker now — queued
                    // jobs migrate to survivors immediately, the in-flight
                    // pass races the warning window — and schedule the
                    // actual disappearance. Billing continues until then.
                    let migrated = self.cluster.worker_mut(WorkerId(wi)).begin_drain(t);
                    for job in migrated {
                        self.dispatch(job as usize, t);
                    }
                    self.queue.schedule(
                        t + SimDuration::from_secs(warning_secs),
                        Event::Preempt(wi as u32),
                    );
                }
            }
        }
        self.send_membership(t);
    }

    /// Executes an unwarned worker loss: cache-plane failover first (so
    /// rerouted jobs already see the post-failover plane — FIFO ordering
    /// against their retrieval requests), then the crash, then rerouting
    /// of everything the worker was holding (end-to-end latency keeps
    /// accruing from the original arrival). Shared verbatim by crash
    /// faults, expired preemption warnings and scale-in retirement, so
    /// all three are bit-identical in effect.
    fn fail_worker_now(&mut self, wi: usize, t: SimTime) {
        self.tell_cache(CacheMsg::WorkerFail(wi));
        let lost = self.cluster.worker_mut(WorkerId(wi)).fail(t);
        self.exec_info.remove(&wi);
        for job in lost {
            self.dispatch(job as usize, t);
        }
    }

    /// A scale-out's provisioning delay elapsed: the worker enters the
    /// serving set (cold — the allocator assigns it a level on its next
    /// tick, like any recovery).
    fn on_provision(&mut self, wi: usize, t: SimTime) {
        self.provisioning.retain(|&p| p != wi);
        self.cluster.worker_mut(WorkerId(wi)).recover(t);
        self.tell_cache(CacheMsg::WorkerRecover(wi));
        self.send_membership(t);
    }

    /// A preemption warning expired: the instance disappears now. If the
    /// warning window sufficed to drain the pass the preemption was
    /// "ridden" (nothing lost); otherwise the in-flight jobs reroute and
    /// restart from scratch on survivors.
    fn on_preempt_fire(&mut self, wi: usize, t: SimTime) {
        if self.cluster.worker(WorkerId(wi)).is_failed() {
            // A separate fault already took the worker down mid-warning.
            return;
        }
        let clean = self.cluster.worker(WorkerId(wi)).in_flight_count() == 0;
        self.obs_counter_add("spot_drains", 1);
        self.fleet_send(FleetMsg::Preempt {
            ridden: clean as u64,
            lost: !clean as u64,
        });
        self.fail_worker_now(wi, t);
        self.send_membership(t);
    }

    /// Reports the billed membership in force from `t` to the fleet
    /// stage: per-(architecture, discount) counts of workers currently
    /// rented — everything not failed, including draining instances
    /// (their warning window is still billed) — in worker-id order.
    pub(crate) fn send_membership(&mut self, t: SimTime) {
        let mut counts: Vec<(GpuArch, f64, u32)> = Vec::new();
        for (i, w) in self.cluster.iter().enumerate() {
            if w.is_failed() {
                continue;
            }
            let discount = self.worker_spot.get(i).copied().flatten().unwrap_or(0.0);
            let gpu = w.gpu();
            match counts
                .iter_mut()
                .find(|(g, d, _)| *g == gpu && *d == discount)
            {
                Some(e) => e.2 += 1,
                None => counts.push((gpu, discount, 1)),
            }
        }
        self.fleet_send(FleetMsg::Membership { t, counts });
    }

    // ---------------------------------------------------------------- //
    // Allocation
    // ---------------------------------------------------------------- //

    /// The retrieval overhead a pool's Eq. 1 derating plans with.
    fn pool_overhead(&self, strategy: Strategy) -> f64 {
        if strategy == Strategy::Ac {
            self.retrieval_ewma
        } else {
            0.0
        }
    }

    /// The escalation surcharge a pool's Eq. 1 pricing plans with: on
    /// cascade runs with pricing enabled, the observed escalation-rate
    /// EWMA at the first-pass rung (snapshotted from the metrics stage
    /// each tick) times the escalation level's service time —
    /// first-pass + expected-escalation capacity. `None` everywhere
    /// else, so every other configuration prices exactly as before.
    fn escalation_ctx_for(&self, strategy: Strategy) -> Option<EscalationCtx> {
        let c = self.cascade.as_ref()?;
        if !c.price_escalations || strategy != Strategy::Sm || c.first_level == c.escalate_level {
            return None;
        }
        let rate = c.rates.get(&c.first_level).copied().unwrap_or(0.0);
        (rate > 0.0).then_some(EscalationCtx {
            rate,
            from: c.first_level,
            to: c.escalate_level,
        })
    }

    /// Solves Eq. 1 for the current demand via the planner stage and
    /// applies the result: worker level assignments plus the PASM (Argus)
    /// or the proportional map (PAC/Proteus).
    ///
    /// On heterogeneous fleets the problem decomposes by architecture:
    /// each pool gets its own latency/peak-QPM tables (and, under
    /// [`crate::system::RunConfig::with_pool_strategy`], its own strategy
    /// ladder) and a demand share proportional to its maximum capacity,
    /// and the planner stage solves the per-pool allocations
    /// data-parallel. Load distributions merge index-wise into one
    /// cluster-wide `ω` (every ladder is six rungs, slowest first, so the
    /// rung is the common currency).
    pub(crate) fn reallocate(&mut self, t: SimTime, demand_qpm: f64, margin: f64) {
        let global = self.pipeline.planning_strategy(&self.switcher);
        // Alive workers grouped by architecture, in pool order.
        let pools: Vec<(GpuArch, Vec<WorkerId>)> = self
            .cluster
            .arches()
            .into_iter()
            .map(|gpu| (gpu, self.cluster.alive_on(gpu)))
            .filter(|(_, ws)| !ws.is_empty())
            .collect();
        if pools.is_empty() {
            return;
        }
        let total_demand = demand_qpm * margin;
        let specs: Vec<PoolSpec> = pools
            .iter()
            .map(|(gpu, ws)| {
                let strategy = self.cfg.pool_strategy_for(*gpu).unwrap_or(global);
                PoolSpec {
                    gpu: *gpu,
                    strategy,
                    ladder: ApproxLevel::ladder(strategy),
                    workers: ws.len(),
                    overhead: self.pool_overhead(strategy),
                    escalation: self.escalation_ctx_for(strategy),
                }
            })
            .collect();
        let reply = self.planner_request(|reply| PlannerMsg::Plan {
            pools: specs.clone(),
            total_demand,
            reply,
        });
        if reply.saturated {
            self.saturated_minutes += 1;
            self.tick_saturated = true;
        }
        let mut plans: Vec<PoolPlan> = Vec::with_capacity(pools.len());
        for ((spec, allocation), (_, ws)) in specs.into_iter().zip(reply.pools).zip(&pools) {
            plans.push(PoolPlan {
                gpu: spec.gpu,
                strategy: spec.strategy,
                workers: spec.workers,
                cap_qpm: allocation.cap_qpm,
                share_qpm: allocation.share_qpm,
                omega: allocation.omega_qpm,
                ladder: spec.ladder.clone(),
                overhead: spec.overhead,
            });
            self.apply_allocation(&spec.ladder, &allocation.workers_per_level, ws, t);
        }
        self.pool_plans = plans;
        self.pool_view = self.build_pool_view(&ApproxLevel::ladder(global));
        self.refresh_distribution(global);
        self.check_transition_complete(t);
    }

    /// Re-merges the per-pool load vectors into the cluster-wide `ω` and
    /// refreshes the PASM (Argus) or the proportional map (PAC/Proteus).
    /// Shared by [`SystemSimulation::reallocate`] and the mid-minute
    /// re-split, so a partial re-solve updates routing consistently.
    fn refresh_distribution(&mut self, strategy: Strategy) {
        let n = self
            .pool_plans
            .first()
            .map(|p| p.omega.len())
            .unwrap_or(self.omega_norm.len());
        let mut omega_qpm = vec![0.0; n];
        for plan in &self.pool_plans {
            for (o, w) in omega_qpm.iter_mut().zip(&plan.omega) {
                *o += w;
            }
        }
        self.omega_norm = crate::solver::normalize_load(&omega_qpm);

        // PASM for Argus; proportional for the prompt-agnostic systems.
        if self.pipeline.uses_oda() {
            let phi = self.predictors[&strategy].phi();
            self.pasm = oda(&phi, &self.omega_norm).unwrap_or_else(|_| Pasm::identity(6));
        } else {
            self.pasm = Pasm::proportional(&self.omega_norm).unwrap_or_else(|_| Pasm::identity(6));
        }
    }

    /// Builds the per-architecture ladder view for per-pool-strategy runs
    /// (`None` otherwise — single-strategy runs route exactly as before).
    /// Cached on the simulation and rebuilt only by
    /// [`SystemSimulation::reallocate`]: the view changes exactly when the
    /// planning strategy does, and only solver policies ever reallocate —
    /// per-worker and static policies keep `None`, so for them
    /// `with_pool_strategy` is inert and routing is untouched.
    fn build_pool_view(&self, global_ladder: &[ApproxLevel]) -> Option<PoolView> {
        if self.cfg.pool_strategies.is_empty() {
            return None;
        }
        let ladders = self
            .cluster
            .arches()
            .into_iter()
            .map(|gpu| {
                let ladder = match self.cfg.pool_strategy_for(gpu) {
                    Some(s) => ApproxLevel::ladder(s),
                    None => global_ladder.to_vec(),
                };
                (gpu, ladder)
            })
            .collect();
        Some(PoolView::new(ladders))
    }

    /// Mid-minute demand re-splitting (`RunConfig::with_demand_resplit`):
    /// checked on every arrival, fires at most once per allocator tick.
    ///
    /// Two trigger rules, either sufficient:
    ///
    /// 1. **Backlog drain-rate**: a pool is *saturated intra-tick* when
    ///    its backlog, expressed as the drain rate needed to clear it by
    ///    the next tick (`jobs × 60 / seconds-remaining`), exceeds the
    ///    pool's planned capacity.
    /// 2. **Retrieval-overhead spike**: an AC pool whose plan priced
    ///    retrieval at the plan-time EWMA is effectively smaller when the
    ///    cache plane degrades mid-minute (every AC job pays the inflated
    ///    round trip before computing). When the current EWMA at least
    ///    doubles the plan-time estimate and has grown by ≥20 ms, the
    ///    pool's capacity is re-derated at the current overhead; the pool
    ///    is saturated if its planned share exceeds that effective
    ///    capacity.
    ///
    /// When at least one pool is saturated and at least one other has
    /// headroom, the aggregate excess rate is re-split across the
    /// unsaturated pools proportionally to their remaining capacity, each
    /// such pool is re-solved with its share grown by its portion, and
    /// ω/PASM are re-merged. The saturated pool's allocation is left
    /// untouched — it is already planned at capacity, and its queued jobs
    /// drain fastest on the levels they were planned for.
    fn maybe_resplit(&mut self, t: SimTime) {
        /// Leave the last stretch of a tick to the upcoming re-solve: a
        /// re-split this close to the boundary cannot move meaningful
        /// work before the allocator re-plans anyway.
        const MIN_WINDOW_SECS: f64 = 10.0;
        /// Overhead-spike trigger: the current retrieval EWMA must at
        /// least double the plan-time estimate…
        const SPIKE_FACTOR: f64 = 2.0;
        /// …and grow by an absolute floor, so a 2 ms → 5 ms wiggle on a
        /// healthy plane never re-splits.
        const SPIKE_FLOOR_SECS: f64 = 0.02;
        if !self.cfg.demand_resplit || self.resplit_done || self.pool_plans.len() < 2 {
            return;
        }
        let tick_secs = TICK.as_secs();
        let remaining_secs = tick_secs - t.as_secs() % tick_secs;
        if remaining_secs < MIN_WINDOW_SECS {
            return;
        }
        // The drain rate each pool needs to clear its backlog by the next
        // tick, against the capacity it was planned with — scaled to the
        // pool's *current* alive workers, so a mid-minute fault shows up
        // as lost capacity immediately. For AC pools under a retrieval
        // spike, the capacity is additionally re-derated at the current
        // overhead (a planner query, memoized like any other derivation).
        let cache_active = self.cache_active();
        let pressure: Vec<(f64, f64)> = self
            .pool_plans
            .iter()
            .map(|plan| {
                let alive = self.cluster.alive_on(plan.gpu);
                let jobs: usize = alive
                    .iter()
                    .map(|&w| self.cluster.worker(w).backlog())
                    .sum();
                let backlog_qpm = jobs as f64 * 60.0 / remaining_secs;
                let mut cap = plan.current_cap_qpm(alive.len());
                let spiked = cache_active
                    && plan.strategy == Strategy::Ac
                    && self.retrieval_ewma > SPIKE_FACTOR * plan.overhead
                    && self.retrieval_ewma - plan.overhead > SPIKE_FLOOR_SECS;
                if spiked {
                    let spec = PoolSpec {
                        gpu: plan.gpu,
                        strategy: plan.strategy,
                        ladder: plan.ladder.clone(),
                        workers: alive.len().max(1),
                        overhead: self.retrieval_ewma,
                        // The spike re-derate fires for AC pools only,
                        // where escalation pricing is `None` by
                        // definition (cascades run the SM ladder).
                        escalation: None,
                    };
                    // Raw request with inline gauge bookkeeping: the
                    // closure already borrows `pool_plans`, so the
                    // `planner_request` wrapper (`&mut self`) cannot be
                    // called here.
                    self.mailboxes.planner.on_send(MAILBOX_CAP_U64);
                    let cap_now = self
                        .planner_stage
                        .request(|reply| PlannerMsg::Capacity { pool: spec, reply });
                    self.mailboxes.planner.on_rendezvous();
                    cap = cap.min(cap_now);
                }
                (
                    backlog_qpm.max(if spiked { plan.share_qpm } else { 0.0 }),
                    cap,
                )
            })
            .collect();
        let saturated: Vec<bool> = pressure.iter().map(|&(b, cap)| b > cap).collect();
        let excess: f64 = pressure
            .iter()
            .zip(&saturated)
            .filter(|&(_, &sat)| sat)
            .map(|(&(b, cap), _)| b - cap)
            .sum();
        let headroom: Vec<f64> = pressure
            .iter()
            .zip(&saturated)
            .map(|(&(b, cap), &sat)| if sat { 0.0 } else { (cap - b).max(0.0) })
            .collect();
        let total_headroom: f64 = headroom.iter().sum();
        if excess <= 0.0 || total_headroom <= 0.0 {
            return;
        }

        self.resplit_done = true;
        self.demand_resplits += 1;
        for (i, &pool_headroom) in headroom.iter().enumerate() {
            let extra = excess * pool_headroom / total_headroom;
            if extra <= 0.0 {
                continue;
            }
            let (gpu, strategy, ladder, old_share) = {
                let plan = &self.pool_plans[i];
                (plan.gpu, plan.strategy, plan.ladder.clone(), plan.share_qpm)
            };
            let ws = self.cluster.alive_on(gpu);
            if ws.is_empty() {
                continue;
            }
            let new_share = old_share + extra;
            let overhead = self.pool_overhead(strategy);
            let escalation = self.escalation_ctx_for(strategy);
            let allocation = self.planner_request(|reply| PlannerMsg::Solve {
                pool: PoolSpec {
                    gpu,
                    strategy,
                    ladder: ladder.clone(),
                    workers: ws.len(),
                    overhead,
                    escalation,
                },
                demand_qpm: new_share,
                reply,
            });
            self.pool_plans[i].share_qpm = new_share;
            self.pool_plans[i].omega = allocation.omega_qpm;
            self.apply_allocation(&ladder, &allocation.workers_per_level, &ws, t);
        }
        let strategy = self.pipeline.planning_strategy(&self.switcher);
        self.refresh_distribution(strategy);
    }

    /// Samples the per-architecture allocated-worker counts (alive
    /// workers holding or loading toward a level) — the
    /// [`PoolStats::mean_allocated_workers`] numerator.
    pub(crate) fn sample_pool_allocation(&mut self) {
        let counts: Vec<(GpuArch, u64)> = self
            .cluster
            .arches()
            .into_iter()
            .map(|gpu| {
                let allocated = self
                    .cluster
                    .alive_on(gpu)
                    .iter()
                    .filter(|&&w| {
                        let worker = self.cluster.worker(w);
                        worker.level().is_some() || worker.pending_level().is_some()
                    })
                    .count() as u64;
                (gpu, allocated)
            })
            .collect();
        for &(gpu, allocated) in &counts {
            self.obs_gauge_set(alloc_gauge_name(gpu), allocated as f64);
        }
        self.tell_metrics(MetricsMsg::PoolAlloc(counts));
    }

    /// Moves the listed workers to the target per-level counts with the
    /// minimum number of model loads.
    fn apply_allocation(
        &mut self,
        ladder: &[ApproxLevel],
        counts: &[usize],
        alive: &[WorkerId],
        t: SimTime,
    ) {
        let mut used = vec![0usize; ladder.len()];
        let mut pool: Vec<WorkerId> = Vec::new();

        // First pass: keep workers already serving (or loading toward) a
        // still-needed level.
        for &w in alive {
            let worker = self.cluster.worker(w);
            let lvl = worker.pending_level().or(worker.level());
            let keep = lvl
                .and_then(|l| ladder.iter().position(|&x| x == l))
                .filter(|&i| used[i] < counts[i]);
            match keep {
                Some(i) => used[i] += 1,
                None => pool.push(w),
            }
        }
        // Second pass: fill deficits, preferring workers with the target
        // weights already resident (zero-cost switch).
        for lvl_idx in 0..ladder.len() {
            while used[lvl_idx] < counts[lvl_idx] {
                let Some(pos) = pool
                    .iter()
                    .position(|&w| {
                        self.cluster
                            .worker(w)
                            .resident_models()
                            .contains(&ladder[lvl_idx].resident_model())
                    })
                    .or_else(|| (!pool.is_empty()).then_some(0))
                else {
                    break;
                };
                let w = pool.remove(pos);
                match self.cluster.worker_mut(w).assign_level(ladder[lvl_idx], t) {
                    SwitchOutcome::Immediate => {
                        self.maybe_start(w, t);
                    }
                    SwitchOutcome::Loading(d) => {
                        self.obs_counter_add("model_loads", 1);
                        self.tell_metrics(MetricsMsg::ModelLoad(t));
                        self.queue.schedule(t + d, Event::LoadDone(w));
                    }
                }
                used[lvl_idx] += 1;
            }
        }
        // Any leftover workers park at the slowest level (spare quality
        // headroom).
        for w in pool {
            match self.cluster.worker_mut(w).assign_level(ladder[0], t) {
                SwitchOutcome::Immediate => self.maybe_start(w, t),
                SwitchOutcome::Loading(d) => {
                    self.obs_counter_add("model_loads", 1);
                    self.tell_metrics(MetricsMsg::ModelLoad(t));
                    self.queue.schedule(t + d, Event::LoadDone(w));
                }
            }
        }
    }

    /// Gives recovered (level-less) workers the pipeline's static level.
    pub(crate) fn heal_unassigned(&mut self, t: SimTime) {
        let level = self.pipeline.static_level();
        for w in self.cluster.alive() {
            let worker = self.cluster.worker(w);
            if worker.level().is_none() && worker.pending_level().is_none() {
                self.assign_and_schedule(w, level, t);
            }
        }
    }

    pub(crate) fn assign_and_schedule(&mut self, w: WorkerId, level: ApproxLevel, t: SimTime) {
        match self.cluster.worker_mut(w).assign_level(level, t) {
            SwitchOutcome::Immediate => self.maybe_start(w, t),
            SwitchOutcome::Loading(d) => {
                self.obs_counter_add("model_loads", 1);
                self.tell_metrics(MetricsMsg::ModelLoad(t));
                self.queue.schedule(t + d, Event::LoadDone(w));
            }
        }
    }

    /// Starts the cluster moving toward the switcher's new target strategy
    /// (called right after the switcher emits a command).
    fn begin_transition(&mut self, t: SimTime) {
        let demand = provisioning_target(self.arrival_rate.per_minute(t));
        let margin = if self.switcher.state() == SwitcherState::SwitchingToSm {
            self.switcher.config().switch_margin
        } else {
            1.0
        };
        self.reallocate(t, demand, margin);
    }

    /// Completes a strategy transition once every alive worker serves a
    /// level of the target strategy.
    fn check_transition_complete(&mut self, t: SimTime) {
        let target = match self.switcher.state() {
            SwitcherState::SwitchingToSm => Strategy::Sm,
            SwitcherState::SwitchingToAc => Strategy::Ac,
            _ => return,
        };
        let done = self.cluster.alive().iter().all(|&w| {
            let worker = self.cluster.worker(w);
            // Pools pinned by `with_pool_strategy` never transition.
            if self.cfg.pool_strategy_for(worker.gpu()).is_some() {
                return true;
            }
            worker.level().is_some_and(|l| l.strategy() == target)
        });
        if done {
            self.switcher.on_transition_complete(t);
        }
    }
}
