//! The metrics stage: every accounting sink of the run, fed by
//! fire-and-forget telemetry messages from the driver.
//!
//! The stage owns the per-minute [`MetricsCollector`], the per-level
//! completion counts, the quality reservoir (and its dedicated RNG
//! stream), the per-pool outcome counters and the Fig. 18 classifier
//! accuracy log. Because the driver is the only producer, the stage
//! consumes operations in exactly the order the old synchronous loop
//! performed them — f64 accumulation order and reservoir RNG draws are
//! bit-identical. The one reply message, [`MetricsMsg::Finish`], hands
//! everything back at run teardown.
//!
//! Classifier-accuracy sampling (≤200 oracle probes per allocator tick)
//! rides here too: it reads only immutable run inputs (the prompt stream,
//! the quality oracle) plus a classifier snapshot shipped inside the
//! message, so offloading it removes the single biggest fixed per-tick
//! cost from the event pump without touching any result.

use std::collections::BTreeMap;
use std::sync::Arc;

use argus_cachestore::FetchStatus;
use argus_classifier::Classifier;
use argus_des::{SimDuration, SimTime};
use argus_models::{ApproxLevel, GpuArch};
use argus_obs::StageCounters;
use argus_prompts::Prompt;
use argus_quality::QualityOracle;
use rand::rngs::StdRng;
use rand::RngExt as _;

use super::{ActorPacing, OneshotSender, StageHandle};
use crate::cascade::CascadeStats;
use crate::metrics::{MetricsCollector, MinuteRecord, RetrievalStats, RunTotals};

/// Reservoir size for (score, base) quality samples.
pub(crate) const SAMPLE_CAP: usize = 2000;

/// Smoothing factor of the per-level escalation-rate EWMA the planner
/// prices into Eq. 1: each first-pass verdict moves the level's rate 5%
/// toward 1 (escalated) or 0 (accepted) — reactive enough to track a
/// diurnal quality mix, smooth enough not to flap the allocation.
pub(crate) const ESCALATION_EWMA_ALPHA: f64 = 0.05;

/// Telemetry messages, in driver event order.
pub(crate) enum MetricsMsg {
    /// A buffer of telemetry delivered as one mailbox message. The driver
    /// coalesces its fire-and-forget sends so a parked stage is woken once
    /// per buffer instead of once per message (on a single-core host every
    /// wake is a full scheduler round trip); the messages inside are
    /// consumed in push order, so the accounting order — and with it every
    /// RNG draw and f64 accumulation — is untouched.
    Batch(Vec<MetricsMsg>),
    /// A query arrived.
    Arrival(SimTime),
    /// A query was lost (no worker, or stranded at teardown).
    Lost(SimTime),
    /// A model load started.
    ModelLoad(SimTime),
    /// A cache retrieval round trip completed.
    Retrieval { t: SimTime, latency: SimDuration },
    /// A cache lookup resolved against the assigned level.
    CacheLookup {
        level: ApproxLevel,
        status: FetchStatus,
    },
    /// Minute-boundary utilization sample.
    Utilization { t: SimTime, value: f64 },
    /// One job completed: the full accounting bundle (minute rollup,
    /// level counts, pool outcome, reservoir sampling) happens here.
    Completion {
        t: SimTime,
        latency: SimDuration,
        score: f64,
        base: f64,
        level: ApproxLevel,
        gpu: GpuArch,
    },
    /// Per-architecture allocated-worker counts at one sample point.
    PoolAlloc(Vec<(GpuArch, u64)>),
    /// Tick-time classifier accuracy sampling: probe the snapshot
    /// classifier against the oracle over the listed recent prompts.
    Accuracy {
        minute: u64,
        sample: Vec<u32>,
        ladder: Vec<ApproxLevel>,
        classifier: Box<Classifier>,
    },
    /// Insert counters accumulated by the cache-plane stage, merged at
    /// teardown (run-level totals; order-insensitive).
    CacheInsertTotals {
        inserts: u64,
        replica_writes: u64,
        remote_hops: u64,
    },
    /// A cascade first pass was judged: updates the per-level counts and
    /// the escalation-rate EWMA.
    CascadeJudged { level: ApproxLevel, escalated: bool },
    /// An escalated job's second pass completed, with the first- and
    /// final-pass relative quality ratios.
    CascadeOutcome { first_ratio: f64, final_ratio: f64 },
    /// Rendezvous: snapshot the per-level escalation-rate EWMA (the
    /// driver asks once per allocator tick, cascade runs only).
    EscalationRates {
        reply: OneshotSender<BTreeMap<ApproxLevel, f64>>,
    },
    /// Finalize and hand every sink back.
    Finish {
        end: SimTime,
        reply: OneshotSender<MetricsReport>,
    },
}

/// Everything the metrics stage accumulated, returned at teardown.
pub(crate) struct MetricsReport {
    pub minutes: Vec<MinuteRecord>,
    pub totals: RunTotals,
    pub retrieval: RetrievalStats,
    pub level_completions: BTreeMap<ApproxLevel, u64>,
    pub quality_samples: Vec<(f64, f64)>,
    pub accuracy_log: Vec<(u64, f64)>,
    pub pool_outcomes: BTreeMap<GpuArch, (u64, u64)>,
    pub pool_alloc_samples: BTreeMap<GpuArch, (u64, u64)>,
    /// Cascade accounting (all-zero unless the run cascaded; the driver
    /// surfaces it as `RunOutcome::cascade` only for cascade runs).
    pub cascade: CascadeStats,
    /// Logical message counters for the stage profile (§12 telemetry).
    pub profile: StageCounters,
}

struct MetricsStage {
    collector: MetricsCollector,
    slo: SimDuration,
    level_completions: BTreeMap<ApproxLevel, u64>,
    quality_samples: Vec<(f64, f64)>,
    sample_seen: u64,
    sample_rng: StdRng,
    accuracy_log: Vec<(u64, f64)>,
    pool_outcomes: BTreeMap<GpuArch, (u64, u64)>,
    pool_alloc_samples: BTreeMap<GpuArch, (u64, u64)>,
    oracle: QualityOracle,
    prompts: Arc<Vec<Prompt>>,
    cascade: CascadeStats,
    cascade_delta_sum: f64,
    profile: StageCounters,
}

impl MetricsStage {
    fn handle(&mut self, msg: MetricsMsg) {
        match &msg {
            MetricsMsg::Batch(msgs) => self.profile.note_batch(msgs.len()),
            m => {
                self.profile.processed += 1;
                if matches!(
                    m,
                    MetricsMsg::Finish { .. } | MetricsMsg::EscalationRates { .. }
                ) {
                    self.profile.replies += 1;
                }
            }
        }
        match msg {
            MetricsMsg::Batch(msgs) => {
                for m in msgs {
                    self.handle(m);
                }
            }
            MetricsMsg::Arrival(t) => self.collector.on_arrival(t),
            MetricsMsg::Lost(t) => self.collector.on_lost(t),
            MetricsMsg::ModelLoad(t) => self.collector.on_model_load(t),
            MetricsMsg::Retrieval { t, latency } => self.collector.on_retrieval(t, latency),
            MetricsMsg::CacheLookup { level, status } => {
                self.collector.on_cache_lookup(level, status)
            }
            MetricsMsg::Utilization { t, value } => self.collector.on_utilization_sample(t, value),
            MetricsMsg::Completion {
                t,
                latency,
                score,
                base,
                level,
                gpu,
            } => {
                self.collector.on_completion(t, latency, score, base);
                *self.level_completions.entry(level).or_insert(0) += 1;
                let pool = self.pool_outcomes.entry(gpu).or_insert((0, 0));
                pool.0 += 1;
                if latency > self.slo {
                    pool.1 += 1;
                }
                if latency <= self.slo {
                    self.reservoir_sample(score, base);
                }
            }
            MetricsMsg::PoolAlloc(counts) => {
                for (gpu, allocated) in counts {
                    let entry = self.pool_alloc_samples.entry(gpu).or_insert((0, 0));
                    entry.0 += allocated;
                    entry.1 += 1;
                }
            }
            MetricsMsg::Accuracy {
                minute,
                sample,
                ladder,
                classifier,
            } => {
                let correct = sample
                    .iter()
                    .filter(|&&i| {
                        let p = &self.prompts[i as usize];
                        classifier.predict(&p.text) == self.oracle.optimal_level(p, &ladder)
                    })
                    .count();
                self.accuracy_log
                    .push((minute, correct as f64 / sample.len() as f64));
            }
            MetricsMsg::CacheInsertTotals {
                inserts,
                replica_writes,
                remote_hops,
            } => self
                .collector
                .on_cache_insert_totals(inserts, replica_writes, remote_hops),
            MetricsMsg::CascadeJudged { level, escalated } => {
                *self.cascade.first_pass.entry(level).or_insert(0) += 1;
                let bucket = if escalated {
                    &mut self.cascade.escalated
                } else {
                    &mut self.cascade.accepted
                };
                *bucket.entry(level).or_insert(0) += 1;
                let rate = self.cascade.escalation_rate.entry(level).or_insert(0.0);
                let target = if escalated { 1.0 } else { 0.0 };
                *rate += ESCALATION_EWMA_ALPHA * (target - *rate);
            }
            MetricsMsg::CascadeOutcome {
                first_ratio,
                final_ratio,
            } => {
                self.cascade.escalated_completed += 1;
                self.cascade_delta_sum += final_ratio - first_ratio;
            }
            MetricsMsg::EscalationRates { reply } => {
                reply.send(self.cascade.escalation_rate.clone())
            }
            MetricsMsg::Finish { end, reply } => {
                // `finish` consumes the collector; swap in a throwaway.
                let collector =
                    std::mem::replace(&mut self.collector, MetricsCollector::new(self.slo));
                let (minutes, totals, retrieval) = collector.finish(end);
                let mut cascade = std::mem::take(&mut self.cascade);
                if cascade.escalated_completed > 0 {
                    cascade.quality_delta =
                        self.cascade_delta_sum / cascade.escalated_completed as f64;
                }
                reply.send(MetricsReport {
                    minutes,
                    totals,
                    retrieval,
                    level_completions: std::mem::take(&mut self.level_completions),
                    quality_samples: std::mem::take(&mut self.quality_samples),
                    accuracy_log: std::mem::take(&mut self.accuracy_log),
                    pool_outcomes: std::mem::take(&mut self.pool_outcomes),
                    pool_alloc_samples: std::mem::take(&mut self.pool_alloc_samples),
                    cascade,
                    profile: self.profile,
                });
            }
        }
    }

    fn reservoir_sample(&mut self, score: f64, base: f64) {
        self.sample_seen += 1;
        if self.quality_samples.len() < SAMPLE_CAP {
            self.quality_samples.push((score, base));
        } else {
            let j = self.sample_rng.random_range(0..self.sample_seen);
            if (j as usize) < SAMPLE_CAP {
                self.quality_samples[j as usize] = (score, base);
            }
        }
    }
}

/// Spawns the metrics stage around a freshly-built collector.
pub(crate) fn spawn(
    pacing: ActorPacing,
    collector: MetricsCollector,
    sample_rng: StdRng,
    oracle: QualityOracle,
    prompts: Arc<Vec<Prompt>>,
) -> StageHandle<MetricsMsg> {
    let slo = collector.slo();
    let stage = MetricsStage {
        collector,
        slo,
        level_completions: BTreeMap::new(),
        quality_samples: Vec::with_capacity(SAMPLE_CAP),
        sample_seen: 0,
        sample_rng,
        accuracy_log: Vec::new(),
        pool_outcomes: BTreeMap::new(),
        pool_alloc_samples: BTreeMap::new(),
        oracle,
        prompts,
        cascade: CascadeStats::default(),
        cascade_delta_sum: 0.0,
        profile: StageCounters::default(),
    };
    StageHandle::spawn("metrics", pacing, stage, MetricsStage::handle)
}
