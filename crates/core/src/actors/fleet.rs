//! The fleet stage: elastic-membership bookkeeping off the event pump.
//!
//! The stage owns the [`AutoscaleController`] and every fleet accounting
//! sink: the billed-membership telemetry (a piecewise-constant log of
//! per-(architecture, discount) billed worker counts), the GPU-second
//! integrals the [`crate::fleet::CostReport`] is computed from, and the
//! scale/preemption event counters. The driver is the stage's single
//! producer (D6), so the integral accumulates f64 terms in exactly the
//! order the membership changed — bit-identical across pacings.
//!
//! Two messages rendezvous: [`FleetMsg::Tick`] (the controller's
//! decisions must gate the driver's scale actions this minute) and
//! [`FleetMsg::Finish`] at teardown. Everything else is fire-and-forget
//! telemetry.

use argus_des::SimTime;
use argus_models::GpuArch;
use argus_obs::StageCounters;

use super::{ActorPacing, OneshotSender, StageHandle};
use crate::fleet::{
    hourly_rate, AutoscaleController, FleetStats, MembershipSample, PoolSignal, ScaleAction,
};

/// Fleet messages, in driver event order.
pub(crate) enum FleetMsg {
    /// The billed membership changed (or a minute boundary sampled it):
    /// per-(architecture, discount) billed worker counts in force from
    /// `t` onward. Closes the previous accrual interval.
    Membership {
        t: SimTime,
        counts: Vec<(GpuArch, f64, u32)>,
    },
    /// Allocator-tick controller round trip: per-pool pressure/idle
    /// signals in, scale actions out.
    Tick {
        t: SimTime,
        signals: Vec<PoolSignal>,
        reply: OneshotSender<Vec<ScaleAction>>,
    },
    /// A preemption warning expired: the instance went away clean
    /// (`ridden`) or with an in-flight pass on board (`lost`).
    Preempt { ridden: u64, lost: u64 },
    /// Workers a scale-in action actually evicted (bounded by how many
    /// idle victims existed when it fired).
    Retired(u64),
    /// Close the accrual integral at `end` and hand everything back.
    Finish {
        end: SimTime,
        reply: OneshotSender<FleetReport>,
    },
}

/// Everything the fleet stage accumulated, returned at teardown. The
/// driver folds in the completion count (owned by the metrics stage) to
/// finish the [`crate::fleet::CostReport`].
pub(crate) struct FleetReport {
    pub stats: FleetStats,
    /// Billed GPU-minutes by `(architecture, on-demand, spot)`.
    pub gpu_minutes: Vec<(GpuArch, f64, f64)>,
    pub on_demand_dollars: f64,
    pub spot_dollars: f64,
    /// Logical message counters for the stage profile (§12 telemetry).
    pub profile: StageCounters,
}

struct FleetStage {
    controller: Option<AutoscaleController>,
    stats: FleetStats,
    /// Last membership change: the counts in force since `last_t`.
    last_t: SimTime,
    last_counts: Vec<(GpuArch, f64, u32)>,
    /// Accrued billed GPU-seconds by `(architecture, spot?)` — a Vec in
    /// first-seen order (D2: no unordered-map iteration).
    gpu_secs: Vec<(GpuArch, bool, f64)>,
    on_demand_dollars: f64,
    spot_dollars: f64,
    profile: StageCounters,
}

impl FleetStage {
    fn handle(&mut self, msg: FleetMsg) {
        self.profile.processed += 1;
        if matches!(msg, FleetMsg::Tick { .. } | FleetMsg::Finish { .. }) {
            self.profile.replies += 1;
        }
        match msg {
            FleetMsg::Membership { t, counts } => {
                self.accrue_until(t);
                let total: u32 = counts.iter().map(|&(_, _, n)| n).sum();
                self.stats.peak_workers = self.stats.peak_workers.max(total);
                // Log only actual changes: the telemetry stays
                // piecewise-constant and minimal for reconciliation.
                if self.stats.samples.last().map(|s| &s.counts) != Some(&counts) {
                    self.stats.samples.push(MembershipSample {
                        t_secs: t.as_secs(),
                        counts: counts.clone(),
                    });
                }
                self.last_counts = counts;
            }
            FleetMsg::Tick { t, signals, reply } => {
                let actions = match self.controller.as_mut() {
                    Some(ctl) => ctl.on_tick(t.as_secs(), &signals),
                    None => Vec::new(),
                };
                for a in &actions {
                    match *a {
                        ScaleAction::Out { n, .. } => {
                            self.stats.scale_out_events += 1;
                            self.stats.workers_added += n as u64;
                        }
                        ScaleAction::In { .. } => {
                            self.stats.scale_in_events += 1;
                            // workers_retired arrives via Retired once the
                            // driver knows how many idle victims existed.
                        }
                    }
                }
                reply.send(actions);
            }
            FleetMsg::Preempt { ridden, lost } => {
                self.stats.preemptions_ridden += ridden;
                self.stats.preemptions_lost += lost;
            }
            FleetMsg::Retired(n) => self.stats.workers_retired += n,
            FleetMsg::Finish { end, reply } => {
                self.accrue_until(end);
                let gpu_minutes: Vec<(GpuArch, f64, f64)> = GpuArch::ALL
                    .iter()
                    .filter_map(|&gpu| {
                        // `+ 0.0` flushes the `-0.0` an empty sum yields,
                        // so an all-on-demand pool reports `0.0` spot
                        // minutes, not a signed zero.
                        let od: f64 = self
                            .gpu_secs
                            .iter()
                            .filter(|&&(g, spot, _)| g == gpu && !spot)
                            .map(|&(_, _, s)| s)
                            .sum::<f64>()
                            + 0.0;
                        let spot: f64 = self
                            .gpu_secs
                            .iter()
                            .filter(|&&(g, spot, _)| g == gpu && spot)
                            .map(|&(_, _, s)| s)
                            .sum::<f64>()
                            + 0.0;
                        (od > 0.0 || spot > 0.0).then_some((gpu, od / 60.0, spot / 60.0))
                    })
                    .collect();
                reply.send(FleetReport {
                    stats: std::mem::take(&mut self.stats),
                    gpu_minutes,
                    on_demand_dollars: self.on_demand_dollars,
                    spot_dollars: self.spot_dollars,
                    profile: self.profile,
                });
            }
        }
    }

    /// Accrues GPU-seconds and dollars for the interval `[last_t, t)` at
    /// the membership in force over it.
    fn accrue_until(&mut self, t: SimTime) {
        let secs = (t - self.last_t).as_secs();
        if secs > 0.0 {
            for &(gpu, discount, n) in &self.last_counts {
                if n == 0 {
                    continue;
                }
                let gpu_s = secs * n as f64;
                let spot = discount > 0.0;
                match self
                    .gpu_secs
                    .iter_mut()
                    .find(|(g, s, _)| *g == gpu && *s == spot)
                {
                    Some(slot) => slot.2 += gpu_s,
                    None => self.gpu_secs.push((gpu, spot, gpu_s)),
                }
                let dollars = hourly_rate(gpu, discount) * gpu_s / 3600.0;
                if spot {
                    self.spot_dollars += dollars;
                } else {
                    self.on_demand_dollars += dollars;
                }
            }
        }
        self.last_t = t;
    }
}

/// Spawns the fleet stage. `controller` is `None` when the run has no
/// autoscaler — the stage then only does accounting.
pub(crate) fn spawn(
    pacing: ActorPacing,
    controller: Option<AutoscaleController>,
) -> StageHandle<FleetMsg> {
    let stage = FleetStage {
        controller,
        stats: FleetStats::default(),
        last_t: SimTime::ZERO,
        last_counts: Vec::new(),
        gpu_secs: Vec::new(),
        on_demand_dollars: 0.0,
        spot_dollars: 0.0,
        profile: StageCounters::default(),
    };
    StageHandle::spawn("fleet", pacing, stage, FleetStage::handle)
}
