//! Serving policies: Argus and every baseline of §5.1.

use argus_models::{ApproxLevel, ModelVariant, Strategy};
use std::fmt;

/// A serving policy — the system under test in an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Full Argus: classifier + solver + ODA/PASM + strategy switching.
    Argus,
    /// Prompt-Agnostic Argus (§5.1): solver and AC/SM switching, but no
    /// classifier and no ODA — prompts are redistributed proportionally to
    /// the load distribution, like Proteus.
    Pac,
    /// Proteus [23]: SM-only accuracy scaling with a cluster-level solver,
    /// prompt-agnostic routing.
    Proteus,
    /// Sommelier [38]: per-GPU model selection — each worker reacts to its
    /// own backlog by stepping its model variant up or down.
    Sommelier,
    /// NIRVANA [20] extended to a cluster: SD-XL + approximate caching on
    /// every worker, per-prompt K from retrieval similarity, uniform
    /// load spread, no load-adaptive reallocation.
    Nirvana,
    /// Clipper-HA: the most accurate model (SD-XL) statically on all GPUs.
    ClipperHa,
    /// Clipper-HT: the fastest model (Tiny-SD) statically on all GPUs.
    ClipperHt,
}

impl Policy {
    /// All policies in the paper's comparison order.
    pub const ALL: [Policy; 7] = [
        Policy::Argus,
        Policy::Pac,
        Policy::Proteus,
        Policy::Sommelier,
        Policy::Nirvana,
        Policy::ClipperHa,
        Policy::ClipperHt,
    ];

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Argus => "Argus",
            Policy::Pac => "PAC",
            Policy::Proteus => "Proteus",
            Policy::Sommelier => "Sommelier",
            Policy::Nirvana => "NIRVANA",
            Policy::ClipperHa => "Clipper-HA",
            Policy::ClipperHt => "Clipper-HT",
        }
    }

    /// Whether the policy runs the cluster-level Eq. 1 solver every minute.
    pub fn uses_solver(self) -> bool {
        matches!(self, Policy::Argus | Policy::Pac | Policy::Proteus)
    }

    /// Whether the policy consults the per-prompt classifier.
    pub fn uses_classifier(self) -> bool {
        matches!(self, Policy::Argus)
    }

    /// Whether prompts are redistributed through ODA's PASM (vs the
    /// proportional map).
    pub fn uses_oda(self) -> bool {
        matches!(self, Policy::Argus)
    }

    /// Whether the policy adaptively switches between AC and SM (§4.6).
    pub fn switches_strategy(self) -> bool {
        matches!(self, Policy::Argus | Policy::Pac)
    }

    /// Whether per-worker (not cluster-level) adaptation is used.
    pub fn per_gpu_scaling(self) -> bool {
        matches!(self, Policy::Sommelier)
    }

    /// The initial approximation strategy.
    pub fn initial_strategy(self) -> Strategy {
        match self {
            // Argus and PAC default to AC (Obs. 4); NIRVANA is AC by
            // definition; Clipper-HA serves the base model (equivalent to
            // AC at K=0 without retrieval, but modelled as SM/SD-XL).
            Policy::Argus | Policy::Pac | Policy::Nirvana => Strategy::Ac,
            Policy::Proteus | Policy::Sommelier | Policy::ClipperHa | Policy::ClipperHt => {
                Strategy::Sm
            }
        }
    }

    /// The static level this policy pins every worker to, if any.
    pub fn fixed_level(self) -> Option<ApproxLevel> {
        match self {
            Policy::ClipperHa => Some(ApproxLevel::Sm(ModelVariant::SdXl)),
            Policy::ClipperHt => Some(ApproxLevel::Sm(ModelVariant::TinySd)),
            _ => None,
        }
    }

    /// Whether this policy uses approximate caching at all.
    pub fn uses_cache(self) -> bool {
        matches!(self, Policy::Argus | Policy::Pac | Policy::Nirvana)
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_feature_matrix() {
        // The Table 1 rows this reproduction implements.
        assert!(Policy::Argus.uses_solver());
        assert!(Policy::Argus.uses_classifier());
        assert!(Policy::Argus.uses_oda());
        assert!(Policy::Argus.switches_strategy());

        assert!(Policy::Pac.uses_solver());
        assert!(!Policy::Pac.uses_classifier());
        assert!(!Policy::Pac.uses_oda());
        assert!(Policy::Pac.switches_strategy());

        assert!(Policy::Proteus.uses_solver());
        assert!(!Policy::Proteus.uses_classifier());
        assert!(!Policy::Proteus.switches_strategy());
        assert_eq!(Policy::Proteus.initial_strategy(), Strategy::Sm);

        assert!(Policy::Sommelier.per_gpu_scaling());
        assert!(!Policy::Sommelier.uses_solver());

        assert!(!Policy::Nirvana.uses_solver());
        assert!(Policy::Nirvana.uses_cache());

        assert_eq!(
            Policy::ClipperHa.fixed_level(),
            Some(ApproxLevel::Sm(ModelVariant::SdXl))
        );
        assert_eq!(
            Policy::ClipperHt.fixed_level(),
            Some(ApproxLevel::Sm(ModelVariant::TinySd))
        );
        assert!(!Policy::ClipperHa.uses_cache());
    }

    #[test]
    fn names_and_display() {
        for p in Policy::ALL {
            assert!(!p.name().is_empty());
            assert_eq!(p.to_string(), p.name());
        }
    }
}
