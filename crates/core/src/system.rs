//! The end-to-end discrete-event system simulation (§4.7 testbed).
//!
//! One [`SystemSimulation`] binds a policy (Argus or a baseline), a
//! workload trace, the GPU cluster, the vector database + cache store, the
//! classifier, allocator, PASM and the strategy switcher into a single
//! event loop over virtual time. Every result in the paper's evaluation
//! (Figs. 16, 17, 18, 20, §5.4–§5.7) is a run of this simulation under a
//! different configuration.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use argus_cachestore::{CacheKey, CacheStore, NetworkModel, NetworkRegime};
use argus_classifier::{label_prompts, train, Classifier, DriftDetector, TrainerConfig};
use argus_cluster::{Cluster, WorkerId};
use argus_des::rng::RngFactory;
use argus_des::stats::WindowedRate;
use argus_des::{EventQueue, SimDuration, SimTime};
use argus_embed::{embed, Embedding};
use argus_models::{latency, ApproxLevel, GpuArch, Strategy, AC_LEVELS};
use argus_obs::{MailboxGauge, Recorder, SpanLog, StageProfile, TelemetryConfig, Timeline};
use argus_prompts::{DriftSchedule, Prompt, PromptGenerator};
use argus_quality::QualityOracle;
use argus_vdb::{FlatIndex, LshIndex, SharedIndex};
use argus_workload::{ArrivalProcess, Trace};
use rand::rngs::StdRng;

use crate::actors::cacheplane::{self as cache_stage, CacheMsg, Vdb};
use crate::actors::fleet::{self as fleet_stage, FleetMsg};
use crate::actors::metrics::{self as metrics_stage, MetricsMsg};
use crate::actors::planner::{self as planner_stage, PlannerMsg};
use crate::actors::{ActorPacing, StageHandle};
use crate::cacheplane::CachePlane;
use crate::capacity::{Batch1Model, CapacityModel};
use crate::cascade::{
    CascadeConfig, CascadePolicy, CascadeStats, Discriminator, OracleDiscriminator,
};
use crate::fleet::{AutoscaleController, AutoscalePolicy, CostReport, FleetStats, SpotPool};
use crate::metrics::{MetricsCollector, MinuteRecord, PoolStats, RetrievalStats, RunTotals};
use crate::oda::Pasm;
use crate::pipeline::{pipeline_for, InitialPlacement, ServingPolicy};
use crate::policy::Policy;
use crate::predictor::WorkloadDistributionPredictor;
use crate::scheduler::PoolView;
use crate::switcher::{StrategySwitcher, SwitcherConfig};

/// Allocator cadence (§4.7: "ILP-based load assignment is solved every
/// minute").
pub(crate) const TICK: SimDuration = SimDuration::from_micros(60_000_000);
/// Background network-probe cadence while in SM mode (§4.6).
pub(crate) const PROBE: SimDuration = SimDuration::from_micros(15_000_000);
/// Converts a demand estimate (QPM) into the provisioning target the
/// solver plans for: the estimate plus a 1σ Poisson burst allowance
/// (`√λ`), so minute-scale arrival fluctuations do not overload the
/// plan. Within-minute queueing headroom comes separately from the
/// solver's SLO-aware per-level derating.
pub(crate) fn provisioning_target(estimate_qpm: f64) -> f64 {
    (estimate_qpm + estimate_qpm.max(0.0).sqrt()).max(1.0)
}
/// Recent-prompt pool used for drift retraining and accuracy sampling.
pub(crate) const RECENT_POOL: usize = 3000;

/// A scheduled fault-injection event (§5.6).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// The listed workers crash at the given minute.
    WorkerFail {
        /// Minute (from run start) of the crash.
        at_minute: f64,
        /// Worker indices to fail.
        workers: Vec<usize>,
    },
    /// The listed workers come back (cold) at the given minute.
    WorkerRecover {
        /// Minute of recovery.
        at_minute: f64,
        /// Worker indices to recover.
        workers: Vec<usize>,
    },
    /// A spot/preemptible instance reclaim: the listed workers receive a
    /// preemption notice at the given minute and disappear
    /// `warning_secs` later. During the warning window the dispatcher
    /// drains the doomed workers — queued jobs migrate to survivors
    /// immediately, the in-flight pass races the window. A zero warning
    /// degrades to an unwarned crash, bit-identical to
    /// [`FaultEvent::WorkerFail`].
    Preemption {
        /// Minute (from run start) of the preemption notice.
        at_minute: f64,
        /// Worker indices being reclaimed.
        workers: Vec<usize>,
        /// Seconds between the notice and the instance vanishing.
        warning_secs: f64,
    },
}

impl FaultEvent {
    fn at(&self) -> SimTime {
        let m = match self {
            FaultEvent::WorkerFail { at_minute, .. } => *at_minute,
            FaultEvent::WorkerRecover { at_minute, .. } => *at_minute,
            FaultEvent::Preemption { at_minute, .. } => *at_minute,
        };
        SimTime::from_minutes(m)
    }
}

/// Complete configuration of one experiment run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Policy under test.
    pub policy: Policy,
    /// Workload trace (per-minute QPM).
    pub trace: Trace,
    /// Cluster size (paper testbed: 8).
    pub workers: usize,
    /// GPU architecture (paper testbed: A100). For heterogeneous fleets
    /// this is the reference architecture; see [`RunConfig::pools`].
    pub gpu: GpuArch,
    /// Per-architecture worker pools. `None` means the homogeneous
    /// `workers`×`gpu` testbed; `Some` fleets mix generations and the
    /// allocator solves Eq. 1 per pool with that pool's latency tables.
    pub pools: Option<Vec<(GpuArch, usize)>>,
    /// Route cache lookups through the shared LSH index instead of the
    /// exact flat scan (§4.7's shared-VDB deployment at scale).
    pub lsh_cache: bool,
    /// Shard the retrieval index across worker-attached shards:
    /// `(shards, replication)`. `Some((1, 1))` is the external monolithic
    /// LSH deployment (bit-identical to [`RunConfig::with_lsh_cache`]);
    /// larger values distribute the cache plane (see
    /// [`crate::cacheplane`]). Takes precedence over `lsh_cache`.
    pub sharded_cache: Option<(usize, usize)>,
    /// Master seed.
    pub seed: u64,
    /// Prompt-stream drift schedule (Fig. 18 experiments).
    pub drift: Option<DriftSchedule>,
    /// Injected worker faults (Fig. 20a).
    pub faults: Vec<FaultEvent>,
    /// Network regime schedule for the cache store `(minute, regime)`
    /// (Fig. 11 / Fig. 20b).
    pub network_events: Vec<(f64, NetworkRegime)>,
    /// Offline classifier training-set size.
    pub classifier_train_size: usize,
    /// Classifier training epochs (swept in Fig. 19).
    pub classifier_epochs: usize,
    /// Whether drift triggers retraining (§4.1).
    pub retrain_on_drift: bool,
    /// Whether the AC↔SM switch is allowed (Fig. 20b's "no-switch" line
    /// disables it).
    pub allow_strategy_switch: bool,
    /// Vector-database capacity (recent-window retrieval index).
    pub vdb_capacity: usize,
    /// Ablation (§6): amortize model-load cost into the solver's level
    /// profiles so reallocations account for switch overheads.
    pub load_aware_solver: bool,
    /// Ablation (§6): continuously update the classifier with one SGD step
    /// per completion (online learning) instead of drift-triggered batch
    /// retraining.
    pub online_learning: bool,
    /// Upper bound on jobs a worker drains into one batched start (Obs. 5
    /// batching). The default of 1 is the paper's §4.5 operating point and
    /// reproduces unbatched serving bit-for-bit.
    pub max_batch: u32,
    /// Custom serving pipeline overriding the built-in policy behaviours
    /// (see [`RunConfig::with_policy_pipeline`]).
    pub custom_pipeline: Option<Arc<dyn ServingPolicy>>,
    /// The capacity model Eq. 1 plans with (see
    /// [`RunConfig::with_capacity_model`]). The default
    /// [`Batch1Model`] is bit-identical to the pre-refactor constants.
    pub capacity_model: Arc<dyn CapacityModel>,
    /// Per-architecture planning-strategy overrides
    /// ([`RunConfig::with_pool_strategy`]): pools listed here plan and
    /// serve the pinned strategy's ladder regardless of the global
    /// strategy or the AC↔SM switcher.
    pub pool_strategies: Vec<(GpuArch, Strategy)>,
    /// Mid-minute demand re-splitting between heterogeneous pools
    /// ([`RunConfig::with_demand_resplit`]).
    pub demand_resplit: bool,
    /// How driver↔stage rendezvous execute
    /// ([`RunConfig::with_actor_pacing`]): the determinism-audit knob
    /// pinning the single-core inline fast path or full multi-threaded
    /// pacing. Results are bit-identical across all modes.
    pub actor_pacing: ActorPacing,
    /// Elastic-fleet autoscale policy ([`RunConfig::with_autoscaler`]).
    /// `None` (the default) keeps the fixed-size fleet, bit-identical to
    /// pre-fleet runs.
    pub autoscaler: Option<AutoscalePolicy>,
    /// Spot/preemptible worker pools ([`RunConfig::with_spot_pool`]),
    /// appended to the on-demand fleet in declaration order.
    pub spot_pools: Vec<SpotPool>,
    /// Telemetry plane ([`RunConfig::with_telemetry`]). `None` (the
    /// default) records nothing and is bit-identical to builds without
    /// the plane; `Some` records job-lifecycle spans, the per-tick
    /// timeline and stage profiles into [`RunOutcome`].
    pub telemetry: Option<TelemetryConfig>,
    /// The query-aware cascade plane ([`RunConfig::with_cascade`]).
    /// `None` (the default) keeps the configured policy's pipeline and
    /// is bit-identical to the pre-cascade tree.
    pub cascade: Option<CascadeConfig>,
}

impl RunConfig {
    /// Creates a paper-testbed configuration (8×A100) for a policy and
    /// trace.
    pub fn new(policy: Policy, trace: Trace) -> Self {
        RunConfig {
            policy,
            trace,
            workers: 8,
            gpu: GpuArch::A100,
            pools: None,
            lsh_cache: false,
            sharded_cache: None,
            seed: 0,
            drift: None,
            faults: Vec::new(),
            network_events: Vec::new(),
            classifier_train_size: 6000,
            classifier_epochs: 8,
            retrain_on_drift: true,
            allow_strategy_switch: true,
            vdb_capacity: 768,
            load_aware_solver: false,
            online_learning: false,
            max_batch: 1,
            custom_pipeline: None,
            capacity_model: Arc::new(Batch1Model),
            pool_strategies: Vec::new(),
            demand_resplit: false,
            actor_pacing: ActorPacing::Auto,
            autoscaler: None,
            spot_pools: Vec::new(),
            telemetry: None,
            cascade: None,
        }
    }

    /// Forces how driver↔stage rendezvous execute — the determinism
    /// audit knob. [`ActorPacing::SingleCoreInline`] pins the 1-core
    /// inline fast path, [`ActorPacing::Threaded`] forces every
    /// rendezvous through the stage threads; outcomes are bit-identical
    /// either way (`tests/determinism.rs` enforces it).
    pub fn with_actor_pacing(mut self, pacing: ActorPacing) -> Self {
        self.actor_pacing = pacing;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the cluster size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self.pools = None;
        self
    }

    /// Sets the GPU architecture of the (homogeneous) cluster.
    pub fn with_gpu(mut self, gpu: GpuArch) -> Self {
        self.gpu = gpu;
        self.pools = None;
        self
    }

    /// Configures a heterogeneous fleet from per-architecture worker
    /// counts. The total worker count and the reference architecture (the
    /// largest pool, for reporting) are derived from the pools.
    ///
    /// # Panics
    /// Panics if the pools sum to zero workers.
    pub fn with_heterogeneous_pools(mut self, pools: Vec<(GpuArch, usize)>) -> Self {
        let total: usize = pools.iter().map(|&(_, n)| n).sum();
        assert!(total > 0, "heterogeneous pools need at least one worker");
        self.workers = total;
        if let Some(&(gpu, _)) = pools.iter().max_by_key(|&&(_, n)| n) {
            self.gpu = gpu;
        }
        self.pools = Some(pools);
        self
    }

    /// Routes cache lookups through the shared LSH index (§4.7 shared-VDB
    /// deployment) instead of the exact flat scan.
    pub fn with_lsh_cache(mut self) -> Self {
        self.lsh_cache = true;
        self
    }

    /// Distributes the retrieval index across `shards` worker-attached
    /// shards with `replication`-way replication (the cache plane,
    /// [`crate::cacheplane`]). Lookups served by a replica on the
    /// requesting worker are charged local cost; everything else pays the
    /// remote round trip. `with_sharded_cache(1, 1)` is the external
    /// monolithic deployment, bit-identical to
    /// [`RunConfig::with_lsh_cache`].
    ///
    /// # Panics
    /// Panics if `shards == 0` or `replication == 0`.
    pub fn with_sharded_cache(mut self, shards: usize, replication: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(replication >= 1, "need at least one replica");
        self.sharded_cache = Some((shards, replication));
        self
    }

    /// The per-architecture pools this configuration resolves to.
    pub fn effective_pools(&self) -> Vec<(GpuArch, usize)> {
        match &self.pools {
            Some(p) => p.clone(),
            None => vec![(self.gpu, self.workers)],
        }
    }

    /// Adds fault-injection events.
    pub fn with_faults(mut self, faults: Vec<FaultEvent>) -> Self {
        self.faults = faults;
        self
    }

    /// Adds network regime changes.
    pub fn with_network_events(mut self, events: Vec<(f64, NetworkRegime)>) -> Self {
        self.network_events = events;
        self
    }

    /// Enables prompt drift.
    pub fn with_drift(mut self, drift: DriftSchedule) -> Self {
        self.drift = Some(drift);
        self
    }

    /// Overrides classifier training epochs (Fig. 19 sweep).
    pub fn with_classifier_epochs(mut self, epochs: usize) -> Self {
        self.classifier_epochs = epochs;
        self
    }

    /// Disables the adaptive AC↔SM switch.
    pub fn without_strategy_switch(mut self) -> Self {
        self.allow_strategy_switch = false;
        self
    }

    /// Disables drift-triggered retraining.
    pub fn without_retraining(mut self) -> Self {
        self.retrain_on_drift = false;
        self
    }

    /// Enables the load-cost-aware solver ablation (§6).
    pub fn with_load_aware_solver(mut self) -> Self {
        self.load_aware_solver = true;
        self
    }

    /// Enables continuous online classifier updates (§6 ablation).
    pub fn with_online_learning(mut self) -> Self {
        self.online_learning = true;
        self
    }

    /// Enables batched dispatch: workers drain up to `max_batch` queued
    /// same-level jobs per start, with the batch latency modelled by the
    /// Obs. 5 pass profile and the batch size capped where latency
    /// inflation would eat the SLO tail budget. `with_batching(1)` is
    /// bit-identical to the default unbatched serving.
    ///
    /// # Panics
    /// Panics if `max_batch == 0`.
    pub fn with_batching(mut self, max_batch: u32) -> Self {
        assert!(max_batch >= 1, "batch bound must be at least 1");
        self.max_batch = max_batch;
        self
    }

    /// Replaces the built-in pipeline for [`RunConfig::policy`] with a
    /// custom [`ServingPolicy`] — the escape hatch for policies outside
    /// the paper's six. The [`Policy`] tag is kept for reporting; every
    /// behavioural decision (ladders, routing, cache gating, tick
    /// planning, batching) comes from the custom pipeline.
    pub fn with_policy_pipeline(mut self, pipeline: Box<dyn ServingPolicy>) -> Self {
        self.custom_pipeline = Some(Arc::from(pipeline));
        self
    }

    /// Swaps the capacity model Eq. 1 plans with — the seam any capacity
    /// refinement plugs into. The default [`Batch1Model`] reproduces the
    /// paper's batch-1 profiles bit-for-bit; the
    /// [`crate::capacity::BatchedModel`] folds the Obs. 5 batching curve
    /// (under the run's [`RunConfig::with_batching`] bound and the SLO)
    /// into the planned per-level peaks, so the solver plans fewer
    /// workers per memory-amortizing level. Only the *planning* changes:
    /// dispatch-time batching is governed by `max_batch` either way.
    pub fn with_capacity_model(mut self, model: impl CapacityModel + 'static) -> Self {
        self.capacity_model = Arc::new(model);
        self
    }

    /// Pins one architecture pool's planning strategy (SM ladder on
    /// V100/A10G, AC on A100 — the Fig. 5/fig16 mixed-fleet remedy: AC's
    /// base model is disproportionately slow on older silicon, so
    /// AC-everywhere pays SLO violations at diurnal peaks). Pinned pools
    /// plan, serve and heal their own strategy's ladder; routing treats
    /// the ladder *index* as the common currency across pools (both
    /// ladders are six rungs, slowest first), and pinned pools are exempt
    /// from AC↔SM transitions. Meaningful for solver policies
    /// (Argus/PAC/Proteus); per-worker and static policies ignore it.
    pub fn with_pool_strategy(mut self, gpu: GpuArch, strategy: Strategy) -> Self {
        self.pool_strategies.retain(|&(g, _)| g != gpu);
        self.pool_strategies.push((gpu, strategy));
        self
    }

    /// Enables mid-minute demand re-splitting: when one heterogeneous
    /// pool's backlog exceeds what it can drain by the next allocator
    /// tick, the excess rate is re-split across the other pools
    /// proportionally to their remaining capacity and those pools are
    /// re-solved immediately (at most once per tick), so Eq. 3's spill
    /// finds real capacity instead of piling onto the saturated pool.
    pub fn with_demand_resplit(mut self) -> Self {
        self.demand_resplit = true;
        self
    }

    /// Enables the elastic-fleet autoscale controller: pools scale out on
    /// sustained saturation/re-split/backlog pressure and scale in on
    /// sustained idleness, within the policy's per-architecture bounds,
    /// with a provisioning delay and a per-pool cooldown. Scale-in only
    /// ever evicts workers with no in-flight pass. Runs stay
    /// bit-deterministic: the controller is a pure function of the
    /// per-tick planner signals.
    pub fn with_autoscaler(mut self, policy: AutoscalePolicy) -> Self {
        self.autoscaler = Some(policy);
        self
    }

    /// Appends a spot/preemptible pool: `workers` instances of `gpu`
    /// billed at `(1 - discount)` times the on-demand rate. Spot workers
    /// are ordinary cluster members (planned, routed, healed) that
    /// [`FaultEvent::Preemption`] schedules can reclaim with a warning
    /// window; their indices follow the on-demand fleet in declaration
    /// order.
    ///
    /// # Panics
    /// Panics if `workers == 0` or `discount` is outside `(0, 1]`.
    pub fn with_spot_pool(mut self, gpu: GpuArch, workers: usize, discount: f64) -> Self {
        assert!(workers >= 1, "a spot pool needs at least one worker");
        assert!(
            discount > 0.0 && discount <= 1.0,
            "spot discount must be in (0, 1]"
        );
        self.spot_pools.push(SpotPool {
            gpu,
            workers,
            discount,
        });
        self
    }

    /// Enables the telemetry plane: job-lifecycle spans, the per-tick
    /// time-series registry and actor-stage profiles, recorded in
    /// sim-time and surfaced on [`RunOutcome`] (plus optional JSONL /
    /// Chrome-trace exports at the paths in `cfg`). Telemetry never
    /// perturbs the simulation: results are bit-identical with it on,
    /// off, and across actor-pacing modes.
    pub fn with_telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telemetry = Some(cfg);
        self
    }

    /// Enables the query-aware cascade serving plane
    /// ([`crate::cascade`]): every job runs a cheap first pass, a
    /// deterministic discriminator gates escalation, flagged jobs
    /// re-dispatch through the ordinary serving path at the escalation
    /// rung (keeping their original arrival time for SLO accounting),
    /// and the observed escalation rate is priced into Eq. 1. The
    /// [`Policy`] tag is kept for reporting; a custom pipeline
    /// ([`RunConfig::with_policy_pipeline`]) takes precedence over the
    /// cascade's own pipeline, but escalation gating still applies.
    pub fn with_cascade(mut self, cfg: CascadeConfig) -> Self {
        self.cascade = Some(cfg);
        self
    }

    /// The planning strategy override for an architecture pool, if any.
    pub fn pool_strategy_for(&self, gpu: GpuArch) -> Option<Strategy> {
        self.pool_strategies
            .iter()
            .find(|&&(g, _)| g == gpu)
            .map(|&(_, s)| s)
    }

    /// Builds and runs the simulation.
    pub fn run(self) -> RunOutcome {
        SystemSimulation::new(self).run()
    }
}

/// Results of one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-minute telemetry.
    pub minutes: Vec<MinuteRecord>,
    /// Whole-run aggregates.
    pub totals: RunTotals,
    /// Mean cluster utilization at the end of the run (§5.7).
    pub mean_utilization: f64,
    /// Strategy switches `(AC→SM, SM→AC)`.
    pub switches: (u64, u64),
    /// Minutes in which drift-triggered retraining fired (Fig. 18).
    pub retrain_minutes: Vec<u64>,
    /// Classifier exact-match accuracy sampled per allocator tick
    /// `(minute, accuracy)` (Fig. 18).
    pub classifier_accuracy: Vec<(u64, f64)>,
    /// Completions per approximation level actually executed.
    pub level_completions: Vec<(ApproxLevel, u64)>,
    /// Reservoir sample of `(score, base_score)` pairs from in-SLO
    /// completions, for the human-perception study (§5.4).
    pub quality_samples: Vec<(f64, f64)>,
    /// Minutes in which the solver reported demand beyond maximum cluster
    /// capacity — the §6 saturation (scale-out) signal.
    pub saturated_minutes: u64,
    /// Wall-clock span of the run in seconds: from start to the later of
    /// the trace horizon and the final event (under saturation, queued
    /// work drains past the horizon). The denominator of per-GPU-second
    /// throughput comparisons (the `fig_batching` guard).
    pub makespan_secs: f64,
    /// Retrieval-plane telemetry: per-level cache hit/miss/failure counts
    /// and the retrieval-latency mean/p99, so cache-plane experiments are
    /// measurable without re-running.
    pub retrieval: RetrievalStats,
    /// Per-architecture pool telemetry (one entry per configured pool, in
    /// pool order), so heterogeneous experiments stop inferring pool
    /// behaviour from aggregates. Jobs lost before reaching a worker have
    /// no pool and are excluded from the per-pool violation counts.
    pub pools: Vec<PoolStats>,
    /// Mid-minute demand re-splits triggered
    /// ([`RunConfig::with_demand_resplit`]).
    pub demand_resplits: u64,
    /// Elastic-fleet telemetry: scale events, preemptions ridden vs.
    /// lost, peak billed workers and the billed-membership log.
    pub fleet: FleetStats,
    /// Dollar-denominated accounting integrated from the membership log
    /// at fixed per-architecture on-demand/spot rates.
    pub cost: CostReport,
    /// Per-tick time-series timeline ([`RunConfig::with_telemetry`]);
    /// `None` when telemetry was off.
    pub timeline: Option<Timeline>,
    /// Sampled job-lifecycle spans; `None` when telemetry (or span
    /// recording) was off.
    pub spans: Option<SpanLog>,
    /// Actor-stage profiles in star order (planner, cache-plane,
    /// metrics, fleet); empty when telemetry was off.
    pub stage_profiles: Vec<StageProfile>,
    /// Cascade accounting ([`RunConfig::with_cascade`]): first-pass /
    /// escalated / accepted counts per level, the final escalation-rate
    /// EWMA and the mean quality gain of second passes. `None` when the
    /// cascade was off.
    pub cascade: Option<CascadeStats>,
}

impl RunOutcome {
    /// The deterministic JSONL telemetry document (empty sections for
    /// whatever the run did not record). See DESIGN.md §12 for the line
    /// schema.
    pub fn telemetry_jsonl(&self) -> String {
        let sample = self.spans.as_ref().map_or(0, |s| s.sample_every);
        argus_obs::jsonl_document(
            sample,
            self.spans.as_ref(),
            self.timeline.as_ref(),
            &self.stage_profiles,
        )
    }

    /// The Chrome trace-event document (`chrome://tracing` / Perfetto)
    /// for the run's recorded spans and timeline.
    pub fn chrome_trace(&self) -> String {
        argus_obs::chrome_trace_document(self.spans.as_ref(), self.timeline.as_ref())
    }
}

/// What actually executed for an in-flight job.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Exec {
    pub(crate) level: ApproxLevel,
    pub(crate) similarity: Option<f64>,
}

/// Driver-side cascade state ([`RunConfig::with_cascade`]): the resolved
/// rungs, the discriminator, per-job escalation flags and the latest
/// escalation-rate snapshot from the metrics stage.
pub(crate) struct CascadeState {
    /// Escalate when doubt ≥ threshold.
    pub(crate) threshold: f64,
    /// Whether the observed rate feeds Eq. 1 (s65 ablation knob).
    pub(crate) price_escalations: bool,
    pub(crate) discriminator: Arc<dyn Discriminator>,
    /// The configured first-pass level (pricing anchor; spill may serve
    /// first passes elsewhere).
    pub(crate) first_level: ApproxLevel,
    /// The level escalated jobs re-run at, and its ladder index.
    pub(crate) escalate_level: ApproxLevel,
    pub(crate) escalate_rung: usize,
    /// Per-job escalation flag: set when the discriminator flags the
    /// first pass, so the re-dispatch targets the escalation rung and
    /// the second completion is final.
    pub(crate) escalated: Vec<bool>,
    /// Per-job first-pass relative quality (score/base), kept for the
    /// quality-delta accounting of escalated jobs.
    pub(crate) first_ratio: Vec<f64>,
    /// Latest per-level escalation-rate EWMA snapshot (refreshed each
    /// allocator tick from the metrics stage).
    pub(crate) rates: std::collections::BTreeMap<ApproxLevel, f64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Event {
    Arrive(u32),
    /// Completion of a specific job on a worker; the job id detects events
    /// made stale by a failure that drained the worker.
    Finish(WorkerId, u32),
    LoadDone(WorkerId),
    Tick,
    Probe,
    Fault(u32),
    /// A scale-out's provisioning delay elapsed: the worker joins the
    /// serving set.
    Provision(u32),
    /// A preemption warning expired: the worker disappears now.
    Preempt(u32),
}

/// The discrete-event simulation of the full serving system.
///
/// The struct is the **driver** of the actor control plane
/// ([`crate::actors`]): it owns the event queue, the cluster, routing and
/// the strategy switcher, and holds handles to the planner, cache-plane
/// and metrics stages. Construction (this module) pre-warms the cache
/// plane and spawns the stages; the event pump and every handler live in
/// [`crate::actors::driver`].
pub struct SystemSimulation {
    pub(crate) cfg: RunConfig,
    pub(crate) pipeline: Arc<dyn ServingPolicy>,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) cluster: Cluster,
    pub(crate) oracle: QualityOracle,
    pub(crate) prompts: Arc<Vec<Prompt>>,
    pub(crate) arrivals: Vec<SimTime>,
    pub(crate) embeddings: Vec<Option<Embedding>>,
    pub(crate) switcher: StrategySwitcher,
    pub(crate) classifiers: HashMap<Strategy, Classifier>,
    pub(crate) predictors: HashMap<Strategy, WorkloadDistributionPredictor>,
    pub(crate) pasm: Pasm,
    pub(crate) omega_norm: Vec<f64>,
    /// The run's SLO (the metrics stage owns the collector; the driver
    /// keeps the one scalar it branches on).
    pub(crate) slo: SimDuration,
    pub(crate) route_rng: StdRng,
    pub(crate) service_rng: StdRng,
    pub(crate) arrival_rate: WindowedRate,
    /// Per-worker execution records for the in-flight (possibly batched)
    /// pass, in batch start order.
    pub(crate) exec_info: HashMap<usize, Vec<Exec>>,
    pub(crate) drift_detector: DriftDetector,
    pub(crate) retrain_minutes: Vec<u64>,
    pub(crate) recent: VecDeque<u32>,
    pub(crate) horizon: SimTime,
    pub(crate) saturated_minutes: u64,
    pub(crate) retrieval_ewma: f64,
    pub(crate) last_demand: f64,
    /// Per-pool plan state from the last (re-)allocation: what each
    /// architecture pool was solved with, for ω re-merging and mid-minute
    /// re-splitting.
    pub(crate) pool_plans: Vec<PoolPlan>,
    /// Cached per-architecture ladder view for per-pool-strategy runs;
    /// `None` on single-strategy runs and for policies that never
    /// reallocate.
    pub(crate) pool_view: Option<PoolView>,
    /// Whether the re-split already fired in the current allocator tick
    /// (at most one per tick).
    pub(crate) resplit_done: bool,
    pub(crate) demand_resplits: u64,
    /// Planner stage: Eq. 1 solving and the derated-profile memo.
    pub(crate) planner_stage: StageHandle<PlannerMsg>,
    /// Cache-plane stage: the retrieval index and the blob store.
    pub(crate) cache_stage: StageHandle<CacheMsg>,
    /// Metrics stage: every accounting sink of the run.
    pub(crate) metrics_stage: StageHandle<MetricsMsg>,
    /// Fleet stage: the autoscale controller and cost accounting.
    pub(crate) fleet_stage: StageHandle<FleetMsg>,
    /// Per-worker spot discount, indexed by worker id; `None` means
    /// on-demand. Grows with the cluster (scale-outs are on-demand).
    pub(crate) worker_spot: Vec<Option<f64>>,
    /// Workers provisioned by a scale-out whose delay has not elapsed.
    pub(crate) provisioning: Vec<usize>,
    /// Whether the last allocator solve reported saturation — the
    /// autoscale controller's primary pressure signal.
    pub(crate) tick_saturated: bool,
    /// Pending fire-and-forget cache writes, coalesced into one
    /// [`CacheMsg::Batch`] per flush (see the driver's send helpers).
    pub(crate) cache_buf: Vec<CacheMsg>,
    /// Pending telemetry, coalesced into one [`MetricsMsg::Batch`].
    pub(crate) metrics_buf: Vec<MetricsMsg>,
    /// Telemetry recorder ([`RunConfig::with_telemetry`]); `None` keeps
    /// the run bit-identical to a build without the plane.
    pub(crate) recorder: Option<Recorder>,
    /// Monotone id stamped on every batched dispatch's spans.
    pub(crate) batch_seq: u32,
    /// Driver-side per-stage queue-depth gauges: logical envelopes
    /// outstanding between rendezvous, identical across pacing modes
    /// (DESIGN.md §12) — not live mailbox occupancy.
    pub(crate) mailboxes: MailboxGauges,
    /// Cascade plane state ([`RunConfig::with_cascade`]); `None` keeps
    /// the run bit-identical to the pre-cascade tree.
    pub(crate) cascade: Option<CascadeState>,
}

/// One [`MailboxGauge`] per stage, in star order.
#[derive(Debug, Default)]
pub(crate) struct MailboxGauges {
    pub(crate) planner: MailboxGauge,
    pub(crate) cache: MailboxGauge,
    pub(crate) metrics: MailboxGauge,
    pub(crate) fleet: MailboxGauge,
}

/// Retrieval-latency histogram bounds (seconds) for the telemetry plane.
pub(crate) const RETRIEVAL_BOUNDS: &[f64] = &[0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0];
/// End-to-end job-latency histogram bounds (seconds).
pub(crate) const E2E_BOUNDS: &[f64] = &[1.0, 2.5, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0];
/// Counter series the driver maintains, in registration order.
pub(crate) const OBS_COUNTERS: [&str; 7] = [
    "arrivals",
    "completions",
    "violations",
    "lost",
    "resplits",
    "spot_drains",
    "model_loads",
];
/// Gauge series the driver samples every tick, in registration order.
pub(crate) const OBS_GAUGES: [&str; 8] = [
    "backlog",
    "saturated",
    "fleet_alive",
    "draining",
    "dollars_per_hour",
    "alloc_v100",
    "alloc_a10g",
    "alloc_a100",
];

/// The per-pool allocation gauge for an architecture.
pub(crate) fn alloc_gauge_name(gpu: GpuArch) -> &'static str {
    match gpu {
        GpuArch::V100 => "alloc_v100",
        GpuArch::A10G => "alloc_a10g",
        GpuArch::A100 => "alloc_a100",
    }
}

/// One architecture pool's share of the last Eq. 1 solve: the inputs the
/// mid-minute re-split needs to grow an unsaturated pool's plan without
/// re-deriving the whole allocation.
#[derive(Debug, Clone)]
pub(crate) struct PoolPlan {
    pub(crate) gpu: GpuArch,
    pub(crate) strategy: Strategy,
    pub(crate) ladder: Vec<ApproxLevel>,
    /// Alive workers the pool was solved with.
    pub(crate) workers: usize,
    /// Derated maximum capacity (QPM) of the pool at plan time. The
    /// re-split scales this by the *current* alive count, so a fault that
    /// shrinks a pool mid-minute immediately shrinks the capacity the
    /// saturation check reasons with.
    pub(crate) cap_qpm: f64,
    /// Demand share (QPM) the pool was solved with.
    pub(crate) share_qpm: f64,
    /// The pool's solved load vector `ω` (per ladder index).
    pub(crate) omega: Vec<f64>,
    /// Retrieval overhead (seconds) the pool's derating was planned with —
    /// the baseline the mid-minute retrieval-spike trigger compares the
    /// live EWMA against.
    pub(crate) overhead: f64,
}

impl PoolPlan {
    /// The plan's capacity scaled to the pool's current alive workers.
    pub(crate) fn current_cap_qpm(&self, alive_now: usize) -> f64 {
        self.cap_qpm * alive_now as f64 / self.workers as f64
    }
}

impl SystemSimulation {
    /// Builds the simulation: generates the workload, trains classifiers
    /// offline, pre-warms the cache with the training images, and places
    /// the initial allocation.
    pub fn new(cfg: RunConfig) -> Self {
        let pipeline: Arc<dyn ServingPolicy> = match (&cfg.custom_pipeline, &cfg.cascade) {
            (Some(p), _) => Arc::clone(p),
            (None, Some(cc)) => {
                let rungs = ApproxLevel::ladder(Strategy::Sm).len();
                Arc::new(CascadePolicy::new(cc.first_pass_rung(rungs)))
            }
            (None, None) => pipeline_for(cfg.policy),
        };
        let factory = RngFactory::new(cfg.seed);

        // Workload: arrival instants + matching prompt stream.
        let arrivals: Vec<SimTime> = ArrivalProcess::new(&cfg.trace, cfg.seed ^ 0xA11).collect();
        let mut generator = PromptGenerator::new(cfg.seed ^ 0x9E0);
        if let Some(d) = cfg.drift {
            generator = generator.with_drift(d);
        }
        let prompts = Arc::new(generator.generate_batch(arrivals.len()));
        let embeddings = vec![None; prompts.len()];

        let oracle = QualityOracle::new(cfg.seed ^ 0x0AC1E);

        // Offline training pool (no drift — the pre-deployment data).
        let offline =
            PromptGenerator::new(cfg.seed ^ 0x0FF11E).generate_batch(cfg.classifier_train_size);

        // Classifiers per strategy (Argus needs both for switching).
        let mut classifiers = HashMap::new();
        if pipeline.uses_classifier() {
            for strategy in [Strategy::Ac, Strategy::Sm] {
                let ladder = ApproxLevel::ladder(strategy);
                let samples = label_prompts(&oracle, &offline, &ladder);
                let (clf, _) = train(
                    &samples,
                    ladder.len(),
                    &TrainerConfig {
                        epochs: cfg.classifier_epochs,
                        seed: cfg.seed,
                        ..TrainerConfig::default()
                    },
                );
                classifiers.insert(strategy, clf);
            }
        }

        // Cache store with the configured network schedule; pre-warmed
        // with the offline pool (those images were generated during
        // training, so their states exist).
        let mut network = NetworkModel::new(factory);
        for &(minute, regime) in &cfg.network_events {
            network = network.with_event(SimTime::from_minutes(minute), regime);
        }
        let mut cache = CacheStore::with_network(network);
        let mut vdb = if let Some((shards, replication)) = cfg.sharded_cache {
            // The cache plane: per-shard LSH replicas at the same 8-bit
            // knee and the same total capacity as the monolithic index
            // (shards = 1, replication = 1 reproduces it bit-for-bit).
            Vdb::Sharded(CachePlane::new(
                shards,
                replication,
                cfg.workers,
                cfg.seed ^ 0x15B,
                cfg.vdb_capacity.max(1),
            ))
        } else if cfg.lsh_cache {
            // 8 hyperplanes ≈ 3.5% of the corpus probed per query at the
            // default cache capacity — the recall/scan-cost knee (see
            // `tests/lsh_cache.rs`).
            Vdb::Lsh(SharedIndex::from_index(LshIndex::with_capacity_limit(
                8,
                cfg.seed ^ 0x15B,
                cfg.vdb_capacity.max(1),
            )))
        } else {
            Vdb::Flat(FlatIndex::with_capacity_limit(cfg.vdb_capacity.max(1)))
        };
        const OFFLINE_BASE: u64 = 1 << 40;
        for (i, p) in offline.iter().enumerate() {
            let id = OFFLINE_BASE + i as u64;
            // Pre-deployment warm-up writes are not charged to the run.
            vdb.insert(None, embed(&p.text), id);
            for k in AC_LEVELS.iter().skip(1) {
                cache.put(
                    CacheKey {
                        prompt_id: id,
                        k: k.skipped_steps(),
                    },
                    SimTime::ZERO,
                );
            }
        }

        let predictors = [Strategy::Ac, Strategy::Sm]
            .into_iter()
            .map(|s| (s, WorkloadDistributionPredictor::new(6, 1000)))
            .collect();

        let horizon = SimTime::from_minutes(cfg.trace.len_minutes() as f64);
        // The SLO references the slowest architecture in the fleet (for the
        // homogeneous testbed that is just `cfg.gpu`): a latency target no
        // pool can meet would make heterogeneity trivially lossy. Spot
        // pools are ordinary cluster members appended after the on-demand
        // fleet; the cache plane keeps striping over the on-demand workers
        // only (`cfg.workers`), so adding spot capacity never re-stripes.
        let mut pools = cfg.effective_pools();
        for sp in &cfg.spot_pools {
            pools.push((sp.gpu, sp.workers));
        }
        let slo_arch = pools
            .iter()
            .filter(|&&(_, n)| n > 0)
            .map(|&(gpu, _)| gpu)
            .max_by(|a, b| {
                latency::inference_secs(argus_models::ModelVariant::SdXl, *a)
                    .partial_cmp(&latency::inference_secs(
                        argus_models::ModelVariant::SdXl,
                        *b,
                    ))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(cfg.gpu);
        let base_latency = SimDuration::from_secs(latency::inference_secs(
            argus_models::ModelVariant::SdXl,
            slo_arch,
        ));

        // §4.6 dual-resident HBM is an Argus design feature (kept by PAC,
        // which reuses Argus' serving stack). Proteus swaps the serving
        // model in place, so every cross-model switch pays a load — the
        // overhead §5.7 measures.
        let mut cluster = Cluster::heterogeneous(&pools);
        let hbm_slots = pipeline.hbm_slots();
        if hbm_slots != argus_cluster::MAX_RESIDENT_MODELS {
            for id in 0..cluster.len() {
                cluster.worker_mut(WorkerId(id)).set_hbm_slots(hbm_slots);
            }
        }

        // Spawn the control-plane stages around the pre-warmed state. The
        // collector moves onto the metrics stage (the driver keeps only the
        // SLO scalar); the warmed index and store move onto the cache-plane
        // stage; the planner starts empty and builds its memos on demand.
        let collector = MetricsCollector::new(base_latency);
        let slo = collector.slo();
        let metrics_stage = metrics_stage::spawn(
            cfg.actor_pacing,
            collector,
            factory.stream("samples"),
            oracle,
            Arc::clone(&prompts),
        );
        let cache_stage = cache_stage::spawn(cfg.actor_pacing, vdb, cache, Arc::clone(&pipeline));
        let planner_stage = planner_stage::spawn(
            cfg.actor_pacing,
            Arc::clone(&cfg.capacity_model),
            slo.as_secs(),
            cfg.max_batch,
            cfg.load_aware_solver,
        );
        // The autoscale controller's per-architecture bounds default off
        // the initial pool sizes (spot workers count toward them).
        let mut initial_pools: Vec<(GpuArch, usize)> = Vec::new();
        for &(gpu, n) in &pools {
            match initial_pools.iter_mut().find(|(g, _)| *g == gpu) {
                Some(e) => e.1 += n,
                None => initial_pools.push((gpu, n)),
            }
        }
        let controller = cfg
            .autoscaler
            .clone()
            .map(|p| AutoscaleController::new(p, &initial_pools));
        let fleet_stage = fleet_stage::spawn(cfg.actor_pacing, controller);
        // Per-worker spot discounts in cluster id order: the on-demand
        // pools first, then each spot pool.
        let mut worker_spot: Vec<Option<f64>> = vec![None; cfg.workers];
        for sp in &cfg.spot_pools {
            worker_spot.extend(std::iter::repeat_n(Some(sp.discount), sp.workers));
        }

        // Telemetry: pre-register every series up front so each tick
        // sample carries an identical vector layout from minute zero
        // (DESIGN.md §12).
        let recorder = cfg.telemetry.clone().map(|tc| {
            let mut r = Recorder::new(tc);
            for name in OBS_COUNTERS {
                r.registry.counter_add(name, 0);
            }
            for name in OBS_GAUGES {
                r.registry.gauge_set(name, 0.0);
            }
            // Cascade series exist only on cascade runs, so the default
            // export stays byte-identical to the pre-cascade tree.
            if cfg.cascade.is_some() {
                r.registry.counter_add("escalations", 0);
                r.registry.gauge_set("escalation_rate", 0.0);
            }
            r.registry
                .hist_register("retrieval_latency_secs", RETRIEVAL_BOUNDS);
            r.registry.hist_register("e2e_latency_secs", E2E_BOUNDS);
            r
        });

        // Cascade plane: resolve the configured rungs against the SM
        // ladder and seed the built-in discriminator off the run seed.
        let cascade = cfg.cascade.clone().map(|cc| {
            let ladder = ApproxLevel::ladder(Strategy::Sm);
            let first_rung = cc.first_pass_rung(ladder.len());
            let escalate_rung = cc.escalate_rung(ladder.len());
            CascadeState {
                threshold: cc.threshold,
                price_escalations: cc.price_escalations,
                discriminator: cc
                    .discriminator
                    .unwrap_or_else(|| Arc::new(OracleDiscriminator::new(cfg.seed))),
                first_level: ladder[first_rung],
                escalate_level: ladder[escalate_rung],
                escalate_rung,
                escalated: vec![false; arrivals.len()],
                first_ratio: vec![0.0; arrivals.len()],
                rates: std::collections::BTreeMap::new(),
            }
        });

        let mut sim = SystemSimulation {
            cluster,
            queue: EventQueue::new(),
            oracle,
            prompts,
            arrivals,
            embeddings,
            switcher: StrategySwitcher::new(SwitcherConfig::default()),
            classifiers,
            predictors,
            pasm: Pasm::identity(6),
            omega_norm: {
                let mut v = vec![0.0; 6];
                v[0] = 1.0;
                v
            },
            slo,
            route_rng: factory.stream("route"),
            service_rng: factory.stream("service"),
            arrival_rate: WindowedRate::new(SimDuration::from_minutes(1.0)),
            exec_info: HashMap::new(),
            drift_detector: DriftDetector::new(400, 5, 0.35),
            retrain_minutes: Vec::new(),
            recent: VecDeque::with_capacity(RECENT_POOL),
            horizon,
            saturated_minutes: 0,
            retrieval_ewma: 0.02,
            last_demand: cfg.trace.qpm_at(0),
            pool_plans: Vec::new(),
            pool_view: None,
            resplit_done: false,
            demand_resplits: 0,
            planner_stage,
            cache_stage,
            metrics_stage,
            fleet_stage,
            worker_spot,
            provisioning: Vec::new(),
            tick_saturated: false,
            cache_buf: Vec::new(),
            metrics_buf: Vec::new(),
            recorder,
            batch_seq: 0,
            mailboxes: MailboxGauges::default(),
            cascade,
            pipeline,
            cfg,
        };

        // Schedule the workload and periodic events.
        for (i, &at) in sim.arrivals.iter().enumerate() {
            sim.queue.schedule(at, Event::Arrive(i as u32));
        }
        // Periodic events only make sense inside the horizon; a
        // zero-duration trace schedules nothing and terminates immediately.
        if SimTime::ZERO + TICK <= sim.horizon {
            sim.queue.schedule(SimTime::ZERO + TICK, Event::Tick);
        }
        if SimTime::ZERO + PROBE <= sim.horizon {
            sim.queue.schedule(SimTime::ZERO + PROBE, Event::Probe);
        }
        for (i, f) in sim.cfg.faults.clone().iter().enumerate() {
            sim.queue.schedule(f.at(), Event::Fault(i as u32));
        }

        // Initial placement, per the pipeline: solver policies consult
        // Eq. 1 with the trace's opening demand; static policies pin their
        // level; per-worker policies start on the base model.
        match sim.pipeline.initial_placement() {
            InitialPlacement::Solve => {
                let d0 = provisioning_target(sim.cfg.trace.qpm_at(0));
                sim.reallocate(SimTime::ZERO, d0, 1.0);
            }
            InitialPlacement::Heal => {
                sim.heal_unassigned(SimTime::ZERO);
            }
            InitialPlacement::AllAtBase => {
                let base = sim.pipeline.active_ladder(&sim.switcher)[0];
                for w in sim.cluster.alive() {
                    sim.assign_and_schedule(w, base, SimTime::ZERO);
                }
            }
        }
        // Pre-deployment warm-up: initial loads complete before traffic
        // starts (production clusters do not serve cold, §4.7).
        for w in sim.cluster.alive() {
            if let Some(l) = sim.cluster.worker(w).pending_level() {
                sim.cluster.worker_mut(w).preload(l);
            }
        }
        sim.sample_pool_allocation();
        // Anchor the cost integral: the billed membership in force at t=0.
        sim.send_membership(SimTime::ZERO);
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_workload::steady;

    fn quick(policy: Policy, qpm: f64, minutes: usize) -> RunOutcome {
        RunConfig::new(policy, steady(qpm, minutes))
            .with_seed(7)
            .run()
    }

    #[test]
    fn argus_serves_a_light_steady_load() {
        let out = quick(Policy::Argus, 60.0, 8);
        let expected = 60.0 * 8.0;
        assert!(
            (out.totals.completed as f64) > 0.9 * expected,
            "completed {} of ~{expected}",
            out.totals.completed
        );
        assert!(out.totals.slo_violation_ratio() < 0.05, "{:?}", out.totals);
        assert!(out.totals.effective_accuracy() > 19.0);
        assert_eq!(out.switches, (0, 0));
    }

    #[test]
    fn argus_survives_heavy_load_via_approximation() {
        let out = quick(Policy::Argus, 180.0, 10);
        assert!(
            out.totals.mean_throughput_qpm(10.0) > 150.0,
            "throughput {}",
            out.totals.mean_throughput_qpm(10.0)
        );
        assert!(out.totals.slo_violation_ratio() < 0.15, "{:?}", out.totals);
        // Approximated levels must have been used.
        let deep: u64 = out
            .level_completions
            .iter()
            .filter(|(l, _)| matches!(l, ApproxLevel::Ac(k) if k.skipped_steps() > 0))
            .map(|&(_, c)| c)
            .sum();
        assert!(
            deep > 100,
            "deep completions {deep} ({:?})",
            out.level_completions
        );
    }

    #[test]
    fn clipper_ha_violates_under_load_clipper_ht_degrades_quality() {
        let ha = quick(Policy::ClipperHa, 160.0, 8);
        let ht = quick(Policy::ClipperHt, 160.0, 8);
        // HA cannot keep up: violations pile up.
        assert!(ha.totals.slo_violation_ratio() > 0.3, "{:?}", ha.totals);
        // HT keeps up but at the lowest quality.
        assert!(ht.totals.slo_violation_ratio() < 0.1, "{:?}", ht.totals);
        assert!(ht.totals.effective_accuracy() < 18.0, "{:?}", ht.totals);
        assert!(ha.totals.effective_accuracy() > ht.totals.effective_accuracy() + 2.0);
    }

    #[test]
    fn all_policies_run_without_stalling() {
        for policy in Policy::ALL {
            let out = RunConfig::new(policy, steady(90.0, 5)).with_seed(3).run();
            assert!(
                out.totals.completed > 300,
                "{policy}: completed {}",
                out.totals.completed
            );
            assert!(
                out.totals.completed <= out.totals.offered,
                "{policy}: completed more than offered"
            );
        }
    }

    #[test]
    fn network_outage_triggers_strategy_switch() {
        let out = RunConfig::new(Policy::Argus, steady(100.0, 14))
            .with_seed(5)
            .with_network_events(vec![
                (4.0, NetworkRegime::Outage),
                (8.0, NetworkRegime::Normal),
            ])
            .run();
        assert!(out.switches.0 >= 1, "no AC→SM switch: {:?}", out.switches);
        assert!(
            out.switches.1 >= 1,
            "no SM→AC switch back: {:?}",
            out.switches
        );
    }

    #[test]
    fn no_switch_flag_keeps_ac_through_outage() {
        let out = RunConfig::new(Policy::Argus, steady(100.0, 10))
            .with_seed(5)
            .with_network_events(vec![(4.0, NetworkRegime::Outage)])
            .without_strategy_switch()
            .run();
        assert_eq!(out.switches, (0, 0));
    }

    #[test]
    fn gpu_failure_is_absorbed() {
        let out = RunConfig::new(Policy::Argus, steady(100.0, 12))
            .with_seed(9)
            .with_faults(vec![
                FaultEvent::WorkerFail {
                    at_minute: 4.0,
                    workers: vec![0, 1, 2, 3],
                },
                FaultEvent::WorkerRecover {
                    at_minute: 8.0,
                    workers: vec![0, 1, 2, 3],
                },
            ])
            .run();
        // The system keeps serving (reduced capacity, deeper approximation).
        assert!(
            out.totals.completed as f64 > 0.75 * out.totals.offered as f64,
            "{:?}",
            out.totals
        );
    }

    #[test]
    fn saturation_is_signalled_beyond_capacity() {
        let out = quick(Policy::Argus, 300.0, 6);
        assert!(out.saturated_minutes >= 3, "{}", out.saturated_minutes);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick(Policy::Argus, 80.0, 5);
        let b = quick(Policy::Argus, 80.0, 5);
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.minutes.len(), b.minutes.len());
        assert_eq!(a.level_completions, b.level_completions);
    }

    #[test]
    fn online_learning_mode_runs() {
        let out = RunConfig::new(Policy::Argus, steady(100.0, 8))
            .with_seed(21)
            .with_online_learning()
            .run();
        assert!(out.totals.completed > 600);
        // Online mode replaces batch retraining entirely.
        assert!(out.retrain_minutes.is_empty());
        assert!(out.totals.slo_violation_ratio() < 0.05);
    }

    #[test]
    fn moderate_steady_load_is_violation_free() {
        // With SLO-aware derating, Poisson burst margin and the tail spill,
        // sustained load below the derated capacity serves clean.
        let out = quick(Policy::Argus, 150.0, 12);
        assert!(out.totals.slo_violation_ratio() < 0.01, "{:?}", out.totals);
    }

    #[test]
    fn sommelier_adapts_per_worker() {
        // Sommelier steps variants per backlog; under a hot load it must
        // leave the base model on most workers.
        let out = quick(Policy::Sommelier, 170.0, 12);
        let fast: u64 = out
            .level_completions
            .iter()
            .filter(
                |(l, _)| matches!(l, ApproxLevel::Sm(v) if *v != argus_models::ModelVariant::SdXl),
            )
            .map(|&(_, c)| c)
            .sum();
        assert!(fast > 200, "{:?}", out.level_completions);
        assert!(out.totals.model_loads > 8, "no per-worker switching");
    }

    #[test]
    fn heterogeneous_fleet_serves_end_to_end() {
        let out = RunConfig::new(Policy::Argus, steady(90.0, 8))
            .with_heterogeneous_pools(vec![
                (GpuArch::A100, 4),
                (GpuArch::A10G, 2),
                (GpuArch::V100, 2),
            ])
            .with_seed(13)
            .run();
        assert!(
            out.totals.completed as f64 > 0.85 * out.totals.offered as f64,
            "{:?}",
            out.totals
        );
        assert!(out.totals.effective_accuracy() > 17.0, "{:?}", out.totals);
    }

    #[test]
    fn heterogeneous_fleet_is_bit_deterministic() {
        let run = || {
            RunConfig::new(Policy::Argus, steady(90.0, 6))
                .with_heterogeneous_pools(vec![(GpuArch::A100, 4), (GpuArch::V100, 4)])
                .with_seed(21)
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.minutes, b.minutes);
        assert_eq!(a.level_completions, b.level_completions);
        assert_eq!(a.quality_samples, b.quality_samples);
    }

    #[test]
    fn older_gpus_saturate_earlier() {
        // The same demand that a 8×A100 fleet absorbs easily saturates a
        // 8×V100 fleet — with_gpu must actually rewire the latency tables.
        let a100 = quick(Policy::Argus, 150.0, 6);
        let v100 = RunConfig::new(Policy::Argus, steady(150.0, 6))
            .with_gpu(GpuArch::V100)
            .with_seed(7)
            .run();
        assert_eq!(a100.saturated_minutes, 0, "{a100:?}");
        assert!(v100.saturated_minutes >= 3, "{}", v100.saturated_minutes);
    }

    #[test]
    fn lsh_cache_mode_runs_and_is_deterministic() {
        let run = || {
            RunConfig::new(Policy::Argus, steady(80.0, 6))
                .with_lsh_cache()
                .with_seed(5)
                .run()
        };
        let a = run();
        assert!(a.totals.completed > 350, "{:?}", a.totals);
        let b = run();
        assert_eq!(a.totals, b.totals);
    }

    #[test]
    fn sharded_cache_mode_runs_and_is_deterministic() {
        let run = || {
            RunConfig::new(Policy::Argus, steady(80.0, 6))
                .with_sharded_cache(4, 2)
                .with_seed(5)
                .run()
        };
        let a = run();
        assert!(a.totals.completed > 350, "{:?}", a.totals);
        assert!(a.retrieval.lookups > 0, "{:?}", a.retrieval);
        assert!(a.retrieval.hits() > 0, "{:?}", a.retrieval);
        let b = run();
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.retrieval, b.retrieval);
        assert_eq!(a.level_completions, b.level_completions);
    }

    #[test]
    fn batching_keeps_saturated_throughput_at_least_unbatched() {
        // Obs. 5: diffusion batches amortize the fixed pass overhead, so a
        // saturated cluster completes at least as much work with batching
        // enabled, while batch sizes stay within the SLO budget.
        let unbatched = RunConfig::new(Policy::Argus, steady(300.0, 8))
            .with_seed(7)
            .run();
        let batched = RunConfig::new(Policy::Argus, steady(300.0, 8))
            .with_seed(7)
            .with_batching(4)
            .run();
        assert!(
            batched.totals.completed >= unbatched.totals.completed,
            "batched {} < unbatched {}",
            batched.totals.completed,
            unbatched.totals.completed
        );
    }

    #[test]
    fn batch_one_is_bit_identical_to_default() {
        for policy in Policy::ALL {
            let a = RunConfig::new(policy, steady(120.0, 5)).with_seed(3).run();
            let b = RunConfig::new(policy, steady(120.0, 5))
                .with_seed(3)
                .with_batching(1)
                .run();
            assert_eq!(a.totals, b.totals, "{policy}");
            assert_eq!(a.level_completions, b.level_completions, "{policy}");
        }
    }

    #[test]
    fn custom_pipeline_escape_hatch_matches_builtin() {
        let builtin = quick(Policy::Nirvana, 90.0, 5);
        let custom = RunConfig::new(Policy::Nirvana, steady(90.0, 5))
            .with_seed(7)
            .with_policy_pipeline(Box::new(crate::pipeline::NirvanaPolicy))
            .run();
        assert_eq!(builtin.totals, custom.totals);
        assert_eq!(builtin.level_completions, custom.level_completions);
    }
}
