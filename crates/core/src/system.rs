//! The end-to-end discrete-event system simulation (§4.7 testbed).
//!
//! One [`SystemSimulation`] binds a policy (Argus or a baseline), a
//! workload trace, the GPU cluster, the vector database + cache store, the
//! classifier, allocator, PASM and the strategy switcher into a single
//! event loop over virtual time. Every result in the paper's evaluation
//! (Figs. 16, 17, 18, 20, §5.4–§5.7) is a run of this simulation under a
//! different configuration.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use argus_cachestore::{CacheKey, CacheStore, FetchStatus, Locality, NetworkModel, NetworkRegime};
use argus_classifier::{label_prompts, train, Classifier, DriftDetector, TrainerConfig};
use argus_cluster::{Cluster, SwitchOutcome, WorkerId};
use argus_des::rng::{log_normal, RngFactory};
use argus_des::stats::WindowedRate;
use argus_des::{EventQueue, SimDuration, SimTime};
use argus_embed::{embed, Embedding};
use argus_models::batching::unet_pass_profile;
use argus_models::{latency, AcLevel, ApproxLevel, GpuArch, Strategy, AC_LEVELS};
use argus_prompts::{DriftSchedule, Prompt, PromptGenerator};
use argus_quality::QualityOracle;
use argus_vdb::{FlatIndex, LshIndex, SearchHit, SharedIndex};
use argus_workload::{ArrivalProcess, Trace};
use rand::rngs::StdRng;
use rand::RngExt as _;

use crate::cacheplane::CachePlane;
use crate::capacity::{Batch1Model, CapacityCtx, CapacityModel};
use crate::metrics::{MetricsCollector, MinuteRecord, PoolStats, RetrievalStats, RunTotals};
use crate::oda::{oda, Pasm};
use crate::pipeline::{
    pipeline_for, InitialPlacement, RouteCtx, SelectCtx, ServingPolicy, TickAction,
};
use crate::policy::Policy;
use crate::predictor::WorkloadDistributionPredictor;
use crate::scheduler::PoolView;
use crate::solver::{AllocationProblem, LevelProfile, SolveCache};
use crate::switcher::{StrategySwitcher, SwitchCommand, SwitcherConfig, SwitcherState};

/// Allocator cadence (§4.7: "ILP-based load assignment is solved every
/// minute").
const TICK: SimDuration = SimDuration::from_micros(60_000_000);
/// Background network-probe cadence while in SM mode (§4.6).
const PROBE: SimDuration = SimDuration::from_micros(15_000_000);
/// Converts a demand estimate (QPM) into the provisioning target the
/// solver plans for: the estimate plus a 1σ Poisson burst allowance
/// (`√λ`), so minute-scale arrival fluctuations do not overload the
/// plan. Within-minute queueing headroom comes separately from the
/// solver's SLO-aware per-level derating.
fn provisioning_target(estimate_qpm: f64) -> f64 {
    (estimate_qpm + estimate_qpm.max(0.0).sqrt()).max(1.0)
}
/// Recent-prompt pool used for drift retraining and accuracy sampling.
const RECENT_POOL: usize = 3000;
/// Reservoir size for (score, base) quality samples.
const SAMPLE_CAP: usize = 2000;

/// A scheduled fault-injection event (§5.6).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// The listed workers crash at the given minute.
    WorkerFail {
        /// Minute (from run start) of the crash.
        at_minute: f64,
        /// Worker indices to fail.
        workers: Vec<usize>,
    },
    /// The listed workers come back (cold) at the given minute.
    WorkerRecover {
        /// Minute of recovery.
        at_minute: f64,
        /// Worker indices to recover.
        workers: Vec<usize>,
    },
}

impl FaultEvent {
    fn at(&self) -> SimTime {
        let m = match self {
            FaultEvent::WorkerFail { at_minute, .. } => *at_minute,
            FaultEvent::WorkerRecover { at_minute, .. } => *at_minute,
        };
        SimTime::from_minutes(m)
    }
}

/// Complete configuration of one experiment run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Policy under test.
    pub policy: Policy,
    /// Workload trace (per-minute QPM).
    pub trace: Trace,
    /// Cluster size (paper testbed: 8).
    pub workers: usize,
    /// GPU architecture (paper testbed: A100). For heterogeneous fleets
    /// this is the reference architecture; see [`RunConfig::pools`].
    pub gpu: GpuArch,
    /// Per-architecture worker pools. `None` means the homogeneous
    /// `workers`×`gpu` testbed; `Some` fleets mix generations and the
    /// allocator solves Eq. 1 per pool with that pool's latency tables.
    pub pools: Option<Vec<(GpuArch, usize)>>,
    /// Route cache lookups through the shared LSH index instead of the
    /// exact flat scan (§4.7's shared-VDB deployment at scale).
    pub lsh_cache: bool,
    /// Shard the retrieval index across worker-attached shards:
    /// `(shards, replication)`. `Some((1, 1))` is the external monolithic
    /// LSH deployment (bit-identical to [`RunConfig::with_lsh_cache`]);
    /// larger values distribute the cache plane (see
    /// [`crate::cacheplane`]). Takes precedence over `lsh_cache`.
    pub sharded_cache: Option<(usize, usize)>,
    /// Master seed.
    pub seed: u64,
    /// Prompt-stream drift schedule (Fig. 18 experiments).
    pub drift: Option<DriftSchedule>,
    /// Injected worker faults (Fig. 20a).
    pub faults: Vec<FaultEvent>,
    /// Network regime schedule for the cache store `(minute, regime)`
    /// (Fig. 11 / Fig. 20b).
    pub network_events: Vec<(f64, NetworkRegime)>,
    /// Offline classifier training-set size.
    pub classifier_train_size: usize,
    /// Classifier training epochs (swept in Fig. 19).
    pub classifier_epochs: usize,
    /// Whether drift triggers retraining (§4.1).
    pub retrain_on_drift: bool,
    /// Whether the AC↔SM switch is allowed (Fig. 20b's "no-switch" line
    /// disables it).
    pub allow_strategy_switch: bool,
    /// Vector-database capacity (recent-window retrieval index).
    pub vdb_capacity: usize,
    /// Ablation (§6): amortize model-load cost into the solver's level
    /// profiles so reallocations account for switch overheads.
    pub load_aware_solver: bool,
    /// Ablation (§6): continuously update the classifier with one SGD step
    /// per completion (online learning) instead of drift-triggered batch
    /// retraining.
    pub online_learning: bool,
    /// Upper bound on jobs a worker drains into one batched start (Obs. 5
    /// batching). The default of 1 is the paper's §4.5 operating point and
    /// reproduces unbatched serving bit-for-bit.
    pub max_batch: u32,
    /// Custom serving pipeline overriding the built-in policy behaviours
    /// (see [`RunConfig::with_policy_pipeline`]).
    pub custom_pipeline: Option<Arc<dyn ServingPolicy>>,
    /// The capacity model Eq. 1 plans with (see
    /// [`RunConfig::with_capacity_model`]). The default
    /// [`Batch1Model`] is bit-identical to the pre-refactor constants.
    pub capacity_model: Arc<dyn CapacityModel>,
    /// Per-architecture planning-strategy overrides
    /// ([`RunConfig::with_pool_strategy`]): pools listed here plan and
    /// serve the pinned strategy's ladder regardless of the global
    /// strategy or the AC↔SM switcher.
    pub pool_strategies: Vec<(GpuArch, Strategy)>,
    /// Mid-minute demand re-splitting between heterogeneous pools
    /// ([`RunConfig::with_demand_resplit`]).
    pub demand_resplit: bool,
}

impl RunConfig {
    /// Creates a paper-testbed configuration (8×A100) for a policy and
    /// trace.
    pub fn new(policy: Policy, trace: Trace) -> Self {
        RunConfig {
            policy,
            trace,
            workers: 8,
            gpu: GpuArch::A100,
            pools: None,
            lsh_cache: false,
            sharded_cache: None,
            seed: 0,
            drift: None,
            faults: Vec::new(),
            network_events: Vec::new(),
            classifier_train_size: 6000,
            classifier_epochs: 8,
            retrain_on_drift: true,
            allow_strategy_switch: true,
            vdb_capacity: 768,
            load_aware_solver: false,
            online_learning: false,
            max_batch: 1,
            custom_pipeline: None,
            capacity_model: Arc::new(Batch1Model),
            pool_strategies: Vec::new(),
            demand_resplit: false,
        }
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the cluster size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self.pools = None;
        self
    }

    /// Sets the GPU architecture of the (homogeneous) cluster.
    pub fn with_gpu(mut self, gpu: GpuArch) -> Self {
        self.gpu = gpu;
        self.pools = None;
        self
    }

    /// Configures a heterogeneous fleet from per-architecture worker
    /// counts. The total worker count and the reference architecture (the
    /// largest pool, for reporting) are derived from the pools.
    ///
    /// # Panics
    /// Panics if the pools sum to zero workers.
    pub fn with_heterogeneous_pools(mut self, pools: Vec<(GpuArch, usize)>) -> Self {
        let total: usize = pools.iter().map(|&(_, n)| n).sum();
        assert!(total > 0, "heterogeneous pools need at least one worker");
        self.workers = total;
        if let Some(&(gpu, _)) = pools.iter().max_by_key(|&&(_, n)| n) {
            self.gpu = gpu;
        }
        self.pools = Some(pools);
        self
    }

    /// Routes cache lookups through the shared LSH index (§4.7 shared-VDB
    /// deployment) instead of the exact flat scan.
    pub fn with_lsh_cache(mut self) -> Self {
        self.lsh_cache = true;
        self
    }

    /// Distributes the retrieval index across `shards` worker-attached
    /// shards with `replication`-way replication (the cache plane,
    /// [`crate::cacheplane`]). Lookups served by a replica on the
    /// requesting worker are charged local cost; everything else pays the
    /// remote round trip. `with_sharded_cache(1, 1)` is the external
    /// monolithic deployment, bit-identical to
    /// [`RunConfig::with_lsh_cache`].
    ///
    /// # Panics
    /// Panics if `shards == 0` or `replication == 0`.
    pub fn with_sharded_cache(mut self, shards: usize, replication: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(replication >= 1, "need at least one replica");
        self.sharded_cache = Some((shards, replication));
        self
    }

    /// The per-architecture pools this configuration resolves to.
    pub fn effective_pools(&self) -> Vec<(GpuArch, usize)> {
        match &self.pools {
            Some(p) => p.clone(),
            None => vec![(self.gpu, self.workers)],
        }
    }

    /// Adds fault-injection events.
    pub fn with_faults(mut self, faults: Vec<FaultEvent>) -> Self {
        self.faults = faults;
        self
    }

    /// Adds network regime changes.
    pub fn with_network_events(mut self, events: Vec<(f64, NetworkRegime)>) -> Self {
        self.network_events = events;
        self
    }

    /// Enables prompt drift.
    pub fn with_drift(mut self, drift: DriftSchedule) -> Self {
        self.drift = Some(drift);
        self
    }

    /// Overrides classifier training epochs (Fig. 19 sweep).
    pub fn with_classifier_epochs(mut self, epochs: usize) -> Self {
        self.classifier_epochs = epochs;
        self
    }

    /// Disables the adaptive AC↔SM switch.
    pub fn without_strategy_switch(mut self) -> Self {
        self.allow_strategy_switch = false;
        self
    }

    /// Disables drift-triggered retraining.
    pub fn without_retraining(mut self) -> Self {
        self.retrain_on_drift = false;
        self
    }

    /// Enables the load-cost-aware solver ablation (§6).
    pub fn with_load_aware_solver(mut self) -> Self {
        self.load_aware_solver = true;
        self
    }

    /// Enables continuous online classifier updates (§6 ablation).
    pub fn with_online_learning(mut self) -> Self {
        self.online_learning = true;
        self
    }

    /// Enables batched dispatch: workers drain up to `max_batch` queued
    /// same-level jobs per start, with the batch latency modelled by the
    /// Obs. 5 pass profile and the batch size capped where latency
    /// inflation would eat the SLO tail budget. `with_batching(1)` is
    /// bit-identical to the default unbatched serving.
    ///
    /// # Panics
    /// Panics if `max_batch == 0`.
    pub fn with_batching(mut self, max_batch: u32) -> Self {
        assert!(max_batch >= 1, "batch bound must be at least 1");
        self.max_batch = max_batch;
        self
    }

    /// Replaces the built-in pipeline for [`RunConfig::policy`] with a
    /// custom [`ServingPolicy`] — the escape hatch for policies outside
    /// the paper's six. The [`Policy`] tag is kept for reporting; every
    /// behavioural decision (ladders, routing, cache gating, tick
    /// planning, batching) comes from the custom pipeline.
    pub fn with_policy_pipeline(mut self, pipeline: Box<dyn ServingPolicy>) -> Self {
        self.custom_pipeline = Some(Arc::from(pipeline));
        self
    }

    /// Swaps the capacity model Eq. 1 plans with — the seam any capacity
    /// refinement plugs into. The default [`Batch1Model`] reproduces the
    /// paper's batch-1 profiles bit-for-bit; the
    /// [`crate::capacity::BatchedModel`] folds the Obs. 5 batching curve
    /// (under the run's [`RunConfig::with_batching`] bound and the SLO)
    /// into the planned per-level peaks, so the solver plans fewer
    /// workers per memory-amortizing level. Only the *planning* changes:
    /// dispatch-time batching is governed by `max_batch` either way.
    pub fn with_capacity_model(mut self, model: impl CapacityModel + 'static) -> Self {
        self.capacity_model = Arc::new(model);
        self
    }

    /// Pins one architecture pool's planning strategy (SM ladder on
    /// V100/A10G, AC on A100 — the Fig. 5/fig16 mixed-fleet remedy: AC's
    /// base model is disproportionately slow on older silicon, so
    /// AC-everywhere pays SLO violations at diurnal peaks). Pinned pools
    /// plan, serve and heal their own strategy's ladder; routing treats
    /// the ladder *index* as the common currency across pools (both
    /// ladders are six rungs, slowest first), and pinned pools are exempt
    /// from AC↔SM transitions. Meaningful for solver policies
    /// (Argus/PAC/Proteus); per-worker and static policies ignore it.
    pub fn with_pool_strategy(mut self, gpu: GpuArch, strategy: Strategy) -> Self {
        self.pool_strategies.retain(|&(g, _)| g != gpu);
        self.pool_strategies.push((gpu, strategy));
        self
    }

    /// Enables mid-minute demand re-splitting: when one heterogeneous
    /// pool's backlog exceeds what it can drain by the next allocator
    /// tick, the excess rate is re-split across the other pools
    /// proportionally to their remaining capacity and those pools are
    /// re-solved immediately (at most once per tick), so Eq. 3's spill
    /// finds real capacity instead of piling onto the saturated pool.
    pub fn with_demand_resplit(mut self) -> Self {
        self.demand_resplit = true;
        self
    }

    /// The planning strategy override for an architecture pool, if any.
    pub fn pool_strategy_for(&self, gpu: GpuArch) -> Option<Strategy> {
        self.pool_strategies
            .iter()
            .find(|&&(g, _)| g == gpu)
            .map(|&(_, s)| s)
    }

    /// Builds and runs the simulation.
    pub fn run(self) -> RunOutcome {
        SystemSimulation::new(self).run()
    }
}

/// Results of one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-minute telemetry.
    pub minutes: Vec<MinuteRecord>,
    /// Whole-run aggregates.
    pub totals: RunTotals,
    /// Mean cluster utilization at the end of the run (§5.7).
    pub mean_utilization: f64,
    /// Strategy switches `(AC→SM, SM→AC)`.
    pub switches: (u64, u64),
    /// Minutes in which drift-triggered retraining fired (Fig. 18).
    pub retrain_minutes: Vec<u64>,
    /// Classifier exact-match accuracy sampled per allocator tick
    /// `(minute, accuracy)` (Fig. 18).
    pub classifier_accuracy: Vec<(u64, f64)>,
    /// Completions per approximation level actually executed.
    pub level_completions: Vec<(ApproxLevel, u64)>,
    /// Reservoir sample of `(score, base_score)` pairs from in-SLO
    /// completions, for the human-perception study (§5.4).
    pub quality_samples: Vec<(f64, f64)>,
    /// Minutes in which the solver reported demand beyond maximum cluster
    /// capacity — the §6 saturation (scale-out) signal.
    pub saturated_minutes: u64,
    /// Wall-clock span of the run in seconds: from start to the later of
    /// the trace horizon and the final event (under saturation, queued
    /// work drains past the horizon). The denominator of per-GPU-second
    /// throughput comparisons (the `fig_batching` guard).
    pub makespan_secs: f64,
    /// Retrieval-plane telemetry: per-level cache hit/miss/failure counts
    /// and the retrieval-latency mean/p99, so cache-plane experiments are
    /// measurable without re-running.
    pub retrieval: RetrievalStats,
    /// Per-architecture pool telemetry (one entry per configured pool, in
    /// pool order), so heterogeneous experiments stop inferring pool
    /// behaviour from aggregates. Jobs lost before reaching a worker have
    /// no pool and are excluded from the per-pool violation counts.
    pub pools: Vec<PoolStats>,
    /// Mid-minute demand re-splits triggered
    /// ([`RunConfig::with_demand_resplit`]).
    pub demand_resplits: u64,
}

/// What actually executed for an in-flight job.
#[derive(Debug, Clone, Copy)]
struct Exec {
    level: ApproxLevel,
    similarity: Option<f64>,
}

/// The retrieval index behind approximate caching: the exact flat scan of
/// the paper's testbed, the shared multi-probe LSH index for the
/// shared-VDB deployment at scale (§4.7), or the sharded cache plane
/// distributed across worker-attached shards
/// ([`RunConfig::with_sharded_cache`]).
enum Vdb {
    Flat(FlatIndex<u64>),
    Lsh(SharedIndex<u64, LshIndex<u64>>),
    Sharded(CachePlane),
}

impl Vdb {
    /// Inserts an embedding, returning `(replica writes, remote write
    /// hops)` for the cache-plane write-amplification accounting.
    /// `origin` is the worker whose completion produced the state
    /// (`None` for the offline pre-warm loader). The monolithic indexes
    /// are off-cluster services: one write, one remote hop.
    fn insert(&mut self, origin: Option<usize>, embedding: Embedding, id: u64) -> (u32, u32) {
        match self {
            Vdb::Flat(i) => {
                i.insert(embedding, id);
                (1, 1)
            }
            Vdb::Lsh(s) => {
                s.insert(embedding, id);
                (1, 1)
            }
            Vdb::Sharded(p) => {
                let receipt = p.insert(origin, embedding, id);
                (receipt.replica_writes, receipt.remote_hops)
            }
        }
    }

    /// Nearest neighbour for a lookup issued by `worker`, plus the
    /// [`Locality`] the retrieval is charged at. The monolithic indexes
    /// are off-cluster services: always remote.
    fn nearest(&self, worker: usize, query: &Embedding) -> (Option<SearchHit<u64>>, Locality) {
        match self {
            Vdb::Flat(i) => (i.nearest(query), Locality::Remote),
            Vdb::Lsh(s) => (s.nearest(query), Locality::Remote),
            Vdb::Sharded(p) => p.lookup(worker, query),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Arrive(u32),
    /// Completion of a specific job on a worker; the job id detects events
    /// made stale by a failure that drained the worker.
    Finish(WorkerId, u32),
    LoadDone(WorkerId),
    Tick,
    Probe,
    Fault(u32),
}

/// Memoized per-architecture derated level profiles: heterogeneous runs
/// used to rebuild and re-derate every pool's Eq. 1 profiles on every tick,
/// although they only change when the ladder, the retrieval-overhead
/// estimate, or the §6 load-aware ablation change. Keyed by the exact
/// inputs, so a hit is bit-identical to a fresh derivation (debug-asserted
/// at the lookup site); cleared on fault/network events as a hygiene bound.
#[derive(Debug, Default)]
struct DeratedCache {
    entries: Vec<(DerateKey, Vec<LevelProfile>)>,
}

/// Memo key of one derated profile set: `(architecture, strategy,
/// retrieval-overhead bits, load-aware-solver flag)`.
type DerateKey = (GpuArch, Strategy, u64, bool);

/// Retained (architecture × strategy × overhead) profile sets.
const DERATED_CACHE_CAP: usize = 16;

/// The discrete-event simulation of the full serving system.
pub struct SystemSimulation {
    cfg: RunConfig,
    pipeline: Arc<dyn ServingPolicy>,
    queue: EventQueue<Event>,
    cluster: Cluster,
    oracle: QualityOracle,
    prompts: Vec<Prompt>,
    arrivals: Vec<SimTime>,
    embeddings: Vec<Option<Embedding>>,
    vdb: Vdb,
    cache: CacheStore,
    switcher: StrategySwitcher,
    classifiers: HashMap<Strategy, Classifier>,
    predictors: HashMap<Strategy, WorkloadDistributionPredictor>,
    pasm: Pasm,
    omega_norm: Vec<f64>,
    metrics: MetricsCollector,
    route_rng: StdRng,
    service_rng: StdRng,
    sample_rng: StdRng,
    arrival_rate: WindowedRate,
    /// Per-worker execution records for the in-flight (possibly batched)
    /// pass, in batch start order.
    exec_info: HashMap<usize, Vec<Exec>>,
    solver_cache: SolveCache,
    derated_cache: DeratedCache,
    drift_detector: DriftDetector,
    retrain_minutes: Vec<u64>,
    accuracy_log: Vec<(u64, f64)>,
    level_completions: HashMap<ApproxLevel, u64>,
    quality_samples: Vec<(f64, f64)>,
    sample_seen: u64,
    recent: VecDeque<u32>,
    horizon: SimTime,
    saturated_minutes: u64,
    retrieval_ewma: f64,
    last_demand: f64,
    /// Per-pool plan state from the last (re-)allocation: what each
    /// architecture pool was solved with, for ω re-merging and mid-minute
    /// re-splitting.
    pool_plans: Vec<PoolPlan>,
    /// Cached per-architecture ladder view for per-pool-strategy runs
    /// (see [`SystemSimulation::build_pool_view`]); `None` on
    /// single-strategy runs and for policies that never reallocate.
    pool_view: Option<PoolView>,
    /// Whether the re-split already fired in the current allocator tick
    /// (at most one per tick).
    resplit_done: bool,
    demand_resplits: u64,
    /// Per-architecture `(completions, SLO violations)` of jobs finished
    /// on that pool's workers.
    pool_outcomes: HashMap<GpuArch, (u64, u64)>,
    /// Per-architecture `(Σ allocated alive workers, samples)` across
    /// allocator ticks.
    pool_alloc_samples: HashMap<GpuArch, (u64, u64)>,
}

/// One architecture pool's share of the last Eq. 1 solve: the inputs the
/// mid-minute re-split needs to grow an unsaturated pool's plan without
/// re-deriving the whole allocation.
#[derive(Debug, Clone)]
struct PoolPlan {
    gpu: GpuArch,
    strategy: Strategy,
    ladder: Vec<ApproxLevel>,
    /// Alive workers the pool was solved with.
    workers: usize,
    /// Derated maximum capacity (QPM) of the pool at plan time. The
    /// re-split scales this by the *current* alive count, so a fault that
    /// shrinks a pool mid-minute immediately shrinks the capacity the
    /// saturation check reasons with.
    cap_qpm: f64,
    /// Demand share (QPM) the pool was solved with.
    share_qpm: f64,
    /// The pool's solved load vector `ω` (per ladder index).
    omega: Vec<f64>,
}

impl PoolPlan {
    /// The plan's capacity scaled to the pool's current alive workers.
    fn current_cap_qpm(&self, alive_now: usize) -> f64 {
        self.cap_qpm * alive_now as f64 / self.workers as f64
    }
}

/// One pool's pre-split solve inputs: `(arch, strategy, ladder, alive
/// workers, problem)`.
type PoolSolveInput = (
    GpuArch,
    Strategy,
    Vec<ApproxLevel>,
    Vec<WorkerId>,
    AllocationProblem,
);

impl SystemSimulation {
    /// Builds the simulation: generates the workload, trains classifiers
    /// offline, pre-warms the cache with the training images, and places
    /// the initial allocation.
    pub fn new(cfg: RunConfig) -> Self {
        let pipeline: Arc<dyn ServingPolicy> = cfg
            .custom_pipeline
            .clone()
            .unwrap_or_else(|| pipeline_for(cfg.policy));
        let factory = RngFactory::new(cfg.seed);

        // Workload: arrival instants + matching prompt stream.
        let arrivals: Vec<SimTime> = ArrivalProcess::new(&cfg.trace, cfg.seed ^ 0xA11).collect();
        let mut generator = PromptGenerator::new(cfg.seed ^ 0x9E0);
        if let Some(d) = cfg.drift {
            generator = generator.with_drift(d);
        }
        let prompts = generator.generate_batch(arrivals.len());
        let embeddings = vec![None; prompts.len()];

        let oracle = QualityOracle::new(cfg.seed ^ 0x0AC1E);

        // Offline training pool (no drift — the pre-deployment data).
        let offline =
            PromptGenerator::new(cfg.seed ^ 0x0FF11E).generate_batch(cfg.classifier_train_size);

        // Classifiers per strategy (Argus needs both for switching).
        let mut classifiers = HashMap::new();
        if pipeline.uses_classifier() {
            for strategy in [Strategy::Ac, Strategy::Sm] {
                let ladder = ApproxLevel::ladder(strategy);
                let samples = label_prompts(&oracle, &offline, &ladder);
                let (clf, _) = train(
                    &samples,
                    ladder.len(),
                    &TrainerConfig {
                        epochs: cfg.classifier_epochs,
                        seed: cfg.seed,
                        ..TrainerConfig::default()
                    },
                );
                classifiers.insert(strategy, clf);
            }
        }

        // Cache store with the configured network schedule; pre-warmed
        // with the offline pool (those images were generated during
        // training, so their states exist).
        let mut network = NetworkModel::new(factory);
        for &(minute, regime) in &cfg.network_events {
            network = network.with_event(SimTime::from_minutes(minute), regime);
        }
        let mut cache = CacheStore::with_network(network);
        let mut vdb = if let Some((shards, replication)) = cfg.sharded_cache {
            // The cache plane: per-shard LSH replicas at the same 8-bit
            // knee and the same total capacity as the monolithic index
            // (shards = 1, replication = 1 reproduces it bit-for-bit).
            Vdb::Sharded(CachePlane::new(
                shards,
                replication,
                cfg.workers,
                cfg.seed ^ 0x15B,
                cfg.vdb_capacity.max(1),
            ))
        } else if cfg.lsh_cache {
            // 8 hyperplanes ≈ 3.5% of the corpus probed per query at the
            // default cache capacity — the recall/scan-cost knee (see
            // `tests/lsh_cache.rs`).
            Vdb::Lsh(SharedIndex::from_index(LshIndex::with_capacity_limit(
                8,
                cfg.seed ^ 0x15B,
                cfg.vdb_capacity.max(1),
            )))
        } else {
            Vdb::Flat(FlatIndex::with_capacity_limit(cfg.vdb_capacity.max(1)))
        };
        const OFFLINE_BASE: u64 = 1 << 40;
        for (i, p) in offline.iter().enumerate() {
            let id = OFFLINE_BASE + i as u64;
            // Pre-deployment warm-up writes are not charged to the run.
            vdb.insert(None, embed(&p.text), id);
            for k in AC_LEVELS.iter().skip(1) {
                cache.put(
                    CacheKey {
                        prompt_id: id,
                        k: k.skipped_steps(),
                    },
                    SimTime::ZERO,
                );
            }
        }

        let predictors = [Strategy::Ac, Strategy::Sm]
            .into_iter()
            .map(|s| (s, WorkloadDistributionPredictor::new(6, 1000)))
            .collect();

        let horizon = SimTime::from_minutes(cfg.trace.len_minutes() as f64);
        // The SLO references the slowest architecture in the fleet (for the
        // homogeneous testbed that is just `cfg.gpu`): a latency target no
        // pool can meet would make heterogeneity trivially lossy.
        let pools = cfg.effective_pools();
        let slo_arch = pools
            .iter()
            .filter(|&&(_, n)| n > 0)
            .map(|&(gpu, _)| gpu)
            .max_by(|a, b| {
                latency::inference_secs(argus_models::ModelVariant::SdXl, *a)
                    .partial_cmp(&latency::inference_secs(
                        argus_models::ModelVariant::SdXl,
                        *b,
                    ))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(cfg.gpu);
        let base_latency = SimDuration::from_secs(latency::inference_secs(
            argus_models::ModelVariant::SdXl,
            slo_arch,
        ));

        // §4.6 dual-resident HBM is an Argus design feature (kept by PAC,
        // which reuses Argus' serving stack). Proteus swaps the serving
        // model in place, so every cross-model switch pays a load — the
        // overhead §5.7 measures.
        let mut cluster = Cluster::heterogeneous(&pools);
        let hbm_slots = pipeline.hbm_slots();
        if hbm_slots != argus_cluster::MAX_RESIDENT_MODELS {
            for id in 0..cluster.len() {
                cluster.worker_mut(WorkerId(id)).set_hbm_slots(hbm_slots);
            }
        }

        let mut sim = SystemSimulation {
            cluster,
            queue: EventQueue::new(),
            oracle,
            prompts,
            arrivals,
            embeddings,
            vdb,
            cache,
            switcher: StrategySwitcher::new(SwitcherConfig::default()),
            classifiers,
            predictors,
            pasm: Pasm::identity(6),
            omega_norm: {
                let mut v = vec![0.0; 6];
                v[0] = 1.0;
                v
            },
            metrics: MetricsCollector::new(base_latency),
            route_rng: factory.stream("route"),
            service_rng: factory.stream("service"),
            sample_rng: factory.stream("samples"),
            arrival_rate: WindowedRate::new(SimDuration::from_minutes(1.0)),
            exec_info: HashMap::new(),
            solver_cache: SolveCache::new(),
            derated_cache: DeratedCache::default(),
            drift_detector: DriftDetector::new(400, 5, 0.35),
            retrain_minutes: Vec::new(),
            accuracy_log: Vec::new(),
            level_completions: HashMap::new(),
            quality_samples: Vec::new(),
            sample_seen: 0,
            recent: VecDeque::with_capacity(RECENT_POOL),
            horizon,
            saturated_minutes: 0,
            retrieval_ewma: 0.02,
            last_demand: cfg.trace.qpm_at(0),
            pool_plans: Vec::new(),
            pool_view: None,
            resplit_done: false,
            demand_resplits: 0,
            pool_outcomes: HashMap::new(),
            pool_alloc_samples: HashMap::new(),
            pipeline,
            cfg,
        };

        // Schedule the workload and periodic events.
        for (i, &at) in sim.arrivals.iter().enumerate() {
            sim.queue.schedule(at, Event::Arrive(i as u32));
        }
        // Periodic events only make sense inside the horizon; a
        // zero-duration trace schedules nothing and terminates immediately.
        if SimTime::ZERO + TICK <= sim.horizon {
            sim.queue.schedule(SimTime::ZERO + TICK, Event::Tick);
        }
        if SimTime::ZERO + PROBE <= sim.horizon {
            sim.queue.schedule(SimTime::ZERO + PROBE, Event::Probe);
        }
        for (i, f) in sim.cfg.faults.clone().iter().enumerate() {
            sim.queue.schedule(f.at(), Event::Fault(i as u32));
        }

        // Initial placement, per the pipeline: solver policies consult
        // Eq. 1 with the trace's opening demand; static policies pin their
        // level; per-worker policies start on the base model.
        match sim.pipeline.initial_placement() {
            InitialPlacement::Solve => {
                let d0 = provisioning_target(sim.cfg.trace.qpm_at(0));
                sim.reallocate(SimTime::ZERO, d0, 1.0);
            }
            InitialPlacement::Heal => {
                sim.heal_unassigned(SimTime::ZERO);
            }
            InitialPlacement::AllAtBase => {
                let base = sim.pipeline.active_ladder(&sim.switcher)[0];
                for w in sim.cluster.alive() {
                    sim.assign_and_schedule(w, base, SimTime::ZERO);
                }
            }
        }
        // Pre-deployment warm-up: initial loads complete before traffic
        // starts (production clusters do not serve cold, §4.7).
        for w in sim.cluster.alive() {
            if let Some(l) = sim.cluster.worker(w).pending_level() {
                sim.cluster.worker_mut(w).preload(l);
            }
        }
        sim.sample_pool_allocation();
        sim
    }

    /// The ladder the system currently plans and routes with (pipeline
    /// stage: [`crate::pipeline::LevelPlanner`]).
    fn active_ladder(&self) -> Vec<ApproxLevel> {
        self.pipeline.active_ladder(&self.switcher)
    }

    /// Whether cache retrieval is attempted for new jobs right now
    /// (pipeline stage: [`crate::pipeline::CacheGate`]).
    fn cache_active(&self) -> bool {
        self.pipeline.cache_active(&self.switcher)
    }

    fn embedding_of(&mut self, idx: usize) -> Embedding {
        if self.embeddings[idx].is_none() {
            self.embeddings[idx] = Some(embed(&self.prompts[idx].text));
        }
        self.embeddings[idx].clone().expect("just inserted")
    }

    /// Runs to completion and reports.
    pub fn run(mut self) -> RunOutcome {
        while let Some((t, ev)) = self.queue.pop() {
            match ev {
                Event::Arrive(i) => self.on_arrive(i as usize, t),
                Event::Finish(w, job) => self.on_finish(w, job as usize, t),
                Event::LoadDone(w) => self.on_load_done(w, t),
                Event::Tick => self.on_tick(t),
                Event::Probe => self.on_probe(t),
                Event::Fault(i) => self.on_fault(i as usize, t),
            }
        }
        let end = self.queue.now().max(self.horizon);
        // Jobs still stuck on workers (e.g. total failure) are lost.
        let stuck: usize = self.cluster.iter().map(|w| w.backlog()).sum();
        for _ in 0..stuck {
            self.metrics.on_lost(end);
        }
        let (minutes, totals, retrieval) = self.metrics.finish(end);
        let mut level_completions: Vec<(ApproxLevel, u64)> =
            self.level_completions.into_iter().collect();
        level_completions.sort_by_key(|&(l, _)| l.ordinal());
        let pools = self
            .cfg
            .effective_pools()
            .into_iter()
            .map(|(gpu, workers)| {
                let (completions, violations) =
                    self.pool_outcomes.get(&gpu).copied().unwrap_or((0, 0));
                let (alloc_sum, samples) =
                    self.pool_alloc_samples.get(&gpu).copied().unwrap_or((0, 0));
                PoolStats {
                    gpu,
                    workers,
                    completions,
                    violations,
                    mean_allocated_workers: if samples == 0 {
                        0.0
                    } else {
                        alloc_sum as f64 / samples as f64
                    },
                }
            })
            .collect();
        RunOutcome {
            minutes,
            totals,
            retrieval,
            pools,
            demand_resplits: self.demand_resplits,
            mean_utilization: self.cluster.mean_utilization(end),
            switches: self.switcher.switch_counts(),
            retrain_minutes: self.retrain_minutes,
            classifier_accuracy: self.accuracy_log,
            level_completions,
            quality_samples: self.quality_samples,
            saturated_minutes: self.saturated_minutes,
            makespan_secs: end.as_secs(),
        }
    }

    // ---------------------------------------------------------------- //
    // Event handlers
    // ---------------------------------------------------------------- //

    fn on_arrive(&mut self, idx: usize, t: SimTime) {
        self.metrics.on_arrival(t);
        self.arrival_rate.record(t);
        if self.recent.len() == RECENT_POOL {
            self.recent.pop_front();
        }
        self.recent.push_back(idx as u32);
        // Intra-tick pool-saturation check before routing, so this very
        // arrival already sees the re-split allocation.
        self.maybe_resplit(t);
        self.dispatch(idx, t);
    }

    /// Routes a prompt to a worker (used for fresh arrivals and for jobs
    /// rerouted after a failure) by driving the pipeline's planner and
    /// worker-selector stages.
    fn dispatch(&mut self, idx: usize, t: SimTime) {
        let pipeline = Arc::clone(&self.pipeline);
        let ladder = pipeline.active_ladder(&self.switcher);
        let target = {
            let mut ctx = RouteCtx {
                cluster: &self.cluster,
                switcher: &self.switcher,
                classifiers: &self.classifiers,
                predictors: &mut self.predictors,
                pasm: &self.pasm,
                omega_norm: &self.omega_norm,
                route_rng: &mut self.route_rng,
                prompt_text: &self.prompts[idx].text,
            };
            pipeline.pick_target_level(&mut ctx, &ladder)
        };
        // Per-level, per-architecture processing estimates for the
        // Worker-Selector (Eq. 3). On per-pool-strategy fleets the ladder
        // index resolves to each architecture's own rung.
        let overhead = if self.cache_active() {
            self.retrieval_ewma
        } else {
            0.0
        };
        let view = self.pool_view.as_ref();
        let proc = |l: usize, gpu: GpuArch| {
            let lvl = match view {
                Some(v) => v.level_of(gpu, l).unwrap_or(ladder[l]),
                None => ladder[l],
            };
            lvl.compute_secs(gpu)
                + if lvl.strategy() == Strategy::Ac {
                    overhead
                } else {
                    0.0
                }
        };
        let ctx = SelectCtx {
            cluster: &self.cluster,
            slo_secs: self.metrics.slo().as_secs(),
            max_batch: self.cfg.max_batch,
            pool_view: view,
        };
        let choice = pipeline.select_worker(&ctx, &ladder, target, &proc);
        match choice {
            Some((w, _)) => {
                self.cluster.worker_mut(w).enqueue(idx as u64, t);
                self.maybe_start(w, t);
            }
            None => self.metrics.on_lost(t),
        }
    }

    /// Starts the next (possibly batched) pass on an idle worker, per the
    /// pipeline's dispatcher stage. With a batch of 1 the start is
    /// bit-identical to unbatched serving; larger batches drain up to `B`
    /// queued jobs whose pass completes together under the Obs. 5 latency
    /// model.
    fn maybe_start(&mut self, w: WorkerId, t: SimTime) {
        if !self.cluster.worker(w).can_start() {
            return;
        }
        let level = self
            .cluster
            .worker(w)
            .level()
            .expect("can_start implies a level");
        let gpu = self.cluster.worker(w).gpu();
        let batch = {
            let ctx = SelectCtx {
                cluster: &self.cluster,
                slo_secs: self.metrics.slo().as_secs(),
                max_batch: self.cfg.max_batch,
                pool_view: None,
            };
            self.pipeline.batch_size(&ctx, w, level)
        };
        if batch <= 1 {
            let job = self
                .cluster
                .worker(w)
                .peek_next_job()
                .expect("can_start implies a queued job") as usize;
            let (retrieval, base, jitter, exec) = self.service_for(job, w, level, gpu, t);
            let service = retrieval + SimDuration::from_secs(base * jitter);
            self.cluster.worker_mut(w).try_start(t, service);
            self.exec_info.insert(w.0, vec![exec]);
            self.queue
                .schedule(t + service, Event::Finish(w, job as u32));
            return;
        }
        // Batched start: per-job retrieval and jittered compute are
        // evaluated exactly as for unbatched serving (in queue order), and
        // the batch completes together after the slowest member inflated
        // by the Obs. 5 pass-level latency ratio.
        let jobs: Vec<u64> = self
            .cluster
            .worker(w)
            .queued_jobs()
            .take(batch as usize)
            .collect();
        let mut max_retrieval = SimDuration::ZERO;
        let mut max_base = 0.0f64;
        let mut pass_jitter = 1.0f64;
        let mut execs = Vec::with_capacity(jobs.len());
        for (i, &job) in jobs.iter().enumerate() {
            if !self.cluster.worker(w).can_start() {
                // A member's retrieval triggered a strategy switch whose
                // reallocation re-entered the dispatcher and started this
                // worker (scheduling its own completion): stop planning
                // before double-executing the remaining members' retrieval.
                return;
            }
            let (retrieval, base, jitter, exec) = self.service_for(job as usize, w, level, gpu, t);
            max_retrieval = max_retrieval.max(retrieval);
            max_base = max_base.max(base);
            if i == 0 {
                // One jitter per pass: the batch executes as a single
                // fused kernel sequence, so its variance does not compound
                // over members.
                pass_jitter = jitter;
            }
            execs.push(exec);
        }
        let inflation =
            unet_pass_profile(level.resident_model()).latency_inflation(gpu, jobs.len() as u32);
        let service = max_retrieval + SimDuration::from_secs(max_base * pass_jitter * inflation);
        let started = self
            .cluster
            .worker_mut(w)
            .try_start_batch(t, service, jobs.len());
        if started.is_empty() {
            // A retrieval-triggered strategy switch re-entered the
            // dispatcher and started this worker mid-planning; its start
            // already scheduled a completion.
            return;
        }
        if started != jobs {
            // Part of the planned batch was consumed by a reentrant
            // reallocation: keep the execution records of the jobs that
            // actually started.
            execs = started
                .iter()
                .map(|s| {
                    let i = jobs.iter().position(|j| j == s).expect("started ⊆ planned");
                    execs[i]
                })
                .collect();
        }
        let first = started[0];
        self.exec_info.insert(w.0, execs);
        self.queue
            .schedule(t + service, Event::Finish(w, first as u32));
    }

    /// Samples the service of `job` on worker `w` (of the given
    /// architecture) serving `level`, performing cache retrieval when the
    /// pipeline's cache gate is open. The worker identity matters on the
    /// sharded cache plane: a lookup served by a replica hosted on `w` is
    /// charged local cost instead of the remote round trip. Returns
    /// `(retrieval latency, base compute seconds, jitter, execution
    /// record)`; unbatched service is `retrieval + base × jitter`, and
    /// batched starts take the slowest member's base compute under one
    /// pass-level jitter and the Obs. 5 inflation.
    fn service_for(
        &mut self,
        job: usize,
        w: WorkerId,
        level: ApproxLevel,
        gpu: GpuArch,
        t: SimTime,
    ) -> (SimDuration, f64, f64, Exec) {
        let jitter = {
            let cv = latency::LATENCY_JITTER_CV;
            log_normal(&mut self.service_rng, -0.5 * cv * cv, cv)
        };

        let assigned_k = match level {
            ApproxLevel::Ac(k) => Some(k),
            ApproxLevel::Sm(_) => None,
        };

        if let Some(k) = assigned_k {
            if self.cache_active() {
                // Per-prompt K for NIRVANA comes from retrieval similarity
                // (the cache gate maps hits to levels); Argus/PAC use the
                // worker's assigned level.
                let query = self.embedding_of(job);
                let (neighbour, locality) = self.vdb.nearest(w.0, &query);
                let (k_eff, similarity, neighbour_id) = match &neighbour {
                    Some(hit) => (
                        self.pipeline.ac_level_for_hit(k, hit.similarity as f64),
                        Some(hit.similarity as f64),
                        Some(hit.payload),
                    ),
                    None => (AcLevel(0), None, None),
                };
                if k_eff.skipped_steps() > 0 {
                    if let Some(nid) = neighbour_id {
                        let outcome = self.cache.fetch_routed(
                            CacheKey {
                                prompt_id: nid,
                                k: k_eff.skipped_steps(),
                            },
                            t,
                            locality,
                        );
                        self.metrics.on_retrieval(t, outcome.latency);
                        self.metrics
                            .on_cache_lookup(ApproxLevel::Ac(k), outcome.status);
                        self.retrieval_ewma =
                            0.9 * self.retrieval_ewma + 0.1 * outcome.latency.as_secs();
                        let ok = outcome.status != FetchStatus::Failed;
                        if self.pipeline.switches_strategy() && self.cfg.allow_strategy_switch {
                            if let Some(SwitchCommand::ToSm) =
                                self.switcher.on_retrieval(outcome.latency.as_secs(), ok, t)
                            {
                                self.begin_transition(t);
                            }
                        }
                        if outcome.status == FetchStatus::Hit {
                            return (
                                outcome.latency,
                                k_eff.compute_secs(gpu),
                                jitter,
                                Exec {
                                    level: ApproxLevel::Ac(k_eff),
                                    similarity,
                                },
                            );
                        }
                        // Miss or failure: pay the lookup, generate fully.
                        return (
                            outcome.latency,
                            AcLevel(0).compute_secs(gpu),
                            jitter,
                            Exec {
                                level: ApproxLevel::Ac(AcLevel(0)),
                                similarity: None,
                            },
                        );
                    }
                }
                // No usable neighbour: the retrieval plane had nothing to
                // offer (empty/dead probe set, or a similarity too low to
                // reuse) — a cache miss served by full generation. No
                // store round trip happened, so no retrieval latency is
                // charged; the miss is still accounted so fault-degraded
                // hit-rates are observable. Recorded only where a perfect
                // neighbour *would* have been reused (probing the gate
                // with similarity 1), so levels that never reuse — an
                // Argus Ac(0) worker generating in full by plan — stay
                // out of the hit-rate, while similarity-driven gates
                // (NIRVANA) count misses on every level they record hits
                // on.
                if self.pipeline.ac_level_for_hit(k, 1.0).skipped_steps() > 0 {
                    self.metrics
                        .on_cache_lookup(ApproxLevel::Ac(k), FetchStatus::Miss);
                }
                return (
                    SimDuration::ZERO,
                    AcLevel(0).compute_secs(gpu),
                    jitter,
                    Exec {
                        level: ApproxLevel::Ac(AcLevel(0)),
                        similarity: None,
                    },
                );
            }
            // AC level but cache disabled (mid-switch fallback, §4.6):
            // serve the base model in full.
            return (
                SimDuration::ZERO,
                AcLevel(0).compute_secs(gpu),
                jitter,
                Exec {
                    level: ApproxLevel::Ac(AcLevel(0)),
                    similarity: None,
                },
            );
        }

        // SM level.
        (
            SimDuration::ZERO,
            level.compute_secs(gpu),
            jitter,
            Exec {
                level,
                similarity: None,
            },
        )
    }

    fn on_finish(&mut self, w: WorkerId, job: usize, t: SimTime) {
        // A failure may have drained this pass (and rerouted its jobs)
        // after the completion event was scheduled: ignore stale events.
        // One event is scheduled per (possibly batched) start, keyed by
        // the first job of the pass.
        if self.cluster.worker(w).in_flight_job() != Some(job as u64) {
            return;
        }
        let jobs = self.cluster.worker_mut(w).finish_batch(t);
        let execs = self
            .exec_info
            .remove(&w.0)
            .expect("every in-flight pass has exec info");
        debug_assert_eq!(jobs.len(), execs.len(), "exec records must match the batch");
        for (&job, exec) in jobs.iter().zip(&execs) {
            self.complete_job(job as usize, *exec, w, t);
        }
        self.maybe_start(w, t);
    }

    /// Post-completion accounting for one job: quality scoring, metrics,
    /// drift handling and cache persistence. `w` is the worker that ran
    /// the pass — the pool the completion is attributed to, and the
    /// origin replica-write locality of the cache insert.
    fn complete_job(&mut self, job: usize, exec: Exec, w: WorkerId, t: SimTime) {
        let prompt = &self.prompts[job];
        let score = self.oracle.score_with_similarity(
            prompt,
            exec.level,
            exec.similarity
                .unwrap_or(argus_quality::DEFAULT_AC_SIMILARITY),
        );
        let base = self.oracle.base_quality(prompt);
        let latency_e2e = t - self.arrivals[job];
        self.metrics.on_completion(t, latency_e2e, score, base);
        *self.level_completions.entry(exec.level).or_insert(0) += 1;
        let pool = self
            .pool_outcomes
            .entry(self.cluster.worker(w).gpu())
            .or_insert((0, 0));
        pool.0 += 1;
        if latency_e2e > self.metrics.slo() {
            pool.1 += 1;
        }
        if latency_e2e <= self.metrics.slo() {
            self.reservoir_sample(score, base);
        }

        // Drift detection and off-critical-path retraining (§4.1), or the
        // §6 online-learning alternative: one SGD step per labelled
        // completion (the label reuses the just-generated image's scores,
        // exactly like batch retraining does).
        if self.pipeline.uses_classifier() {
            if self.cfg.online_learning {
                let strategy = self.switcher.planning_strategy();
                let ladder = ApproxLevel::ladder(strategy);
                let label = self.oracle.optimal_level(&self.prompts[job], &ladder);
                let text = self.prompts[job].text.clone();
                if let Some(clf) = self.classifiers.get_mut(&strategy) {
                    clf.update(&text, label, 0.02);
                }
            } else if self.cfg.retrain_on_drift && self.drift_detector.record(score) {
                self.retrain(t);
            }
        }

        // Persist this generation for future cache reuse. Replica
        // fan-out is charged as write hops (writes are asynchronous and
        // off the critical path, §4.7, so no latency accrues here): a
        // replica hosted on the completing worker is a free local write,
        // every other copy — and any off-cluster index — costs one
        // network hop.
        if self.pipeline.uses_cache_store() {
            let e = self.embedding_of(job);
            let (writes, hops) = self.vdb.insert(Some(w.0), e, job as u64);
            // An insert dropped by a fully-dead cache plane persisted
            // nothing, so it must not count toward the write-amplification
            // counters (`replica_writes >= inserts` stays an invariant).
            if writes > 0 {
                self.metrics.on_cache_insert(writes, hops);
            }
            for k in AC_LEVELS.iter().skip(1) {
                self.cache.put(
                    CacheKey {
                        prompt_id: job as u64,
                        k: k.skipped_steps(),
                    },
                    t,
                );
            }
        }
    }

    fn reservoir_sample(&mut self, score: f64, base: f64) {
        self.sample_seen += 1;
        if self.quality_samples.len() < SAMPLE_CAP {
            self.quality_samples.push((score, base));
        } else {
            let j = self.sample_rng.random_range(0..self.sample_seen);
            if (j as usize) < SAMPLE_CAP {
                self.quality_samples[j as usize] = (score, base);
            }
        }
    }

    fn retrain(&mut self, t: SimTime) {
        let minute = (t.as_minutes()) as u64;
        self.retrain_minutes.push(minute);
        self.drift_detector.reset_window();
        let strategy = self.switcher.planning_strategy();
        let ladder = ApproxLevel::ladder(strategy);
        let pool: Vec<Prompt> = self
            .recent
            .iter()
            .map(|&i| self.prompts[i as usize].clone())
            .collect();
        if pool.len() < 200 {
            return;
        }
        let samples = label_prompts(&self.oracle, &pool, &ladder);
        let (clf, _) = train(
            &samples,
            ladder.len(),
            &TrainerConfig {
                epochs: self.cfg.classifier_epochs,
                seed: self.cfg.seed ^ minute,
                ..TrainerConfig::default()
            },
        );
        self.classifiers.insert(strategy, clf);
    }

    fn on_load_done(&mut self, w: WorkerId, t: SimTime) {
        self.cluster.worker_mut(w).finish_load(t);
        self.maybe_start(w, t);
        self.check_transition_complete(t);
    }

    fn on_tick(&mut self, t: SimTime) {
        self.resplit_done = false;
        self.metrics
            .on_utilization_sample(t, self.cluster.mean_utilization(t));

        // The pipeline's level planner decides what the tick does and how
        // the demand estimate is smoothed (§4.2): Argus/PAC decay the
        // estimate at most 15% per minute so single-minute Poisson dips do
        // not flap the allocation; Proteus re-solves each window from the
        // raw observation — the very behaviour §5.7 charges with constant
        // model switching; per-worker and static policies do not estimate
        // demand at all.
        let observed = self.arrival_rate.per_minute(t);
        match self.pipeline.plan_tick(observed, self.last_demand) {
            TickAction::Reallocate { estimate_qpm } => {
                self.last_demand = estimate_qpm;
                let demand = provisioning_target(estimate_qpm);
                let margin = if self.switcher.state() == SwitcherState::SwitchingToSm {
                    self.switcher.config().switch_margin
                } else {
                    1.0
                };
                self.reallocate(t, demand, margin);
            }
            TickAction::AdaptPerWorker => {
                self.last_demand = observed;
                let ladder = self.active_ladder();
                let changes = self.pipeline.adapt_worker_levels(&self.cluster, &ladder);
                for (w, level) in changes {
                    self.assign_and_schedule(w, level, t);
                }
            }
            TickAction::Heal => {
                // Static placements; just heal recovered workers.
                self.last_demand = observed;
                self.heal_unassigned(t);
            }
        }

        // Classifier accuracy sampling for Fig. 18.
        if self.pipeline.uses_classifier() && !self.recent.is_empty() {
            let strategy = self.switcher.planning_strategy();
            let ladder = ApproxLevel::ladder(strategy);
            let clf = &self.classifiers[&strategy];
            let sample: Vec<u32> = self.recent.iter().rev().take(200).copied().collect();
            let correct = sample
                .iter()
                .filter(|&&i| {
                    let p = &self.prompts[i as usize];
                    clf.predict(&p.text) == self.oracle.optimal_level(p, &ladder)
                })
                .count();
            self.accuracy_log
                .push((t.as_minutes() as u64, correct as f64 / sample.len() as f64));
        }

        self.sample_pool_allocation();
        if t + TICK <= self.horizon {
            self.queue.schedule(t + TICK, Event::Tick);
        }
    }

    fn on_probe(&mut self, t: SimTime) {
        if self.pipeline.switches_strategy()
            && self.cfg.allow_strategy_switch
            && self.switcher.state() == SwitcherState::Sm
        {
            let (lat, ok) = self.cache.probe(t);
            if let Some(SwitchCommand::ToAc) = self.switcher.on_probe(lat.as_secs(), ok, t) {
                self.begin_transition(t);
            }
        }
        if t + PROBE <= self.horizon {
            self.queue.schedule(t + PROBE, Event::Probe);
        }
    }

    fn on_fault(&mut self, i: usize, t: SimTime) {
        // Fault/network events bound the lifetime of memoized derated
        // profiles (the ladder itself is unaffected, but this keeps the
        // cache from outliving the regime that produced it).
        self.derated_cache.entries.clear();
        match self.cfg.faults[i].clone() {
            FaultEvent::WorkerFail { workers, .. } => {
                for wi in workers {
                    if wi >= self.cluster.len() {
                        continue;
                    }
                    // Cache-plane rebalance first: replicas hosted on the
                    // dead worker stop serving and surviving replicas take
                    // over, so the rerouted jobs below already see the
                    // post-failover plane.
                    if let Vdb::Sharded(plane) = &mut self.vdb {
                        plane.on_worker_fail(wi);
                    }
                    let lost = self.cluster.worker_mut(WorkerId(wi)).fail(t);
                    self.exec_info.remove(&wi);
                    for job in lost {
                        // Reroute; end-to-end latency keeps accruing from
                        // the original arrival.
                        self.dispatch(job as usize, t);
                    }
                }
            }
            FaultEvent::WorkerRecover { workers, .. } => {
                for wi in workers {
                    if wi < self.cluster.len() {
                        self.cluster.worker_mut(WorkerId(wi)).recover(t);
                        // Its cache-plane replicas come back cold and
                        // refill from subsequent inserts.
                        if let Vdb::Sharded(plane) = &mut self.vdb {
                            plane.on_worker_recover(wi);
                        }
                    }
                }
                // The allocator reassigns them on its next tick (within a
                // minute, §5.6).
            }
        }
    }

    // ---------------------------------------------------------------- //
    // Allocation
    // ---------------------------------------------------------------- //

    /// Derives one pool's derated Eq. 1 level profiles from scratch: the
    /// run's [`CapacityModel`] answers the raw per-level peaks (under the
    /// batch bound and SLO), then SLO-aware queueing derating applies on
    /// top.
    fn derated_profiles(
        &self,
        ladder: &[ApproxLevel],
        strategy: Strategy,
        gpu: GpuArch,
        overhead: f64,
    ) -> Vec<LevelProfile> {
        let slo_secs = self.metrics.slo().as_secs();
        let ctx = CapacityCtx {
            max_batch: self.cfg.max_batch,
            slo_secs,
            retrieval_overhead_secs: overhead,
        };
        // Queueing derating budgets against each level's *wall* latency —
        // for batched plans the full inflated pass, not the amortized
        // service time (Batch1Model: identical by definition).
        let latencies: Vec<f64> = ladder
            .iter()
            .map(|&lvl| self.cfg.capacity_model.job_latency_secs(lvl, gpu, &ctx))
            .collect();
        let mut problem = AllocationProblem::from_capacity_model(
            self.cfg.capacity_model.as_ref(),
            ladder,
            gpu,
            &ctx,
            1,
            0.0,
        )
        .with_slo_derating_latencies(slo_secs, &latencies);
        if self.cfg.load_aware_solver && strategy == Strategy::Sm {
            // §6 ablation: charge each level's peak throughput with the
            // amortized load time of switching a worker to it.
            for lp in problem.levels.iter_mut() {
                let load =
                    latency::load_secs(lp.level.resident_model(), latency::Loader::Accelerate);
                let amortized = load / 60.0; // one potential switch per tick
                lp.peak_qpm = 60.0 / (60.0 / lp.peak_qpm + amortized) * 1.0;
            }
        }
        problem.levels
    }

    /// Builds the Eq. 1 problem for one architecture pool. The derated
    /// profiles are memoized per (architecture, strategy, retrieval
    /// overhead) so ticks with an unchanged ladder skip re-derating every
    /// pool; the memo key captures every input of the derivation, and
    /// debug builds assert each hit against a fresh computation.
    fn pool_problem(
        &mut self,
        ladder: &[ApproxLevel],
        strategy: Strategy,
        gpu: GpuArch,
        workers: usize,
        demand_qpm: f64,
    ) -> AllocationProblem {
        let overhead = if strategy == Strategy::Ac {
            self.retrieval_ewma
        } else {
            0.0
        };
        let key = (
            gpu,
            strategy,
            overhead.to_bits(),
            self.cfg.load_aware_solver,
        );
        let levels = match self
            .derated_cache
            .entries
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.clone())
        {
            Some(cached) => {
                debug_assert_eq!(
                    cached,
                    self.derated_profiles(ladder, strategy, gpu, overhead),
                    "memoized derated profiles diverged from a fresh derivation"
                );
                cached
            }
            None => {
                let fresh = self.derated_profiles(ladder, strategy, gpu, overhead);
                if self.derated_cache.entries.len() == DERATED_CACHE_CAP {
                    self.derated_cache.entries.remove(0);
                }
                self.derated_cache.entries.push((key, fresh.clone()));
                fresh
            }
        };
        AllocationProblem {
            levels,
            workers,
            demand_qpm,
        }
    }

    /// Solves Eq. 1 for the current demand and applies the result:
    /// worker level assignments plus the PASM (Argus) or the proportional
    /// map (PAC/Proteus).
    ///
    /// On heterogeneous fleets the problem decomposes by architecture:
    /// each pool gets its own latency/peak-QPM tables (and, under
    /// [`RunConfig::with_pool_strategy`], its own strategy ladder) and a
    /// demand share proportional to its maximum capacity, the per-pool
    /// allocations are solved independently (exhaustively or via
    /// branch-and-bound, depending on pool size), and the load
    /// distributions merge index-wise into one cluster-wide `ω` (every
    /// ladder is six rungs, slowest first, so the rung is the common
    /// currency).
    fn reallocate(&mut self, t: SimTime, demand_qpm: f64, margin: f64) {
        let global = self.pipeline.planning_strategy(&self.switcher);
        // Alive workers grouped by architecture, in pool order.
        let pools: Vec<(GpuArch, Vec<WorkerId>)> = self
            .cluster
            .arches()
            .into_iter()
            .map(|gpu| (gpu, self.cluster.alive_on(gpu)))
            .filter(|(_, ws)| !ws.is_empty())
            .collect();
        if pools.is_empty() {
            return;
        }
        let total_demand = demand_qpm * margin;
        let saturated;
        let mut plans: Vec<PoolPlan> = Vec::with_capacity(pools.len());

        if let [(gpu, workers)] = pools.as_slice() {
            // Homogeneous fast path (the paper's testbed): no demand split.
            let strategy = self.cfg.pool_strategy_for(*gpu).unwrap_or(global);
            let ladder = ApproxLevel::ladder(strategy);
            let problem = self.pool_problem(&ladder, strategy, *gpu, workers.len(), total_demand);
            let cap_qpm = problem.max_capacity_qpm();
            let allocation = problem.solve_cached(&mut self.solver_cache);
            saturated = allocation.saturated;
            plans.push(PoolPlan {
                gpu: *gpu,
                strategy,
                workers: workers.len(),
                cap_qpm,
                share_qpm: total_demand,
                omega: allocation.omega_qpm.clone(),
                ladder: ladder.clone(),
            });
            self.apply_allocation(&ladder, &allocation.workers_per_level, workers, t);
        } else {
            let problems: Vec<PoolSolveInput> = pools
                .into_iter()
                .map(|(gpu, ws)| {
                    let strategy = self.cfg.pool_strategy_for(gpu).unwrap_or(global);
                    let ladder = ApproxLevel::ladder(strategy);
                    let p = self.pool_problem(&ladder, strategy, gpu, ws.len(), 0.0);
                    (gpu, strategy, ladder, ws, p)
                })
                .collect();
            let total_cap: f64 = problems
                .iter()
                .map(|(_, _, _, _, p)| p.max_capacity_qpm())
                .sum();
            saturated = total_demand > total_cap + 1e-9;
            for (gpu, strategy, ladder, ws, mut problem) in problems {
                let share = if total_cap > 0.0 {
                    total_demand * problem.max_capacity_qpm() / total_cap
                } else {
                    0.0
                };
                problem.demand_qpm = share;
                let cap_qpm = problem.max_capacity_qpm();
                let allocation = problem.solve_cached(&mut self.solver_cache);
                plans.push(PoolPlan {
                    gpu,
                    strategy,
                    workers: ws.len(),
                    cap_qpm,
                    share_qpm: share,
                    omega: allocation.omega_qpm.clone(),
                    ladder: ladder.clone(),
                });
                self.apply_allocation(&ladder, &allocation.workers_per_level, &ws, t);
            }
        }

        if saturated {
            self.saturated_minutes += 1;
        }
        self.pool_plans = plans;
        self.pool_view = self.build_pool_view(&ApproxLevel::ladder(global));
        self.refresh_distribution(global);
        self.check_transition_complete(t);
    }

    /// Re-merges the per-pool load vectors into the cluster-wide `ω` and
    /// refreshes the PASM (Argus) or the proportional map (PAC/Proteus).
    /// Shared by [`SystemSimulation::reallocate`] and the mid-minute
    /// re-split, so a partial re-solve updates routing consistently.
    fn refresh_distribution(&mut self, strategy: Strategy) {
        let n = self
            .pool_plans
            .first()
            .map(|p| p.omega.len())
            .unwrap_or(self.omega_norm.len());
        let mut omega_qpm = vec![0.0; n];
        for plan in &self.pool_plans {
            for (o, w) in omega_qpm.iter_mut().zip(&plan.omega) {
                *o += w;
            }
        }
        self.omega_norm = crate::solver::normalize_load(&omega_qpm);

        // PASM for Argus; proportional for the prompt-agnostic systems.
        if self.pipeline.uses_oda() {
            let phi = self.predictors[&strategy].phi();
            self.pasm = oda(&phi, &self.omega_norm).unwrap_or_else(|_| Pasm::identity(6));
        } else {
            self.pasm = Pasm::proportional(&self.omega_norm).unwrap_or_else(|_| Pasm::identity(6));
        }
    }

    /// Builds the per-architecture ladder view for per-pool-strategy runs
    /// (`None` otherwise — single-strategy runs route exactly as before).
    /// Cached on the simulation and rebuilt only by
    /// [`SystemSimulation::reallocate`]: the view changes exactly when the
    /// planning strategy does, and only solver policies ever reallocate —
    /// per-worker and static policies keep `None`, so for them
    /// `with_pool_strategy` is inert and routing is untouched.
    fn build_pool_view(&self, global_ladder: &[ApproxLevel]) -> Option<PoolView> {
        if self.cfg.pool_strategies.is_empty() {
            return None;
        }
        let ladders = self
            .cluster
            .arches()
            .into_iter()
            .map(|gpu| {
                let ladder = match self.cfg.pool_strategy_for(gpu) {
                    Some(s) => ApproxLevel::ladder(s),
                    None => global_ladder.to_vec(),
                };
                (gpu, ladder)
            })
            .collect();
        Some(PoolView::new(ladders))
    }

    /// Mid-minute demand re-splitting (`RunConfig::with_demand_resplit`):
    /// checked on every arrival, fires at most once per allocator tick.
    ///
    /// Trigger rule: a pool is *saturated intra-tick* when its backlog,
    /// expressed as the drain rate needed to clear it by the next tick
    /// (`jobs × 60 / seconds-remaining`), exceeds the pool's planned
    /// capacity. When at least one pool is saturated and at least one
    /// other has headroom (capacity above its own backlog rate), the
    /// aggregate excess rate is re-split across the unsaturated pools
    /// proportionally to their remaining capacity, each such pool is
    /// re-solved with its share grown by its portion, and ω/PASM are
    /// re-merged. The saturated pool's allocation is left untouched — it
    /// is already planned at capacity, and its queued jobs drain fastest
    /// on the levels they were planned for.
    fn maybe_resplit(&mut self, t: SimTime) {
        /// Leave the last stretch of a tick to the upcoming re-solve: a
        /// re-split this close to the boundary cannot move meaningful
        /// work before the allocator re-plans anyway.
        const MIN_WINDOW_SECS: f64 = 10.0;
        if !self.cfg.demand_resplit || self.resplit_done || self.pool_plans.len() < 2 {
            return;
        }
        let tick_secs = TICK.as_secs();
        let remaining_secs = tick_secs - t.as_secs() % tick_secs;
        if remaining_secs < MIN_WINDOW_SECS {
            return;
        }
        // The drain rate each pool needs to clear its backlog by the next
        // tick, against the capacity it was planned with — scaled to the
        // pool's *current* alive workers, so a mid-minute fault shows up
        // as lost capacity immediately.
        let pressure: Vec<(f64, f64)> = self
            .pool_plans
            .iter()
            .map(|plan| {
                let alive = self.cluster.alive_on(plan.gpu);
                let jobs: usize = alive
                    .iter()
                    .map(|&w| self.cluster.worker(w).backlog())
                    .sum();
                let backlog_qpm = jobs as f64 * 60.0 / remaining_secs;
                (backlog_qpm, plan.current_cap_qpm(alive.len()))
            })
            .collect();
        let saturated: Vec<bool> = pressure.iter().map(|&(b, cap)| b > cap).collect();
        let excess: f64 = pressure
            .iter()
            .zip(&saturated)
            .filter(|&(_, &sat)| sat)
            .map(|(&(b, cap), _)| b - cap)
            .sum();
        let headroom: Vec<f64> = pressure
            .iter()
            .zip(&saturated)
            .map(|(&(b, cap), &sat)| if sat { 0.0 } else { (cap - b).max(0.0) })
            .collect();
        let total_headroom: f64 = headroom.iter().sum();
        if excess <= 0.0 || total_headroom <= 0.0 {
            return;
        }

        self.resplit_done = true;
        self.demand_resplits += 1;
        for (i, &pool_headroom) in headroom.iter().enumerate() {
            let extra = excess * pool_headroom / total_headroom;
            if extra <= 0.0 {
                continue;
            }
            let (gpu, strategy, ladder, old_share) = {
                let plan = &self.pool_plans[i];
                (plan.gpu, plan.strategy, plan.ladder.clone(), plan.share_qpm)
            };
            let ws = self.cluster.alive_on(gpu);
            if ws.is_empty() {
                continue;
            }
            let new_share = old_share + extra;
            let problem = self.pool_problem(&ladder, strategy, gpu, ws.len(), new_share);
            let allocation = problem.solve_cached(&mut self.solver_cache);
            self.pool_plans[i].share_qpm = new_share;
            self.pool_plans[i].omega = allocation.omega_qpm.clone();
            self.apply_allocation(&ladder, &allocation.workers_per_level, &ws, t);
        }
        let strategy = self.pipeline.planning_strategy(&self.switcher);
        self.refresh_distribution(strategy);
    }

    /// Samples the per-architecture allocated-worker counts (alive
    /// workers holding or loading toward a level) — the
    /// [`PoolStats::mean_allocated_workers`] numerator.
    fn sample_pool_allocation(&mut self) {
        for gpu in self.cluster.arches() {
            let allocated = self
                .cluster
                .alive_on(gpu)
                .iter()
                .filter(|&&w| {
                    let worker = self.cluster.worker(w);
                    worker.level().is_some() || worker.pending_level().is_some()
                })
                .count() as u64;
            let entry = self.pool_alloc_samples.entry(gpu).or_insert((0, 0));
            entry.0 += allocated;
            entry.1 += 1;
        }
    }

    /// Moves the listed workers to the target per-level counts with the
    /// minimum number of model loads.
    fn apply_allocation(
        &mut self,
        ladder: &[ApproxLevel],
        counts: &[usize],
        alive: &[WorkerId],
        t: SimTime,
    ) {
        let mut used = vec![0usize; ladder.len()];
        let mut pool: Vec<WorkerId> = Vec::new();

        // First pass: keep workers already serving (or loading toward) a
        // still-needed level.
        for &w in alive {
            let worker = self.cluster.worker(w);
            let lvl = worker.pending_level().or(worker.level());
            let keep = lvl
                .and_then(|l| ladder.iter().position(|&x| x == l))
                .filter(|&i| used[i] < counts[i]);
            match keep {
                Some(i) => used[i] += 1,
                None => pool.push(w),
            }
        }
        // Second pass: fill deficits, preferring workers with the target
        // weights already resident (zero-cost switch).
        for lvl_idx in 0..ladder.len() {
            while used[lvl_idx] < counts[lvl_idx] {
                let Some(pos) = pool
                    .iter()
                    .position(|&w| {
                        self.cluster
                            .worker(w)
                            .resident_models()
                            .contains(&ladder[lvl_idx].resident_model())
                    })
                    .or_else(|| (!pool.is_empty()).then_some(0))
                else {
                    break;
                };
                let w = pool.remove(pos);
                match self.cluster.worker_mut(w).assign_level(ladder[lvl_idx], t) {
                    SwitchOutcome::Immediate => {
                        self.maybe_start(w, t);
                    }
                    SwitchOutcome::Loading(d) => {
                        self.metrics.on_model_load(t);
                        self.queue.schedule(t + d, Event::LoadDone(w));
                    }
                }
                used[lvl_idx] += 1;
            }
        }
        // Any leftover workers park at the slowest level (spare quality
        // headroom).
        for w in pool {
            match self.cluster.worker_mut(w).assign_level(ladder[0], t) {
                SwitchOutcome::Immediate => self.maybe_start(w, t),
                SwitchOutcome::Loading(d) => {
                    self.metrics.on_model_load(t);
                    self.queue.schedule(t + d, Event::LoadDone(w));
                }
            }
        }
    }

    /// Gives recovered (level-less) workers the pipeline's static level.
    fn heal_unassigned(&mut self, t: SimTime) {
        let level = self.pipeline.static_level();
        for w in self.cluster.alive() {
            let worker = self.cluster.worker(w);
            if worker.level().is_none() && worker.pending_level().is_none() {
                self.assign_and_schedule(w, level, t);
            }
        }
    }

    fn assign_and_schedule(&mut self, w: WorkerId, level: ApproxLevel, t: SimTime) {
        match self.cluster.worker_mut(w).assign_level(level, t) {
            SwitchOutcome::Immediate => self.maybe_start(w, t),
            SwitchOutcome::Loading(d) => {
                self.metrics.on_model_load(t);
                self.queue.schedule(t + d, Event::LoadDone(w));
            }
        }
    }

    /// Starts the cluster moving toward the switcher's new target strategy
    /// (called right after the switcher emits a command).
    fn begin_transition(&mut self, t: SimTime) {
        let demand = provisioning_target(self.arrival_rate.per_minute(t));
        let margin = if self.switcher.state() == SwitcherState::SwitchingToSm {
            self.switcher.config().switch_margin
        } else {
            1.0
        };
        self.reallocate(t, demand, margin);
    }

    /// Completes a strategy transition once every alive worker serves a
    /// level of the target strategy.
    fn check_transition_complete(&mut self, t: SimTime) {
        let target = match self.switcher.state() {
            SwitcherState::SwitchingToSm => Strategy::Sm,
            SwitcherState::SwitchingToAc => Strategy::Ac,
            _ => return,
        };
        let done = self.cluster.alive().iter().all(|&w| {
            let worker = self.cluster.worker(w);
            // Pools pinned by `with_pool_strategy` never transition.
            if self.cfg.pool_strategy_for(worker.gpu()).is_some() {
                return true;
            }
            worker.level().is_some_and(|l| l.strategy() == target)
        });
        if done {
            self.switcher.on_transition_complete(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_workload::steady;

    fn quick(policy: Policy, qpm: f64, minutes: usize) -> RunOutcome {
        RunConfig::new(policy, steady(qpm, minutes))
            .with_seed(7)
            .run()
    }

    #[test]
    fn argus_serves_a_light_steady_load() {
        let out = quick(Policy::Argus, 60.0, 8);
        let expected = 60.0 * 8.0;
        assert!(
            (out.totals.completed as f64) > 0.9 * expected,
            "completed {} of ~{expected}",
            out.totals.completed
        );
        assert!(out.totals.slo_violation_ratio() < 0.05, "{:?}", out.totals);
        assert!(out.totals.effective_accuracy() > 19.0);
        assert_eq!(out.switches, (0, 0));
    }

    #[test]
    fn argus_survives_heavy_load_via_approximation() {
        let out = quick(Policy::Argus, 180.0, 10);
        assert!(
            out.totals.mean_throughput_qpm(10.0) > 150.0,
            "throughput {}",
            out.totals.mean_throughput_qpm(10.0)
        );
        assert!(out.totals.slo_violation_ratio() < 0.15, "{:?}", out.totals);
        // Approximated levels must have been used.
        let deep: u64 = out
            .level_completions
            .iter()
            .filter(|(l, _)| matches!(l, ApproxLevel::Ac(k) if k.skipped_steps() > 0))
            .map(|&(_, c)| c)
            .sum();
        assert!(
            deep > 100,
            "deep completions {deep} ({:?})",
            out.level_completions
        );
    }

    #[test]
    fn clipper_ha_violates_under_load_clipper_ht_degrades_quality() {
        let ha = quick(Policy::ClipperHa, 160.0, 8);
        let ht = quick(Policy::ClipperHt, 160.0, 8);
        // HA cannot keep up: violations pile up.
        assert!(ha.totals.slo_violation_ratio() > 0.3, "{:?}", ha.totals);
        // HT keeps up but at the lowest quality.
        assert!(ht.totals.slo_violation_ratio() < 0.1, "{:?}", ht.totals);
        assert!(ht.totals.effective_accuracy() < 18.0, "{:?}", ht.totals);
        assert!(ha.totals.effective_accuracy() > ht.totals.effective_accuracy() + 2.0);
    }

    #[test]
    fn all_policies_run_without_stalling() {
        for policy in Policy::ALL {
            let out = RunConfig::new(policy, steady(90.0, 5)).with_seed(3).run();
            assert!(
                out.totals.completed > 300,
                "{policy}: completed {}",
                out.totals.completed
            );
            assert!(
                out.totals.completed <= out.totals.offered,
                "{policy}: completed more than offered"
            );
        }
    }

    #[test]
    fn network_outage_triggers_strategy_switch() {
        let out = RunConfig::new(Policy::Argus, steady(100.0, 14))
            .with_seed(5)
            .with_network_events(vec![
                (4.0, NetworkRegime::Outage),
                (8.0, NetworkRegime::Normal),
            ])
            .run();
        assert!(out.switches.0 >= 1, "no AC→SM switch: {:?}", out.switches);
        assert!(
            out.switches.1 >= 1,
            "no SM→AC switch back: {:?}",
            out.switches
        );
    }

    #[test]
    fn no_switch_flag_keeps_ac_through_outage() {
        let out = RunConfig::new(Policy::Argus, steady(100.0, 10))
            .with_seed(5)
            .with_network_events(vec![(4.0, NetworkRegime::Outage)])
            .without_strategy_switch()
            .run();
        assert_eq!(out.switches, (0, 0));
    }

    #[test]
    fn gpu_failure_is_absorbed() {
        let out = RunConfig::new(Policy::Argus, steady(100.0, 12))
            .with_seed(9)
            .with_faults(vec![
                FaultEvent::WorkerFail {
                    at_minute: 4.0,
                    workers: vec![0, 1, 2, 3],
                },
                FaultEvent::WorkerRecover {
                    at_minute: 8.0,
                    workers: vec![0, 1, 2, 3],
                },
            ])
            .run();
        // The system keeps serving (reduced capacity, deeper approximation).
        assert!(
            out.totals.completed as f64 > 0.75 * out.totals.offered as f64,
            "{:?}",
            out.totals
        );
    }

    #[test]
    fn saturation_is_signalled_beyond_capacity() {
        let out = quick(Policy::Argus, 300.0, 6);
        assert!(out.saturated_minutes >= 3, "{}", out.saturated_minutes);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick(Policy::Argus, 80.0, 5);
        let b = quick(Policy::Argus, 80.0, 5);
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.minutes.len(), b.minutes.len());
        assert_eq!(a.level_completions, b.level_completions);
    }

    #[test]
    fn online_learning_mode_runs() {
        let out = RunConfig::new(Policy::Argus, steady(100.0, 8))
            .with_seed(21)
            .with_online_learning()
            .run();
        assert!(out.totals.completed > 600);
        // Online mode replaces batch retraining entirely.
        assert!(out.retrain_minutes.is_empty());
        assert!(out.totals.slo_violation_ratio() < 0.05);
    }

    #[test]
    fn moderate_steady_load_is_violation_free() {
        // With SLO-aware derating, Poisson burst margin and the tail spill,
        // sustained load below the derated capacity serves clean.
        let out = quick(Policy::Argus, 150.0, 12);
        assert!(out.totals.slo_violation_ratio() < 0.01, "{:?}", out.totals);
    }

    #[test]
    fn sommelier_adapts_per_worker() {
        // Sommelier steps variants per backlog; under a hot load it must
        // leave the base model on most workers.
        let out = quick(Policy::Sommelier, 170.0, 12);
        let fast: u64 = out
            .level_completions
            .iter()
            .filter(
                |(l, _)| matches!(l, ApproxLevel::Sm(v) if *v != argus_models::ModelVariant::SdXl),
            )
            .map(|&(_, c)| c)
            .sum();
        assert!(fast > 200, "{:?}", out.level_completions);
        assert!(out.totals.model_loads > 8, "no per-worker switching");
    }

    #[test]
    fn heterogeneous_fleet_serves_end_to_end() {
        let out = RunConfig::new(Policy::Argus, steady(90.0, 8))
            .with_heterogeneous_pools(vec![
                (GpuArch::A100, 4),
                (GpuArch::A10G, 2),
                (GpuArch::V100, 2),
            ])
            .with_seed(13)
            .run();
        assert!(
            out.totals.completed as f64 > 0.85 * out.totals.offered as f64,
            "{:?}",
            out.totals
        );
        assert!(out.totals.effective_accuracy() > 17.0, "{:?}", out.totals);
    }

    #[test]
    fn heterogeneous_fleet_is_bit_deterministic() {
        let run = || {
            RunConfig::new(Policy::Argus, steady(90.0, 6))
                .with_heterogeneous_pools(vec![(GpuArch::A100, 4), (GpuArch::V100, 4)])
                .with_seed(21)
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.minutes, b.minutes);
        assert_eq!(a.level_completions, b.level_completions);
        assert_eq!(a.quality_samples, b.quality_samples);
    }

    #[test]
    fn older_gpus_saturate_earlier() {
        // The same demand that a 8×A100 fleet absorbs easily saturates a
        // 8×V100 fleet — with_gpu must actually rewire the latency tables.
        let a100 = quick(Policy::Argus, 150.0, 6);
        let v100 = RunConfig::new(Policy::Argus, steady(150.0, 6))
            .with_gpu(GpuArch::V100)
            .with_seed(7)
            .run();
        assert_eq!(a100.saturated_minutes, 0, "{a100:?}");
        assert!(v100.saturated_minutes >= 3, "{}", v100.saturated_minutes);
    }

    #[test]
    fn lsh_cache_mode_runs_and_is_deterministic() {
        let run = || {
            RunConfig::new(Policy::Argus, steady(80.0, 6))
                .with_lsh_cache()
                .with_seed(5)
                .run()
        };
        let a = run();
        assert!(a.totals.completed > 350, "{:?}", a.totals);
        let b = run();
        assert_eq!(a.totals, b.totals);
    }

    #[test]
    fn sharded_cache_mode_runs_and_is_deterministic() {
        let run = || {
            RunConfig::new(Policy::Argus, steady(80.0, 6))
                .with_sharded_cache(4, 2)
                .with_seed(5)
                .run()
        };
        let a = run();
        assert!(a.totals.completed > 350, "{:?}", a.totals);
        assert!(a.retrieval.lookups > 0, "{:?}", a.retrieval);
        assert!(a.retrieval.hits() > 0, "{:?}", a.retrieval);
        let b = run();
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.retrieval, b.retrieval);
        assert_eq!(a.level_completions, b.level_completions);
    }

    #[test]
    fn batching_keeps_saturated_throughput_at_least_unbatched() {
        // Obs. 5: diffusion batches amortize the fixed pass overhead, so a
        // saturated cluster completes at least as much work with batching
        // enabled, while batch sizes stay within the SLO budget.
        let unbatched = RunConfig::new(Policy::Argus, steady(300.0, 8))
            .with_seed(7)
            .run();
        let batched = RunConfig::new(Policy::Argus, steady(300.0, 8))
            .with_seed(7)
            .with_batching(4)
            .run();
        assert!(
            batched.totals.completed >= unbatched.totals.completed,
            "batched {} < unbatched {}",
            batched.totals.completed,
            unbatched.totals.completed
        );
    }

    #[test]
    fn batch_one_is_bit_identical_to_default() {
        for policy in Policy::ALL {
            let a = RunConfig::new(policy, steady(120.0, 5)).with_seed(3).run();
            let b = RunConfig::new(policy, steady(120.0, 5))
                .with_seed(3)
                .with_batching(1)
                .run();
            assert_eq!(a.totals, b.totals, "{policy}");
            assert_eq!(a.level_completions, b.level_completions, "{policy}");
        }
    }

    #[test]
    fn custom_pipeline_escape_hatch_matches_builtin() {
        let builtin = quick(Policy::Nirvana, 90.0, 5);
        let custom = RunConfig::new(Policy::Nirvana, steady(90.0, 5))
            .with_seed(7)
            .with_policy_pipeline(Box::new(crate::pipeline::NirvanaPolicy))
            .run();
        assert_eq!(builtin.totals, custom.totals);
        assert_eq!(builtin.level_completions, custom.level_completions);
    }
}
