//! The pluggable capacity model behind Eq. 1 — what one worker is worth.
//!
//! The allocator's level profiles used to be constants derived from the
//! batch-1 latency tables: `peak(v) = 60 / t_v`. That made every capacity
//! refinement invisible to the planner — batched dispatch (Obs. 5, PR 3)
//! raised the *served* throughput of memory-amortizing variants without
//! changing what the solver *planned*, and heterogeneous pools (PR 2) all
//! shared the one formula. This module makes the capacity estimate a
//! first-class, swappable interface: a [`CapacityModel`] answers, for one
//! worker, *"serving `level` on `gpu` under this batch bound and SLO, what
//! peak QPM can you plan on?"* — and everything downstream (the Eq. 1
//! solver, SLO derating, per-architecture pools, the `s61_capacity_plan`
//! guard) consumes that answer instead of reimplementing it.
//!
//! Two built-in models:
//!
//! * [`Batch1Model`] — the paper's profile: one job per pass, so peak QPM
//!   is `60 / (t_compute + t_retrieval)`. **Bit-identical** to the
//!   pre-refactor constants (pinned by `tests/capacity_model.rs`).
//! * [`BatchedModel`] — folds the Obs. 5 `latency_inflation(B)` curve into
//!   the profile: the planned batch is capped exactly like the
//!   dispatcher's (SLO tail budget, worst-case-member compute — an AC
//!   member can miss the cache into a full generation, so the AC ladder
//!   plans batch-1 under the default SLO, the paper's §4.5 operating
//!   point), and the per-job service time divides by the Obs. 5
//!   throughput speed-up. Tiny-SD-class levels gain real planned
//!   capacity; compute-bound SD-XL gains almost nothing — the solver now
//!   sees the same asymmetry the dispatcher exploits.
//!
//! Any future capacity source — measured profiles, derating from health
//! signals, autoscaling predictions — plugs in through
//! [`crate::system::RunConfig::with_capacity_model`] without touching the
//! solver.

use std::fmt;

use argus_models::batching::unet_pass_profile;
use argus_models::{AcLevel, ApproxLevel, GpuArch, Strategy};

/// Fraction of the latency SLO a single worker visit may consume before
/// the scheduler spills to a faster-draining worker (§4.7 tail guard),
/// before the dispatcher stops growing a batch, and before the
/// [`BatchedModel`] stops planning one (Obs. 5 latency inflation). Shared
/// so the planner's batch cap and the dispatcher's batch cap can never
/// disagree.
pub const TAIL_BUDGET_FRACTION: f64 = 0.66;

/// The serving context a capacity estimate is conditioned on: everything
/// about the *run* (as opposed to the level/architecture pair) that
/// changes what one worker is worth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityCtx {
    /// Upper bound on jobs a worker drains into one batched start
    /// ([`crate::system::RunConfig::with_batching`]).
    pub max_batch: u32,
    /// The end-to-end latency SLO in seconds (3× base SD-XL latency,
    /// §5.1) — the budget batch sizing must respect.
    pub slo_secs: f64,
    /// Mean cache-retrieval overhead in seconds, charged to AC levels
    /// (the network state the allocator observed, not a property of the
    /// level).
    pub retrieval_overhead_secs: f64,
    /// Observed cascade escalation demand, when a cascade is running
    /// (`None` on every non-cascade path — the pricing branch is never
    /// taken and the estimate is bit-identical to the pre-cascade tree).
    pub escalation: Option<EscalationCtx>,
}

/// The escalation demand a cascade feeds into Eq. 1: the observed
/// (EWMA) fraction of first-pass jobs at `from` that the discriminator
/// re-enqueues at `to`. A model prices it as a **uniform capacity tax**
/// of `1 + rate` — every escalation is one extra planned job, so the
/// fleet plans as if demand were `(1 + rate) × λ` (DESIGN.md §13).
///
/// Two rejected alternatives, both measured worse in `s65_cascade`:
/// charging `rate × service(to)` on the first-pass rung alone distorts
/// Eq. 1's quality trade (the cheap rung stops looking cheap, the
/// solver drifts to slower rungs and violations *rise*); anchoring a
/// uniform tax at `service(to) / service(from)` over-cools the plan by
/// an order of magnitude (Tiny-SD → SD-XL is a ~20× service ratio),
/// collapsing every first pass onto the cheapest rung and giving the
/// escalation feedback loop more doubt to chew on. The level-neutral
/// `1 + rate` leaves the quality trade untouched and provisions just
/// enough headroom for the second passes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EscalationCtx {
    /// Escalated fraction of first-pass completions, in `[0, 1]`.
    pub rate: f64,
    /// The cascade's first-pass level (diagnostics; the tax itself is
    /// level-neutral).
    pub from: ApproxLevel,
    /// The level escalated jobs re-run at.
    pub to: ApproxLevel,
}

impl CapacityCtx {
    /// The paper's batch-1 context: no batching, so the SLO never enters
    /// the capacity estimate (only the retrieval overhead does).
    pub fn batch1(retrieval_overhead_secs: f64) -> Self {
        CapacityCtx {
            max_batch: 1,
            slo_secs: f64::INFINITY,
            retrieval_overhead_secs,
            escalation: None,
        }
    }

    /// The uniform escalation capacity tax — `1 + rate` — or `None`
    /// when no escalation demand is present. Shared by both built-in
    /// models so their Eq. 1 pricing can never disagree.
    fn escalation_tax(&self) -> Option<f64> {
        let e = self.escalation?;
        if e.rate > 0.0 {
            Some(1.0 + e.rate.min(1.0))
        } else {
            None
        }
    }
}

/// A pluggable estimate of one worker's serving capacity — the `peak(v)`
/// input of Eq. 1, as a function of the level, the silicon, and the run's
/// batching/SLO context.
///
/// Contract (property-tested in `tests/capacity_model.rs`):
///
/// * `peak_qpm` is finite and positive for every ladder level;
/// * capacity is **monotone non-decreasing in the batch bound** — raising
///   `max_batch` can only add planning headroom;
/// * capacity never drops below batch-1 feasibility: for any context,
///   `peak_qpm(ctx) ≥ peak_qpm(batch1 ctx)` with the same overhead — a
///   plan that was feasible without batching stays feasible with it.
pub trait CapacityModel: fmt::Debug + Send + Sync {
    /// Display name (diagnostics and memo keys).
    fn name(&self) -> &'static str;

    /// Effective peak serving throughput of one worker at `level` on
    /// `gpu`, in queries per minute, under `ctx`.
    fn peak_qpm(&self, level: ApproxLevel, gpu: GpuArch, ctx: &CapacityCtx) -> f64;

    /// Per-job service time in seconds implied by the peak —
    /// `60 / peak_qpm` — the throughput-side number Eq. 1 reasons in.
    fn service_secs(&self, level: ApproxLevel, gpu: GpuArch, ctx: &CapacityCtx) -> f64 {
        60.0 / self.peak_qpm(level, gpu, ctx)
    }

    /// Per-job *wall-clock* latency in seconds — what one job actually
    /// waits for its pass. For batch-1 models this equals
    /// [`CapacityModel::service_secs`]; for batched models it is the full
    /// inflated pass time `t₁ × latency_inflation(B*)` (a batch of `B*`
    /// jobs finishes together), which is strictly larger than the
    /// amortized service time. The SLO queueing derating must budget
    /// against *this* number, or batched plans run hotter than their
    /// latency slack allows.
    fn job_latency_secs(&self, level: ApproxLevel, gpu: GpuArch, ctx: &CapacityCtx) -> f64 {
        self.service_secs(level, gpu, ctx)
    }

    /// The batch size the model plans `level` to run at under `ctx`
    /// (diagnostics; 1 for batch-agnostic models).
    fn planned_batch(&self, _level: ApproxLevel, _gpu: GpuArch, _ctx: &CapacityCtx) -> u32 {
        1
    }
}

/// The worst-case per-member compute of a batch at `level`: an AC member
/// whose retrieval misses generates in full, and the batch completes
/// together at that member's pace — so AC capacity is budgeted at the
/// `K = 0` cost. Shared by the dispatcher's batch cap and the
/// [`BatchedModel`].
pub fn worst_case_member_secs(level: ApproxLevel, gpu: GpuArch) -> f64 {
    match level {
        ApproxLevel::Ac(_) => ApproxLevel::Ac(AcLevel(0)).compute_secs(gpu),
        sm @ ApproxLevel::Sm(_) => sm.compute_secs(gpu),
    }
}

/// The largest batch `level` can run on `gpu` without the Obs. 5 latency
/// inflation at the worst-case member compute eating the SLO tail budget
/// — the dispatcher's cap without the queue-depth constraint. Returns 1
/// when `max_batch <= 1`.
pub fn slo_capped_batch(level: ApproxLevel, gpu: GpuArch, max_batch: u32, slo_secs: f64) -> u32 {
    if max_batch <= 1 {
        return 1;
    }
    let base = worst_case_member_secs(level, gpu);
    let profile = unet_pass_profile(level.resident_model());
    let budget = TAIL_BUDGET_FRACTION * slo_secs;
    let mut b = max_batch;
    while b > 1 && base * profile.latency_inflation(gpu, b) > budget {
        b -= 1;
    }
    b
}

/// The paper's batch-1 capacity profile: one job per pass, peak QPM is
/// `60 / (compute + retrieval overhead for AC)`. Bit-identical to the
/// constants the solver planned with before the [`CapacityModel`]
/// refactor (the parity pin of `tests/capacity_model.rs`), and the
/// default model of every run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Batch1Model;

impl CapacityModel for Batch1Model {
    fn name(&self) -> &'static str {
        "batch1"
    }

    fn peak_qpm(&self, level: ApproxLevel, gpu: GpuArch, ctx: &CapacityCtx) -> f64 {
        let mut secs = level.compute_secs(gpu);
        if level.strategy() == Strategy::Ac {
            secs += ctx.retrieval_overhead_secs.max(0.0);
        }
        if let Some(tax) = ctx.escalation_tax() {
            secs *= tax;
        }
        60.0 / secs
    }
}

/// The batching-aware Eq. 1 profile (Obs. 5): a worker planned at batch
/// `B*` serves `B*` jobs per `t₁ × latency_inflation(B*)` pass, so its
/// per-job service time divides by the throughput speed-up
/// `B* / inflation(B*)`.
///
/// `B*` is the [`slo_capped_batch`]: grown toward the run's batch bound
/// but stopped where the inflation at the *worst-case member* compute
/// would exceed the SLO tail budget — exactly the dispatcher's rule, so
/// the planner never counts on a batch the dispatcher would refuse to
/// form. Consequences:
///
/// * AC levels are budgeted at the cache-miss (`K = 0`, full SD-XL)
///   cost, which keeps the AC ladder planned at batch-1 under the
///   default 3× SLO — the paper's §4.5 operating point survives the
///   refactor untouched;
/// * the AC retrieval overhead stays charged per job (each member does
///   its own lookup and the batch waits on the slowest — fan-out does
///   not amortize the store round trip);
/// * with `max_batch = 1` every estimate degenerates to [`Batch1Model`]
///   bit-for-bit (`inflation(1) = 1`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchedModel;

impl CapacityModel for BatchedModel {
    fn name(&self) -> &'static str {
        "batched"
    }

    fn peak_qpm(&self, level: ApproxLevel, gpu: GpuArch, ctx: &CapacityCtx) -> f64 {
        let b = self.planned_batch(level, gpu, ctx);
        let profile = unet_pass_profile(level.resident_model());
        let mut secs = level.compute_secs(gpu) * profile.latency_inflation(gpu, b) / b as f64;
        if level.strategy() == Strategy::Ac {
            secs += ctx.retrieval_overhead_secs.max(0.0);
        }
        if let Some(tax) = ctx.escalation_tax() {
            secs *= tax;
        }
        60.0 / secs
    }

    fn planned_batch(&self, level: ApproxLevel, gpu: GpuArch, ctx: &CapacityCtx) -> u32 {
        slo_capped_batch(level, gpu, ctx.max_batch, ctx.slo_secs)
    }

    fn job_latency_secs(&self, level: ApproxLevel, gpu: GpuArch, ctx: &CapacityCtx) -> f64 {
        // The Obs. 5 batch is *queue-drain* batching: the dispatcher only
        // forms one when the queue already holds ≥ 2 jobs, so a job
        // arriving at the planned (sub-saturated) operating point starts
        // an ordinary un-batched pass — its wall latency is the batch-1
        // pass, and that is what the queueing derating must budget. The
        // batched drain rate shows up in `peak_qpm` (the throughput side);
        // the worst a *backlogged* pass can stretch to is separately
        // bounded by the dispatcher's tail budget (`slo_capped_batch`).
        let mut secs = level.compute_secs(gpu);
        if level.strategy() == Strategy::Ac {
            secs += ctx.retrieval_overhead_secs.max(0.0);
        }
        secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_models::ModelVariant;

    const SLO: f64 = 12.6;

    fn ctx(max_batch: u32) -> CapacityCtx {
        CapacityCtx {
            max_batch,
            slo_secs: SLO,
            retrieval_overhead_secs: 0.02,
            escalation: None,
        }
    }

    #[test]
    fn batch1_model_matches_the_legacy_formula() {
        for strategy in [Strategy::Ac, Strategy::Sm] {
            for level in ApproxLevel::ladder(strategy) {
                for gpu in [GpuArch::A100, GpuArch::A10G, GpuArch::V100] {
                    let mut secs = level.compute_secs(gpu);
                    if level.strategy() == Strategy::Ac {
                        secs += 0.02;
                    }
                    let legacy = 60.0 / secs;
                    assert_eq!(
                        Batch1Model.peak_qpm(level, gpu, &ctx(1)).to_bits(),
                        legacy.to_bits(),
                        "{level} on {gpu:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_model_at_bound_one_is_batch1() {
        for strategy in [Strategy::Ac, Strategy::Sm] {
            for level in ApproxLevel::ladder(strategy) {
                let a = Batch1Model.peak_qpm(level, GpuArch::A100, &ctx(1));
                let b = BatchedModel.peak_qpm(level, GpuArch::A100, &ctx(1));
                assert_eq!(a.to_bits(), b.to_bits(), "{level}");
            }
        }
    }

    #[test]
    fn ac_ladder_plans_batch_one_under_the_default_slo() {
        // §4.5: any AC member can miss into a full SD-XL generation, whose
        // inflation eats the 3× SLO tail budget immediately.
        for level in ApproxLevel::ladder(Strategy::Ac) {
            assert_eq!(
                BatchedModel.planned_batch(level, GpuArch::A100, &ctx(8)),
                1,
                "{level}"
            );
        }
    }

    #[test]
    fn tiny_sd_gains_planned_capacity_sdxl_does_not() {
        let tiny = ApproxLevel::Sm(ModelVariant::TinySd);
        let xl = ApproxLevel::Sm(ModelVariant::SdXl);
        let gain = |level| {
            BatchedModel.peak_qpm(level, GpuArch::A100, &ctx(8))
                / Batch1Model.peak_qpm(level, GpuArch::A100, &ctx(8))
        };
        assert!(gain(tiny) > 1.1, "tiny gain {}", gain(tiny));
        assert!(gain(xl) < 1.05, "xl gain {}", gain(xl));
        assert!(BatchedModel.planned_batch(tiny, GpuArch::A100, &ctx(8)) >= 4);
        assert_eq!(BatchedModel.planned_batch(xl, GpuArch::A100, &ctx(8)), 1);
    }

    #[test]
    fn capacity_is_monotone_in_the_batch_bound() {
        for strategy in [Strategy::Ac, Strategy::Sm] {
            for level in ApproxLevel::ladder(strategy) {
                for gpu in [GpuArch::A100, GpuArch::A10G, GpuArch::V100] {
                    let mut last = 0.0f64;
                    for b in 1..=16u32 {
                        let p = BatchedModel.peak_qpm(level, gpu, &ctx(b));
                        assert!(
                            p + 1e-9 >= last,
                            "{level} on {gpu:?}: peak fell raising B to {b}"
                        );
                        last = p;
                    }
                }
            }
        }
    }

    #[test]
    fn service_secs_inverts_peak() {
        let level = ApproxLevel::Sm(ModelVariant::TinySd);
        let p = BatchedModel.peak_qpm(level, GpuArch::A100, &ctx(8));
        let s = BatchedModel.service_secs(level, GpuArch::A100, &ctx(8));
        assert!((s * p - 60.0).abs() < 1e-9);
    }

    #[test]
    fn batch1_ctx_ignores_the_slo() {
        let a = Batch1Model.peak_qpm(
            ApproxLevel::Ac(AcLevel(10)),
            GpuArch::A100,
            &CapacityCtx::batch1(0.05),
        );
        let b = Batch1Model.peak_qpm(
            ApproxLevel::Ac(AcLevel(10)),
            GpuArch::A100,
            &CapacityCtx {
                max_batch: 1,
                slo_secs: 1.0,
                retrieval_overhead_secs: 0.05,
                escalation: None,
            },
        );
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn escalation_pricing_is_a_uniform_capacity_tax() {
        let tiny = ApproxLevel::Sm(ModelVariant::TinySd);
        let xl = ApproxLevel::Sm(ModelVariant::SdXl);
        let base = ctx(1);
        let priced = CapacityCtx {
            escalation: Some(EscalationCtx {
                rate: 0.2,
                from: tiny,
                to: xl,
            }),
            ..base
        };
        // Every level pays the same `1 + rate` factor — the quality
        // trade between rungs is untouched, the whole fleet just plans
        // as if demand were `(1 + rate) × λ`.
        let tax = 1.2;
        for level in ApproxLevel::ladder(Strategy::Sm) {
            let cold = Batch1Model.peak_qpm(level, GpuArch::A100, &base);
            let warm = Batch1Model.peak_qpm(level, GpuArch::A100, &priced);
            // Same factor on every rung (up to rounding in 60/(s·tax)).
            let ratio = cold / warm;
            assert!(
                (ratio - tax).abs() < 1e-12 * tax,
                "{level}: {ratio} vs {tax}"
            );
        }
        // A zero rate is a no-op, bit for bit.
        let zero = CapacityCtx {
            escalation: Some(EscalationCtx {
                rate: 0.0,
                from: tiny,
                to: xl,
            }),
            ..base
        };
        assert_eq!(
            Batch1Model.peak_qpm(tiny, GpuArch::A100, &zero).to_bits(),
            Batch1Model.peak_qpm(tiny, GpuArch::A100, &base).to_bits()
        );
        // The batched model taxes its own (batched) service times and
        // stays monotone: more escalation, less peak.
        let b8 = CapacityCtx {
            max_batch: 8,
            ..priced
        };
        let hot = CapacityCtx {
            escalation: Some(EscalationCtx {
                rate: 0.5,
                from: tiny,
                to: xl,
            }),
            ..b8
        };
        let p_cold = BatchedModel.peak_qpm(
            tiny,
            GpuArch::A100,
            &CapacityCtx {
                escalation: None,
                ..b8
            },
        );
        let p_warm = BatchedModel.peak_qpm(tiny, GpuArch::A100, &b8);
        let p_hot = BatchedModel.peak_qpm(tiny, GpuArch::A100, &hot);
        assert!(
            p_cold > p_warm && p_warm > p_hot,
            "{p_cold} {p_warm} {p_hot}"
        );
    }
}
