//! The Argus pipeline and its prompt-agnostic ablation (PAC, §5.1).

use argus_des::rng::weighted_index;
use argus_models::{ApproxLevel, Strategy};

use crate::switcher::StrategySwitcher;

use super::{
    CacheGate, Dispatcher, InitialPlacement, LevelPlanner, RouteCtx, ServingPolicy, TickAction,
    WorkerSelector,
};

/// Demand-estimate floor per allocator tick: Argus (and PAC, which reuses
/// its allocator) decays the estimate at most 15% per minute so
/// single-minute Poisson dips do not flap the allocation (§4.2).
const DEMAND_DECAY: f64 = 0.85;

/// Full Argus: classifier + solver + ODA/PASM + strategy switching.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArgusPolicy;

impl LevelPlanner for ArgusPolicy {
    fn active_ladder(&self, switcher: &StrategySwitcher) -> Vec<ApproxLevel> {
        ApproxLevel::ladder(switcher.planning_strategy())
    }

    fn pick_target_level(&self, ctx: &mut RouteCtx<'_>, ladder: &[ApproxLevel]) -> usize {
        let strategy = ctx.switcher.planning_strategy();
        let clf = ctx
            .classifiers
            .get(&strategy)
            .expect("classifier trained at init");
        let predicted = clf.predict(ctx.prompt_text).min(ladder.len() - 1);
        if let Some(p) = ctx.predictors.get_mut(&strategy) {
            p.record(predicted);
        }
        ctx.pasm.sample(predicted, ctx.route_rng)
    }

    fn planning_strategy(&self, switcher: &StrategySwitcher) -> Strategy {
        switcher.planning_strategy()
    }

    fn plan_tick(&self, observed_qpm: f64, last_demand_qpm: f64) -> TickAction {
        TickAction::Reallocate {
            estimate_qpm: observed_qpm.max(DEMAND_DECAY * last_demand_qpm),
        }
    }

    fn initial_placement(&self) -> InitialPlacement {
        InitialPlacement::Solve
    }
}

impl CacheGate for ArgusPolicy {
    fn cache_active(&self, switcher: &StrategySwitcher) -> bool {
        switcher.cache_enabled()
    }

    fn uses_cache_store(&self) -> bool {
        true
    }
}

impl WorkerSelector for ArgusPolicy {}
impl Dispatcher for ArgusPolicy {}

impl ServingPolicy for ArgusPolicy {
    fn name(&self) -> &'static str {
        "Argus"
    }

    fn uses_classifier(&self) -> bool {
        true
    }

    fn uses_oda(&self) -> bool {
        true
    }

    fn switches_strategy(&self) -> bool {
        true
    }
}

/// Prompt-Agnostic Argus (§5.1): solver and AC/SM switching, but no
/// classifier and no ODA — prompts are redistributed proportionally to the
/// load distribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct PacPolicy;

impl LevelPlanner for PacPolicy {
    fn active_ladder(&self, switcher: &StrategySwitcher) -> Vec<ApproxLevel> {
        ApproxLevel::ladder(switcher.planning_strategy())
    }

    fn pick_target_level(&self, ctx: &mut RouteCtx<'_>, _ladder: &[ApproxLevel]) -> usize {
        weighted_index(ctx.route_rng, ctx.omega_norm).unwrap_or(0)
    }

    fn planning_strategy(&self, switcher: &StrategySwitcher) -> Strategy {
        switcher.planning_strategy()
    }

    fn plan_tick(&self, observed_qpm: f64, last_demand_qpm: f64) -> TickAction {
        TickAction::Reallocate {
            estimate_qpm: observed_qpm.max(DEMAND_DECAY * last_demand_qpm),
        }
    }

    fn initial_placement(&self) -> InitialPlacement {
        InitialPlacement::Solve
    }
}

impl CacheGate for PacPolicy {
    fn cache_active(&self, switcher: &StrategySwitcher) -> bool {
        switcher.cache_enabled()
    }

    fn uses_cache_store(&self) -> bool {
        true
    }
}

impl WorkerSelector for PacPolicy {}
impl Dispatcher for PacPolicy {}

impl ServingPolicy for PacPolicy {
    fn name(&self) -> &'static str {
        "PAC"
    }

    fn switches_strategy(&self) -> bool {
        true
    }
}
