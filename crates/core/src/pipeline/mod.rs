//! The staged serving pipeline (§4): a pluggable control-plane API.
//!
//! The paper describes the control plane as composable stages — query
//! classification and level planning (§4.1–§4.3), Eq. 3 worker selection
//! (§4.4), cache gating (§4.6) and dispatch (§4.5). This module turns that
//! description into an explicit API: a [`ServingPolicy`] is the composition
//! of four stage traits, and the event loop in [`crate::system`] drives any
//! implementation generically:
//!
//! * [`LevelPlanner`] — which approximation ladder is active, which ladder
//!   index a prompt is assigned to, and what the allocator tick should do;
//! * [`CacheGate`] — whether approximate-cache retrieval is attempted and
//!   how a retrieval hit maps to an effective skip level;
//! * [`WorkerSelector`] — the Eq. 3 `argmin_w queue_w × t_proc` choice,
//!   including the §4.7 tail-latency spill;
//! * [`Dispatcher`] — how many queued same-level jobs a worker drains per
//!   start, using the Obs. 5 batching latency model.
//!
//! [`pipeline_for`] maps each built-in [`Policy`] to its implementation
//! ([`ArgusPolicy`], [`PacPolicy`], [`ProteusPolicy`], [`SommelierPolicy`],
//! [`NirvanaPolicy`], [`ClipperPolicy`]); custom pipelines plug in through
//! [`crate::system::RunConfig::with_policy_pipeline`]. With the default
//! batch bound of 1 every stage reproduces the pre-pipeline behaviour
//! bit-for-bit (pinned by `tests/batch_parity.rs`).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use argus_classifier::Classifier;
use argus_cluster::{Cluster, WorkerId, MAX_RESIDENT_MODELS};
use argus_models::{AcLevel, ApproxLevel, GpuArch, Strategy};
use rand::rngs::StdRng;

use crate::oda::Pasm;
use crate::policy::Policy;
use crate::predictor::WorkloadDistributionPredictor;
use crate::switcher::StrategySwitcher;

mod argus;
mod baselines;

pub use argus::{ArgusPolicy, PacPolicy};
pub use baselines::{nirvana_k, ClipperPolicy, NirvanaPolicy, ProteusPolicy, SommelierPolicy};

pub use crate::capacity::TAIL_BUDGET_FRACTION;

/// What the event loop should do at an allocator tick (§4.7: solved every
/// minute).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TickAction {
    /// Re-solve Eq. 1 with this demand estimate (QPM, pre-burst-allowance).
    Reallocate {
        /// Smoothed demand estimate the policy plans for.
        estimate_qpm: f64,
    },
    /// Per-worker adaptation: apply [`LevelPlanner::adapt_worker_levels`].
    AdaptPerWorker,
    /// Static placement: only assign levels to recovered (level-less)
    /// workers, via [`LevelPlanner::static_level`].
    Heal,
}

/// How the cluster is placed before traffic starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitialPlacement {
    /// Solve Eq. 1 against the trace's opening demand.
    Solve,
    /// Assign every worker the policy's [`LevelPlanner::static_level`].
    Heal,
    /// Assign every worker the base (slowest) level of the active ladder.
    AllAtBase,
}

/// Mutable routing context handed to [`LevelPlanner::pick_target_level`]:
/// the per-prompt state of §4.1–§4.3 (classifier, predictor, PASM) plus the
/// deterministic routing RNG stream.
pub struct RouteCtx<'a> {
    /// The cluster (read-only; per-worker policies route by backlog).
    pub cluster: &'a Cluster,
    /// The AC↔SM switcher (read-only; selects the planning strategy).
    pub switcher: &'a StrategySwitcher,
    /// Per-strategy classifiers (empty unless the policy trains them).
    pub classifiers: &'a HashMap<Strategy, Classifier>,
    /// Per-strategy workload-distribution predictors (classifier output
    /// histogram, §4.2); mutable so the planner can record predictions.
    pub predictors: &'a mut HashMap<Strategy, WorkloadDistributionPredictor>,
    /// The current PASM (Argus) or proportional map (baselines).
    pub pasm: &'a Pasm,
    /// The normalized load distribution `ω` from the last allocation.
    pub omega_norm: &'a [f64],
    /// The deterministic routing RNG stream.
    pub route_rng: &'a mut StdRng,
    /// The prompt being routed.
    pub prompt_text: &'a str,
}

/// Read-only context for [`WorkerSelector`] and [`Dispatcher`] decisions.
pub struct SelectCtx<'a> {
    /// The cluster.
    pub cluster: &'a Cluster,
    /// The latency SLO in seconds (3× base SD-XL latency, §5.1).
    pub slo_secs: f64,
    /// Upper bound on jobs drained per worker start
    /// ([`crate::system::RunConfig::with_batching`]).
    pub max_batch: u32,
    /// Per-architecture ladder view for per-pool-strategy fleets
    /// ([`crate::system::RunConfig::with_pool_strategy`]); `None` on
    /// single-strategy runs, which route exactly as before.
    pub pool_view: Option<&'a crate::scheduler::PoolView>,
}

/// Stage 1-2: ladder choice, per-prompt level assignment, tick planning.
pub trait LevelPlanner {
    /// The ladder the system currently plans and routes with.
    fn active_ladder(&self, switcher: &StrategySwitcher) -> Vec<ApproxLevel>;

    /// Chooses the ladder index a prompt is assigned to.
    fn pick_target_level(&self, ctx: &mut RouteCtx<'_>, ladder: &[ApproxLevel]) -> usize;

    /// The strategy the Eq. 1 solver plans for.
    fn planning_strategy(&self, _switcher: &StrategySwitcher) -> Strategy {
        Strategy::Sm
    }

    /// What the allocator tick should do, given the observed arrival rate
    /// and the previous demand estimate (both QPM). Solver policies return
    /// [`TickAction::Reallocate`] with their (possibly smoothed) estimate.
    fn plan_tick(&self, observed_qpm: f64, last_demand_qpm: f64) -> TickAction;

    /// How workers are placed before traffic starts.
    fn initial_placement(&self) -> InitialPlacement;

    /// The level statically (re)assigned to level-less workers under
    /// [`TickAction::Heal`] / [`InitialPlacement::Heal`].
    fn static_level(&self) -> ApproxLevel {
        ApproxLevel::Ac(AcLevel(0))
    }

    /// Per-worker level changes under [`TickAction::AdaptPerWorker`]
    /// (Sommelier's backlog stepping). Other policies never receive this
    /// call and keep the empty default.
    fn adapt_worker_levels(
        &self,
        _cluster: &Cluster,
        _ladder: &[ApproxLevel],
    ) -> Vec<(WorkerId, ApproxLevel)> {
        Vec::new()
    }
}

/// Stage 3: whether approximate-cache retrieval runs, and what a hit means.
///
/// The gate decides *whether* and *at which level* retrieval happens; it
/// is deliberately agnostic of *where* the index lives. The event loop
/// routes gated lookups through whichever retrieval plane the run
/// configured — the exact flat scan, the shared LSH index, or the sharded
/// cache plane (`RunConfig::with_sharded_cache`, [`crate::cacheplane`]) —
/// so every policy's gate gets sharding, replication and fault rebalance
/// for free.
pub trait CacheGate {
    /// Whether cache retrieval is attempted for new jobs right now.
    fn cache_active(&self, switcher: &StrategySwitcher) -> bool;

    /// Whether completed generations are persisted to the VDB/cache store
    /// for future reuse.
    fn uses_cache_store(&self) -> bool {
        false
    }

    /// The effective skip level when retrieval found a neighbour with the
    /// given similarity. Argus/PAC serve the worker's assigned level;
    /// NIRVANA derives `K` from the similarity.
    fn ac_level_for_hit(&self, assigned: AcLevel, _similarity: f64) -> AcLevel {
        assigned
    }
}

/// Stage 4a: the Eq. 3 Worker-Selector.
pub trait WorkerSelector {
    /// Picks the worker (and the ladder index it is counted under) for a
    /// prompt assigned to `ladder[target]`. The default is the shared
    /// Eq. 3 argmin with the §4.7 tail-latency spill and the
    /// least-backlogged fallback; every built-in policy uses it.
    fn select_worker(
        &self,
        ctx: &SelectCtx<'_>,
        ladder: &[ApproxLevel],
        target: usize,
        proc_secs: &dyn Fn(usize, GpuArch) -> f64,
    ) -> Option<(WorkerId, usize)> {
        default_select_worker(ctx, ladder, target, proc_secs)
    }
}

/// Stage 4b: batched dispatch.
pub trait Dispatcher {
    /// How many queued jobs the worker drains into one batched start. The
    /// default grows the batch toward `ctx.max_batch` but stops where the
    /// Obs. 5 latency inflation would eat the tail budget; with
    /// `max_batch == 1` it is constant 1 (the paper's §4.5 operating
    /// point) and the dispatch path is bit-identical to unbatched serving.
    fn batch_size(&self, ctx: &SelectCtx<'_>, worker: WorkerId, level: ApproxLevel) -> u32 {
        default_batch_size(ctx, worker, level)
    }
}

/// A complete serving pipeline: the four stages plus the feature flags the
/// simulation consults when wiring a run (classifier training, cache
/// persistence, strategy switching, HBM residency).
pub trait ServingPolicy:
    LevelPlanner + CacheGate + WorkerSelector + Dispatcher + fmt::Debug + Send + Sync
{
    /// Display name (diagnostics only).
    fn name(&self) -> &'static str;

    /// Whether per-prompt classifiers are trained and consulted (§4.1).
    fn uses_classifier(&self) -> bool {
        false
    }

    /// Whether prompts are redistributed through ODA's PASM (§4.3) rather
    /// than the proportional map.
    fn uses_oda(&self) -> bool {
        false
    }

    /// Whether the policy adaptively switches between AC and SM (§4.6).
    fn switches_strategy(&self) -> bool {
        false
    }

    /// Co-resident model variants per GPU. Argus keeps two (§4.6
    /// dual-resident HBM); systems that swap the serving model in place run
    /// with one and pay a load on every switch.
    fn hbm_slots(&self) -> usize {
        MAX_RESIDENT_MODELS
    }
}

/// The built-in pipeline for a [`Policy`] — the only place a policy tag is
/// mapped to behaviour; the event loop itself is policy-agnostic.
pub fn pipeline_for(policy: Policy) -> Arc<dyn ServingPolicy> {
    match policy {
        Policy::Argus => Arc::new(ArgusPolicy),
        Policy::Pac => Arc::new(PacPolicy),
        Policy::Proteus => Arc::new(ProteusPolicy),
        Policy::Sommelier => Arc::new(SommelierPolicy),
        Policy::Nirvana => Arc::new(NirvanaPolicy),
        Policy::ClipperHa => Arc::new(ClipperPolicy::highest_accuracy()),
        Policy::ClipperHt => Arc::new(ClipperPolicy::highest_throughput()),
    }
}

/// The shared Eq. 3 selection: the scheduler's argmin, then the §4.7
/// tail-latency spill (fall back to the globally fastest-draining worker
/// when the chosen worker's expected sojourn would eat most of the SLO
/// budget), then the least-backlogged fallback for mid-transition windows
/// where the ladder matches no worker.
pub fn default_select_worker(
    ctx: &SelectCtx<'_>,
    ladder: &[ApproxLevel],
    target: usize,
    proc_secs: &dyn Fn(usize, GpuArch) -> f64,
) -> Option<(WorkerId, usize)> {
    let cluster = ctx.cluster;
    let mut choice =
        crate::scheduler::select_worker_in_view(cluster, ladder, target, proc_secs, ctx.pool_view);
    if let Some((w, lvl)) = choice {
        let sojourn =
            (cluster.worker(w).backlog() as f64 + 1.0) * proc_secs(lvl, cluster.worker(w).gpu());
        if sojourn > TAIL_BUDGET_FRACTION * ctx.slo_secs {
            let spill = cluster
                .alive()
                .into_iter()
                .filter_map(|cand| {
                    let worker = cluster.worker(cand);
                    let l = worker.level().or(worker.pending_level())?;
                    let i = match ctx.pool_view {
                        Some(v) => v.index_of(worker.gpu(), l)?,
                        None => ladder.iter().position(|&x| x == l)?,
                    };
                    let cost = (worker.backlog() as f64 + 1.0) * proc_secs(i, worker.gpu());
                    Some((cand, i, cost))
                })
                .min_by(|a, b| {
                    a.2.partial_cmp(&b.2)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
            if let Some((w2, lvl2, cost2)) = spill {
                if cost2 + 1e-9 < sojourn {
                    choice = Some((w2, lvl2));
                }
            }
        }
    }
    choice.or_else(|| {
        cluster
            .alive()
            .into_iter()
            .filter(|&w| {
                cluster.worker(w).level().is_some() || cluster.worker(w).pending_level().is_some()
            })
            .min_by_key(|&w| (cluster.worker(w).backlog(), w))
            .map(|w| (w, target))
    })
}

/// The default batch-size choice: drain up to `max_batch` queued jobs, but
/// shrink the batch while the Obs. 5 pass-level latency inflation at the
/// worst-case member compute would exceed the tail budget — the paper's
/// throughput/latency trade-off (batch while the SLO slack allows it;
/// serve batch-1 when it does not, §4.5).
///
/// The cap plans with the worst case a member can realize, not the
/// assigned level's optimistic cost: an AC-level job whose retrieval
/// misses falls back to a full base-model generation, and the whole batch
/// completes together at that member's pace — so AC batches are budgeted
/// at `K = 0` compute. Under the default 3× SLO this keeps the AC ladder
/// at batch-1 (exactly the paper's §4.5 operating point); SM variants,
/// whose member cost is known up front, batch to their own slack.
pub fn default_batch_size(ctx: &SelectCtx<'_>, worker: WorkerId, level: ApproxLevel) -> u32 {
    if ctx.max_batch <= 1 {
        return 1;
    }
    let w = ctx.cluster.worker(worker);
    let queued = w.queue_len().min(ctx.max_batch as usize) as u32;
    if queued <= 1 {
        return 1;
    }
    // The SLO/worst-case-member cap is shared with the capacity models, so
    // the planner never counts on a batch this dispatcher would refuse.
    crate::capacity::slo_capped_batch(level, w.gpu(), queued, ctx.slo_secs)
}

/// Shared target choice for per-worker policies (Sommelier, NIRVANA,
/// Clipper): route to the least-backlogged worker's level; the ladder index
/// seeds the backlog-based fallback ordering.
pub(crate) fn least_backlogged_level(cluster: &Cluster, ladder: &[ApproxLevel]) -> usize {
    cluster
        .alive()
        .into_iter()
        .filter_map(|w| {
            let worker = cluster.worker(w);
            let lvl = worker.level().or(worker.pending_level())?;
            let i = ladder.iter().position(|&l| l == lvl)?;
            Some((worker.backlog(), w, i))
        })
        .min()
        .map(|(_, _, i)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_des::SimTime;
    use argus_models::ModelVariant;

    #[test]
    fn pipeline_for_covers_every_policy() {
        for p in Policy::ALL {
            let pipe = pipeline_for(p);
            assert_eq!(pipe.name(), p.name());
            // Feature flags mirror the Policy table.
            assert_eq!(pipe.uses_classifier(), p.uses_classifier());
            assert_eq!(pipe.uses_oda(), p.uses_oda());
            assert_eq!(pipe.switches_strategy(), p.switches_strategy());
            assert_eq!(pipe.uses_cache_store(), p.uses_cache());
        }
    }

    #[test]
    fn proteus_swaps_in_place() {
        assert_eq!(pipeline_for(Policy::Proteus).hbm_slots(), 1);
        assert_eq!(pipeline_for(Policy::Argus).hbm_slots(), MAX_RESIDENT_MODELS);
    }

    #[test]
    fn batch_size_is_one_without_batching() {
        let mut cluster = Cluster::new(1, GpuArch::A100);
        let lvl = ApproxLevel::Ac(AcLevel(25));
        cluster.worker_mut(WorkerId(0)).preload(lvl);
        for j in 0..8 {
            cluster.worker_mut(WorkerId(0)).enqueue(j, SimTime::ZERO);
        }
        let ctx = SelectCtx {
            cluster: &cluster,
            slo_secs: 12.6,
            max_batch: 1,
            pool_view: None,
        };
        assert_eq!(default_batch_size(&ctx, WorkerId(0), lvl), 1);
    }

    #[test]
    fn batch_size_caps_at_queue_and_bound() {
        let mut cluster = Cluster::new(1, GpuArch::A100);
        let lvl = ApproxLevel::Sm(ModelVariant::TinySd);
        cluster.worker_mut(WorkerId(0)).preload(lvl);
        for j in 0..3 {
            cluster.worker_mut(WorkerId(0)).enqueue(j, SimTime::ZERO);
        }
        let ctx = SelectCtx {
            cluster: &cluster,
            slo_secs: 12.6,
            max_batch: 8,
            pool_view: None,
        };
        // Tiny-SD at a short queue: the queue is the binding constraint.
        assert_eq!(default_batch_size(&ctx, WorkerId(0), lvl), 3);
    }

    #[test]
    fn batch_size_respects_the_tail_budget() {
        // SD-XL compute eats the tail budget almost immediately, so its
        // batch stays at 1 even with a deep queue and a generous bound;
        // Tiny-SD's slack admits a real batch.
        let mut cluster = Cluster::new(1, GpuArch::A100);
        let slow = ApproxLevel::Sm(ModelVariant::SdXl);
        cluster.worker_mut(WorkerId(0)).preload(slow);
        for j in 0..16 {
            cluster.worker_mut(WorkerId(0)).enqueue(j, SimTime::ZERO);
        }
        let ctx = SelectCtx {
            cluster: &cluster,
            slo_secs: 12.6,
            max_batch: 16,
            pool_view: None,
        };
        let b_slow = default_batch_size(&ctx, WorkerId(0), slow);
        assert!(b_slow <= 2, "SD-XL batch {b_slow} exceeds the SLO budget");
        let fast = ApproxLevel::Sm(ModelVariant::TinySd);
        cluster.worker_mut(WorkerId(0)).preload(fast);
        let ctx = SelectCtx {
            cluster: &cluster,
            slo_secs: 12.6,
            max_batch: 16,
            pool_view: None,
        };
        let b_fast = default_batch_size(&ctx, WorkerId(0), fast);
        assert!(b_fast > b_slow, "fast {b_fast} vs slow {b_slow}");
    }

    #[test]
    fn ac_batches_are_budgeted_at_the_cache_miss_cost() {
        // A deep AC level looks cheap, but any member whose retrieval
        // misses generates in full — the cap must plan for that, which
        // keeps the AC ladder at batch-1 under the default 3× SLO (§4.5).
        let mut cluster = Cluster::new(1, GpuArch::A100);
        let lvl = ApproxLevel::Ac(AcLevel(25));
        cluster.worker_mut(WorkerId(0)).preload(lvl);
        for j in 0..8 {
            cluster.worker_mut(WorkerId(0)).enqueue(j, SimTime::ZERO);
        }
        let ctx = SelectCtx {
            cluster: &cluster,
            slo_secs: 12.6,
            max_batch: 8,
            pool_view: None,
        };
        assert_eq!(default_batch_size(&ctx, WorkerId(0), lvl), 1);
        // With a loose SLO the same level batches again.
        let loose = SelectCtx {
            cluster: &cluster,
            slo_secs: 60.0,
            max_batch: 8,
            pool_view: None,
        };
        assert!(default_batch_size(&loose, WorkerId(0), lvl) > 1);
    }
}
