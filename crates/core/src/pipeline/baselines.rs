//! Baseline pipelines: Proteus, Sommelier, NIRVANA and the Clipper
//! variants (§5.1, Table 1).

use argus_cluster::{Cluster, WorkerId};
use argus_des::rng::weighted_index;
use argus_models::{AcLevel, ApproxLevel, ModelVariant, Strategy};

use crate::switcher::StrategySwitcher;

use super::{
    least_backlogged_level, CacheGate, Dispatcher, InitialPlacement, LevelPlanner, RouteCtx,
    ServingPolicy, TickAction, WorkerSelector,
};

/// Proteus [23]: SM-only accuracy scaling with a cluster-level solver,
/// prompt-agnostic routing. Re-solves each window from the raw observation
/// (no demand smoothing) and swaps the serving model in place (one HBM
/// slot) — the behaviours §5.7 charges with constant model switching.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProteusPolicy;

impl LevelPlanner for ProteusPolicy {
    fn active_ladder(&self, _switcher: &StrategySwitcher) -> Vec<ApproxLevel> {
        ApproxLevel::ladder(Strategy::Sm)
    }

    fn pick_target_level(&self, ctx: &mut RouteCtx<'_>, _ladder: &[ApproxLevel]) -> usize {
        weighted_index(ctx.route_rng, ctx.omega_norm).unwrap_or(0)
    }

    fn plan_tick(&self, observed_qpm: f64, _last_demand_qpm: f64) -> TickAction {
        TickAction::Reallocate {
            estimate_qpm: observed_qpm,
        }
    }

    fn initial_placement(&self) -> InitialPlacement {
        InitialPlacement::Solve
    }
}

impl CacheGate for ProteusPolicy {
    fn cache_active(&self, _switcher: &StrategySwitcher) -> bool {
        false
    }
}

impl WorkerSelector for ProteusPolicy {}
impl Dispatcher for ProteusPolicy {}

impl ServingPolicy for ProteusPolicy {
    fn name(&self) -> &'static str {
        "Proteus"
    }

    fn hbm_slots(&self) -> usize {
        1
    }
}

/// Sommelier [38]: per-GPU model selection — each worker reacts to its own
/// backlog, stepping one variant faster when overloaded and one slower when
/// idle.
#[derive(Debug, Clone, Copy, Default)]
pub struct SommelierPolicy;

impl LevelPlanner for SommelierPolicy {
    fn active_ladder(&self, _switcher: &StrategySwitcher) -> Vec<ApproxLevel> {
        ApproxLevel::ladder(Strategy::Sm)
    }

    fn pick_target_level(&self, ctx: &mut RouteCtx<'_>, ladder: &[ApproxLevel]) -> usize {
        least_backlogged_level(ctx.cluster, ladder)
    }

    fn plan_tick(&self, _observed_qpm: f64, _last_demand_qpm: f64) -> TickAction {
        TickAction::AdaptPerWorker
    }

    fn initial_placement(&self) -> InitialPlacement {
        InitialPlacement::AllAtBase
    }

    fn adapt_worker_levels(
        &self,
        cluster: &Cluster,
        ladder: &[ApproxLevel],
    ) -> Vec<(WorkerId, ApproxLevel)> {
        let mut changes = Vec::new();
        for w in cluster.alive() {
            let worker = cluster.worker(w);
            let Some(current) = worker.pending_level().or(worker.level()) else {
                // Cold worker (initial or recovered): start at the base.
                changes.push((w, ladder[0]));
                continue;
            };
            let Some(i) = ladder.iter().position(|&l| l == current) else {
                changes.push((w, ladder[0]));
                continue;
            };
            let backlog = worker.backlog();
            if backlog > 3 && i + 1 < ladder.len() {
                changes.push((w, ladder[i + 1]));
            } else if backlog == 0 && i > 0 {
                changes.push((w, ladder[i - 1]));
            }
        }
        changes
    }
}

impl CacheGate for SommelierPolicy {
    fn cache_active(&self, _switcher: &StrategySwitcher) -> bool {
        false
    }
}

impl WorkerSelector for SommelierPolicy {}
impl Dispatcher for SommelierPolicy {}

impl ServingPolicy for SommelierPolicy {
    fn name(&self) -> &'static str {
        "Sommelier"
    }
}

/// NIRVANA [20] extended to a cluster: SD-XL + approximate caching on every
/// worker, per-prompt `K` from retrieval similarity, load-based spread, no
/// load-adaptive reallocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NirvanaPolicy;

impl LevelPlanner for NirvanaPolicy {
    fn active_ladder(&self, _switcher: &StrategySwitcher) -> Vec<ApproxLevel> {
        ApproxLevel::ladder(Strategy::Ac)
    }

    fn pick_target_level(&self, ctx: &mut RouteCtx<'_>, ladder: &[ApproxLevel]) -> usize {
        least_backlogged_level(ctx.cluster, ladder)
    }

    fn plan_tick(&self, _observed_qpm: f64, _last_demand_qpm: f64) -> TickAction {
        TickAction::Heal
    }

    fn initial_placement(&self) -> InitialPlacement {
        InitialPlacement::Heal
    }
}

impl CacheGate for NirvanaPolicy {
    fn cache_active(&self, _switcher: &StrategySwitcher) -> bool {
        true
    }

    fn uses_cache_store(&self) -> bool {
        true
    }

    fn ac_level_for_hit(&self, _assigned: AcLevel, similarity: f64) -> AcLevel {
        nirvana_k(similarity)
    }
}

impl WorkerSelector for NirvanaPolicy {}
impl Dispatcher for NirvanaPolicy {}

impl ServingPolicy for NirvanaPolicy {
    fn name(&self) -> &'static str {
        "NIRVANA"
    }
}

/// Clipper with a statically pinned model on every GPU: the most accurate
/// (SD-XL, Clipper-HA) or the fastest (Tiny-SD, Clipper-HT).
#[derive(Debug, Clone, Copy)]
pub struct ClipperPolicy {
    level: ApproxLevel,
    name: &'static str,
}

impl ClipperPolicy {
    /// Clipper-HA: SD-XL statically on all GPUs.
    pub fn highest_accuracy() -> Self {
        ClipperPolicy {
            level: ApproxLevel::Sm(ModelVariant::SdXl),
            name: "Clipper-HA",
        }
    }

    /// Clipper-HT: Tiny-SD statically on all GPUs.
    pub fn highest_throughput() -> Self {
        ClipperPolicy {
            level: ApproxLevel::Sm(ModelVariant::TinySd),
            name: "Clipper-HT",
        }
    }

    /// The pinned level.
    pub fn level(&self) -> ApproxLevel {
        self.level
    }
}

impl LevelPlanner for ClipperPolicy {
    fn active_ladder(&self, _switcher: &StrategySwitcher) -> Vec<ApproxLevel> {
        ApproxLevel::ladder(Strategy::Sm)
    }

    fn pick_target_level(&self, ctx: &mut RouteCtx<'_>, ladder: &[ApproxLevel]) -> usize {
        least_backlogged_level(ctx.cluster, ladder)
    }

    fn plan_tick(&self, _observed_qpm: f64, _last_demand_qpm: f64) -> TickAction {
        TickAction::Heal
    }

    fn initial_placement(&self) -> InitialPlacement {
        InitialPlacement::Heal
    }

    fn static_level(&self) -> ApproxLevel {
        self.level
    }
}

impl CacheGate for ClipperPolicy {
    fn cache_active(&self, _switcher: &StrategySwitcher) -> bool {
        false
    }
}

impl WorkerSelector for ClipperPolicy {}
impl Dispatcher for ClipperPolicy {}

impl ServingPolicy for ClipperPolicy {
    fn name(&self) -> &'static str {
        self.name
    }
}

/// NIRVANA's similarity-driven skip-step selection: closer cached
/// neighbours allow more aggressive reuse [20].
pub fn nirvana_k(similarity: f64) -> AcLevel {
    match similarity {
        s if s >= 0.92 => AcLevel(25),
        s if s >= 0.86 => AcLevel(20),
        s if s >= 0.78 => AcLevel(15),
        s if s >= 0.68 => AcLevel(10),
        s if s >= 0.55 => AcLevel(5),
        _ => AcLevel(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nirvana_k_mapping_is_monotone() {
        assert_eq!(nirvana_k(0.99), AcLevel(25));
        assert_eq!(nirvana_k(0.87), AcLevel(20));
        assert_eq!(nirvana_k(0.80), AcLevel(15));
        assert_eq!(nirvana_k(0.70), AcLevel(10));
        assert_eq!(nirvana_k(0.60), AcLevel(5));
        assert_eq!(nirvana_k(0.10), AcLevel(0));
    }

    #[test]
    fn clipper_variants_pin_their_levels() {
        assert_eq!(
            ClipperPolicy::highest_accuracy().static_level(),
            ApproxLevel::Sm(ModelVariant::SdXl)
        );
        assert_eq!(
            ClipperPolicy::highest_throughput().static_level(),
            ApproxLevel::Sm(ModelVariant::TinySd)
        );
    }
}
