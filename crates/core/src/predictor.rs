//! The Workload Distribution Predictor (§4.2).
//!
//! Tracks the classifier's optimal-model prediction for recent prompts
//! over a look-back window (1000 prompts in the paper) and produces the
//! affinity histogram `φ(v)` consumed by ODA. §5.7 reports an L2 error of
//! ≤ 0.01 against the true distribution at this window size.

use std::collections::VecDeque;

/// Sliding-window estimator of the optimal-level affinity distribution.
#[derive(Debug, Clone)]
pub struct WorkloadDistributionPredictor {
    window: usize,
    levels: usize,
    recent: VecDeque<usize>,
    counts: Vec<u64>,
}

impl WorkloadDistributionPredictor {
    /// Creates a predictor over `levels` classes with the given look-back
    /// window (the paper uses 1000).
    ///
    /// # Panics
    /// Panics if `window == 0` or `levels == 0`.
    pub fn new(levels: usize, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(levels > 0, "need at least one level");
        WorkloadDistributionPredictor {
            window,
            levels,
            recent: VecDeque::with_capacity(window),
            counts: vec![0; levels],
        }
    }

    /// Records one classifier prediction.
    ///
    /// # Panics
    /// Panics if `level` is out of range.
    pub fn record(&mut self, level: usize) {
        assert!(level < self.levels, "level {level} out of range");
        if self.recent.len() == self.window {
            if let Some(old) = self.recent.pop_front() {
                self.counts[old] -= 1;
            }
        }
        self.recent.push_back(level);
        self.counts[level] += 1;
    }

    /// Number of predictions currently in the window.
    pub fn observed(&self) -> usize {
        self.recent.len()
    }

    /// The estimated affinity histogram `φ(v)` (sums to 1). Before any
    /// observation, returns all mass on level 0 (the conservative prior:
    /// every prompt wants the base model).
    pub fn phi(&self) -> Vec<f64> {
        let n = self.recent.len();
        if n == 0 {
            let mut v = vec![0.0; self.levels];
            v[0] = 1.0;
            return v;
        }
        self.counts.iter().map(|&c| c as f64 / n as f64).collect()
    }

    /// L2 error between the estimate and a reference distribution — the
    /// §5.7 accuracy metric.
    ///
    /// # Panics
    /// Panics if the reference length differs.
    pub fn l2_error(&self, reference: &[f64]) -> f64 {
        assert_eq!(reference.len(), self.levels, "distribution length mismatch");
        self.phi()
            .iter()
            .zip(reference)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_models::{ApproxLevel, Strategy};
    use argus_prompts::PromptGenerator;
    use argus_quality::QualityOracle;

    #[test]
    fn empty_prior_is_base_level() {
        let p = WorkloadDistributionPredictor::new(4, 100);
        assert_eq!(p.phi(), vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(p.observed(), 0);
    }

    #[test]
    fn histogram_tracks_recorded_levels() {
        let mut p = WorkloadDistributionPredictor::new(3, 10);
        for l in [0, 0, 1, 2, 2, 2] {
            p.record(l);
        }
        let phi = p.phi();
        assert!((phi[0] - 2.0 / 6.0).abs() < 1e-12);
        assert!((phi[1] - 1.0 / 6.0).abs() < 1e-12);
        assert!((phi[2] - 3.0 / 6.0).abs() < 1e-12);
        assert!((phi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn window_evicts_oldest() {
        let mut p = WorkloadDistributionPredictor::new(2, 4);
        for _ in 0..4 {
            p.record(0);
        }
        for _ in 0..4 {
            p.record(1);
        }
        assert_eq!(p.phi(), vec![0.0, 1.0]);
        assert_eq!(p.observed(), 4);
    }

    #[test]
    fn window_1000_reaches_paper_accuracy() {
        // §5.7: with a 1000-prompt look-back, φ is estimated with L2 error
        // ≲ 0.01–0.05 on stationary workloads.
        let ladder = ApproxLevel::ladder(Strategy::Ac);
        let oracle = QualityOracle::new(31);
        let mut generator = PromptGenerator::new(31);
        // Reference distribution from a large sample.
        let big = generator.generate_batch(20_000);
        let reference = oracle.optimal_choice_histogram(&big, &ladder);
        // Predictor fed the next 1000 true optimal levels.
        let mut p = WorkloadDistributionPredictor::new(ladder.len(), 1000);
        for prompt in generator.generate_batch(1000) {
            p.record(oracle.optimal_level(&prompt, &ladder));
        }
        let err = p.l2_error(&reference);
        assert!(err < 0.06, "L2 error {err}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_level_rejected() {
        let mut p = WorkloadDistributionPredictor::new(2, 10);
        p.record(5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn l2_length_checked() {
        let p = WorkloadDistributionPredictor::new(3, 10);
        let _ = p.l2_error(&[1.0]);
    }
}
